(* The full benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Sections 2 and 6) through the experiments library and prints the rows
   the paper reports.  Absolute numbers come from our simulator, so the
   claim under test is the *shape*: who wins, by roughly what factor, and
   where the crossovers fall.

   Part 2 runs Bechamel micro-benchmarks of the substrate itself
   (interpreter, compiler, ring network, caches, core models) so
   performance regressions in the simulator are visible.

   Between the two parts an engine A/B run times the legacy and event
   simulation engines over the CINT set and writes BENCH_engine.json
   (simulated cycles per host second for each).

   Set HELIX_BENCH_QUICK=1 to restrict part 1 to the CINT models.
   Set HELIX_BENCH_METRICS_DIR=<dir> to also dump each figure's table as
   <dir>/<figure>.json for machine consumption (CI trend tracking).
   Set HELIX_BENCH_SECTIONS to a comma list of figures,engine,micro to
   run a subset (default: all three). *)

open Helix_ir
open Helix_hcc
open Helix_core
open Helix_machine
open Helix_workloads
open Helix_experiments

let quick = Sys.getenv_opt "HELIX_BENCH_QUICK" <> None

let workloads = if quick then Registry.integer else Registry.all

let metrics_dir = Sys.getenv_opt "HELIX_BENCH_METRICS_DIR"

let sections =
  match Sys.getenv_opt "HELIX_BENCH_SECTIONS" with
  | None -> [ "figures"; "engine"; "micro" ]
  | Some s -> String.split_on_char ',' (String.trim s)

let wants s = List.mem s sections

(* Print a figure's table and, when HELIX_BENCH_METRICS_DIR is set, dump
   it as <dir>/<name>.json too. *)
let emit name report =
  Report.print report;
  match metrics_dir with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir (name ^ ".json") in
      let oc = open_out path in
      output_string oc (Helix_obs.Json.to_string (Report.to_json report));
      output_char oc '\n';
      close_out oc

(* ---- part 1: the paper's tables and figures -------------------------- *)

let part1 () =
  Fmt.pr "==================================================================@.";
  Fmt.pr "HELIX-RC evaluation reproduction (%s workload set)@."
    (if quick then "CINT" else "full");
  Fmt.pr "==================================================================@.";
  (* warm the compile/baseline memo tables across the pool so the
     figures below start from cache hits instead of serial compiles *)
  Exp_common.precompile workloads;
  emit "fig1" (Fig1.report (Fig1.run ~workloads ()));
  emit "fig2" (Fig2.report (Fig2.run ()));
  emit "fig3" (Fig3.report (Fig3.run ()));
  emit "fig4" (Fig4.report (Fig4.run ()));
  emit "table1" (Table1.report (Table1.run ~workloads ()));
  emit "fig7" (Fig7.report (Fig7.run ~workloads ()));
  emit "fig8" (Fig8.report (Fig8.run ()));
  emit "fig9" (Fig9.report (Fig9.run ()));
  emit "fig10" (Fig10.report (Fig10.run ()));
  emit "fig11a"
    (Fig11.report ~title:"Figure 11a: core count" (Fig11.core_count ()));
  emit "fig11b"
    (Fig11.report ~title:"Figure 11b: link latency" (Fig11.link_latency ()));
  emit "fig11c"
    (Fig11.report ~title:"Figure 11c: signal bandwidth"
       (Fig11.signal_bandwidth ()));
  emit "fig11d"
    (Fig11.report ~title:"Figure 11d: node memory size" (Fig11.node_memory ()));
  emit "fig12" (Fig12.report (Fig12.run ~workloads ()));
  emit "tlp" (Tlp_study.report (Tlp_study.run ()));
  emit "ablations" (Ablations.report (Ablations.run ()))

(* ---- engine A/B: simulated cycles per second ------------------------- *)

(* Wall-clock all three engines over the CINT set in the two
   configurations every figure pairs (HELIX ring-decoupled and
   conventional coupled) and record simulated cycles per host second.
   Results are bit-identical by construction (test/test_engine.ml proves
   it), so the event/legacy and heap/legacy ratios are the engines'
   figures of merit.  The heap engine additionally reports per-workload
   elision ratios -- event (rescan fast-forward only) is the "before",
   heap (wake-heap windows + serial-phase interpret-ahead) the "after".
   The table lands in BENCH_engine.json so the perf trajectory has
   data. *)

let engine_ab () =
  Fmt.pr "@.== engine A/B: simulated cycles/sec (CINT set) ==@.";
  let wls = Registry.integer in
  (* compile once, outside the timed region: only simulation is measured *)
  let prepared =
    List.map
      (fun (wl : Workload.t) ->
        let s = wl.Workload.build () in
        let c =
          Hcc.compile
            (Hcc_config.v3 ())
            s.Workload.prog s.Workload.layout
            ~train_mem:(s.Workload.init Workload.Train)
        in
        (wl, c, fun () -> s.Workload.init Workload.Ref))
      wls
  in
  let cfg_of ~helix engine =
    if helix then Exp_common.helix_cfg ~engine ()
    else Exp_common.conventional_cfg ~engine ()
  in
  let time_one cfg (c, fresh_mem) =
    let mem = fresh_mem () in
    let t0 = Unix.gettimeofday () in
    let r = Executor.run ~compiled:c cfg c.Hcc.cp_prog mem in
    (r, Unix.gettimeofday () -. t0)
  in
  let skip_ratio (r : Executor.result) =
    match
      Helix_obs.Metrics.find_float r.Executor.r_metrics "engine.skip_ratio"
    with
    | Some f -> f
    | None -> 0.0
  in
  (* Alternate the engines per (workload, config) point and keep each
     side's best of three: host-load drift and GC phase otherwise swamp
     the signal.  Cycle totals are engine-independent (bit-identical
     results), so accumulating them from one side is enough. *)
  let total_cycles = ref 0 in
  let l_dt = ref 0.0 and e_dt = ref 0.0 and h_dt = ref 0.0 in
  let detail = ref [] in
  List.iter
    (fun ((wl : Workload.t), c, fresh_mem) ->
      let p = (c, fresh_mem) in
      List.iter
        (fun helix ->
          let legacy_cfg = cfg_of ~helix Helix_engine.Engine.Legacy in
          let event_cfg = cfg_of ~helix Helix_engine.Engine.Event in
          let heap_cfg = cfg_of ~helix Helix_engine.Engine.Heap in
          ignore (time_one legacy_cfg p) (* warmup *);
          let l_best = ref infinity
          and e_best = ref infinity
          and h_best = ref infinity in
          let cycles = ref 0 in
          let e_ratio = ref 0.0 and h_ratio = ref 0.0 in
          for _ = 1 to 3 do
            let lr, ld = time_one legacy_cfg p in
            let er, ed = time_one event_cfg p in
            let hr, hd = time_one heap_cfg p in
            cycles := lr.Executor.r_cycles;
            e_ratio := skip_ratio er;
            h_ratio := skip_ratio hr;
            if ld < !l_best then l_best := ld;
            if ed < !e_best then e_best := ed;
            if hd < !h_best then h_best := hd
          done;
          total_cycles := !total_cycles + !cycles;
          l_dt := !l_dt +. !l_best;
          e_dt := !e_dt +. !e_best;
          h_dt := !h_dt +. !h_best;
          detail :=
            ( wl.Workload.name,
              (if helix then "helix" else "conventional"),
              !e_ratio,
              !h_ratio )
            :: !detail)
        [ true; false ])
    prepared;
  let detail = List.rev !detail in
  let l_dt = !l_dt and e_dt = !e_dt and h_dt = !h_dt in
  let rate dt = float_of_int !total_cycles /. Float.max dt 1e-9 in
  let l_rate = rate l_dt and e_rate = rate e_dt and h_rate = rate h_dt in
  let e_speedup = e_rate /. Float.max l_rate 1e-9 in
  let h_speedup = h_rate /. Float.max l_rate 1e-9 in
  Fmt.pr "  legacy: %d cycles in %.3fs = %.0f cycles/sec@." !total_cycles l_dt
    l_rate;
  Fmt.pr "  event:  %d cycles in %.3fs = %.0f cycles/sec@." !total_cycles e_dt
    e_rate;
  Fmt.pr "  heap:   %d cycles in %.3fs = %.0f cycles/sec@." !total_cycles h_dt
    h_rate;
  Fmt.pr "  event/legacy: %.2fx   heap/legacy: %.2fx@." e_speedup h_speedup;
  Fmt.pr "  elided-cycle ratio (event -> heap):@.";
  List.iter
    (fun (name, cfg, er, hr) ->
      Fmt.pr "    %-14s %-12s %.3f -> %.3f@." name cfg er hr)
    detail;
  let side cycles dt r =
    Helix_obs.Json.Obj
      [
        ("cycles", Helix_obs.Json.Int cycles);
        ("seconds", Helix_obs.Json.Float dt);
        ("cycles_per_sec", Helix_obs.Json.Float r);
      ]
  in
  let json =
    Helix_obs.Json.Obj
      [
        ("bench", Helix_obs.Json.String "engine-ab");
        ( "workloads",
          Helix_obs.Json.List
            (List.map
               (fun (wl, _, _) -> Helix_obs.Json.String wl.Workload.name)
               prepared) );
        ("legacy", side !total_cycles l_dt l_rate);
        ("event", side !total_cycles e_dt e_rate);
        ("heap", side !total_cycles h_dt h_rate);
        ("event_over_legacy", Helix_obs.Json.Float e_speedup);
        ("heap_over_legacy", Helix_obs.Json.Float h_speedup);
        ( "skip_ratio",
          Helix_obs.Json.List
            (List.map
               (fun (name, cfg, er, hr) ->
                 Helix_obs.Json.Obj
                   [
                     ("workload", Helix_obs.Json.String name);
                     ("config", Helix_obs.Json.String cfg);
                     ("event", Helix_obs.Json.Float er);
                     ("heap", Helix_obs.Json.Float hr);
                   ])
               detail) );
      ]
  in
  let oc = open_out "BENCH_engine.json" in
  output_string oc (Helix_obs.Json.to_string json);
  output_char oc '\n';
  close_out oc

(* ---- part 2: substrate micro-benchmarks ------------------------------- *)

let quickstart_prog () =
  let wl = Registry.find "164.gzip" in
  let s = wl.Workload.build () in
  (s.Workload.prog, s.Workload.layout, s.Workload.init Workload.Train)

(* Stall-heavy workload for the engine fast-forward benches, compiled
   once so only the run loop is measured. *)
let mcf_prepared =
  lazy
    (let wl = Registry.find "181.mcf" in
     let s = wl.Workload.build () in
     let c =
       Hcc.compile
         (Hcc_config.v3 ())
         s.Workload.prog s.Workload.layout
         ~train_mem:(s.Workload.init Workload.Train)
     in
     (c, fun () -> s.Workload.init Workload.Ref))

let run_mcf engine =
  let c, fresh_mem = Lazy.force mcf_prepared in
  let cfg = Exp_common.helix_cfg ~engine () in
  ignore (Executor.run ~compiled:c cfg c.Hcc.cp_prog (fresh_mem ()))

(* Serial-heavy workload: the interpret-ahead batching benchmark. *)
let vpr_prepared =
  lazy
    (let wl = Registry.find "175.vpr" in
     let s = wl.Workload.build () in
     let c =
       Hcc.compile
         (Hcc_config.v3 ())
         s.Workload.prog s.Workload.layout
         ~train_mem:(s.Workload.init Workload.Train)
     in
     (c, fun () -> s.Workload.init Workload.Ref))

let run_vpr engine =
  let c, fresh_mem = Lazy.force vpr_prepared in
  let cfg = Exp_common.helix_cfg ~engine () in
  ignore (Executor.run ~compiled:c cfg c.Hcc.cp_prog (fresh_mem ()))

let bench_tests =
  let open Bechamel in
  [
    Test.make ~name:"interp: gzip train input"
      (Staged.stage (fun () ->
           let prog, _, mem = quickstart_prog () in
           ignore (Interp.run prog mem)));
    Test.make ~name:"hcc: compile gzip with HCCv3"
      (Staged.stage (fun () ->
           let prog, layout, mem = quickstart_prog () in
           ignore (Hcc.compile (Hcc_config.v3 ()) prog layout ~train_mem:mem)));
    Test.make ~name:"executor: sequential gzip train"
      (Staged.stage (fun () ->
           let prog, _, mem = quickstart_prog () in
           ignore (Helix.run_sequential Mach_config.default prog mem)));
    Test.make ~name:"ring: 10k ticks with traffic"
      (Staged.stage (fun () ->
           let backing = Hashtbl.create 16 in
           let r =
             Helix_ring.Ring.create
               (Helix_ring.Ring.default_config ~n_nodes:16)
               {
                 Helix_ring.Ring.backing_load =
                   (fun a -> try Hashtbl.find backing a with Not_found -> 0);
                 backing_store = (fun a v -> Hashtbl.replace backing a v);
                 owner_l1_latency =
                   (fun ~core:_ ~cycle:_ ~write:_ ~addr:_ -> 3);
               }
           in
           for c = 0 to 9_999 do
             if c land 7 = 0 then
               ignore
                 (Helix_ring.Ring.try_store r ~node:(c land 15)
                    ~addr:(64 + (c land 63))
                    ~value:c ~cycle:c);
             Helix_ring.Ring.tick r ~cycle:c
           done));
    Test.make ~name:"ring: 10k jittered ticks with traffic"
      (Staged.stage (fun () ->
           (* same traffic as above under seeded perturbation: the cost
              of the fault-injection hash on the hot path *)
           let backing = Hashtbl.create 16 in
           let r =
             Helix_ring.Ring.create
               {
                 (Helix_ring.Ring.default_config ~n_nodes:16) with
                 Helix_ring.Ring.perturb =
                   Some (Helix_ring.Ring.perturbed ~seed:42 ());
               }
               {
                 Helix_ring.Ring.backing_load =
                   (fun a -> try Hashtbl.find backing a with Not_found -> 0);
                 backing_store = (fun a v -> Hashtbl.replace backing a v);
                 owner_l1_latency =
                   (fun ~core:_ ~cycle:_ ~write:_ ~addr:_ -> 3);
               }
           in
           for c = 0 to 9_999 do
             if c land 7 = 0 then
               ignore
                 (Helix_ring.Ring.try_store r ~node:(c land 15)
                    ~addr:(64 + (c land 63))
                    ~value:c ~cycle:c);
             Helix_ring.Ring.tick r ~cycle:c
           done));
    Test.make ~name:"ring: 10k faulty ticks with traffic"
      (Staged.stage (fun () ->
           (* same traffic again under a lossy fault plan: hot-path cost
              of per-send fault rolls, hop/checksum validation and the
              retransmission timer upkeep *)
           let backing = Hashtbl.create 16 in
           let r =
             Helix_ring.Ring.create
               {
                 (Helix_ring.Ring.default_config ~n_nodes:16) with
                 Helix_ring.Ring.faults =
                   Some
                     (Helix_ring.Ring.faulty ~drop:20 ~dup:10 ~reorder:10
                        ~corrupt:10 ~seed:42 ());
               }
               {
                 Helix_ring.Ring.backing_load =
                   (fun a -> try Hashtbl.find backing a with Not_found -> 0);
                 backing_store = (fun a v -> Hashtbl.replace backing a v);
                 owner_l1_latency =
                   (fun ~core:_ ~cycle:_ ~write:_ ~addr:_ -> 3);
               }
           in
           for c = 0 to 9_999 do
             if c land 7 = 0 then
               ignore
                 (Helix_ring.Ring.try_store r ~node:(c land 15)
                    ~addr:(64 + (c land 63))
                    ~value:c ~cycle:c);
             Helix_ring.Ring.tick r ~cycle:c
           done));
    Test.make ~name:"depcheck: 100k recorded accesses"
      (Staged.stage (fun () ->
           let d = Depcheck.create () in
           for i = 0 to 99_999 do
             Depcheck.record d ~core:(i land 15) ~iter:(i lsr 4)
               ~seg:(if i land 3 = 0 then Some (i land 7) else None)
               ~addr:((i * 13) land 4095)
               ~write:(i land 3 = 0)
           done;
           ignore (Depcheck.violations d)));
    Test.make ~name:"executor: gzip invocation with oracle+sanitizer"
      (Staged.stage (fun () ->
           let wl = Registry.find "164.gzip" in
           let s = wl.Workload.build () in
           let compiled =
             Hcc.compile
               (Hcc_config.v3 ())
               s.Workload.prog s.Workload.layout
               ~train_mem:(s.Workload.init Workload.Train)
           in
           ignore
             (Executor.run ~compiled
                (Executor.default_config ~ring:true
                   ~comm:Executor.fully_decoupled ~robust:Executor.checked
                   Mach_config.default)
                compiled.Hcc.cp_prog
                (s.Workload.init Workload.Ref))));
    Test.make ~name:"cache: 100k L1 accesses"
      (Staged.stage (fun () ->
           let c = Helix_machine.Cache.create Mach_config.default_l1 in
           for i = 0 to 99_999 do
             ignore
               (Helix_machine.Cache.access c ~write:(i land 3 = 0)
                  ((i * 17) land 16383))
           done));
    Test.make ~name:"analysis: loops+liveness+deps on gzip main"
      (Staged.stage (fun () ->
           let prog, _, _ = quickstart_prog () in
           let f = Ir.main_func prog in
           let cfg = Cfg.of_func f in
           let lt = Helix_analysis.Loops.compute cfg in
           ignore (Helix_analysis.Liveness.compute cfg);
           List.iter
             (fun lp ->
               ignore
                 (Helix_analysis.Depend.compute Helix_analysis.Alias.best prog
                    f lp))
             (Helix_analysis.Loops.loops lt)));
    Test.make ~name:"engine: legacy per-cycle, mcf (stall-heavy)"
      (Staged.stage (fun () -> run_mcf Helix_engine.Engine.Legacy));
    Test.make ~name:"engine: event fast-forward, mcf (stall-heavy)"
      (Staged.stage (fun () -> run_mcf Helix_engine.Engine.Event));
    Test.make ~name:"engine: heap wake-up windows, mcf (stall-heavy)"
      (Staged.stage (fun () -> run_mcf Helix_engine.Engine.Heap));
    Test.make ~name:"engine: event fast-forward, vpr (serial-heavy)"
      (Staged.stage (fun () -> run_vpr Helix_engine.Engine.Event));
    Test.make ~name:"engine: heap + interpret-ahead, vpr (serial-heavy)"
      (Staged.stage (fun () -> run_vpr Helix_engine.Engine.Heap));
    Test.make ~name:"engine: wake-heap 64k push/pop, 32 ids"
      (Staged.stage (fun () ->
           (* the heap engine's inner data structure: interleaved
              promise pushes and minimum pops, keys drifting forward as
              simulated time advances *)
           let h = Helix_engine.Wake_heap.create () in
           let seed = ref 123456789 in
           let rnd bound =
             seed := (!seed * 1103515245) + 12345;
             (!seed lsr 16) mod bound
           in
           for i = 0 to 65_535 do
             Helix_engine.Wake_heap.push h ~cycle:(i + rnd 64)
               ~id:(i land 31);
             if i land 1 = 0 then Helix_engine.Wake_heap.drop h
           done;
           while Helix_engine.Wake_heap.peek h <> None do
             Helix_engine.Wake_heap.drop h
           done));
    Test.make ~name:"engine: 64k full rescans, 32 components"
      (Staged.stage (fun () ->
           (* what the event engine does instead of a heap: poll every
              component's promise each round and take the minimum *)
           let promises = Array.init 32 (fun i -> (i * 37) land 1023) in
           let best = ref 0 in
           for now = 0 to 65_535 do
             let w = ref max_int in
             for i = 0 to 31 do
               let e = now + promises.(i) in
               if e < !w then w := e
             done;
             best := !w
           done;
           ignore !best));
    Test.make ~name:"pool: 4 interp runs, 1 job"
      (Staged.stage (fun () ->
           Exp_common.Pool.set_jobs 1;
           let prog, _, mem = quickstart_prog () in
           ignore
             (Exp_common.Pool.map
                (fun _ -> Interp.run prog (Helix_ir.Memory.copy mem))
                [ 0; 1; 2; 3 ])));
    Test.make ~name:"pool: 4 interp runs, 2 jobs"
      (Staged.stage (fun () ->
           Exp_common.Pool.set_jobs 2;
           Fun.protect
             ~finally:(fun () -> Exp_common.Pool.set_jobs 1)
             (fun () ->
               let prog, _, mem = quickstart_prog () in
               ignore
                 (Exp_common.Pool.map
                    (fun _ -> Interp.run prog (Helix_ir.Memory.copy mem))
                    [ 0; 1; 2; 3 ]))));
  ]

let part2 () =
  let open Bechamel in
  Fmt.pr "@.== substrate micro-benchmarks (bechamel) ==@.";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"helix-rc" ~fmt:"%s %s" bench_tests)
  in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                   ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ est ] ->
          Fmt.pr "  %-44s %12.0f ns/run@." name est
      | _ -> Fmt.pr "  %-44s (no estimate)@." name)
    results

let () =
  if wants "figures" then part1 ();
  if wants "engine" then engine_ab ();
  if wants "micro" then part2 ();
  Fmt.pr "@.done.@."
