(* The full benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Sections 2 and 6) through the experiments library and prints the rows
   the paper reports.  Absolute numbers come from our simulator, so the
   claim under test is the *shape*: who wins, by roughly what factor, and
   where the crossovers fall.

   Part 2 runs Bechamel micro-benchmarks of the substrate itself
   (interpreter, compiler, ring network, caches, core models) so
   performance regressions in the simulator are visible.

   Set HELIX_BENCH_QUICK=1 to restrict part 1 to the CINT models.
   Set HELIX_BENCH_METRICS_DIR=<dir> to also dump each figure's table as
   <dir>/<figure>.json for machine consumption (CI trend tracking). *)

open Helix_ir
open Helix_hcc
open Helix_core
open Helix_machine
open Helix_workloads
open Helix_experiments

let quick = Sys.getenv_opt "HELIX_BENCH_QUICK" <> None

let workloads = if quick then Registry.integer else Registry.all

let metrics_dir = Sys.getenv_opt "HELIX_BENCH_METRICS_DIR"

(* Print a figure's table and, when HELIX_BENCH_METRICS_DIR is set, dump
   it as <dir>/<name>.json too. *)
let emit name report =
  Report.print report;
  match metrics_dir with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir (name ^ ".json") in
      let oc = open_out path in
      output_string oc (Helix_obs.Json.to_string (Report.to_json report));
      output_char oc '\n';
      close_out oc

(* ---- part 1: the paper's tables and figures -------------------------- *)

let part1 () =
  Fmt.pr "==================================================================@.";
  Fmt.pr "HELIX-RC evaluation reproduction (%s workload set)@."
    (if quick then "CINT" else "full");
  Fmt.pr "==================================================================@.";
  emit "fig1" (Fig1.report (Fig1.run ~workloads ()));
  emit "fig2" (Fig2.report (Fig2.run ()));
  emit "fig3" (Fig3.report (Fig3.run ()));
  emit "fig4" (Fig4.report (Fig4.run ()));
  emit "table1" (Table1.report (Table1.run ~workloads ()));
  emit "fig7" (Fig7.report (Fig7.run ~workloads ()));
  emit "fig8" (Fig8.report (Fig8.run ()));
  emit "fig9" (Fig9.report (Fig9.run ()));
  emit "fig10" (Fig10.report (Fig10.run ()));
  emit "fig11a"
    (Fig11.report ~title:"Figure 11a: core count" (Fig11.core_count ()));
  emit "fig11b"
    (Fig11.report ~title:"Figure 11b: link latency" (Fig11.link_latency ()));
  emit "fig11c"
    (Fig11.report ~title:"Figure 11c: signal bandwidth"
       (Fig11.signal_bandwidth ()));
  emit "fig11d"
    (Fig11.report ~title:"Figure 11d: node memory size" (Fig11.node_memory ()));
  emit "fig12" (Fig12.report (Fig12.run ~workloads ()));
  emit "tlp" (Tlp_study.report (Tlp_study.run ()));
  emit "ablations" (Ablations.report (Ablations.run ()))

(* ---- part 2: substrate micro-benchmarks ------------------------------- *)

let quickstart_prog () =
  let wl = Registry.find "164.gzip" in
  let s = wl.Workload.build () in
  (s.Workload.prog, s.Workload.layout, s.Workload.init Workload.Train)

let bench_tests =
  let open Bechamel in
  [
    Test.make ~name:"interp: gzip train input"
      (Staged.stage (fun () ->
           let prog, _, mem = quickstart_prog () in
           ignore (Interp.run prog mem)));
    Test.make ~name:"hcc: compile gzip with HCCv3"
      (Staged.stage (fun () ->
           let prog, layout, mem = quickstart_prog () in
           ignore (Hcc.compile (Hcc_config.v3 ()) prog layout ~train_mem:mem)));
    Test.make ~name:"executor: sequential gzip train"
      (Staged.stage (fun () ->
           let prog, _, mem = quickstart_prog () in
           ignore (Helix.run_sequential Mach_config.default prog mem)));
    Test.make ~name:"ring: 10k ticks with traffic"
      (Staged.stage (fun () ->
           let backing = Hashtbl.create 16 in
           let r =
             Helix_ring.Ring.create
               (Helix_ring.Ring.default_config ~n_nodes:16)
               {
                 Helix_ring.Ring.backing_load =
                   (fun a -> try Hashtbl.find backing a with Not_found -> 0);
                 backing_store = (fun a v -> Hashtbl.replace backing a v);
                 owner_l1_latency =
                   (fun ~core:_ ~cycle:_ ~write:_ ~addr:_ -> 3);
               }
           in
           for c = 0 to 9_999 do
             if c land 7 = 0 then
               ignore
                 (Helix_ring.Ring.try_store r ~node:(c land 15)
                    ~addr:(64 + (c land 63))
                    ~value:c ~cycle:c);
             Helix_ring.Ring.tick r ~cycle:c
           done));
    Test.make ~name:"ring: 10k jittered ticks with traffic"
      (Staged.stage (fun () ->
           (* same traffic as above under seeded perturbation: the cost
              of the fault-injection hash on the hot path *)
           let backing = Hashtbl.create 16 in
           let r =
             Helix_ring.Ring.create
               {
                 (Helix_ring.Ring.default_config ~n_nodes:16) with
                 Helix_ring.Ring.perturb =
                   Some (Helix_ring.Ring.perturbed ~seed:42 ());
               }
               {
                 Helix_ring.Ring.backing_load =
                   (fun a -> try Hashtbl.find backing a with Not_found -> 0);
                 backing_store = (fun a v -> Hashtbl.replace backing a v);
                 owner_l1_latency =
                   (fun ~core:_ ~cycle:_ ~write:_ ~addr:_ -> 3);
               }
           in
           for c = 0 to 9_999 do
             if c land 7 = 0 then
               ignore
                 (Helix_ring.Ring.try_store r ~node:(c land 15)
                    ~addr:(64 + (c land 63))
                    ~value:c ~cycle:c);
             Helix_ring.Ring.tick r ~cycle:c
           done));
    Test.make ~name:"depcheck: 100k recorded accesses"
      (Staged.stage (fun () ->
           let d = Depcheck.create () in
           for i = 0 to 99_999 do
             Depcheck.record d ~core:(i land 15) ~iter:(i lsr 4)
               ~seg:(if i land 3 = 0 then Some (i land 7) else None)
               ~addr:((i * 13) land 4095)
               ~write:(i land 3 = 0)
           done;
           ignore (Depcheck.violations d)));
    Test.make ~name:"executor: gzip invocation with oracle+sanitizer"
      (Staged.stage (fun () ->
           let wl = Registry.find "164.gzip" in
           let s = wl.Workload.build () in
           let compiled =
             Hcc.compile
               (Hcc_config.v3 ())
               s.Workload.prog s.Workload.layout
               ~train_mem:(s.Workload.init Workload.Train)
           in
           ignore
             (Executor.run ~compiled
                (Executor.default_config ~ring:true
                   ~comm:Executor.fully_decoupled ~robust:Executor.checked
                   Mach_config.default)
                compiled.Hcc.cp_prog
                (s.Workload.init Workload.Ref))));
    Test.make ~name:"cache: 100k L1 accesses"
      (Staged.stage (fun () ->
           let c = Helix_machine.Cache.create Mach_config.default_l1 in
           for i = 0 to 99_999 do
             ignore
               (Helix_machine.Cache.access c ~write:(i land 3 = 0)
                  ((i * 17) land 16383))
           done));
    Test.make ~name:"analysis: loops+liveness+deps on gzip main"
      (Staged.stage (fun () ->
           let prog, _, _ = quickstart_prog () in
           let f = Ir.main_func prog in
           let cfg = Cfg.of_func f in
           let lt = Helix_analysis.Loops.compute cfg in
           ignore (Helix_analysis.Liveness.compute cfg);
           List.iter
             (fun lp ->
               ignore
                 (Helix_analysis.Depend.compute Helix_analysis.Alias.best prog
                    f lp))
             (Helix_analysis.Loops.loops lt)));
  ]

let part2 () =
  let open Bechamel in
  Fmt.pr "@.== substrate micro-benchmarks (bechamel) ==@.";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"helix-rc" ~fmt:"%s %s" bench_tests)
  in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                   ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ est ] ->
          Fmt.pr "  %-44s %12.0f ns/run@." name est
      | _ -> Fmt.pr "  %-44s (no estimate)@." name)
    results

let () =
  part1 ();
  part2 ();
  Fmt.pr "@.done.@."
