(* Array-backed binary min-heap keyed on cycle.  Two parallel arrays
   avoid packing the id into the key, so there is no limit on either the
   cycle range or the number of components. *)

type t = {
  mutable cycles : int array;
  mutable ids : int array;
  mutable size : int;
  mutable n_pushes : int;
}

let create () =
  { cycles = Array.make 64 0; ids = Array.make 64 0; size = 0; n_pushes = 0 }

let clear t = t.size <- 0
let size t = t.size

let grow t =
  let cap = Array.length t.cycles in
  let cycles = Array.make (cap * 2) 0 in
  let ids = Array.make (cap * 2) 0 in
  Array.blit t.cycles 0 cycles 0 cap;
  Array.blit t.ids 0 ids 0 cap;
  t.cycles <- cycles;
  t.ids <- ids

let push t ~cycle ~id =
  if t.size = Array.length t.cycles then grow t;
  (* sift up *)
  let i = ref t.size in
  t.size <- t.size + 1;
  t.n_pushes <- t.n_pushes + 1;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if t.cycles.(parent) > cycle then begin
      t.cycles.(!i) <- t.cycles.(parent);
      t.ids.(!i) <- t.ids.(parent);
      i := parent
    end
    else continue_ := false
  done;
  t.cycles.(!i) <- cycle;
  t.ids.(!i) <- id

let peek t = if t.size = 0 then None else Some (t.cycles.(0), t.ids.(0))

let drop t =
  if t.size > 0 then begin
    t.size <- t.size - 1;
    let n = t.size in
    if n > 0 then begin
      let cycle = t.cycles.(n) and id = t.ids.(n) in
      (* sift down from the root *)
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 in
        if l >= n then continue_ := false
        else begin
          let c =
            if l + 1 < n && t.cycles.(l + 1) < t.cycles.(l) then l + 1 else l
          in
          if t.cycles.(c) < cycle then begin
            t.cycles.(!i) <- t.cycles.(c);
            t.ids.(!i) <- t.ids.(c);
            i := c
          end
          else continue_ := false
        end
      done;
      t.cycles.(!i) <- cycle;
      t.ids.(!i) <- id
    end
  end

let pushes t = t.n_pushes
