(** Binary min-heap of (cycle, component-id) wake-up promises.

    The engine uses lazy deletion: entries are never removed when a
    component's promise moves, they are simply skipped at pop time when
    they no longer match the component's cached promise.  The heap
    therefore only needs [push], [peek] of the current minimum and
    [drop] of the top entry. *)

type t

val create : unit -> t
val clear : t -> unit
val size : t -> int

val push : t -> cycle:int -> id:int -> unit

val peek : t -> (int * int) option
(** Smallest [(cycle, id)] entry, by cycle, or [None] when empty. *)

val drop : t -> unit
(** Remove the top entry.  No-op on an empty heap. *)

val pushes : t -> int
(** Total entries ever pushed (for instrumentation). *)
