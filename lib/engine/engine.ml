type kind = Legacy | Event

let kind_of_string = function
  | "legacy" -> Some Legacy
  | "event" -> Some Event
  | _ -> None

let kind_to_string = function Legacy -> "legacy" | Event -> "event"

type component = {
  cp_name : string;
  cp_tick : cycle:int -> unit;
  cp_next_event : now:int -> int option;
  cp_skip : now:int -> cycles:int -> unit;
}

let passive name =
  {
    cp_name = name;
    cp_tick = (fun ~cycle:_ -> ());
    cp_next_event = (fun ~now:_ -> None);
    cp_skip = (fun ~now:_ ~cycles:_ -> ());
  }

type t = {
  knd : kind;
  clock : int ref;
  mutable components : component array;
  mutable scan_start : int;
  mutable n_steps : int;
  mutable n_ff : int;
  mutable n_skipped : int;
}

let create ~kind ~clock () =
  {
    knd = kind;
    clock;
    components = [||];
    scan_start = 0;
    n_steps = 0;
    n_ff = 0;
    n_skipped = 0;
  }

let register t c = t.components <- Array.append t.components [| c |]

exception Active

let step t =
  let cycle = !(t.clock) in
  let comps = t.components in
  for i = 0 to Array.length comps - 1 do
    comps.(i).cp_tick ~cycle
  done;
  t.n_steps <- t.n_steps + 1;
  incr t.clock;
  match t.knd with
  | Legacy -> ()
  | Event -> (
      let now = !(t.clock) in
      (* Find the earliest cycle any component could act on its own.
         Early-exit as soon as someone is active at [now], and start the
         scan at the component that was active last time: activity is
         sticky, so busy phases usually cost a single probe. *)
      let n = Array.length comps in
      let wake = ref max_int in
      try
        for j = 0 to n - 1 do
          let i =
            let i = t.scan_start + j in
            if i >= n then i - n else i
          in
          match comps.(i).cp_next_event ~now with
          | None -> ()
          | Some e ->
              let e = if e < now then now else e in
              if e = now then begin
                t.scan_start <- i;
                raise Active
              end;
              if e < !wake then wake := e
        done;
        if !wake > now && !wake < max_int then begin
          let k = !wake - now in
          for i = 0 to Array.length comps - 1 do
            comps.(i).cp_skip ~now ~cycles:k
          done;
          t.clock := !wake;
          t.n_ff <- t.n_ff + 1;
          t.n_skipped <- t.n_skipped + k
        end
      with Active -> ())

let kind t = t.knd
let steps t = t.n_steps
let fast_forwards t = t.n_ff
let skipped_cycles t = t.n_skipped
