type kind = Legacy | Event | Heap

let kind_of_string = function
  | "legacy" -> Some Legacy
  | "event" -> Some Event
  | "heap" -> Some Heap
  | _ -> None

let kind_to_string = function
  | Legacy -> "legacy"
  | Event -> "event"
  | Heap -> "heap"

type component = {
  cp_name : string;
  cp_tick : cycle:int -> unit;
  cp_next_event : now:int -> int option;
  cp_skip : now:int -> cycles:int -> unit;
  cp_changed : unit -> bool;
}

let passive name =
  {
    cp_name = name;
    cp_tick = (fun ~cycle:_ -> ());
    cp_next_event = (fun ~now:_ -> None);
    cp_skip = (fun ~now:_ ~cycles:_ -> ());
    cp_changed = (fun () -> false);
  }

(* Cached promise sentinel for reactive components (no self wake-up). *)
let reactive = max_int

type t = {
  knd : kind;
  clock : int ref;
  mutable components : component array;
  mutable scan_start : int;
  mutable n_steps : int;
  mutable n_ff : int;
  mutable n_skipped : int;
  (* Heap mode state.  [wake.(i)] caches component [i]'s last promise
     ([reactive] when it has none); [hot.(i)] forces a re-poll of [i]
     after the next tick round.  Invariant: a non-hot component with a
     finite cached promise always has a matching live heap entry, so the
     heap minimum over valid entries is the earliest wake-up of any
     quiescent component. *)
  heap : Wake_heap.t;
  mutable wake : int array;
  mutable hot : bool array;
  mutable batch_id : int;
  mutable batch : (now:int -> limit:int -> int) option;
  mutable n_batched : int;
  mutable n_batches : int;
}

let create ~kind ~clock () =
  {
    knd = kind;
    clock;
    components = [||];
    scan_start = 0;
    n_steps = 0;
    n_ff = 0;
    n_skipped = 0;
    heap = Wake_heap.create ();
    wake = [||];
    hot = [||];
    batch_id = -1;
    batch = None;
    n_batched = 0;
    n_batches = 0;
  }

let register t c =
  let id = Array.length t.components in
  t.components <- Array.append t.components [| c |];
  t.wake <- Array.append t.wake [| reactive |];
  (* every component starts hot so the first round polls everyone *)
  t.hot <- Array.append t.hot [| true |];
  id

let set_batch t ~id hook =
  t.batch_id <- id;
  t.batch <- Some hook

let wake t ~id ~at =
  if t.knd = Heap then begin
    if at <= !(t.clock) then t.hot.(id) <- true
    else if at < t.wake.(id) then begin
      t.wake.(id) <- at;
      Wake_heap.push t.heap ~cycle:at ~id
    end
  end

exception Active

(* Smallest heap entry that still matches its component's cached
   promise.  Entries for promises that have since moved are dropped;
   entries that have come due without the component turning active mark
   the component hot (it must be re-polled before the window can be
   trusted) and clamp the result to [now]. *)
let min_valid_wake t ~now =
  let rec go () =
    match Wake_heap.peek t.heap with
    | None -> reactive
    | Some (c, i) ->
        if t.wake.(i) = c then
          if c > now then c
          else begin
            (* due but not observed active: force a re-poll next round *)
            t.hot.(i) <- true;
            Wake_heap.drop t.heap;
            now
          end
        else begin
          Wake_heap.drop t.heap;
          go ()
        end
  in
  go ()

(* Poll component [i]'s promise and update the cache.  Returns true when
   the component is active at [now] (it then stays hot); quiescent
   components are demoted and their wake-up mirrored into the heap. *)
let poll t comps ~now i =
  match comps.(i).cp_next_event ~now with
  | Some e when e <= now ->
      t.wake.(i) <- now;
      true
  | Some e ->
      t.hot.(i) <- false;
      if t.wake.(i) <> e then begin
        t.wake.(i) <- e;
        Wake_heap.push t.heap ~cycle:e ~id:i
      end;
      false
  | None ->
      t.hot.(i) <- false;
      t.wake.(i) <- reactive;
      false

let step_heap t comps ~now =
  let n = Array.length comps in
  (* Only components that were active last round (hot) or whose tick
     just changed state can have moved their earliest event earlier;
     everyone else's cached promise stands. *)
  for i = 0 to n - 1 do
    if (not t.hot.(i)) && comps.(i).cp_changed () then t.hot.(i) <- true
  done;
  (* Lazy sticky re-poll: probe hot components until one is active --
     the window cannot skip then, so the remaining hot components keep
     their flag and are simply polled in a later round.  Activity is
     sticky, so busy phases usually cost a single probe. *)
  let active = ref (-1) in
  let j = ref 0 in
  while !active < 0 && !j < n do
    let i =
      let i = t.scan_start + !j in
      if i >= n then i - n else i
    in
    if t.hot.(i) && poll t comps ~now i then begin
      active := i;
      t.scan_start <- i
    end;
    incr j
  done;
  if !active < 0 then begin
    (* every hot component was polled and demoted: all quiescent *)
    let w = min_valid_wake t ~now in
    if w > now && w < reactive then begin
      let k = w - now in
      for i = 0 to n - 1 do
        comps.(i).cp_skip ~now ~cycles:k
      done;
      t.clock := w;
      t.n_ff <- t.n_ff + 1;
      t.n_skipped <- t.n_skipped + k;
      (* components due at [w] act on their next tick; make sure they
         are re-polled afterwards even if that tick is a no-op *)
      for i = 0 to n - 1 do
        if t.wake.(i) <= w then t.hot.(i) <- true
      done
    end
  end
  else if !active = t.batch_id && t.batch <> None then begin
    (* Serial-phase interpret-ahead candidate: the batch owner is
       active.  Poll the remaining hot components; if the owner turns
       out to be the only active one, hand it the dead window to burn
       inline, bounded by the earliest quiescent wake-up. *)
    let others_active = ref false in
    let i = ref 0 in
    while (not !others_active) && !i < n do
      if !i <> t.batch_id && t.hot.(!i) && poll t comps ~now !i then
        others_active := true;
      incr i
    done;
    if not !others_active then begin
      match t.batch with
      | None -> ()
      | Some hook ->
          let limit_cycle = min_valid_wake t ~now in
          if limit_cycle > now then begin
            let k = hook ~now ~limit:(limit_cycle - now) in
            if k > 0 then begin
              t.clock := now + k;
              t.n_batched <- t.n_batched + k;
              t.n_batches <- t.n_batches + 1;
              (* the hook ran foreign ticks; re-poll everyone *)
              for i = 0 to n - 1 do
                t.hot.(i) <- true
              done
            end
          end
    end
  end

let step t =
  let cycle = !(t.clock) in
  let comps = t.components in
  for i = 0 to Array.length comps - 1 do
    comps.(i).cp_tick ~cycle
  done;
  t.n_steps <- t.n_steps + 1;
  incr t.clock;
  match t.knd with
  | Legacy -> ()
  | Heap -> step_heap t comps ~now:!(t.clock)
  | Event -> (
      let now = !(t.clock) in
      (* Find the earliest cycle any component could act on its own.
         Early-exit as soon as someone is active at [now], and start the
         scan at the component that was active last time: activity is
         sticky, so busy phases usually cost a single probe. *)
      let n = Array.length comps in
      let wake = ref max_int in
      try
        for j = 0 to n - 1 do
          let i =
            let i = t.scan_start + j in
            if i >= n then i - n else i
          in
          match comps.(i).cp_next_event ~now with
          | None -> ()
          | Some e ->
              let e = if e < now then now else e in
              if e = now then begin
                t.scan_start <- i;
                raise Active
              end;
              if e < !wake then wake := e
        done;
        if !wake > now && !wake < max_int then begin
          let k = !wake - now in
          for i = 0 to Array.length comps - 1 do
            comps.(i).cp_skip ~now ~cycles:k
          done;
          t.clock := !wake;
          t.n_ff <- t.n_ff + 1;
          t.n_skipped <- t.n_skipped + k
        end
      with Active -> ())

let kind t = t.knd
let steps t = t.n_steps
let fast_forwards t = t.n_ff
let skipped_cycles t = t.n_skipped
let batched_cycles t = t.n_batched
let batches t = t.n_batches
let heap_pushes t = Wake_heap.pushes t.heap
