(** Shared simulation kernel.

    The engine owns the simulated clock and drives a fixed, ordered set
    of {!component}s.  In [Legacy] mode it reproduces a strict
    cycle-stepped loop: every component is ticked on every cycle.  In
    [Event] mode it additionally asks each component, after every tick
    round, for the earliest future cycle at which that component could
    change architectural state on its own ({!component.cp_next_event});
    when every component agrees that nothing can happen before some
    cycle [w > now], the engine fast-forwards the clock to [w] in one
    step, giving each component the chance to account for the skipped
    cycles ({!component.cp_skip}: stall-bucket charging, phase counters,
    watchdog bookkeeping).

    [Heap] mode computes the same windows without the per-round rescan:
    each component's promise is cached and mirrored into a min-heap of
    (cycle, id) wake-ups ({!Wake_heap}), and after a tick round only
    components that were active last round or whose tick just changed
    state ({!component.cp_changed}) are re-polled.  Promises that move
    {e later} leave stale heap entries behind, which are dropped lazily
    at pop time; promises that move {e earlier} can only result from a
    state change, which the re-poll protocol observes either through
    [cp_changed] or through an explicit {!wake} call from the owner
    (e.g. the executor poking the ring's component when a core injects a
    message).  [Heap] mode additionally supports an owner-registered
    batch hook ({!set_batch}): when exactly one component is runnable
    and it is the hook's owner, the engine hands it the whole dead
    window to burn inline (serial-phase interpret-ahead).

    The contract that makes [Event] and [Heap] bit-identical to [Legacy]
    is: if every registered component returns [Some w_i] (or [None])
    with [min w_i > now], then ticking every component at each cycle of
    [now .. min w_i - 1] is a no-op except for per-cycle statistics
    charging -- which [cp_skip] must perform in closed form. *)

type kind = Legacy | Event | Heap

val kind_of_string : string -> kind option
val kind_to_string : kind -> string

type component = {
  cp_name : string;
  cp_tick : cycle:int -> unit;
      (** Advance the component's state by one cycle.  Components are
          ticked in registration order, once per engine step. *)
  cp_next_event : now:int -> int option;
      (** Called after a full tick round, with [now] = the cycle about
          to be simulated.  [Some c] (with [c >= now]) promises that the
          component cannot change state before cycle [c]; [Some now]
          means "active, do not skip".  [None] means the component is
          purely reactive: it only changes state in response to other
          components and never wakes up by itself. *)
  cp_skip : now:int -> cycles:int -> unit;
      (** The engine skipped [cycles] cycles starting at [now] (i.e. the
          window [now .. now + cycles - 1] was never ticked).  Charge
          whatever per-cycle accounting the skipped ticks would have
          performed. *)
  cp_changed : unit -> bool;
      (** [Heap] mode only: did the last tick round (including probes by
          later-ticking components) change this component's state in a
          way that could move its earliest event?  A [true] forces a
          re-poll of [cp_next_event]; spurious [true]s cost a probe,
          false [false]s break the window proof.  Components whose
          promise is cheap to compute may simply return [true]
          always. *)
}

(** Convenience for purely passive components (e.g. the memory
    hierarchy, whose latencies are charged at access time). *)
val passive : string -> component

type t

val create : kind:kind -> clock:int ref -> unit -> t
(** The engine shares [clock] with its owner; [Engine.step] is the only
    writer while the engine runs. *)

val register : t -> component -> int
(** Returns the component's id, usable with {!wake} and {!set_batch}. *)

val wake : t -> id:int -> at:int -> unit
(** Reschedule: promise that component [id] may act as early as cycle
    [at] (earlier than its cached promise).  Conservative-early values
    are sound -- the component is simply re-polled at [at].  Ignored
    outside [Heap] mode. *)

val set_batch : t -> id:int -> (now:int -> limit:int -> int) -> unit
(** Register a batch hook owned by component [id].  In [Heap] mode, when
    [id] is the only runnable component, the engine calls
    [hook ~now ~limit] with [limit] = the number of cycles before the
    earliest other wake-up; the hook may tick its owner (and any
    bookkeeping that must run every cycle) for up to [limit] cycles
    inline, charge every other component in closed form, and return the
    number of cycles consumed (0 declines). *)

val step : t -> unit
(** Tick every component at the current clock value, advance the clock
    by one, then (in [Event]/[Heap] mode) fast-forward over any provably
    dead window. *)

val kind : t -> kind

val steps : t -> int
(** Tick rounds actually executed. *)

val fast_forwards : t -> int
(** Number of clock jumps taken. *)

val skipped_cycles : t -> int
(** Total cycles elided by jumps. *)

val batched_cycles : t -> int
(** Cycles executed inline by the batch hook ([Heap] mode). *)

val batches : t -> int
(** Number of batch-hook invocations that consumed cycles. *)

val heap_pushes : t -> int
(** Total wake-heap entries pushed ([Heap] mode instrumentation). *)
