(** Shared simulation kernel.

    The engine owns the simulated clock and drives a fixed, ordered set
    of {!component}s.  In [Legacy] mode it reproduces a strict
    cycle-stepped loop: every component is ticked on every cycle.  In
    [Event] mode it additionally asks each component, after every tick
    round, for the earliest future cycle at which that component could
    change architectural state on its own ({!component.cp_next_event});
    when every component agrees that nothing can happen before some
    cycle [w > now], the engine fast-forwards the clock to [w] in one
    step, giving each component the chance to account for the skipped
    cycles ({!component.cp_skip}: stall-bucket charging, phase counters,
    watchdog bookkeeping).

    The contract that makes [Event] bit-identical to [Legacy] is: if
    every registered component returns [Some w_i] (or [None]) with
    [min w_i > now], then ticking every component at each cycle of
    [now .. min w_i - 1] is a no-op except for per-cycle statistics
    charging -- which [cp_skip] must perform in closed form. *)

type kind = Legacy | Event

val kind_of_string : string -> kind option
val kind_to_string : kind -> string

type component = {
  cp_name : string;
  cp_tick : cycle:int -> unit;
      (** Advance the component's state by one cycle.  Components are
          ticked in registration order, once per engine step. *)
  cp_next_event : now:int -> int option;
      (** Called after a full tick round, with [now] = the cycle about
          to be simulated.  [Some c] (with [c >= now]) promises that the
          component cannot change state before cycle [c]; [Some now]
          means "active, do not skip".  [None] means the component is
          purely reactive: it only changes state in response to other
          components and never wakes up by itself. *)
  cp_skip : now:int -> cycles:int -> unit;
      (** The engine skipped [cycles] cycles starting at [now] (i.e. the
          window [now .. now + cycles - 1] was never ticked).  Charge
          whatever per-cycle accounting the skipped ticks would have
          performed. *)
}

(** Convenience for purely passive components (e.g. the memory
    hierarchy, whose latencies are charged at access time). *)
val passive : string -> component

type t

val create : kind:kind -> clock:int ref -> unit -> t
(** The engine shares [clock] with its owner; [Engine.step] is the only
    writer while the engine runs. *)

val register : t -> component -> unit

val step : t -> unit
(** Tick every component at the current clock value, advance the clock
    by one, then (in [Event] mode) fast-forward over any provably dead
    window. *)

val kind : t -> kind

val steps : t -> int
(** Tick rounds actually executed. *)

val fast_forwards : t -> int
(** Number of clock jumps taken. *)

val skipped_cycles : t -> int
(** Total cycles elided by jumps. *)
