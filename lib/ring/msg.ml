(* Messages circulating on the ring backbone.

   Every message carries its origin node (circulation stops after a full
   lap) and a global injection sequence number.  Links deliver messages in
   order, which -- together with the compiler-guaranteed unidirectional
   data flow -- gives the "signals move in lockstep with forwarded data"
   property of Section 5.1.

   For the lossy-ring fault model (ISSUE 5) a message additionally
   carries a per-hop sequence number [hop] (stamped by the sending node
   of each link when a fault plan is active; receivers detect loss,
   duplication and reordering as gaps, repeats and inversions of the
   per-link hop stream) and a payload checksum [csum] (computed once at
   injection over the payload, origin and injection sequence; a
   corrupted wire copy fails {!valid} and is discarded, to be recovered
   by the sender's retransmission buffer).  With no fault plan both
   fields are dead weight: [hop] stays 0 and [csum] is never checked,
   so the fault-free simulation is bit-identical. *)

type payload =
  | Data of { addr : int; value : int }
  | Sig of { seg : int; barrier : int }
      (* [barrier]: acceptance sequence number of the last data message the
         origin injected before this signal.  A node may not apply or
         forward the signal until it has applied that data -- this is the
         hardware's "signals move in lockstep with forwarded data"
         guarantee (Section 5.1), keeping a shared location unreadable
         before its value arrives even though data and signals travel on
         dedicated wires. *)

type t = {
  payload : payload;
  origin : int;  (* injecting node *)
  seq : int;     (* global injection order *)
  hop : int;     (* per-link hop sequence (faulty rings only, else 0) *)
  csum : int;    (* payload checksum, computed at injection *)
}

(* splitmix-style mix of the protocol-relevant fields; pure, so any node
   can recompute and compare. *)
let checksum ~(payload : payload) ~origin ~seq =
  let a, b =
    match payload with
    | Data { addr; value } -> (addr, value)
    | Sig { seg; barrier } -> (seg lxor 0x5deece66d, barrier)
  in
  let x =
    (a * 0x9e3779b97f4a7c1)
    lxor (b * 0xf51afd7ed558cc5)
    lxor ((origin + 1) * 0x4ceb9fe1a85ec53)
    lxor ((seq + 1) * 0x2545f4914f6cdd1)
  in
  let x = x lxor (x lsr 33) in
  let x = x * 0xff51afd7ed558cc in
  (x lxor (x lsr 29)) land max_int

let make ~payload ~origin ~seq =
  { payload; origin; seq; hop = 0; csum = checksum ~payload ~origin ~seq }

let valid m = m.csum = checksum ~payload:m.payload ~origin:m.origin ~seq:m.seq

let is_data m = match m.payload with Data _ -> true | Sig _ -> false
let is_sig m = match m.payload with Sig _ -> true | Data _ -> false

let pp ppf m =
  match m.payload with
  | Data { addr; value } ->
      Format.fprintf ppf "data(a=%d,v=%d,from=%d,#%d)" addr value m.origin m.seq
  | Sig { seg; barrier } ->
      Format.fprintf ppf "sig(seg=%d,b=%d,from=%d,#%d)" seg barrier m.origin
        m.seq
