(* Per-node signal buffer.

   Stores, for every (sequential segment, origin core) pair, the number of
   signals received.  Counters are monotone; the consumer-side wait logic
   compares them against the iteration-derived threshold.  The paper's
   "past/future" two-slot design corresponds to the compiler-guaranteed
   invariant that at most two signals per segment from a given core are
   ever un-consumed; [max_outstanding] lets the runtime assert it. *)

type t = {
  counts : (int * int, int) Hashtbl.t; (* (segment, origin) -> received *)
  consumed : (int * int, int) Hashtbl.t; (* threshold already waited-for *)
  mutable max_outstanding : int;
}

let create () =
  { counts = Hashtbl.create 32; consumed = Hashtbl.create 32; max_outstanding = 0 }

let received t ~seg ~origin =
  try Hashtbl.find t.counts (seg, origin) with Not_found -> 0

let record t ~seg ~origin =
  let k = (seg, origin) in
  let c = 1 + (try Hashtbl.find t.counts k with Not_found -> 0) in
  Hashtbl.replace t.counts k c;
  let cons = try Hashtbl.find t.consumed k with Not_found -> 0 in
  t.max_outstanding <- max t.max_outstanding (c - cons)

(* [satisfied t ~seg ~origin ~threshold] checks whether at least
   [threshold] signals have arrived, marking them consumed for the
   outstanding-signal accounting. *)
let satisfied t ~seg ~origin ~threshold =
  let ok = received t ~seg ~origin >= threshold in
  if ok then begin
    let k = (seg, origin) in
    let cons = try Hashtbl.find t.consumed k with Not_found -> 0 in
    if threshold > cons then Hashtbl.replace t.consumed k threshold
  end;
  ok

let reset t =
  Hashtbl.reset t.counts;
  Hashtbl.reset t.consumed;
  t.max_outstanding <- 0

let max_outstanding t = t.max_outstanding

let entries t =
  Hashtbl.fold
    (fun ((seg, origin) as k) c acc ->
      let cons = try Hashtbl.find t.consumed k with Not_found -> 0 in
      ((seg, origin), c, cons) :: acc)
    t.counts []
  |> List.sort compare

let dump t =
  List.fold_left
    (fun acc ((seg, origin), c, _) ->
      acc ^ Printf.sprintf " (seg%d,from%d)=%d" seg origin c)
    "" (entries t)

