(** Per-node signal buffer: monotone counters of received signals per
    (sequential segment, origin core).  The consumer-side wait compares
    them against iteration-derived thresholds; the paper's "past/future"
    two-slot design corresponds to the compiler-guaranteed bound of at
    most two un-consumed signals per pair, which [max_outstanding] lets
    the runtime assert. *)

type t

val create : unit -> t
val record : t -> seg:int -> origin:int -> unit
val received : t -> seg:int -> origin:int -> int
val satisfied : t -> seg:int -> origin:int -> threshold:int -> bool
val reset : t -> unit
val max_outstanding : t -> int
val dump : t -> string

val entries : t -> ((int * int) * int * int) list
(** [((seg, origin), received, consumed)] for every pair that has
    received at least one signal, sorted — the structured form of [dump]
    used by deadlock reports and snapshots. *)
