(* The ring cache: a unidirectional ring of per-core nodes that proactively
   circulates shared data and synchronization signals (paper Section 5).

   Timing model and functional model are coupled: node arrays hold real
   (possibly not-yet-updated) values, so a protocol violation -- e.g. a
   load executed without its wait -- returns stale data and is caught by
   the end-to-end memory oracle.

   Flow control: links have bounded buffers (credit-based in hardware); a
   node forwards ring traffic with priority and injects local stores and
   signals only on cycles with no traffic to forward, which preserves the
   invariant that a message in flight always finds buffer space ahead and
   keeps the ring deadlock-free.

   The authoritative image of all shared stores performed during the
   current parallel loop lives in [current], updated in injection order --
   which, by the compiler's guarantees plus in-order links, is exactly the
   order in which segment instances execute.  Ring misses (capacity) are
   served from it after a full-lap round trip through the owner node's L1
   path. *)

(* Deterministic timing perturbation: bounded extra *delays* hashed from
   (seed, cycle, node, salt).  Delay jitter is the mildest of the six
   fault classes (delay / drop / duplicate / reorder / corrupt /
   fail-stop): it never loses or reorders traffic -- every queue in the
   ring is FIFO and delivery pops from the head -- so jitter perturbs
   *when* messages move, never the protocol's orderings, and
   architectural results must be invariant under it with no recovery
   machinery at all.  The five lossy classes live in [fault_plan]
   below and do need the retransmission protocol to recover. *)
type perturbation = {
  pj_seed : int;
  pj_link_max : int;    (* extra cycles per hop, uniform in [0, max] *)
  pj_inject_max : int;  (* extra core-to-node injection delay *)
  pj_signal_max : int;  (* additional delay applied to signal messages *)
}

let perturbed ?(link_max = 2) ?(inject_max = 3) ?(signal_max = 2) ~seed () =
  { pj_seed = seed; pj_link_max = link_max; pj_inject_max = inject_max;
    pj_signal_max = signal_max }

(* The lossy-ring fault model (beyond delay jitter): a deterministic
   seeded schedule decides, per link send, whether the wire copy is
   dropped, duplicated, reordered with its predecessor, or corrupted --
   rates are per-mille so a plan is a compact value -- plus an optional
   fail-stop event killing one node's core at a fixed cycle.  Faults
   attack wire *copies* only; the logical message survives in its
   sender's retransmission buffer until the cumulative ack comes back,
   so the protocol (not the test harness) is responsible for recovery. *)
type fault_plan = {
  fl_seed : int;
  fl_drop : int;     (* per-mille probability per link send *)
  fl_dup : int;
  fl_reorder : int;
  fl_corrupt : int;
  fl_fail_stop : (int * int) option;  (* (node, cycle): core dies *)
}

let faulty ?(drop = 0) ?(dup = 0) ?(reorder = 0) ?(corrupt = 0) ?fail_stop
    ~seed () =
  let clamp r = max 0 (min 1000 r) in
  { fl_seed = seed; fl_drop = clamp drop; fl_dup = clamp dup;
    fl_reorder = clamp reorder; fl_corrupt = clamp corrupt;
    fl_fail_stop = fail_stop }

exception Bad_fault_spec of string

(* "seed=42,drop=5,dup=3,reorder=2,corrupt=1,kill=3@50000" *)
let fault_plan_of_string s =
  let p = ref (faulty ~seed:0 ()) in
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad_fault_spec m)) fmt in
  try
    List.iter
      (fun kv ->
        let kv = String.trim kv in
        if kv <> "" then
          match String.index_opt kv '=' with
          | None -> bad "expected key=value, got %S" kv
          | Some i ->
              let k = String.sub kv 0 i in
              let v = String.sub kv (i + 1) (String.length kv - i - 1) in
              let int_v () =
                match int_of_string_opt v with
                | Some n -> n
                | None -> bad "%s: not an integer: %S" k v
              in
              let rate () =
                let n = int_v () in
                if n < 0 || n > 1000 then
                  bad "%s: per-mille rate out of range 0..1000: %d" k n;
                n
              in
              (match k with
              | "seed" -> p := { !p with fl_seed = int_v () }
              | "drop" -> p := { !p with fl_drop = rate () }
              | "dup" -> p := { !p with fl_dup = rate () }
              | "reorder" -> p := { !p with fl_reorder = rate () }
              | "corrupt" -> p := { !p with fl_corrupt = rate () }
              | "kill" -> (
                  match String.index_opt v '@' with
                  | None -> bad "kill: expected NODE@CYCLE"
                  | Some j ->
                      let node = String.sub v 0 j in
                      let cyc =
                        String.sub v (j + 1) (String.length v - j - 1)
                      in
                      (match
                         (int_of_string_opt node, int_of_string_opt cyc)
                       with
                      | Some n, Some c when n >= 0 && c >= 0 ->
                          p := { !p with fl_fail_stop = Some (n, c) }
                      | _ -> bad "kill: expected NODE@CYCLE"))
              | _ -> bad "unknown fault key %S" k))
      (String.split_on_char ',' s);
    Ok !p
  with Bad_fault_spec m -> Error m

let fault_plan_to_string p =
  String.concat ","
    (List.filter
       (fun s -> s <> "")
       [
         Printf.sprintf "seed=%d" p.fl_seed;
         (if p.fl_drop > 0 then Printf.sprintf "drop=%d" p.fl_drop else "");
         (if p.fl_dup > 0 then Printf.sprintf "dup=%d" p.fl_dup else "");
         (if p.fl_reorder > 0 then Printf.sprintf "reorder=%d" p.fl_reorder
          else "");
         (if p.fl_corrupt > 0 then Printf.sprintf "corrupt=%d" p.fl_corrupt
          else "");
         (match p.fl_fail_stop with
         | Some (n, c) -> Printf.sprintf "kill=%d@%d" n c
         | None -> "");
       ])

type config = {
  n_nodes : int;
  link_latency : int;        (* cycles per hop *)
  data_bandwidth : int;      (* data messages per link per cycle *)
  signal_bandwidth : int;    (* signal messages per link per cycle *)
  injection_latency : int;   (* core to ring-node *)
  array_size_words : int;    (* per-node cache array; max_int = unbounded *)
  array_assoc : int;
  array_line_words : int;    (* 1 word: no false sharing *)
  link_capacity : int;       (* per-link buffering (credits) *)
  inject_capacity : int;     (* per-node injection queue *)
  (* ablation knobs (defaults reproduce the paper's design) *)
  greedy_sig_inject : bool;  (* signal wires inject with leftover bandwidth *)
  flush_invalidates : bool;  (* flush drops clean copies too *)
  perturb : perturbation option; (* seeded delay jitter (lossless) *)
  faults : fault_plan option;    (* seeded lossy-ring fault schedule *)
}

let default_config ~n_nodes =
  {
    n_nodes;
    link_latency = 1;
    data_bandwidth = 1;
    signal_bandwidth = 5;
    injection_latency = 2;
    array_size_words = 128; (* 1KB of 8-byte words *)
    array_assoc = 8;
    array_line_words = 1;
    link_capacity = 4;
    inject_capacity = 8;
    greedy_sig_inject = true;
    flush_invalidates = false;
    perturb = None;
    faults = None;
  }

(* splitmix-style finalizer keyed on (seed, cycle, node, salt): pure, so
   a given seed reproduces the exact same perturbed schedule. *)
let jitter cfg ~salt ~cycle ~node ~bound =
  match cfg.perturb with
  | None -> 0
  | Some p ->
      let bound = bound p in
      if bound <= 0 then 0
      else
        let x =
          p.pj_seed
          lxor (cycle * 0x9e3779b97f4a7c1)
          lxor ((node + 1) * 0xf51afd7ed558cc5)
          lxor ((salt + 1) * 0x4ceb9fe1a85ec53)
        in
        let x = x lxor (x lsr 33) in
        let x = x * 0xbf58476d1ce4e5b in
        let x = (x lxor (x lsr 29)) land max_int in
        x mod (bound + 1)

(* One per-mille roll per (cycle, link, wire, hop): pure, so a given plan
   reproduces the exact same fault schedule -- and because the cycle is
   an input, a retransmission of the same hop rolls independently, which
   is what guarantees eventual delivery for any rate < 1000. *)
let fault_roll p ~cycle ~link ~salt ~hop =
  let x =
    p.fl_seed
    lxor (cycle * 0x9e3779b97f4a7c1)
    lxor ((link + 1) * 0xf51afd7ed558cc5)
    lxor ((salt + 1) * 0x4ceb9fe1a85ec53)
    lxor ((hop + 1) * 0x2545f4914f6cdd1)
  in
  let x = x lxor (x lsr 33) in
  let x = x * 0xbf58476d1ce4e5b in
  let x = (x lxor (x lsr 29)) land max_int in
  x mod 1000

(* Callbacks into the rest of the memory system. *)
type env = {
  backing_load : int -> int;          (* L1/L2/DRAM functional read *)
  backing_store : int -> int -> unit; (* flush write-back *)
  owner_l1_latency : core:int -> cycle:int -> write:bool -> addr:int -> int;
}

type store_meta = {
  sm_origin : int;
  mutable sm_consumers : int;         (* bitmask of consumer nodes *)
  mutable sm_first_dist : int option; (* producer -> first consumer *)
}

(* Per-node, per-wire hop-stream state for the lossy-ring recovery
   protocol (go-back-N with cumulative acks).  The *sender* half
   ([hs_send], [hs_acked], [hs_rtx], timer) covers the node's outgoing
   link; the *receiver* half ([hs_expect]) covers its incoming link --
   the two halves are independent, so one record per wire suffices.
   Acks are modeled, not simulated as messages: accepting hop [h] on
   link [i] enqueues [(cycle + ack_latency, h)] into node [i]'s
   [hs_acks], where the ack latency is the long way around the ring
   (acks travel forward on the unidirectional interconnect). *)
type hop_state = {
  mutable hs_send : int;    (* next hop seq to stamp on a send *)
  mutable hs_expect : int;  (* next hop seq acceptable on the incoming link *)
  mutable hs_acked : int;   (* highest cumulatively-acked hop (-1 = none) *)
  hs_rtx : Msg.t Queue.t;   (* clean unacked copies, FIFO by hop *)
  mutable hs_deadline : int;  (* retransmission timer, max_int = unarmed *)
  mutable hs_attempt : int;   (* consecutive timeouts (exponential backoff) *)
  hs_acks : (int * int) Queue.t;  (* (learn_cycle, hop), FIFO by learn *)
}

let fresh_hop_state () =
  { hs_send = 0; hs_expect = 0; hs_acked = -1; hs_rtx = Queue.create ();
    hs_deadline = max_int; hs_attempt = 0; hs_acks = Queue.create () }

let reset_hop hs =
  hs.hs_send <- 0;
  hs.hs_expect <- 0;
  hs.hs_acked <- -1;
  Queue.clear hs.hs_rtx;
  Queue.clear hs.hs_acks;
  hs.hs_deadline <- max_int;
  hs.hs_attempt <- 0

(* One traffic class (data or signals): its input buffer at each node, its
   injection queue from the attached core, and its link wires.  The paper
   uses "separate dedicated wires for data and signals" (Section 6.3), so
   the two classes never block each other. *)
type node = {
  id : int;
  array : Node_array.t;
  sigbuf : Signal_buffer.t;
  in_data : Msg.t Queue.t;
  in_sig : Msg.t Queue.t;
  inject_data : (int * Msg.payload * int) Queue.t;
      (* (ready_cycle, payload, acceptance seq) *)
  inject_sig : (int * Msg.payload * int) Queue.t;
  mutable stall_until : int;              (* busy with L1 traffic *)
  mutable forwarded : int;
  mutable injected : int;
  mutable last_accepted_data : int;       (* newest data seq from my core *)
  applied_data : int array;               (* per-origin newest applied seq *)
  mutable dead : bool;
      (* fail-stopped core: the node degrades to a dumb repeater (the
         ring is "reknitted" -- traffic transits its position without
         being consumed), never applies or injects *)
  hop_data : hop_state;
  hop_sig : hop_state;
}

type t = {
  cfg : config;
  env : env;
  trace : Helix_obs.Trace.t option;
  nodes : node array;
  links_data : (int * Msg.t) Queue.t array; (* link i: node i -> node i+1 *)
  links_sig : (int * Msg.t) Queue.t array;
  mutable next_seq : int;
  current : (int, int) Hashtbl.t;      (* authoritative loop-shared image *)
  meta : (int, store_meta) Hashtbl.t;  (* live store metadata per address *)
  (* figure-4 histograms: index 0 unused; 1..5 exact; 6 = "6+" *)
  dist_hist : int array;
  consumers_hist : int array;
  mutable ring_hits : int;
  mutable ring_misses : int;
  mutable blocked_injections : int;
  mutable messages_retired : int;
  (* hierarchical quiescence: messages alive per class, counted from
     injection acceptance to retirement, wherever they currently sit
     (injection queue, input buffer or link).  Keeping the roll-up
     incremental makes [drained]/[data_drained] O(1) instead of a scan
     over every queue, which the executor performs every parallel
     cycle. *)
  mutable inflight_data : int;
  mutable inflight_sig : int;
  mutable tick_did_work : bool;
  faults_on : bool;  (* cached cfg.faults <> None: one branch on hot paths *)
  mutable retransmits : int;        (* messages resent on timer expiry *)
  mutable drops_detected : int;     (* hop gaps seen by receivers *)
  mutable dups_detected : int;      (* repeated hops discarded *)
  mutable corrupts_detected : int;  (* checksum failures discarded *)
  mutable faults_injected : int;    (* faults the schedule actually fired *)
  mutable reknits : int;            (* fail-stopped nodes routed around *)
  resident : (int, unit) Hashtbl.t;
      (* superset of addresses cached in some node array, so serial-phase
         stores can invalidate stale copies cheaply *)
}

let create ?trace (cfg : config) (env : env) : t =
  {
    cfg;
    env;
    trace;
    nodes =
      Array.init cfg.n_nodes (fun id ->
          {
            id;
            array =
              Node_array.create ~line_words:cfg.array_line_words
                ~size_words:cfg.array_size_words ~assoc:cfg.array_assoc ();
            sigbuf = Signal_buffer.create ();
            in_data = Queue.create ();
            in_sig = Queue.create ();
            inject_data = Queue.create ();
            inject_sig = Queue.create ();
            stall_until = 0;
            forwarded = 0;
            injected = 0;
            last_accepted_data = -1;
            applied_data = Array.make cfg.n_nodes (-1);
            dead = false;
            hop_data = fresh_hop_state ();
            hop_sig = fresh_hop_state ();
          });
    links_data = Array.init cfg.n_nodes (fun _ -> Queue.create ());
    links_sig = Array.init cfg.n_nodes (fun _ -> Queue.create ());
    next_seq = 0;
    current = Hashtbl.create 1024;
    meta = Hashtbl.create 1024;
    dist_hist = Array.make 7 0;
    consumers_hist = Array.make 7 0;
    ring_hits = 0;
    ring_misses = 0;
    blocked_injections = 0;
    messages_retired = 0;
    inflight_data = 0;
    inflight_sig = 0;
    tick_did_work = false;
    faults_on = cfg.faults <> None;
    retransmits = 0;
    drops_detected = 0;
    dups_detected = 0;
    corrupts_detected = 0;
    faults_injected = 0;
    reknits = 0;
    resident = Hashtbl.create 1024;
  }

let succ t i = (i + 1) mod t.cfg.n_nodes

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let bucket_of n = if n >= 6 then 6 else n

let finalize_meta t addr =
  match Hashtbl.find_opt t.meta addr with
  | None -> ()
  | Some m ->
      let nc = popcount m.sm_consumers in
      if nc > 0 then begin
        t.consumers_hist.(bucket_of nc) <- t.consumers_hist.(bucket_of nc) + 1;
        match m.sm_first_dist with
        | Some d when d >= 1 ->
            t.dist_hist.(bucket_of d) <- t.dist_hist.(bucket_of d) + 1
        | _ -> ()
      end;
      Hashtbl.remove t.meta addr

(* -- core-facing operations ----------------------------------------- *)

(* A store from the attached core.  Returns false when the injection queue
   is full (the core retries next cycle).  The authoritative image is
   updated immediately: acceptance order is the protocol's store order. *)
let try_store t ~node ~addr ~value ~cycle =
  let n = t.nodes.(node) in
  if Queue.length n.inject_data >= t.cfg.inject_capacity then begin
    t.blocked_injections <- t.blocked_injections + 1;
    Helix_obs.Trace.inject_blocked t.trace ~cycle ~node ~cls:"data";
    false
  end
  else begin
    finalize_meta t addr;
    Hashtbl.replace t.meta addr
      { sm_origin = node; sm_consumers = 0; sm_first_dist = None };
    Hashtbl.replace t.current addr value;
    (* locally visible right away; remote nodes see it when it arrives *)
    ignore (Node_array.insert n.array addr value);
    Hashtbl.replace t.resident addr ();
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    n.last_accepted_data <- seq;
    (* the store is applied locally at acceptance *)
    n.applied_data.(node) <- seq;
    let j = jitter t.cfg ~salt:1 ~cycle ~node ~bound:(fun p -> p.pj_inject_max) in
    Queue.add
      (cycle + t.cfg.injection_latency + j, Msg.Data { addr; value }, seq)
      n.inject_data;
    t.inflight_data <- t.inflight_data + 1;
    Helix_obs.Trace.store_inject t.trace ~cycle ~node ~addr ~value ~seq;
    true
  end

let try_signal t ~node ~seg ~cycle =
  let n = t.nodes.(node) in
  if Queue.length n.inject_sig >= t.cfg.inject_capacity then begin
    t.blocked_injections <- t.blocked_injections + 1;
    Helix_obs.Trace.inject_blocked t.trace ~cycle ~node ~cls:"sig";
    false
  end
  else begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let j =
      jitter t.cfg ~salt:2 ~cycle ~node ~bound:(fun p ->
          p.pj_inject_max + p.pj_signal_max)
    in
    Queue.add
      ( cycle + t.cfg.injection_latency + j,
        Msg.Sig { seg; barrier = n.last_accepted_data },
        seq )
      n.inject_sig;
    t.inflight_sig <- t.inflight_sig + 1;
    Helix_obs.Trace.signal_inject t.trace ~cycle ~node ~seg ~seq
      ~barrier:n.last_accepted_data;
    true
  end

(* A load from the attached core, executed at [cycle].  Returns the value
   and the total latency.  Hits read the node's local array (which may
   legitimately hold a value older than [current] -- that is the
   decoupling semantics the wait protocol must protect against).  Misses
   go around the ring to the owner's L1 path and return the authoritative
   value. *)
let load t ~node ~addr ~cycle =
  let n = t.nodes.(node) in
  match Node_array.lookup n.array addr with
  | Some v ->
      t.ring_hits <- t.ring_hits + 1;
      (* consumer tracking for Figures 4b/4c *)
      (match Hashtbl.find_opt t.meta addr with
      | Some m when m.sm_origin <> node ->
          m.sm_consumers <- m.sm_consumers lor (1 lsl node);
          if m.sm_first_dist = None then
            m.sm_first_dist <-
              Some
                (Owner.undirected_distance ~n_nodes:t.cfg.n_nodes
                   ~src:m.sm_origin ~dst:node)
      | _ -> ());
      (v, t.cfg.injection_latency + 1)
  | None ->
      t.ring_misses <- t.ring_misses + 1;
      let owner = Owner.node_of ~n_nodes:t.cfg.n_nodes addr in
      let value =
        match Hashtbl.find_opt t.current addr with
        | Some v -> v
        | None -> t.env.backing_load addr
      in
      (* round trip: to the owner and back around the ring, plus the
         owner's L1 access; the owner stalls while servicing *)
      let l1 =
        t.env.owner_l1_latency ~core:owner ~cycle ~write:false ~addr
      in
      let lat =
        t.cfg.injection_latency
        + (t.cfg.n_nodes * t.cfg.link_latency)
        + l1
      in
      let on = t.nodes.(owner) in
      on.stall_until <- max on.stall_until (cycle + l1);
      ignore (Node_array.insert n.array addr value);
      Hashtbl.replace t.resident addr ();
      (value, lat)

(* Has [node] received at least [threshold] signals for [seg] from
   [origin]?  (The executor derives thresholds from iteration indices.) *)
let signals_satisfied t ~node ~seg ~origin ~threshold =
  Signal_buffer.satisfied t.nodes.(node).sigbuf ~seg ~origin ~threshold

(* Pure query for diagnostics: unlike [signals_satisfied] it does not
   advance the consumed-threshold accounting, so report code can probe
   buffers without perturbing the outstanding-signal statistics. *)
let signals_received t ~node ~seg ~origin =
  Signal_buffer.received t.nodes.(node).sigbuf ~seg ~origin

let max_outstanding_signals t =
  Array.fold_left
    (fun acc n -> max acc (Signal_buffer.max_outstanding n.sigbuf))
    0 t.nodes

(* Serial-phase (non-segment) stores to an address cached in the ring
   must invalidate the stale copies: the compiler guarantees shared
   locations are ring-only *during* a parallel loop, but between loops
   ordinary code may write them. *)
let invalidate_addr t addr =
  if Hashtbl.mem t.resident addr then begin
    Array.iter (fun n -> Node_array.invalidate n.array addr) t.nodes;
    Hashtbl.remove t.resident addr
  end

(* Are the data channels empty?  The flush keeps node arrays valid across
   invocations, so all data must land before the loop retires.  The
   inflight counter covers every place a data message can live (links,
   input buffers, injection queues), so this is O(1). *)
let data_drained t = t.inflight_data = 0

let retire t ~cls =
  t.messages_retired <- t.messages_retired + 1;
  if cls = "data" then t.inflight_data <- t.inflight_data - 1
  else t.inflight_sig <- t.inflight_sig - 1

(* -- ring clock ------------------------------------------------------ *)

let class_of_msg t msg =
  if Msg.is_data msg then (t.links_data, fun n -> n.in_data)
  else (t.links_sig, fun n -> n.in_sig)

let link_free_space t links in_of i =
  t.cfg.link_capacity
  - Queue.length links.(i)
  - Queue.length (in_of t.nodes.(succ t i))

(* Recovery-protocol timing constants.  The retransmission timeout must
   comfortably exceed one hop plus the modeled cumulative-ack latency --
   acks travel the long way around the unidirectional ring -- or healthy
   links would retransmit spuriously; the slack term absorbs jitter and
   backpressure.  Exponential backoff (capped at 2^6) keeps a pathological
   schedule from flooding a link it keeps killing. *)
let ack_latency t = max 1 ((t.cfg.n_nodes - 1) * t.cfg.link_latency)
let rtx_base t = (4 * t.cfg.n_nodes * t.cfg.link_latency) + 16
let max_backoff_shift = 6

let wire_of_msg msg = if Msg.is_data msg then "data" else "sig"
let hop_of (n : node) msg = if Msg.is_data msg then n.hop_data else n.hop_sig

(* The fault-free wire put: exactly the pre-fault-model [send]. *)
let enqueue_link t (msg : Msg.t) i ~cycle =
  let links, _ = class_of_msg t msg in
  let j =
    jitter t.cfg ~salt:3 ~cycle ~node:i ~bound:(fun p ->
        if Msg.is_data msg then p.pj_link_max
        else p.pj_link_max + p.pj_signal_max)
  in
  Queue.add (cycle + t.cfg.link_latency + j, msg) links.(i)

let corrupt_msg (m : Msg.t) =
  let payload =
    match m.Msg.payload with
    | Msg.Data d -> Msg.Data { d with value = d.value lxor 0x2a }
    | Msg.Sig s -> Msg.Sig { s with barrier = s.barrier lxor 0x2a }
  in
  (* csum kept: it no longer matches the payload, which is the point *)
  { m with Msg.payload }

(* Swap the two newest link-queue entries (the reorder fault).  Delivery
   pops heads in queue order, so this really inverts arrival order; the
   receiver sees a hop inversion and go-back-N discards the early one. *)
let transpose_last_two (q : (int * Msg.t) Queue.t) =
  if Queue.length q >= 2 then begin
    let items = List.rev (Queue.fold (fun acc x -> x :: acc) [] q) in
    let rec swap_tail acc = function
      | [ a; b ] -> List.rev_append acc [ b; a ]
      | x :: rest -> swap_tail (x :: acc) rest
      | [] -> assert false
    in
    let items = swap_tail [] items in
    Queue.clear q;
    List.iter (fun x -> Queue.add x q) items
  end

(* Put a (hop-stamped) wire copy on link [i], applying the fault schedule.
   Faults touch only this copy; the clean original sits in the sender's
   retransmission buffer. *)
let faulty_put t (msg : Msg.t) i ~cycle =
  match t.cfg.faults with
  | None -> enqueue_link t msg i ~cycle
  | Some p ->
      let salt = if Msg.is_data msg then 11 else 12 in
      let hop = msg.Msg.hop in
      let roll = fault_roll p ~cycle ~link:i ~salt ~hop in
      let wire = wire_of_msg msg in
      let fired fclass =
        t.faults_injected <- t.faults_injected + 1;
        t.tick_did_work <- true;
        Helix_obs.Trace.fault t.trace ~cycle ~fclass ~link:i ~wire ~hop
      in
      if roll < p.fl_drop then fired "drop" (* nothing reaches the wire *)
      else if roll < p.fl_drop + p.fl_dup then begin
        fired "dup";
        enqueue_link t msg i ~cycle;
        enqueue_link t msg i ~cycle
      end
      else if roll < p.fl_drop + p.fl_dup + p.fl_reorder then begin
        fired "reorder";
        enqueue_link t msg i ~cycle;
        let links, _ = class_of_msg t msg in
        transpose_last_two links.(i)
      end
      else if roll < p.fl_drop + p.fl_dup + p.fl_reorder + p.fl_corrupt
      then begin
        fired "corrupt";
        enqueue_link t (corrupt_msg msg) i ~cycle
      end
      else enqueue_link t msg i ~cycle

(* Send on link [i].  With a fault plan active every copy is stamped with
   the link's next hop sequence number and retained (clean) in the
   sender's go-back-N buffer until cumulatively acked; the timer arms on
   the first outstanding hop.  Without a plan this is byte-identical to
   the lossless wire put. *)
let send t (msg : Msg.t) i ~cycle =
  if not t.faults_on then enqueue_link t msg i ~cycle
  else begin
    let hs = hop_of t.nodes.(i) msg in
    let msg = { msg with Msg.hop = hs.hs_send } in
    hs.hs_send <- hs.hs_send + 1;
    Queue.add msg hs.hs_rtx;
    if hs.hs_deadline = max_int then hs.hs_deadline <- cycle + rtx_base t;
    faulty_put t msg i ~cycle
  end

(* Apply a message arriving at node [n]; returns true if it must keep
   travelling (successor is not its origin). *)
let apply_at t (n : node) (msg : Msg.t) =
  (match msg.Msg.payload with
  | Msg.Data { addr; value } ->
      ignore (Node_array.insert n.array addr value);
      if msg.Msg.seq > n.applied_data.(msg.Msg.origin) then
        n.applied_data.(msg.Msg.origin) <- msg.Msg.seq
  | Msg.Sig { seg; _ } ->
      Signal_buffer.record n.sigbuf ~seg ~origin:msg.Msg.origin);
  succ t n.id <> msg.Msg.origin

(* Lockstep: a signal is held at a node until the data injected before it
   by the same origin has been applied here. *)
let lockstep_ok (n : node) (msg : Msg.t) =
  match msg.Msg.payload with
  | Msg.Sig { barrier; _ } -> n.applied_data.(msg.Msg.origin) >= barrier
  | Msg.Data _ -> true

(* Drain matured acks, advance the cumulative-ack horizon, trim the
   retransmission buffer and re-arm (or disarm) the timer. *)
let process_acks t (hs : hop_state) ~cycle =
  let progressed = ref false in
  let continue_ = ref true in
  while !continue_ && not (Queue.is_empty hs.hs_acks) do
    let learn, hop = Queue.peek hs.hs_acks in
    if learn <= cycle then begin
      ignore (Queue.pop hs.hs_acks);
      if hop > hs.hs_acked then begin
        hs.hs_acked <- hop;
        progressed := true
      end
    end
    else continue_ := false
  done;
  if !progressed then begin
    t.tick_did_work <- true;
    while
      (not (Queue.is_empty hs.hs_rtx))
      && (Queue.peek hs.hs_rtx).Msg.hop <= hs.hs_acked
    do
      ignore (Queue.pop hs.hs_rtx)
    done;
    hs.hs_attempt <- 0;
    hs.hs_deadline <-
      (if Queue.is_empty hs.hs_rtx then max_int else cycle + rtx_base t)
  end

(* Timer expiry: resend the oldest unacked window (go-back-N).  Resends
   re-roll the fault schedule at the current cycle, so any per-mille rate
   below 1000 eventually delivers a clean copy.  Retransmissions are
   credit-exempt -- they model emergency traffic on reserved wires -- and
   any resulting duplicates are discarded by the receiver's hop check. *)
let check_retransmit t (n : node) (hs : hop_state) ~wire ~cycle =
  if (not (Queue.is_empty hs.hs_rtx)) && cycle >= hs.hs_deadline then begin
    let count = min t.cfg.link_capacity (Queue.length hs.hs_rtx) in
    let sent = ref 0 in
    Queue.iter
      (fun msg ->
        if !sent < count then begin
          incr sent;
          faulty_put t msg n.id ~cycle
        end)
      hs.hs_rtx;
    t.retransmits <- t.retransmits + count;
    hs.hs_attempt <- hs.hs_attempt + 1;
    hs.hs_deadline <-
      cycle + (rtx_base t lsl min hs.hs_attempt max_backoff_shift);
    t.tick_did_work <- true;
    Helix_obs.Trace.retransmit t.trace ~cycle ~node:n.id ~wire ~count
      ~attempt:hs.hs_attempt
  end

let tick t ~cycle =
  t.tick_did_work <- false;
  (* 1. deliver arrived link messages into input buffers.  With a fault
     plan active the receiver validates each copy first: a checksum
     failure (corruption), a hop gap (loss -- go-back-N keeps expecting
     the gap until retransmitted) or a repeated hop (duplicate, including
     every retransmitted copy of an already-accepted hop) is counted and
     discarded; an in-order valid copy is accepted and its cumulative ack
     scheduled back to the sender.  In-order acceptance per hop stream
     means every node applies the identical message sequence as the
     fault-free run, which is why faults perturb timing but never
     architectural results. *)
  let deliver links in_of hs_of =
    Array.iteri
      (fun i link ->
        let dst = t.nodes.(succ t i) in
        let continue_ = ref true in
        while !continue_ && not (Queue.is_empty link) do
          let arrival, _ = Queue.peek link in
          if arrival <= cycle then begin
            let _, msg = Queue.pop link in
            if not t.faults_on then begin
              Queue.add msg (in_of dst);
              t.tick_did_work <- true
            end
            else begin
              t.tick_did_work <- true;
              let rhs = hs_of dst in
              if not (Msg.valid msg) then
                t.corrupts_detected <- t.corrupts_detected + 1
              else if msg.Msg.hop < rhs.hs_expect then
                t.dups_detected <- t.dups_detected + 1
              else if msg.Msg.hop > rhs.hs_expect then
                t.drops_detected <- t.drops_detected + 1
              else begin
                rhs.hs_expect <- rhs.hs_expect + 1;
                Queue.add
                  (cycle + ack_latency t, msg.Msg.hop)
                  (hs_of t.nodes.(i)).hs_acks;
                Queue.add msg (in_of dst)
              end
            end
          end
          else continue_ := false
        done)
      links
  in
  deliver t.links_data (fun n -> n.in_data) (fun n -> n.hop_data);
  deliver t.links_sig (fun n -> n.in_sig) (fun n -> n.hop_sig);
  (* 1b. sender-side protocol upkeep (NIC-level, so it runs even for a
     stalled or fail-stopped node): learn acks, then fire expired
     retransmission timers *)
  if t.faults_on then
    Array.iter
      (fun n ->
        process_acks t n.hop_data ~cycle;
        process_acks t n.hop_sig ~cycle;
        check_retransmit t n n.hop_data ~wire:"data" ~cycle;
        check_retransmit t n n.hop_sig ~wire:"sig" ~cycle)
      t.nodes;
  (* 2. per node and per class: forward ring traffic with priority over
     local injection; the two classes use dedicated wires *)
  let run_class (n : node) in_q inject_q links in_of budget0 ~greedy_inject
      ~cls =
    let budget = ref budget0 in
    let forwarded_any = ref false in
    let continue_ = ref true in
    while !continue_ && !budget > 0 && not (Queue.is_empty in_q) do
      let msg = Queue.peek in_q in
      let travels_on = succ t n.id <> msg.Msg.origin in
      if not (lockstep_ok n msg) then begin
        (match msg.Msg.payload with
        | Msg.Sig { barrier; _ } ->
            Helix_obs.Trace.lockstep_hold t.trace ~cycle ~node:n.id
              ~origin:msg.Msg.origin ~barrier
              ~applied:n.applied_data.(msg.Msg.origin)
        | Msg.Data _ -> ());
        continue_ := false
      end
      else if travels_on && link_free_space t links in_of n.id <= 0 then begin
        Helix_obs.Trace.backpressure t.trace ~cycle ~node:n.id ~cls;
        continue_ := false (* back-pressure: wait for credits *)
      end
      else begin
        let msg = Queue.pop in_q in
        let keep = apply_at t n msg in
        decr budget;
        t.tick_did_work <- true;
        if keep then begin
          send t msg n.id ~cycle;
          n.forwarded <- n.forwarded + 1;
          forwarded_any := true
        end
        else retire t ~cls
      end
    done;
    (* injection: data follows the paper's strict priority rule (inject
       only when nothing was forwarded); the wider dedicated signal wires
       may inject with leftover bandwidth, or signal bursts would starve *)
    if greedy_inject || not !forwarded_any then begin
      let continue_ = ref true in
      while !continue_ && !budget > 0 && not (Queue.is_empty inject_q) do
        let ready, payload, seq = Queue.peek inject_q in
        let msg = Msg.make ~payload ~origin:n.id ~seq in
        if ready > cycle then continue_ := false
        else if not (lockstep_ok n msg) then continue_ := false
        else if link_free_space t links in_of n.id <= 0 then continue_ := false
        else begin
          ignore (Queue.pop inject_q);
          decr budget;
          t.tick_did_work <- true;
          if t.cfg.n_nodes > 1 then send t msg n.id ~cycle
          else begin
            (* degenerate single-node ring: the message retires at its
               own origin without travelling, but a signal must still
               land in the local sigbuf or it vanishes from the
               outstanding-signal accounting and from deadlock reports
               (data was already applied locally at acceptance) *)
            (match payload with
            | Msg.Sig { seg; _ } ->
                Signal_buffer.record n.sigbuf ~seg ~origin:n.id
            | Msg.Data _ -> ());
            retire t ~cls
          end;
          n.injected <- n.injected + 1
        end
      done
    end
  in
  (* A fail-stopped node is a dumb repeater: it forwards (or retires)
     buffered traffic within bandwidth and credits but never applies it
     -- no array insert, no sigbuf record, no applied_data advance, no
     lockstep check (each downstream live node enforces its own
     barriers), no injection (its queues died with the core), and no
     L1-stall gating (there is no core left to stall it). *)
  let repeater (n : node) in_q links in_of budget0 ~cls =
    let budget = ref budget0 in
    let continue_ = ref true in
    while !continue_ && !budget > 0 && not (Queue.is_empty in_q) do
      let msg = Queue.peek in_q in
      let travels_on = succ t n.id <> msg.Msg.origin in
      if travels_on && link_free_space t links in_of n.id <= 0 then begin
        Helix_obs.Trace.backpressure t.trace ~cycle ~node:n.id ~cls;
        continue_ := false
      end
      else begin
        let msg = Queue.pop in_q in
        decr budget;
        t.tick_did_work <- true;
        if travels_on then begin
          send t msg n.id ~cycle;
          n.forwarded <- n.forwarded + 1
        end
        else retire t ~cls
      end
    done
  in
  Array.iter
    (fun n ->
      if n.dead then begin
        repeater n n.in_data t.links_data
          (fun nd -> nd.in_data)
          t.cfg.data_bandwidth ~cls:"data";
        repeater n n.in_sig t.links_sig
          (fun nd -> nd.in_sig)
          t.cfg.signal_bandwidth ~cls:"sig"
      end
      else if cycle >= n.stall_until then begin
        run_class n n.in_data n.inject_data t.links_data
          (fun nd -> nd.in_data) t.cfg.data_bandwidth ~greedy_inject:false
          ~cls:"data";
        run_class n n.in_sig n.inject_sig t.links_sig
          (fun nd -> nd.in_sig) t.cfg.signal_bandwidth
          ~greedy_inject:t.cfg.greedy_sig_inject ~cls:"sig"
      end)
    t.nodes

(* Fail-stop: the node's core dies at [cycle] and the ring reknits around
   it -- the node keeps its wires but degrades to a repeater, so traffic
   already in flight (including messages *it* originated) still transits
   and retires normally.  Messages sitting in its injection queues die
   with the core: they were accepted from the core but never reached the
   wire, so they vanish from the in-flight accounting and the caller (the
   executor) learns how many were lost.  Non-empty losses mean the
   wait/signal contract of the current invocation may be broken -- a
   downstream signal could reference barrier data that just evaporated --
   which is exactly the "reknitting is not enough, fall back" case.
   Returns [(lost_data, lost_sig)]; killing an already-dead node is a
   no-op.  Works with or without a fault plan (tests drive it
   directly). *)
let kill_node t ~node ~cycle =
  let n = t.nodes.(node) in
  if n.dead then (0, 0)
  else begin
    n.dead <- true;
    let lost_d = Queue.length n.inject_data in
    let lost_s = Queue.length n.inject_sig in
    Queue.clear n.inject_data;
    Queue.clear n.inject_sig;
    t.inflight_data <- t.inflight_data - lost_d;
    t.inflight_sig <- t.inflight_sig - lost_s;
    t.reknits <- t.reknits + 1;
    t.faults_injected <- t.faults_injected + 1;
    t.tick_did_work <- true;
    Helix_obs.Trace.fault t.trace ~cycle ~fclass:"fail_stop" ~link:node
      ~wire:"core" ~hop:(-1);
    Helix_obs.Trace.reknit t.trace ~cycle ~node ~lost_data:lost_d
      ~lost_sig:lost_s;
    (lost_d, lost_s)
  end

let node_dead t ~node = t.nodes.(node).dead
let dead_nodes t =
  Array.fold_left (fun acc n -> if n.dead then acc + 1 else acc) 0 t.nodes

(* Event-engine contract: earliest future cycle at which the network can
   make progress on its own; [Some now] = active, do not fast-forward;
   [None] = fully drained (purely reactive: only a new injection from a
   core can create work).  The inflight roll-up makes the drained case
   O(1); otherwise each node publishes a local "nothing before c" bound
   and the scan takes the minimum.  Buffered data (or a processable
   signal head) at an unstalled node is "active"; a lockstep-held signal
   head is *not* -- it can only unblock when the barrier data message is
   applied at this node, and that message is still in flight somewhere
   the scan already bounds (another node's buffers, an injection queue,
   or a link whose FIFO head arrival lower-bounds every delivery from
   it).  Waking a stalled node exactly at [stall_until], and link
   messages exactly at their arrival cycle, matches [tick]'s rules. *)
let next_event t ~now =
  let w = ref max_int in
  let add c = if (if c < now then now else c) < !w then w := max c now in
  (* Retransmission timers and pending acks are wake sources of their own:
     folding them in here is what lets retransmit deadlines participate in
     idle-cycle skipping instead of forcing per-cycle polling -- and they
     must be counted even when the in-flight roll-up is zero, because a
     late duplicate's ack (or a stale timer) can outlive the last logical
     message. *)
  if t.faults_on then
    Array.iter
      (fun n ->
        List.iter
          (fun hs ->
            if not (Queue.is_empty hs.hs_rtx) then add hs.hs_deadline;
            match Queue.peek_opt hs.hs_acks with
            | Some (learn, _) -> add learn
            | None -> ())
          [ n.hop_data; n.hop_sig ])
      t.nodes;
  if t.inflight_data = 0 && t.inflight_sig = 0 then
    (if !w = max_int then None else Some !w)
  else begin
    (try
       Array.iter
         (fun n ->
           let stalled = (not n.dead) && now < n.stall_until in
           if n.dead then begin
             (* repeater: buffered traffic is immediately processable
                (no lockstep, no stall) *)
             if not (Queue.is_empty n.in_data && Queue.is_empty n.in_sig)
             then begin
               add now;
               raise Exit
             end
           end
           else
           if stalled then begin
             if
               not (Queue.is_empty n.in_data && Queue.is_empty n.in_sig)
             then add n.stall_until;
             (match Queue.peek_opt n.inject_data with
             | Some (ready, _, _) -> add (max ready n.stall_until)
             | None -> ());
             match Queue.peek_opt n.inject_sig with
             | Some (ready, _, _) -> add (max ready n.stall_until)
             | None -> ()
           end
           else begin
             let sig_head_ready =
               match Queue.peek_opt n.in_sig with
               | None -> false
               | Some msg -> lockstep_ok n msg
             in
             if (not (Queue.is_empty n.in_data)) || sig_head_ready then begin
               add now;
               raise Exit
             end;
             (match Queue.peek_opt n.inject_data with
             | Some (ready, _, _) -> add ready
             | None -> ());
             match Queue.peek_opt n.inject_sig with
             | Some (ready, _, _) -> add ready
             | None -> ()
           end;
           if !w <= now then raise Exit)
         t.nodes;
       let links q =
         Array.iter
           (fun link ->
             match Queue.peek_opt link with
             | Some (arrival, _) -> add arrival
             | None -> ())
           q
       in
       links t.links_data;
       links t.links_sig
     with Exit -> ());
    if !w = max_int then None else Some !w
  end

(* Is any message still in flight (links, input buffers, injections)?
   O(1) via the inflight roll-up. *)
let drained t = t.inflight_data = 0 && t.inflight_sig = 0

(* Did the last [tick] move or retire any message?  The heap engine uses
   this to decide whether the ring must be re-polled. *)
let tick_changed t = t.tick_did_work

(* -- end-of-loop flush ----------------------------------------------- *)

(* Flush dirty owned values to the memory hierarchy (the distributed fence
   executed when a parallel loop finishes, Section 5.2), reset arrays and
   signal buffers, and finalize sharing statistics.  Returns the latency
   charged to the loop epilogue. *)
let flush t ~cycle =
  let dirty = Hashtbl.length t.current in
  Hashtbl.iter (fun addr v -> t.env.backing_store addr v) t.current;
  let per_node = Array.make t.cfg.n_nodes 0 in
  Hashtbl.iter
    (fun addr _ ->
      let o = Owner.node_of ~n_nodes:t.cfg.n_nodes addr in
      per_node.(o) <- per_node.(o) + 1)
    t.current;
  Hashtbl.reset t.current;
  let addrs = Hashtbl.fold (fun a _ acc -> a :: acc) t.meta [] in
  List.iter (finalize_meta t) addrs;
  if t.cfg.flush_invalidates then Hashtbl.reset t.resident;
  Array.iter
    (fun n ->
      (* dirty values are written back above; clean copies stay valid so
         the next invocation hits (only synchronization state resets) --
         unless the invalidate-all ablation is on *)
      if t.cfg.flush_invalidates then Node_array.clear n.array;
      Signal_buffer.reset n.sigbuf;
      Queue.clear n.in_data;
      Queue.clear n.in_sig;
      Queue.clear n.inject_data;
      Queue.clear n.inject_sig;
      (* the fence also quiesces the recovery protocol: unacked wire
         copies are moot once every node holds the data (dead flags
         persist -- a fail-stopped core stays dead across invocations) *)
      reset_hop n.hop_data;
      reset_hop n.hop_sig;
      (* the flush is a global synchronization point: every message
         accepted so far counts as applied, so stale lockstep barriers
         cannot wedge the next parallel loop *)
      Array.fill n.applied_data 0 (Array.length n.applied_data)
        (t.next_seq - 1))
    t.nodes;
  Array.iter Queue.clear t.links_data;
  Array.iter Queue.clear t.links_sig;
  t.inflight_data <- 0;
  t.inflight_sig <- 0;
  ignore cycle;
  (* each owner writes its share back in parallel; charge the max *)
  let max_share = Array.fold_left max 0 per_node in
  if dirty = 0 then 1 else 2 * max_share |> max 1

(* Abandon the current invocation without write-back: the executor's
   fallback path rolls memory back to the loop-entry checkpoint and
   re-executes the invocation sequentially, so the ring's speculative
   state -- dirty values in [current], in-flight traffic, signal
   accounting, cached copies -- must simply vanish.  Clean copies are
   dropped too (unlike [flush]) because the rollback makes them stale.
   Sharing-histogram contributions from the aborted invocation are kept;
   they describe traffic that really occurred. *)
let abort t =
  Hashtbl.reset t.current;
  Hashtbl.reset t.meta;
  Hashtbl.reset t.resident;
  Array.iter
    (fun n ->
      Node_array.clear n.array;
      Signal_buffer.reset n.sigbuf;
      Queue.clear n.in_data;
      Queue.clear n.in_sig;
      Queue.clear n.inject_data;
      Queue.clear n.inject_sig;
      reset_hop n.hop_data;
      reset_hop n.hop_sig;
      n.stall_until <- 0;
      Array.fill n.applied_data 0 (Array.length n.applied_data)
        (t.next_seq - 1))
    t.nodes;
  Array.iter Queue.clear t.links_data;
  Array.iter Queue.clear t.links_sig;
  t.inflight_data <- 0;
  t.inflight_sig <- 0

(* Diagnostic dump for deadlock reports: every node unconditionally (a
   16-core wedge is usually caused by one of the nodes an abbreviated
   dump would omit), with sigbuf contents, queue occupancy, lockstep
   state and per-link occupancy. *)
let describe t =
  let b = Buffer.create 1024 in
  (* the quiescence roll-up first: "who still owes the ring a message" is
     the question every wedge investigation starts with *)
  Buffer.add_string b
    (Printf.sprintf "    inflight: data=%d sig=%d\n" t.inflight_data
       t.inflight_sig);
  if t.faults_on || t.reknits > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "    faults: injected=%d retransmits=%d drops=%d dups=%d \
          corrupts=%d reknits=%d\n"
         t.faults_injected t.retransmits t.drops_detected t.dups_detected
         t.corrupts_detected t.reknits);
  Array.iter
    (fun n ->
      Buffer.add_string b
        (Printf.sprintf
           "    node %d%s: sigbuf:%s\n\
           \      in_data=%d in_sig=%d injd=%d injs=%d stall=%d \
            last_acc=%d applied=[%s]\n"
           n.id
           (if n.dead then " [DEAD]" else "")
           (let d = Signal_buffer.dump n.sigbuf in
            if d = "" then " (empty)" else d)
           (Queue.length n.in_data) (Queue.length n.in_sig)
           (Queue.length n.inject_data)
           (Queue.length n.inject_sig)
           n.stall_until n.last_accepted_data
           (String.concat ","
              (Array.to_list (Array.map string_of_int n.applied_data)))))
    t.nodes;
  let dump_links name links =
    Array.iteri
      (fun i l ->
        if not (Queue.is_empty l) then
          Buffer.add_string b
            (Printf.sprintf "    %s %d->%d: %d msgs (head %s)\n" name i
               (succ t i) (Queue.length l)
               (let arrival, m = Queue.peek l in
                Format.asprintf "%a@%d" Msg.pp m arrival)))
      links
  in
  dump_links "link_data" t.links_data;
  dump_links "link_sig" t.links_sig;
  Buffer.contents b

(* Structured form of [describe] for machine-readable stuck reports. *)
let snapshot t : Helix_obs.Json.t =
  let open Helix_obs in
  let queue_msgs q =
    Json.List
      (Queue.fold
         (fun acc (m : Msg.t) ->
           Json.String (Format.asprintf "%a" Msg.pp m) :: acc)
         [] q
      |> List.rev)
  in
  let node_json (n : node) =
    Json.Obj
      [
        ("id", Json.Int n.id);
        ("dead", Json.Bool n.dead);
        ("stall_until", Json.Int n.stall_until);
        ("forwarded", Json.Int n.forwarded);
        ("injected", Json.Int n.injected);
        ("last_accepted_data", Json.Int n.last_accepted_data);
        ( "applied_data",
          Json.List
            (Array.to_list (Array.map (fun s -> Json.Int s) n.applied_data)) );
        ("in_data", queue_msgs n.in_data);
        ("in_sig", queue_msgs n.in_sig);
        ("inject_data_len", Json.Int (Queue.length n.inject_data));
        ("inject_sig_len", Json.Int (Queue.length n.inject_sig));
        ("rtx_data_len", Json.Int (Queue.length n.hop_data.hs_rtx));
        ("rtx_sig_len", Json.Int (Queue.length n.hop_sig.hs_rtx));
        ( "sigbuf",
          Json.List
            (List.map
               (fun ((seg, origin), received, consumed) ->
                 Json.Obj
                   [
                     ("seg", Json.Int seg);
                     ("origin", Json.Int origin);
                     ("received", Json.Int received);
                     ("consumed", Json.Int consumed);
                   ])
               (Signal_buffer.entries n.sigbuf)) );
      ]
  in
  let link_json links =
    Json.List
      (Array.to_list
         (Array.mapi
            (fun i (l : (int * Msg.t) Queue.t) ->
              Json.Obj
                [
                  ("from", Json.Int i);
                  ("to", Json.Int (succ t i));
                  ("occupancy", Json.Int (Queue.length l));
                  ( "head",
                    if Queue.is_empty l then Json.Null
                    else
                      let arrival, m = Queue.peek l in
                      Json.Obj
                        [
                          ("arrival", Json.Int arrival);
                          ("msg", Json.String (Format.asprintf "%a" Msg.pp m));
                        ] );
                ])
            links))
  in
  Json.Obj
    [
      ("n_nodes", Json.Int t.cfg.n_nodes);
      ("next_seq", Json.Int t.next_seq);
      ("ring_hits", Json.Int t.ring_hits);
      ("ring_misses", Json.Int t.ring_misses);
      ("blocked_injections", Json.Int t.blocked_injections);
      ("messages_retired", Json.Int t.messages_retired);
      ("inflight_data", Json.Int t.inflight_data);
      ("inflight_sig", Json.Int t.inflight_sig);
      ("retransmits", Json.Int t.retransmits);
      ("drops_detected", Json.Int t.drops_detected);
      ("dups_detected", Json.Int t.dups_detected);
      ("corrupts_detected", Json.Int t.corrupts_detected);
      ("faults_injected", Json.Int t.faults_injected);
      ("reknits", Json.Int t.reknits);
      ("nodes", Json.List (Array.to_list (Array.map node_json t.nodes)));
      ("links_data", link_json t.links_data);
      ("links_sig", link_json t.links_sig);
    ]

let dist_histogram t = Array.copy t.dist_hist
let consumers_histogram t = Array.copy t.consumers_hist

(* Recovery-protocol counters, for tests and harness summaries. *)
let retransmits t = t.retransmits
let drops_detected t = t.drops_detected
let dups_detected t = t.dups_detected
let corrupts_detected t = t.corrupts_detected
let faults_injected t = t.faults_injected
let reknits t = t.reknits
let inflight_counts t = (t.inflight_data, t.inflight_sig)
let ring_hit_rate t =
  let tot = t.ring_hits + t.ring_misses in
  if tot = 0 then 1.0 else float_of_int t.ring_hits /. float_of_int tot

(* Publish the ring's counters under "ring." in a metrics registry. *)
let export_metrics t (m : Helix_obs.Metrics.t) =
  let open Helix_obs in
  Metrics.set_int m "ring.hits" t.ring_hits;
  Metrics.set_int m "ring.misses" t.ring_misses;
  Metrics.set_float m "ring.hit_rate" (ring_hit_rate t);
  Metrics.set_int m "ring.blocked_injections" t.blocked_injections;
  Metrics.set_int m "ring.messages_retired" t.messages_retired;
  Metrics.set_int m "ring.next_seq" t.next_seq;
  Metrics.set_hist m "ring.dist_hist" t.dist_hist;
  Metrics.set_hist m "ring.consumers_hist" t.consumers_hist;
  Metrics.set_int m "ring.forwarded"
    (Array.fold_left (fun acc n -> acc + n.forwarded) 0 t.nodes);
  Metrics.set_int m "ring.injected"
    (Array.fold_left (fun acc n -> acc + n.injected) 0 t.nodes);
  Metrics.set_int m "ring.max_outstanding_signals" (max_outstanding_signals t);
  (* fault/recovery counters: always exported (all zero in a fault-free
     run, so cross-engine metric diffs stay trivially identical) *)
  Metrics.set_int m "ring.inflight_data" t.inflight_data;
  Metrics.set_int m "ring.inflight_sig" t.inflight_sig;
  Metrics.set_int m "ring.retransmits" t.retransmits;
  Metrics.set_int m "ring.drops_detected" t.drops_detected;
  Metrics.set_int m "ring.dups_detected" t.dups_detected;
  Metrics.set_int m "ring.corrupts_detected" t.corrupts_detected;
  Metrics.set_int m "ring.faults_injected" t.faults_injected;
  Metrics.set_int m "ring.reknits" t.reknits;
  Metrics.set_int m "ring.dead_nodes" (dead_nodes t)
