(** The ring cache (paper Section 5): one node per core on a
    unidirectional ring, proactively circulating shared data and
    synchronization signals on dedicated credit-bounded wires.

    The model is functional *and* timed: node arrays hold real, possibly
    not-yet-updated values, so a protocol violation (a load without its
    wait) observably returns stale data.  Signals carry a lockstep
    barrier — the acceptance sequence number of their origin's last store
    — and no node applies or forwards a signal before applying that
    store, implementing "signals move in lockstep with forwarded
    data". *)

(** Deterministic timing jitter: bounded extra {e delays} hashed purely
    from [(seed, cycle, node, salt)].  Delay is the mildest fault class —
    every ring queue is FIFO and delivery only pops heads, so jitter can
    delay traffic but never lose, repeat or reorder it, and architectural
    results must be invariant under any seed with no recovery machinery.
    The five lossy classes (drop / duplicate / reorder / corrupt /
    fail-stop) live in {!fault_plan} and engage the retransmission
    protocol. *)
type perturbation = {
  pj_seed : int;
  pj_link_max : int;    (** extra cycles per hop, uniform in [0, max] *)
  pj_inject_max : int;  (** extra core-to-node injection delay *)
  pj_signal_max : int;  (** additional delay applied to signal messages *)
}

val perturbed :
  ?link_max:int -> ?inject_max:int -> ?signal_max:int -> seed:int -> unit ->
  perturbation
(** Perturbation with small bounded defaults (2/3/2 cycles). *)

(** Lossy-ring fault schedule: per-mille per-link-send rates for the four
    message-level classes plus an optional fail-stop event.  Faults
    attack wire copies only; the recovery protocol (per-hop sequence
    numbers, payload checksums, go-back-N retransmission with cumulative
    acks and exponential backoff) delivers the identical message sequence
    to every node, so any plan perturbs timing but never architectural
    results — fail-stop excepted, which the executor handles by
    reknitting or falling back. *)
type fault_plan = {
  fl_seed : int;
  fl_drop : int;     (** per-mille probability per link send *)
  fl_dup : int;
  fl_reorder : int;
  fl_corrupt : int;
  fl_fail_stop : (int * int) option;  (** [(node, cycle)]: core dies *)
}

val faulty :
  ?drop:int -> ?dup:int -> ?reorder:int -> ?corrupt:int ->
  ?fail_stop:int * int -> seed:int -> unit -> fault_plan
(** Rates clamp to [0..1000] per mille; all default to 0. *)

val fault_plan_of_string : string -> (fault_plan, string) result
(** Parse a spec like ["seed=42,drop=5,dup=3,reorder=2,corrupt=1,kill=3@50000"]
    (comma-separated [key=value]; rates per mille; [kill=NODE@CYCLE]). *)

val fault_plan_to_string : fault_plan -> string
(** Round-trips through {!fault_plan_of_string}; zero rates omitted. *)

type config = {
  n_nodes : int;
  link_latency : int;        (** cycles per hop *)
  data_bandwidth : int;      (** data messages per link per cycle *)
  signal_bandwidth : int;    (** signal messages per link per cycle *)
  injection_latency : int;   (** core to ring-node *)
  array_size_words : int;    (** per-node array; [max_int] = unbounded *)
  array_assoc : int;
  array_line_words : int;    (** 1 word: no false sharing *)
  link_capacity : int;       (** per-link buffering (credits) *)
  inject_capacity : int;
  greedy_sig_inject : bool;  (** ablation: signal wires inject with
                                 leftover bandwidth *)
  flush_invalidates : bool;  (** ablation: flush drops clean copies *)
  perturb : perturbation option;  (** seeded delay jitter (lossless) *)
  faults : fault_plan option;     (** seeded lossy-ring fault schedule *)
}

val default_config : n_nodes:int -> config
(** The paper's default: 1-cycle links, 1-word data / 5-signal bandwidth,
    2-cycle injection, 1KB 8-way single-word-line arrays, no perturbation
    and no faults. *)

(** Callbacks into the rest of the memory system. *)
type env = {
  backing_load : int -> int;
  backing_store : int -> int -> unit;
  owner_l1_latency : core:int -> cycle:int -> write:bool -> addr:int -> int;
}

type t

val create : ?trace:Helix_obs.Trace.t -> config -> env -> t
(** [?trace] enables structured event tracing (injections, blocked
    injections, lockstep holds, back-pressure stalls) into the given
    ring buffer; omitted, the hot paths pay one branch per event
    site. *)

(** {1 Core-facing operations} *)

val try_store : t -> node:int -> addr:int -> value:int -> cycle:int -> bool
(** Inject a store.  [false] = injection queue full, retry next cycle.
    The value is locally visible immediately; remote nodes see it when
    the message arrives. *)

val try_signal : t -> node:int -> seg:int -> cycle:int -> bool

val load : t -> node:int -> addr:int -> cycle:int -> int * int
(** [(value, latency)].  Hits read the local array (possibly stale — the
    wait protocol's job); misses take a full-lap round trip through the
    owner node's L1 path and return the authoritative value. *)

val signals_satisfied :
  t -> node:int -> seg:int -> origin:int -> threshold:int -> bool

val signals_received : t -> node:int -> seg:int -> origin:int -> int
(** Pure diagnostic query: how many signals has [node] received for
    [(seg, origin)]?  Unlike {!signals_satisfied} it never touches the
    consumed-threshold accounting, so report code can probe freely. *)

val max_outstanding_signals : t -> int
(** For asserting the compiler's ≤2 in-flight-signals bound. *)

(** {1 Clocking and maintenance} *)

val tick : t -> cycle:int -> unit
(** Advance the network one cycle: deliver arrived messages (with a fault
    plan active, validating checksums and per-hop sequence numbers and
    discarding corrupt/duplicate/out-of-order copies), learn acks and
    fire expired retransmission timers, then forward with priority over
    injection (strictly on the data wires) and inject.  Fail-stopped
    nodes act as repeaters: they forward and retire but never apply. *)

val kill_node : t -> node:int -> cycle:int -> int * int
(** Fail-stop [node]'s core and reknit the ring around it (the node
    degrades to a repeater; in-flight traffic still transits and
    retires).  Returns [(lost_data, lost_sig)] — injection-queue messages
    that died with the core and left the in-flight accounting.  Nonzero
    losses mean the current invocation's wait/signal contract may be
    broken and the caller must fall back.  Idempotent. *)

val node_dead : t -> node:int -> bool
val dead_nodes : t -> int

val next_event : t -> now:int -> int option
(** Event-engine contract: [Some c] (c >= now) promises that ticking the
    network strictly before cycle [c] is a no-op; [Some now] means the
    network is (or may be) active this cycle; [None] means it is fully
    drained and only a new injection can create work.  The bound is
    hierarchical: each node publishes a local "empty until c" (stall
    release, injection readiness, lockstep-held heads deferred to the
    data events that release them) and the ring-wide promise is the
    roll-up minimum, together with link-head arrival cycles.  With a
    fault plan active, retransmission deadlines and pending-ack learn
    cycles are wake sources too (even when nothing is logically in
    flight), so recovery timers participate in idle-cycle skipping
    instead of requiring per-cycle polling. *)

val tick_changed : t -> bool
(** Did the last {!tick} move or retire any message?  Used by the heap
    engine's re-poll protocol; a [false] guarantees the promise returned
    by the previous {!next_event} still stands (absent new
    injections). *)

val drained : t -> bool
(** No message in flight anywhere.  O(1): maintained incrementally from
    injection acceptance to retirement. *)

val data_drained : t -> bool
(** The data class is empty (links, buffers, injection queues).  O(1). *)

val invalidate_addr : t -> int -> unit
(** Serial-phase stores to ring-resident addresses must drop every stale
    copy. *)

val flush : t -> cycle:int -> int
(** End-of-loop distributed fence: write dirty values back, reset
    synchronization state, keep clean copies (unless
    [flush_invalidates]).  Returns the latency to charge. *)

val abort : t -> unit
(** Abandon the current invocation {e without} write-back: discard the
    authoritative loop image, all in-flight traffic, signal accounting
    and cached copies.  Used by the executor's rollback path before it
    re-executes the invocation sequentially from the loop-entry memory
    checkpoint. *)

(** {1 Statistics (Figures 4b/4c and sensitivity)} *)

val dist_histogram : t -> int array
val consumers_histogram : t -> int array
val ring_hit_rate : t -> float

(** {1 Recovery-protocol counters} *)

val retransmits : t -> int
val drops_detected : t -> int
val dups_detected : t -> int
val corrupts_detected : t -> int
val faults_injected : t -> int
val reknits : t -> int

val inflight_counts : t -> int * int
(** [(inflight_data, inflight_sig)]: the O(1) per-class quiescence
    roll-up, exposed for diagnostics. *)

val describe : t -> string
(** Complete diagnostic dump: the per-class in-flight roll-up and fault
    counters first, then {e every} node's sigbuf, queue occupancy and
    lockstep state (dead nodes marked), plus every occupied link. *)

val snapshot : t -> Helix_obs.Json.t
(** Structured form of {!describe} for machine-readable stuck reports. *)

val export_metrics : t -> Helix_obs.Metrics.t -> unit
(** Publish the ring's counters and histograms under ["ring."]. *)
