open Helix_ir
open Helix_machine

(** Per-core functional execution engine: executes IR eagerly (registers
    and private memory are core-local, so early evaluation is safe) and
    yields one timed uop per retired instruction through a pull
    interface.  Shared-world semantics cannot run early: a load inside a
    sequential segment blocks the context until the core model fires its
    sink at the timed issue point.  Segment membership is decided exactly
    as in the paper's hardware: by counting executed wait and signal
    instructions. *)

type parallel_trigger = { p_func : string; p_header : Ir.label }

type status =
  | Running
  | Blocked                       (** awaiting a shared load's sink *)
  | Suspended of parallel_trigger (** serial core at a parallel header *)
  | Finished of int option

type frame = {
  func : Ir.func;
  regs : int array;
  mutable block : Ir.label;
  mutable index : int;
  mutable entered : bool;
  dst_in_caller : Ir.reg option;
}

type t = {
  prog : Ir.program;
  mem : Memory.t;
  core_id : int;
  mutable frames : frame list;
  mutable status : status;
  mutable wait_depth : int;
  mutable seg_stack : int list;  (** open segments, innermost first *)
  mutable rand_seed : int;
  mutable retired : int;
  trigger : (string -> Ir.label -> bool) option;
  mutable on_mem : (seg:int option -> addr:int -> write:bool -> unit) option;
}

val create :
  ?trigger:(string -> Ir.label -> bool) option ->
  Ir.program -> Memory.t -> core_id:int -> t
(** [trigger] fires on block entry in the outermost frame; when it
    returns true the context suspends (the serial core reached a
    selected parallel-loop header). *)

val start : t -> string -> int list -> unit
(** Begin executing [fname args]; discards any previous call. *)

val status : t -> status
val wait_depth : t -> int

val set_mem_hook :
  t -> (seg:int option -> addr:int -> write:bool -> unit) option -> unit
(** Dependence-sanitizer tap: called for every IR-level [Load]/[Store]
    with the innermost open segment (or [None] outside any wait..signal
    window).  Libcall-internal reads (strcmp/memchr) are not reported —
    they are private-world accesses by construction. *)

val current_segment : t -> int option
(** Innermost open segment of the executing context, if any. *)

val reg_value : t -> Ir.reg -> int
(** Current frame's register, e.g. to evaluate parallel-loop parameters
    at loop entry. *)

val set_reg : t -> Ir.reg -> int -> unit
val operand_value : t -> Ir.operand -> int

val jump_to : t -> Ir.label -> unit
(** Resume the current frame at [block] (the executor finishing a
    parallel loop sends the serial core to the loop exit). *)

val step : t -> Uop.t option
(** Execute at most one instruction; [None] with status [Running] means
    progress without a timed uop (an unconditional jump). *)

val next_uop : t -> Uop.t option
(** Pull the next uop, advancing as needed; [None] when blocked,
    suspended or finished. *)
