open Helix_ir
open Helix_machine

(* Per-core functional execution engine.

   A context executes IR eagerly -- registers and private memory are
   core-local, so early evaluation is safe -- and exposes a pull interface
   ([next_uop]) that yields one timed uop per retired instruction.  The
   timing model consumes uops at simulated speed; because the interface is
   pull-based, eager execution never runs ahead of the core model by more
   than its decode capacity.

   Shared-world semantics cannot run early: a load inside a sequential
   segment gets its value at its timed issue point, so the context blocks
   ([Blocked]) until the core model fires the uop's sink.  Stores and
   signals carry their payload in the uop and let execution continue.

   Whether an access is shared is decided exactly as in the paper's
   hardware (Section 3.1): the context counts executed wait and signal
   instructions; memory operations at positive depth go to the shared
   world. *)

(* Minimal view of a parallel-loop trigger; the executor keeps the full
   metadata keyed by (function, header). *)
type parallel_trigger = { p_func : string; p_header : Ir.label }

type status =
  | Running
  | Blocked                      (* waiting for a shared load's sink *)
  | Suspended of parallel_trigger (* serial core reached a parallel header *)
  | Finished of int option

and frame = {
  func : Ir.func;
  regs : int array;
  mutable block : Ir.label;
  mutable index : int;           (* next instruction within the block *)
  mutable entered : bool;        (* block-entry hook already fired *)
  dst_in_caller : Ir.reg option; (* where the caller wants our result *)
}

type t = {
  prog : Ir.program;
  mem : Memory.t;
  core_id : int;
  mutable frames : frame list;   (* innermost first *)
  mutable status : status;
  mutable wait_depth : int;
  mutable seg_stack : int list;  (* open segments, innermost first *)
  mutable rand_seed : int;
  mutable retired : int;
  (* serial-mode trigger: does (func, header) start a parallel loop? *)
  trigger : (string -> Ir.label -> bool) option;
  (* dependence-sanitizer tap: observes every IR-level memory access with
     the segment (if any) it executes under.  Accesses internal to
     libcalls (strcmp/memchr) are not reported -- they are private-world
     reads by construction. *)
  mutable on_mem : (seg:int option -> addr:int -> write:bool -> unit) option;
}

let create ?(trigger = None) prog mem ~core_id =
  {
    prog;
    mem;
    core_id;
    frames = [];
    status = Finished None;
    wait_depth = 0;
    seg_stack = [];
    rand_seed = 0x12345;
    retired = 0;
    trigger;
    on_mem = None;
  }

let frame_of func args dst_in_caller =
  let regs = Array.make (max 1 func.Ir.f_next_reg) 0 in
  List.iteri
    (fun i p -> if i < List.length args then regs.(p) <- List.nth args i)
    func.Ir.f_params;
  { func; regs; block = func.Ir.f_entry; index = 0; entered = false;
    dst_in_caller }

(* Start executing [fname args]; any previous call is discarded. *)
let start t fname args =
  let f = Ir.find_func t.prog fname in
  t.frames <- [ frame_of f args None ];
  t.status <- Running;
  t.wait_depth <- 0;
  t.seg_stack <- []

let set_mem_hook t hook = t.on_mem <- hook

(* Innermost open segment, [None] outside any wait..signal window. *)
let current_segment t =
  match t.seg_stack with s :: _ -> Some s | [] -> None

let observe_mem t ~addr ~write =
  match t.on_mem with
  | None -> ()
  | Some f -> f ~seg:(current_segment t) ~addr ~write

let status t = t.status
let wait_depth t = t.wait_depth

let current_frame t =
  match t.frames with
  | f :: _ -> f
  | [] -> invalid_arg "Context: no frame"

(* Read a register of the outermost (serial) frame, e.g. to evaluate
   parallel-loop parameters at loop entry. *)
let reg_value t r = (current_frame t).regs.(r)

let set_reg t r v = (current_frame t).regs.(r) <- v

let operand_value t (o : Ir.operand) =
  match o with Ir.Imm i -> i | Ir.Reg r -> reg_value t r

(* Force the current frame to resume at [block] (used when the executor
   finishes a parallel loop and the serial core continues at its exit). *)
let jump_to t block =
  let fr = current_frame t in
  fr.block <- block;
  fr.index <- 0;
  fr.entered <- true;
  (* a suspended serial context becomes runnable again *)
  (match t.status with Suspended _ -> t.status <- Running | _ -> ());
  t.wait_depth <- 0;
  t.seg_stack <- []

let token frame_depth r = ((frame_depth land 3) lsl 16) lor (r land 0xffff)

let lib_latency = function
  | Ir.Lc_abs | Ir.Lc_min | Ir.Lc_max -> 1
  | Ir.Lc_hash | Ir.Lc_log2 -> 3
  | Ir.Lc_isqrt -> 12
  | Ir.Lc_rand -> 4
  | Ir.Lc_strcmp | Ir.Lc_memchr -> 6

let lib_eval t lc args =
  let arg i = try List.nth args i with _ -> 0 in
  match lc with
  | Ir.Lc_abs -> abs (arg 0)
  | Ir.Lc_min -> min (arg 0) (arg 1)
  | Ir.Lc_max -> max (arg 0) (arg 1)
  | Ir.Lc_hash -> Interp.mix_hash (arg 0)
  | Ir.Lc_log2 -> Interp.ilog2 (arg 0)
  | Ir.Lc_isqrt -> Interp.isqrt (arg 0)
  | Ir.Lc_rand ->
      t.rand_seed <-
        ((t.rand_seed * 2862933555777941757) + 3037000493) land max_int;
      (t.rand_seed lsr 16) land 0x3fffffff
  | Ir.Lc_strcmp ->
      let a = arg 0 and b = arg 1 and len = min (arg 2) 64 in
      let rec go i =
        if i >= len then 0
        else
          let va = Memory.load t.mem (a + i)
          and vb = Memory.load t.mem (b + i) in
          if va <> vb then compare va vb else go (i + 1)
      in
      go 0
  | Ir.Lc_memchr ->
      let base = arg 0 and needle = arg 1 and len = min (arg 2) 256 in
      let rec go i =
        if i >= len then -1
        else if Memory.load t.mem (base + i) = needle then i
        else go (i + 1)
      in
      go 0

(* Execute at most one instruction; return the uop it produced, if any.
   [None] with status Running means "made progress without a timed uop"
   (e.g. an unconditional jump): the caller loops. *)
let step (t : t) : Uop.t option =
  match t.status with
  | Blocked | Finished _ | Suspended _ -> None
  | Running -> (
      match t.frames with
      | [] ->
          t.status <- Finished None;
          None
      | fr :: outer_frames -> (
          let depth = List.length t.frames in
          let value = function
            | Ir.Imm i -> i
            | Ir.Reg r -> fr.regs.(r)
          in
          let addr_of (a : Ir.addr) = value a.Ir.base + value a.Ir.offset in
          (* block-entry hook: parallel-loop trigger on the serial core *)
          if (not fr.entered) && fr.index = 0 then begin
            fr.entered <- true;
            match t.trigger with
            | Some tr when tr fr.func.Ir.f_name fr.block ->
                t.status <-
                  Suspended { p_func = fr.func.Ir.f_name; p_header = fr.block }
            | _ -> ()
          end;
          match t.status with
          | Suspended _ -> None
          | _ ->
              let b = Ir.block_of_func fr.func fr.block in
              let n = List.length b.Ir.b_instrs in
              if fr.index < n then begin
                let ins = List.nth b.Ir.b_instrs fr.index in
                fr.index <- fr.index + 1;
                t.retired <- t.retired + 1;
                let srcs =
                  List.map (token depth) (Ir.uses_of_instr ins)
                in
                match ins with
                | Ir.Binop (r, op, a, b') ->
                    let lat =
                      match op with
                      | Ir.Mul -> 3
                      | Ir.Div | Ir.Rem -> 20
                      | _ -> 1
                    in
                    fr.regs.(r) <- Interp.eval_binop op (value a) (value b');
                    Some (Uop.mk ~srcs ~dst:(token depth r) (Uop.Alu lat))
                | Ir.Unop (r, op, a) ->
                    fr.regs.(r) <- Interp.eval_unop op (value a);
                    Some (Uop.mk ~srcs ~dst:(token depth r) (Uop.Alu 1))
                | Ir.Mov (r, a) ->
                    fr.regs.(r) <- value a;
                    Some (Uop.mk ~srcs ~dst:(token depth r) (Uop.Alu 1))
                | Ir.Load (r, ad) ->
                    let a = addr_of ad in
                    observe_mem t ~addr:a ~write:false;
                    if t.wait_depth > 0 then begin
                      (* shared load: value arrives via the sink *)
                      t.status <- Blocked;
                      let sink v =
                        fr.regs.(r) <- v;
                        t.status <- Running
                      in
                      Some
                        (Uop.mk ~srcs ~dst:(token depth r) ~sink
                           (Uop.Shared (Uop.S_load a)))
                    end
                    else begin
                      fr.regs.(r) <- Memory.load t.mem a;
                      Some
                        (Uop.mk ~srcs ~dst:(token depth r) (Uop.Load_priv a))
                    end
                | Ir.Store (ad, v) ->
                    let a = addr_of ad in
                    let v = value v in
                    observe_mem t ~addr:a ~write:true;
                    if t.wait_depth > 0 then
                      Some (Uop.mk ~srcs (Uop.Shared (Uop.S_store (a, v))))
                    else begin
                      Memory.store t.mem a v;
                      Some (Uop.mk ~srcs (Uop.Store_priv a))
                    end
                | Ir.Call (dst, callee, args) ->
                    let cf = Ir.find_func t.prog callee in
                    let argv = List.map value args in
                    t.frames <- frame_of cf argv dst :: t.frames;
                    (* charge call/return overhead as a short ALU op *)
                    Some (Uop.mk ~srcs (Uop.Alu 2))
                | Ir.Libcall (r, lc, args) ->
                    fr.regs.(r) <- lib_eval t lc (List.map value args);
                    Some
                      (Uop.mk ~srcs ~dst:(token depth r)
                         (Uop.Alu (lib_latency lc)))
                | Ir.Wait seg ->
                    t.wait_depth <- t.wait_depth + 1;
                    t.seg_stack <- seg :: t.seg_stack;
                    Some (Uop.mk (Uop.Shared (Uop.S_wait seg)))
                | Ir.Signal seg ->
                    t.wait_depth <- max 0 (t.wait_depth - 1);
                    (* close the matching segment; tolerate unbalanced
                       (mis-compiled) code by popping the head instead *)
                    (t.seg_stack <-
                       (let rec remove = function
                          | [] -> []
                          | s :: rest when s = seg -> rest
                          | s :: rest -> s :: remove rest
                        in
                        if List.mem seg t.seg_stack then remove t.seg_stack
                        else match t.seg_stack with _ :: r -> r | [] -> []));
                    Some (Uop.mk (Uop.Shared (Uop.S_signal seg)))
                | Ir.Flush -> Some (Uop.mk (Uop.Shared Uop.S_flush))
                | Ir.Nop -> Some (Uop.mk (Uop.Alu 1))
              end
              else begin
                (* terminator *)
                match b.Ir.b_term with
                | Ir.Jmp l ->
                    fr.block <- l;
                    fr.index <- 0;
                    fr.entered <- false;
                    None
                | Ir.Br (c, l1, l2) ->
                    let taken = value c <> 0 in
                    let tgt = if taken then l1 else l2 in
                    let static_id =
                      Hashtbl.hash (fr.func.Ir.f_name, fr.block)
                    in
                    fr.block <- tgt;
                    fr.index <- 0;
                    fr.entered <- false;
                    t.retired <- t.retired + 1;
                    Some
                      (Uop.mk
                         ~srcs:(List.map (token depth) (Ir.regs_of_operand c))
                         (Uop.Branch { taken; static_id }))
                | Ir.Ret o ->
                    let rv = Option.map value o in
                    t.frames <- outer_frames;
                    (match (outer_frames, fr.dst_in_caller, rv) with
                    | caller :: _, Some d, Some v -> caller.regs.(d) <- v
                    | caller :: _, Some d, None -> caller.regs.(d) <- 0
                    | _ -> ());
                    if outer_frames = [] then t.status <- Finished rv;
                    None
              end))

(* Pull the next uop, advancing the context as needed. *)
let rec next_uop t =
  match t.status with
  | Blocked | Finished _ | Suspended _ -> None
  | Running -> ( match step t with Some u -> Some u | None ->
      (match t.status with Running -> next_uop t | _ -> None))
