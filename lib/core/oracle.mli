open Helix_ir
open Helix_hcc

(** Differential oracle: shadow-execute one parallel-loop invocation
    sequentially through {!Helix_ir.Interp} — same generated body
    function, same runtime-cell protocol, iterations in order — and
    return the architectural effect (memory is mutated in place, live-out
    registers and trip count are returned) for comparison against the
    parallel run.  Also the engine behind the executor's sequential
    fallback: run it on the restored loop-entry checkpoint and adopt the
    results. *)

exception Replay_stuck of string
(** The shadow itself failed (out of fuel, runtime error, or a
    conditional loop exceeding the iteration cap). *)

type entry = {
  en_pl : Parallel_loop.t;
  en_trip : int option;  (** [None]: conditional loop, replay until stop *)
  en_params : int list;
  en_ivs : (Parallel_loop.iv_info * int * int * int) list;
      (** (info, r0, s0, step_value) entry values *)
  en_reds : (Parallel_loop.reduction * int) list;
  en_lvs : (Parallel_loop.lastval * int) list;
  en_srs : (Parallel_loop.shared_reg * int) list;
  en_n : int;            (** core count — the runtime cell-slot count *)
}

type replay = {
  rp_executed : int;              (** iterations that continued *)
  rp_regs : (Ir.reg * int) list;  (** live-out register values *)
  rp_dyn_instrs : int;            (** interpreter work, for timing charges *)
}

val replay : Ir.program -> entry -> Memory.t -> replay
(** Mutates [mem] from the loop-entry image to the sequential exit image
    (runtime cells initialized, iterations applied, scratch cleared). *)
