open Helix_ir
open Helix_machine
open Helix_ring
open Helix_hcc
module Engine = Helix_engine.Engine
module Trace = Helix_obs.Trace
module Metrics = Helix_obs.Metrics
module Json = Helix_obs.Json

(* The HELIX-RC executor: a cycle-stepped simulation of a multicore
   running a compiled program.

   Serial phase: core 0 executes the program through its context; all
   other cores idle.  When the serial context reaches the header of a
   selected parallel loop, the executor suspends it, spawns one worker
   context per core (successive iterations round-robin over cores,
   forming the logical ring), and enters the parallel phase.  When every
   iteration has completed and the ring has drained, the ring cache is
   flushed, sequential register state is reconstructed (induction
   variables from closed forms, reductions from per-core partials,
   last-value variables from stamped cells, demoted registers from their
   shared cells), and the serial context resumes at the loop exit.

   Communication routing reproduces the paper's decoupling matrix
   (Figure 8): memory accesses inside sequential segments go to the ring
   cache or to the coherent conventional hierarchy depending on
   [comm_mode]; synchronization uses proactively-broadcast ring signals
   (a wait completes when *all* other cores' signals have arrived) or the
   conventional chained scheme (a wait polls only its ring predecessor's
   signal, which becomes visible one cache-to-cache latency after it is
   stored). *)

type comm_mode = {
  reg_via_ring : bool;  (* demoted-register cells through the ring *)
  mem_via_ring : bool;  (* program shared memory through the ring *)
  sync_via_ring : bool; (* decoupled signals *)
}

let fully_decoupled =
  { reg_via_ring = true; mem_via_ring = true; sync_via_ring = true }

let fully_coupled =
  { reg_via_ring = false; mem_via_ring = false; sync_via_ring = false }

(* Robustness layer (ISSUE 2).  All checks default off: they cost a
   memory checkpoint per invocation plus per-access sanitizer work, and
   the baseline performance experiments must not pay for them. *)
type robustness = {
  check_oracle : bool;  (* shadow-execute each invocation sequentially *)
  sanitize : bool;      (* dynamic dependence + signal-bound checks *)
  fallback : bool;      (* roll back + re-execute sequentially on trouble *)
  strict : bool;        (* violations raise [Stuck Violation] instead *)
}

let no_robustness =
  { check_oracle = false; sanitize = false; fallback = false; strict = false }

let checked =
  { check_oracle = true; sanitize = true; fallback = true; strict = false }

type config = {
  mach : Mach_config.t;
  ring_cfg : Ring.config option;
  comm : comm_mode;
  setup_latency : int;
  fuel : int;
  watchdog_cycles : int;
      (* cycles without a single retirement before declaring the run
         stuck; tests lower it to exercise the deadlock report *)
  trace : Trace.t option;
  robust : robustness;
  engine : Engine.kind;
}

(* The heap engine is the default: its results are bit-identical to
   the legacy per-cycle loop (asserted by the differential test suite
   for all three kinds), it just elides the most dead cycles.
   HELIX_ENGINE=legacy|event flips every run back for A/B comparison
   without touching call sites. *)
let default_engine =
  match Sys.getenv_opt "HELIX_ENGINE" with
  | Some s -> (
      match Engine.kind_of_string (String.lowercase_ascii (String.trim s)) with
      | Some k -> k
      | None -> Engine.Heap)
  | None -> Engine.Heap

let default_config ?(ring = true) ?(comm = fully_decoupled) ?trace
    ?(robust = no_robustness) ?(engine = default_engine) mach =
  {
    mach;
    ring_cfg =
      (if ring then Some (Ring.default_config ~n_nodes:mach.Mach_config.n_cores)
       else None);
    comm;
    setup_latency = 10;
    fuel = 400_000_000;
    watchdog_cycles = 2_000_000;
    trace;
    robust;
    engine;
  }

type invocation_record = {
  inv_loop : int;          (* Parallel_loop id *)
  inv_trip : int;          (* executed iterations *)
  inv_cycles : int;        (* wall duration of the phase *)
}

type result = {
  r_cycles : int;
  r_ret : int option;
  r_mem : Memory.t;
  r_core_stats : Stats.t array;
  r_retired : int;
  r_invocations : invocation_record list;
  r_serial_cycles : int;
  r_parallel_cycles : int;
  r_ring_dist_hist : int array;       (* Figure 4b *)
  r_ring_consumers_hist : int array;  (* Figure 4c *)
  r_max_outstanding_signals : int;
  r_ring_hit_rate : float;
  r_fallbacks : int;    (* invocations re-executed sequentially *)
  r_violations : int;   (* robustness checks tripped *)
  r_metrics : Metrics.t;
      (* every component's counters, published under dotted names
         under the ring./core.<i>./cores./hier./exec. prefixes *)
}

(* Why a run died: [Fuel] is the cycle/trip budget, [Deadlock] the
   no-retirement watchdog, [Violation] a robustness check under
   [strict] (or one the fallback machinery could not recover from),
   [Faulted] an injected fail-stop the machine could neither reknit
   around nor fall back from (core 0 died, or no checkpoint/fallback
   was available mid-invocation). *)
type stuck_reason = Fuel | Deadlock | Violation | Faulted

let stuck_reason_name = function
  | Fuel -> "fuel"
  | Deadlock -> "deadlock"
  | Violation -> "violation"
  | Faulted -> "fault"

exception Stuck of stuck_reason * string

(* ------------------------------------------------------------------ *)

type worker = {
  w_core : int;
  w_ctx : Context.t;
  mutable w_local_iter : int;     (* iterations started on this core *)
  mutable w_running_iter : bool;  (* an iteration awaits completion accounting *)
}

type par_state = {
  ps_pl : Parallel_loop.t;
  ps_trip : int option; (* None: conditional, gated starts *)
  ps_params : int list;
  ps_iv_entry : (Parallel_loop.iv_info * int * int * int) list;
      (* (info, r0, s0, step_value) *)
  ps_red_entry : (Parallel_loop.reduction * int) list;
  ps_lv_entry : (Parallel_loop.lastval * int) list;
  ps_sr_entry : (Parallel_loop.shared_reg * int) list;
  mutable ps_started : int;
  mutable ps_finished : int;
  mutable ps_executed : int; (* iterations that returned continue=1 *)
  mutable ps_contig : int;   (* contiguous continue=1 prefix length *)
  mutable ps_stopped : bool; (* some iteration returned 0 *)
  ps_start_cycle : int;      (* workers may not start before this *)
  ps_entry_cycle : int;
  ps_checkpoint : Memory.t option;
      (* loop-entry memory image (taken before runtime-cell init) when
         the oracle or the fallback machinery needs a rollback point *)
}

type phase = Serial | Parallel of par_state

type t = {
  cfg : config;
  compiled : Hcc.compiled option;
  prog : Ir.program;
  mem : Memory.t;
  n : int;
  hier : Hierarchy.t;
  ring : Ring.t option;
  serial_ctx : Context.t;
  workers : worker option array;
  mutable cores : Core.t array;
  mutable phase : phase;
  now : int ref;
  mutable serial_stall_until : int;
  mutable invocations : invocation_record list;
  mutable serial_cycles : int;
  mutable parallel_cycles : int;
  mutable done_ : bool;
  mutable ret : int option;
  mutable max_outstanding : int;
  (* watchdog state: the monotonic [total_retired] counter is bumped by
     every core at retirement time (via [Stats.retire]), replacing the
     per-cycle fold over all cores' stats *)
  total_retired : int ref;
  mutable last_progress : int;
  mutable last_retired : int;
  (* event-engine state: upcoming conventional-signal visibility cycles
     (monotone FIFO; only fed when signals bypass the ring) and the
     scheduler-visible iteration-scheduling signature of the previous
     cycle, to veto fast-forwarding across a supply-unblocking change *)
  conv_vis : int Queue.t;
  mutable sched_sig : bool * int * int * int * int * bool * int;
  mutable sched_changed : bool;
  (* conventional signalling: (seg, origin) -> store cycles, in order *)
  conv_signals : (int * int, int list ref) Hashtbl.t;
  (* addresses of demoted-register cells, for routing *)
  reg_cells : (int, unit) Hashtbl.t;
  (* robustness state *)
  depcheck : Depcheck.t;
  mutable mk_core : int -> Core.t;   (* for rebuilding cores on fallback *)
  mutable extra_stats : Stats.t list; (* stats of cores discarded by fallback *)
  mutable fallbacks : int;
  mutable violations : int;
  (* heap-engine plumbing: poke the ring component's wake-up when a core
     injects a message (its cached promise may be "drained"), and flag
     any shared-world operation so serial-phase interpret-ahead stops
     the moment the batch is no longer provably ring-silent *)
  mutable wake_ring : at:int -> unit;
  mutable shared_poke : bool;
  (* fail-stop state.  The compiled code bakes the lane count into the
     iteration space: per-core privatization slots are [iter mod n]
     (reduction partials, last-value stamps), so a reknit must keep the
     modulus and the lane->slot mapping intact.  [owned.(c)] is the
     sorted list of lanes core [c] currently executes: initially [[c]];
     a dead core's lanes are adopted round-robin by the survivors
     (balanced, lowest-loaded first), so each lane -- and hence each
     privatization slot -- still has exactly one owner and the
     wait/signal contract is preserved with recomputed thresholds.
     While everyone lives the formulas below reduce bit-for-bit to the
     fixed-n round robin.  [pending_death] is the fault plan's
     scheduled fail-stop, consumed by the scheduler at its cycle. *)
  alive : bool array;
  owned : int list array;
  mutable n_active : int;
  mutable pending_death : (int * int) option;  (* (node, cycle) *)
}

(* Global iteration for core [c]'s [k]-th local iteration: lanes repeat
   every [t.n] iterations, so with [m] owned lanes the worker sweeps its
   sorted lane list once per block of [t.n].  Reduces to [k * n + c]
   when [owned.(c) = [c]]. *)
let iter_of_local t ~core ~local_iter =
  let lanes = t.owned.(core) in
  let m = List.length lanes in
  (t.n * (local_iter / m)) + List.nth lanes (local_iter mod m)

(* How many of core [c']'s iterations precede global iteration [g]:
   whole blocks contribute all of its lanes, the partial block the lanes
   below [g mod n].  This is the signal threshold [g]'s segments must
   wait for from origin [c']. *)
let iters_before t ~core:c' ~iter:g =
  let q = g / t.n and r = g mod t.n in
  (List.length t.owned.(c') * q)
  + List.length (List.filter (fun l -> l < r) t.owned.(c'))

let find_loop t ~func ~header =
  match t.compiled with
  | None -> None
  | Some c -> Hcc.find_parallel_loop c ~func ~header

let trace_invocations =
  match Sys.getenv_opt "HELIX_TRACE_INV" with
  | Some s -> (try int_of_string s with _ -> 0)
  | None -> 0

let traced = ref 0

(* ---- conventional chained signalling ---- *)

let conv_signal_record t ~seg ~origin ~cycle =
  let key = (seg, origin) in
  let cell =
    match Hashtbl.find_opt t.conv_signals key with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace t.conv_signals key l;
        l
  in
  cell := cycle :: !cell (* newest first *);
  (* publish the cycle at which this signal becomes visible to waiters,
     for the event engine: a fast-forward must not cross it.  Record
     cycles are nondecreasing, so the queue stays sorted. *)
  Queue.add (cycle + (2 * t.cfg.mach.Mach_config.mem.Mach_config.c2c_latency))
    t.conv_vis

(* Is the [threshold]-th (1-based) signal visible at [cycle], given the
   cache-to-cache visibility latency? *)
let conv_signal_visible t ~seg ~origin ~threshold ~cycle =
  if threshold <= 0 then true
  else
    match Hashtbl.find_opt t.conv_signals (seg, origin) with
    | None -> false
    | Some l ->
        let times = List.rev !l in
        List.length times >= threshold
        && List.nth times (threshold - 1)
           (* serialized signal request + transmission (Section 3.2) *)
           + (2 * t.cfg.mach.Mach_config.mem.Mach_config.c2c_latency)
           <= cycle

(* ---- shared-world callback for core [c] ---- *)

let route_via_ring t addr =
  match t.ring with
  | None -> false
  | Some _ ->
      if Hashtbl.mem t.reg_cells addr then t.cfg.comm.reg_via_ring
      else t.cfg.comm.mem_via_ring

let wait_thresholds t ~core ~local_iter =
  (* before its local iteration k (global iteration g) may enter a
     sequential segment, core [core] needs from every other live core
     exactly as many signals as that core has iterations preceding g.
     A dead core neither signals nor is waited on; its adopted lanes
     count toward the adopter.  While everyone lives this is the
     classic k / k+1 split around the core id. *)
  let g = iter_of_local t ~core ~local_iter in
  List.init t.n (fun c' ->
      if c' = core || not t.alive.(c') then None
      else Some (c', iters_before t ~core:c' ~iter:g))
  |> List.filter_map Fun.id

let shared_op t ~core ~cycle ~tag (op : Uop.shared_op) : Uop.shared_outcome =
  t.shared_poke <- true;
  let c2c = t.cfg.mach.Mach_config.mem.Mach_config.c2c_latency in
  (* the uop's stamped iteration, NOT the worker's current counter: an
     out-of-order window may still hold a previous iteration's wait after
     the eager context has started the next assigned iteration *)
  let local_iter = max 0 tag in
  match op with
  | Uop.S_wait seg ->
      let satisfied =
        if t.cfg.comm.sync_via_ring then begin
          match t.ring with
          | Some ring ->
              List.for_all
                (fun (origin, threshold) ->
                  Ring.signals_satisfied ring ~node:core ~seg ~origin
                    ~threshold)
                (wait_thresholds t ~core ~local_iter)
          | None -> true
        end
        else
          (* lazy pull-based transmission: the same all-predecessor
             semantics, but each signal becomes visible only one
             cache-to-cache latency after it is stored -- this is what
             serializes the Figure 5b chain *)
          List.for_all
            (fun (origin, threshold) ->
              conv_signal_visible t ~seg ~origin ~threshold ~cycle)
            (wait_thresholds t ~core ~local_iter)
      in
      if satisfied then begin
        Trace.wait_complete t.cfg.trace ~cycle ~core ~seg ~iter:local_iter;
        Uop.Sh_done { latency = 1; value = 0 }
      end
      else begin
        if !traced < trace_invocations && cycle land 15 = 0 then begin
          let missing =
            List.filter
              (fun (origin, threshold) ->
                match t.ring with
                | Some ring ->
                    not
                      (Ring.signals_satisfied ring ~node:core ~seg ~origin
                         ~threshold)
                | None -> false)
              (wait_thresholds t ~core ~local_iter)
          in
          Printf.eprintf "  [trace] @%d core %d wait seg%d k=%d missing=%s\n"
            cycle core seg local_iter
            (String.concat ","
               (List.map (fun (o, th) -> Printf.sprintf "%d(th%d)" o th)
                  missing))
        end;
        Uop.Sh_retry
      end
  | Uop.S_signal seg ->
      if t.cfg.comm.sync_via_ring then begin
        match t.ring with
        | Some ring ->
            if Ring.try_signal ring ~node:core ~seg ~cycle then begin
              t.max_outstanding <-
                max t.max_outstanding (Ring.max_outstanding_signals ring);
              (* the ring may have promised "drained"; re-poll it *)
              t.wake_ring ~at:(cycle + 1);
              Uop.Sh_done { latency = 1; value = 0 }
            end
            else Uop.Sh_retry
        | None -> Uop.Sh_done { latency = 1; value = 0 }
      end
      else begin
        conv_signal_record t ~seg ~origin:core ~cycle;
        Uop.Sh_done { latency = 2; value = 0 }
      end
  | Uop.S_load addr ->
      if route_via_ring t addr then begin
        match t.ring with
        | Some ring ->
            let value, latency = Ring.load ring ~node:core ~addr ~cycle in
            if !traced < trace_invocations && latency > 10 then
              Printf.eprintf "  [trace] @%d core %d ring MISS a=%d lat=%d\n"
                cycle core addr latency;
            Uop.Sh_done { latency; value }
        | None -> assert false
      end
      else begin
        (* lazy pull-based sharing: the request and the reply each cross
           the chip, so a remote access costs two transfers on top of the
           local hierarchy *)
        let latency =
          Hierarchy.access t.hier ~core ~cycle ~write:false ~coherent:true
            addr
        in
        Uop.Sh_done
          { latency = max latency (2 * c2c); value = Memory.load t.mem addr }
      end
  | Uop.S_store (addr, v) ->
      if route_via_ring t addr then begin
        match t.ring with
        | Some ring ->
            if Ring.try_store ring ~node:core ~addr ~value:v ~cycle then begin
              t.wake_ring ~at:(cycle + 1);
              Uop.Sh_done { latency = 1; value = 0 }
            end
            else Uop.Sh_retry
        | None -> assert false
      end
      else begin
        let latency =
          Hierarchy.access t.hier ~core ~cycle ~write:true ~coherent:true addr
        in
        Memory.store t.mem addr v;
        (* ownership acquisition: invalidation round trip *)
        Uop.Sh_done { latency = max latency (2 * c2c); value = 0 }
      end
  | Uop.S_flush -> Uop.Sh_done { latency = 1; value = 0 }

(* ---- iteration scheduling ---- *)

let can_start t (ps : par_state) iter =
  !(t.now) >= ps.ps_start_cycle
  &&
  match ps.ps_trip with
  | Some trip -> iter < trip
  | None -> (not ps.ps_stopped) && iter <= ps.ps_contig

let finish_iteration ~now (ps : par_state) rv =
  if !traced < trace_invocations then
    Printf.eprintf "  [trace] @%d iter finished (fin=%d/%d)\n" now
      (ps.ps_finished + 1) ps.ps_started;
  ps.ps_finished <- ps.ps_finished + 1;
  match rv with
  | Some v when v <> 0 ->
      ps.ps_executed <- ps.ps_executed + 1;
      (* iterations finish in per-core order and conditional starts are
         gated serially, so counting the continue prefix is exact *)
      if not ps.ps_stopped then ps.ps_contig <- ps.ps_contig + 1
  | Some _ | None -> ps.ps_stopped <- true

let worker_next_uop t (ps : par_state) (w : worker) =
  let rec go () =
    match Context.status w.w_ctx with
    | Context.Running | Context.Blocked -> (
        match Context.next_uop w.w_ctx with
        | Some u ->
            u.Uop.meta <- max 0 (w.w_local_iter - 1);
            Some u
        | None -> None)
    | Context.Suspended _ -> None
    | Context.Finished rv ->
        if w.w_running_iter then begin
          w.w_running_iter <- false;
          finish_iteration ~now:!(t.now) ps rv
        end;
        (* schedule the next iteration assigned to this core: the sweep
           over its owned lanes (identical to core-id round-robin while
           every core lives) *)
        let iter = iter_of_local t ~core:w.w_core ~local_iter:w.w_local_iter in
        if can_start t ps iter then begin
          w.w_local_iter <- w.w_local_iter + 1;
          ps.ps_started <- ps.ps_started + 1;
          w.w_running_iter <- true;
          if !traced < trace_invocations then
            Printf.eprintf "  [trace] @%d core %d starts iter %d\n" !(t.now)
              w.w_core iter;
          Context.start w.w_ctx ps.ps_pl.Parallel_loop.pl_body_fn
            (iter :: ps.ps_params);
          go ()
        end
        else None
  in
  go ()

(* ---- phase transitions ---- *)

let eval_operand_in serial_ctx (o : Ir.operand) =
  Context.operand_value serial_ctx o

let compute_trip (c : Parallel_loop.counted) ~init ~step ~bound =
  let cmp v =
    match c.Parallel_loop.ccmp with
    | Ir.Lt -> v < bound
    | Ir.Le -> v <= bound
    | Ir.Gt -> v > bound
    | Ir.Ge -> v >= bound
    | Ir.Ne -> v <> bound
    | _ -> false
  in
  let rec go k v =
    if k > 100_000_000 then raise (Stuck (Fuel, "trip count exceeds fuel"))
    else if cmp v then go (k + 1) (v + (c.Parallel_loop.csign * step))
    else k
  in
  go 0 init

(* (Re)create one fresh worker per *live* core: fail-stopped cores get
   none, so their lanes' iterations are redistributed round-robin over
   the survivors by the lane-based assignment formula.  Also the
   reknit-recovery path: when a core dies before a pristine invocation
   has made any progress, respawning over the survivors restarts it
   with a consistent wait/signal contract. *)
let spawn_workers t =
  for c = 0 to t.n - 1 do
    t.workers.(c) <- None
  done;
  for c = 0 to t.n - 1 do
    if t.alive.(c) then begin
      let w =
        {
          w_core = c;
          w_ctx = Context.create t.prog t.mem ~core_id:c;
          w_local_iter = 0;
          w_running_iter = false;
        }
      in
      if t.cfg.robust.sanitize then
        Context.set_mem_hook w.w_ctx
          (Some
             (fun ~seg ~addr ~write ->
               Depcheck.record t.depcheck ~core:c
                 ~iter:(max 0 (w.w_local_iter - 1))
                 ~seg ~addr ~write));
      t.workers.(c) <- Some w
    end
  done

(* Functional bookkeeping write by the runtime itself (cell
   initialization, scratch clearing): must also invalidate ring copies. *)
let runtime_store t addr v =
  (match t.ring with Some r -> Ring.invalidate_addr r addr | None -> ());
  Memory.store t.mem addr v

let begin_parallel t (pl : Parallel_loop.t) =
  let sc = t.serial_ctx in
  let params = List.map (Context.reg_value sc) pl.Parallel_loop.pl_params in
  let iv_entry =
    List.map
      (fun (info : Parallel_loop.iv_info) ->
        let r0 = Context.reg_value sc info.Parallel_loop.ivi_reg in
        match info.Parallel_loop.ivi_form with
        | Parallel_loop.Linear { step; _ } ->
            (info, r0, 0, eval_operand_in sc step)
        | Parallel_loop.Quadratic { step_reg; step; _ } ->
            (info, r0, Context.reg_value sc step_reg,
             eval_operand_in sc step))
      pl.Parallel_loop.pl_ivs
  in
  let trip =
    match pl.Parallel_loop.pl_kind with
    | Parallel_loop.Counted c ->
        let init = Context.reg_value sc c.Parallel_loop.civ in
        let step = eval_operand_in sc c.Parallel_loop.cstep in
        let bound = eval_operand_in sc c.Parallel_loop.cbound in
        Some (compute_trip c ~init ~step ~bound)
    | Parallel_loop.Conditional -> None
  in
  if !traced < trace_invocations then
    Printf.eprintf "  [trace] @%d begin_parallel loop%d trip=%s\n" !(t.now)
      pl.Parallel_loop.pl_id
      (match trip with Some k -> string_of_int k | None -> "?");
  Trace.loop_enter t.cfg.trace ~cycle:!(t.now) ~loop:pl.Parallel_loop.pl_id
    ~trip;
  (* rollback point: the memory image before any runtime-cell writes *)
  let checkpoint =
    if t.cfg.robust.check_oracle || t.cfg.robust.fallback then
      Some (Memory.copy t.mem)
    else None
  in
  if t.cfg.robust.sanitize then Depcheck.reset t.depcheck;
  let red_entry =
    List.map
      (fun (rd : Parallel_loop.reduction) ->
        let r0 = Context.reg_value sc rd.Parallel_loop.rd_reg in
        for slot = 0 to t.n - 1 do
          runtime_store t
            (rd.Parallel_loop.rd_base + slot)
            rd.Parallel_loop.rd_identity
        done;
        (rd, r0))
      pl.Parallel_loop.pl_reductions
  in
  let lv_entry =
    List.map
      (fun (lv : Parallel_loop.lastval) ->
        let r0 = Context.reg_value sc lv.Parallel_loop.lv_reg in
        for slot = 0 to t.n - 1 do
          runtime_store t (lv.Parallel_loop.lv_iter_base + slot) 0
        done;
        (lv, r0))
      pl.Parallel_loop.pl_lastvals
  in
  let sr_entry =
    List.map
      (fun (sr : Parallel_loop.shared_reg) ->
        let r0 = Context.reg_value sc sr.Parallel_loop.sr_reg in
        runtime_store t sr.Parallel_loop.sr_addr r0;
        (sr, r0))
      pl.Parallel_loop.pl_shared_regs
  in
  Hashtbl.reset t.conv_signals;
  Queue.clear t.conv_vis;
  spawn_workers t;
  t.phase <-
    Parallel
      {
        ps_pl = pl;
        ps_trip = trip;
        ps_params = params;
        ps_iv_entry = iv_entry;
        ps_red_entry = red_entry;
        ps_lv_entry = lv_entry;
        ps_sr_entry = sr_entry;
        ps_started = 0;
        ps_finished = 0;
        ps_executed = 0;
        ps_contig = 0;
        ps_stopped = false;
        ps_start_cycle = !(t.now) + t.cfg.setup_latency;
        ps_entry_cycle = !(t.now);
        ps_checkpoint = checkpoint;
      }

let parallel_done t (ps : par_state) =
  let all_scheduled =
    match ps.ps_trip with
    | Some trip -> ps.ps_started >= trip
    | None -> ps.ps_stopped
  in
  (* data must land before the flush (node arrays stay valid across
     invocations); in-flight signals may be dropped *)
  all_scheduled
  && ps.ps_finished = ps.ps_started
  && Array.for_all Core.quiescent t.cores
  && (match t.ring with Some r -> Ring.data_drained r | None -> true)

let end_parallel_normal t (ps : par_state) =
  if !traced < trace_invocations then begin
    incr traced;
    Printf.eprintf "  [trace] @%d end_parallel (entry @%d, started %d)\n"
      !(t.now) ps.ps_entry_cycle ps.ps_started
  end;
  let pl = ps.ps_pl in
  let sc = t.serial_ctx in
  let executed = ps.ps_executed in
  (* flush the ring cache: the distributed fence at loop exit *)
  let flush_lat =
    match t.ring with
    | Some ring -> Ring.flush ring ~cycle:!(t.now)
    | None -> 0
  in
  (* reconstruct sequential register state *)
  List.iter
    (fun ((info : Parallel_loop.iv_info), r0, s0, step_value) ->
      if info.Parallel_loop.ivi_live_out then
        Context.set_reg sc info.Parallel_loop.ivi_reg
          (Parallel_loop.iv_value_at info ~r0 ~s0 ~step_value executed))
    ps.ps_iv_entry;
  List.iter
    (fun ((rd : Parallel_loop.reduction), r0) ->
      let partials =
        List.init t.n (fun slot ->
            Memory.load t.mem (rd.Parallel_loop.rd_base + slot))
      in
      if rd.Parallel_loop.rd_live_out then
        Context.set_reg sc rd.Parallel_loop.rd_reg
          (Parallel_loop.combine_reduction rd r0 partials))
    ps.ps_red_entry;
  List.iter
    (fun ((lv : Parallel_loop.lastval), r0) ->
      let best = ref (0, r0) in
      for slot = 0 to t.n - 1 do
        let stamp = Memory.load t.mem (lv.Parallel_loop.lv_iter_base + slot) in
        if stamp > fst !best then
          best :=
            (stamp, Memory.load t.mem (lv.Parallel_loop.lv_val_base + slot))
      done;
      if lv.Parallel_loop.lv_live_out then
        Context.set_reg sc lv.Parallel_loop.lv_reg (snd !best))
    ps.ps_lv_entry;
  List.iter
    (fun ((sr : Parallel_loop.shared_reg), _r0) ->
      if sr.Parallel_loop.sr_live_out then
        Context.set_reg sc sr.Parallel_loop.sr_reg
          (Memory.load t.mem sr.Parallel_loop.sr_addr))
    ps.ps_sr_entry;
  (* clear compiler scratch so the memory image matches sequential *)
  List.iter
    (fun (base, size) ->
      for a = base to base + size - 1 do
        runtime_store t a 0
      done)
    pl.Parallel_loop.pl_scratch;
  for c = 0 to t.n - 1 do
    t.workers.(c) <- None
  done;
  t.invocations <-
    {
      inv_loop = pl.Parallel_loop.pl_id;
      inv_trip = executed;
      inv_cycles = !(t.now) - ps.ps_entry_cycle;
    }
    :: t.invocations;
  Trace.loop_flush t.cfg.trace ~cycle:!(t.now) ~loop:pl.Parallel_loop.pl_id
    ~iterations:executed
    ~span:(!(t.now) - ps.ps_entry_cycle)
    ~flush_latency:flush_lat;
  t.serial_stall_until <- !(t.now) + 2 + flush_lat;
  Context.jump_to sc pl.Parallel_loop.pl_exit;
  t.phase <- Serial

(* ---- robustness: sanitizer verdicts, fallback, oracle ---- *)

let oracle_entry t (ps : par_state) : Oracle.entry =
  {
    Oracle.en_pl = ps.ps_pl;
    en_trip = ps.ps_trip;
    en_params = ps.ps_params;
    en_ivs = ps.ps_iv_entry;
    en_reds = ps.ps_red_entry;
    en_lvs = ps.ps_lv_entry;
    en_srs = ps.ps_sr_entry;
    en_n = t.n;
  }

(* Graceful degradation: roll the invocation back to its entry
   checkpoint and re-execute it sequentially through the oracle's replay
   engine, then resume the run at the loop exit.  The ring is aborted
   (its speculative state would be stale after the rollback) and the
   worker cores are rebuilt so no in-flight uop survives; their
   accumulated statistics are preserved in [extra_stats].  The
   re-execution is charged at one instruction per cycle on the serial
   core. *)
let do_fallback t (ps : par_state) ~reason =
  let pl = ps.ps_pl in
  let cp =
    match ps.ps_checkpoint with
    | Some cp -> cp
    | None -> invalid_arg "Executor: fallback without checkpoint"
  in
  (match t.ring with Some r -> Ring.abort r | None -> ());
  Memory.restore t.mem ~from:cp;
  Hashtbl.reset t.conv_signals;
  Queue.clear t.conv_vis;
  for c = 0 to t.n - 1 do
    t.workers.(c) <- None
  done;
  t.extra_stats <-
    Array.to_list (Array.map Core.stats t.cores) @ t.extra_stats;
  t.cores <- Array.init t.n t.mk_core;
  let rp =
    try Oracle.replay t.prog (oracle_entry t ps) t.mem
    with Oracle.Replay_stuck msg ->
      raise (Stuck (Violation, "sequential fallback failed: " ^ msg))
  in
  List.iter
    (fun (r, v) -> Context.set_reg t.serial_ctx r v)
    rp.Oracle.rp_regs;
  t.fallbacks <- t.fallbacks + 1;
  t.invocations <-
    {
      inv_loop = pl.Parallel_loop.pl_id;
      inv_trip = rp.Oracle.rp_executed;
      inv_cycles = !(t.now) - ps.ps_entry_cycle;
    }
    :: t.invocations;
  Trace.fallback t.cfg.trace ~cycle:!(t.now) ~loop:pl.Parallel_loop.pl_id
    ~reason ~iterations:rp.Oracle.rp_executed;
  t.serial_stall_until <- !(t.now) + 2 + rp.Oracle.rp_dyn_instrs;
  Context.jump_to t.serial_ctx pl.Parallel_loop.pl_exit;
  t.phase <- Serial

(* Sanitizer verdict for the finishing invocation.  Must run before the
   flush: the signal-bound check reads the live signal buffers, which
   the flush resets. *)
let detect_violation t =
  if not t.cfg.robust.sanitize then None
  else if Depcheck.violations t.depcheck > 0 then
    Some ("dependence", Depcheck.summary t.depcheck)
  else
    let outstanding =
      match t.ring with Some r -> Ring.max_outstanding_signals r | None -> 0
    in
    if outstanding > 2 then
      Some
        ( "signal_bound",
          Printf.sprintf
            "max outstanding signals %d exceeds the past/future bound of 2"
            outstanding )
    else None

(* Differential oracle: runs after the normal end-of-loop path, replays
   the invocation sequentially on a copy of the entry checkpoint, and
   compares trip count, live-out registers and the final memory image.
   On mismatch under [fallback], the sequential results are adopted --
   the shadow image *is* the correct exit state, so no re-execution is
   needed, only the rollback of the parallel one. *)
let check_oracle t (ps : par_state) =
  let loop = ps.ps_pl.Parallel_loop.pl_id in
  let cycle = !(t.now) in
  match ps.ps_checkpoint with
  | None -> ()
  | Some cp -> (
      let shadow = Memory.copy cp in
      match Oracle.replay t.prog (oracle_entry t ps) shadow with
      | exception Oracle.Replay_stuck msg ->
          t.violations <- t.violations + 1;
          Trace.oracle_result t.cfg.trace ~cycle ~loop ~ok:false
            ~detail:("shadow replay stuck: " ^ msg);
          if t.cfg.robust.strict then
            raise (Stuck (Violation, "oracle shadow replay stuck: " ^ msg))
      | rp -> (
          let probs = ref [] in
          if rp.Oracle.rp_executed <> ps.ps_executed then
            probs :=
              Printf.sprintf "trip: parallel %d vs sequential %d"
                ps.ps_executed rp.Oracle.rp_executed
              :: !probs;
          List.iter
            (fun (r, v) ->
              let got = Context.reg_value t.serial_ctx r in
              if got <> v then
                probs :=
                  Printf.sprintf "reg r%d: parallel %d vs sequential %d" r got
                    v
                  :: !probs)
            rp.Oracle.rp_regs;
          if not (Memory.equal t.mem shadow) then
            probs := "final memory image differs" :: !probs;
          match !probs with
          | [] ->
              Trace.oracle_result t.cfg.trace ~cycle ~loop ~ok:true ~detail:""
          | probs ->
              let detail = String.concat "; " (List.rev probs) in
              t.violations <- t.violations + 1;
              Trace.violation t.cfg.trace ~cycle ~loop ~kind:"oracle" ~detail;
              Trace.oracle_result t.cfg.trace ~cycle ~loop ~ok:false ~detail;
              if t.cfg.robust.strict then
                raise
                  (Stuck
                     ( Violation,
                       Printf.sprintf "oracle mismatch on loop %d: %s" loop
                         detail ))
              else if t.cfg.robust.fallback then begin
                (match t.ring with Some r -> Ring.abort r | None -> ());
                Memory.restore t.mem ~from:shadow;
                List.iter
                  (fun (r, v) -> Context.set_reg t.serial_ctx r v)
                  rp.Oracle.rp_regs;
                t.fallbacks <- t.fallbacks + 1;
                Trace.fallback t.cfg.trace ~cycle ~loop ~reason:"oracle"
                  ~iterations:rp.Oracle.rp_executed;
                t.serial_stall_until <-
                  max t.serial_stall_until
                    (cycle + 2 + rp.Oracle.rp_dyn_instrs)
              end))

let end_parallel t (ps : par_state) =
  let loop = ps.ps_pl.Parallel_loop.pl_id in
  let normal () =
    end_parallel_normal t ps;
    if t.cfg.robust.check_oracle then check_oracle t ps
  in
  match detect_violation t with
  | None -> normal ()
  | Some (vkind, detail) ->
      t.violations <- t.violations + 1;
      Trace.violation t.cfg.trace ~cycle:!(t.now) ~loop ~kind:vkind ~detail;
      if t.cfg.robust.strict then
        raise
          (Stuck
             ( Violation,
               Printf.sprintf "%s violation on loop %d: %s" vkind loop detail
             ))
      else if t.cfg.robust.fallback && ps.ps_checkpoint <> None then
        do_fallback t ps ~reason:vkind
      else normal ()

(* ---- construction ---- *)

let create ?(compiled : Hcc.compiled option) (cfg : config)
    (prog : Ir.program) (mem : Memory.t) : t =
  let n = cfg.mach.Mach_config.n_cores in
  let trigger =
    match compiled with
    | None -> None
    | Some c ->
        Some
          (fun fname header ->
            Hcc.find_parallel_loop c ~func:fname ~header <> None)
  in
  let serial_ctx = Context.create ~trigger prog mem ~core_id:0 in
  let hier = Hierarchy.create cfg.mach in
  let t_ref = ref None in
  let ring =
    Option.map
      (fun rc ->
        Ring.create ?trace:cfg.trace rc
          {
            Ring.backing_load = Memory.load mem;
            backing_store = Memory.store mem;
            owner_l1_latency =
              (fun ~core ~cycle ~write ~addr ->
                Hierarchy.owner_l1_access hier ~core ~cycle ~write addr);
          })
      cfg.ring_cfg
  in
  let reg_cells = Hashtbl.create 64 in
  (match compiled with
  | Some c ->
      List.iter
        (fun (s : Select.candidate) ->
          List.iter
            (fun sr -> Hashtbl.replace reg_cells sr.Parallel_loop.sr_addr ())
            s.Select.cd_loop.Parallel_loop.pl_shared_regs)
        c.Hcc.cp_candidates
  | None -> ());
  let t =
    {
      cfg;
      compiled;
      prog;
      mem;
      n;
      hier;
      ring;
      serial_ctx;
      workers = Array.make n None;
      cores = [||];
      phase = Serial;
      now = ref 0;
      serial_stall_until = 0;
      invocations = [];
      serial_cycles = 0;
      parallel_cycles = 0;
      done_ = false;
      ret = None;
      max_outstanding = 0;
      total_retired = ref 0;
      last_progress = 0;
      last_retired = -1;
      conv_vis = Queue.create ();
      sched_sig = (false, 0, 0, 0, 0, false, n);
      sched_changed = false;
      conv_signals = Hashtbl.create 64;
      reg_cells;
      depcheck = Depcheck.create ();
      mk_core = (fun _ -> invalid_arg "Executor: cores not initialized");
      extra_stats = [];
      fallbacks = 0;
      violations = 0;
      wake_ring = (fun ~at:_ -> ());
      shared_poke = false;
      alive = Array.make n true;
      owned = Array.init n (fun c -> [ c ]);
      n_active = n;
      pending_death =
        (match cfg.ring_cfg with
        | Some rc -> (
            match rc.Ring.faults with
            | Some p -> (
                match p.Ring.fl_fail_stop with
                | Some (node, _) when node >= n -> None (* no such core *)
                | d -> d)
            | None -> None)
        | None -> None);
    }
  in
  t_ref := Some t;
  let supply_for core =
    {
      Core_model.sup_next =
        (fun () ->
          let t = Option.get !t_ref in
          if !(t.now) < t.serial_stall_until && core = 0 then None
          else
            match t.phase with
            | Serial ->
                if core = 0 then Context.next_uop t.serial_ctx else None
            | Parallel ps -> begin
                match t.workers.(core) with
                | Some w -> worker_next_uop t ps w
                | None -> None
              end);
      sup_mem =
        (fun ~cycle ~write ~addr ->
          let t = Option.get !t_ref in
          if write then
            (match t.ring with
            | Some r -> Ring.invalidate_addr r addr
            | None -> ());
          Hierarchy.access hier ~core ~cycle ~write ~coherent:false addr);
      sup_shared =
        (fun ~cycle ~tag op ->
          let t = Option.get !t_ref in
          shared_op t ~core ~cycle ~tag op);
      sup_settled =
        (fun () ->
          let t = Option.get !t_ref in
          match t.phase with
          | Serial ->
              (* a [None] from the serial supply means the serial context
                 is not [Running] (or the core is stall-gated, whose
                 release cycle the scheduler publishes): repeat pulls are
                 pure *)
              true
          | Parallel ps -> (
              match t.workers.(core) with
              | None -> true
              | Some w -> (
                  match Context.status w.w_ctx with
                  | Context.Finished _ ->
                      (* the next pull runs [finish_iteration] and/or
                         starts the next assigned iteration: only pure if
                         both are out of the picture.  [can_start]'s time
                         gate is safe because the scheduler publishes
                         [ps_start_cycle] as a wake-up. *)
                      (not w.w_running_iter)
                      && not
                           (can_start t ps
                              (iter_of_local t ~core:w.w_core
                                 ~local_iter:w.w_local_iter))
                  | Context.Blocked | Context.Suspended _ -> true
                  | Context.Running -> false)));
    }
  in
  t.mk_core <-
    (fun c ->
      Core.create ~retired_sink:t.total_retired cfg.mach.Mach_config.core
        (supply_for c));
  t.cores <- Array.init n t.mk_core;
  t

(* ---- stuck diagnostics ---- *)

(* Full deadlock report: phase and scheduling counters, every worker's
   context/core state plus its wait targets (expected signal thresholds
   versus signals actually received, per segment and origin), and the
   ring's complete snapshot.  This is the payload of [Stuck]: when a
   16-core run wedges, the answer is almost always in the one node or
   worker a partial dump would have omitted. *)
let received_for t ~core ~seg ~origin =
  match t.ring with
  | Some r -> Ring.signals_received r ~node:core ~seg ~origin
  | None -> (
      match Hashtbl.find_opt t.conv_signals (seg, origin) with
      | Some l -> List.length !l
      | None -> 0)

let stuck_report t ~reason =
  let b = Buffer.create 4096 in
  Buffer.add_string b ("HELIX-RC stuck: " ^ reason ^ "\n");
  if t.n_active < t.n then
    Buffer.add_string b
      (Printf.sprintf "  dead cores: %s (survivors %d/%d; lane ownership %s)\n"
         (String.concat ","
            (List.filter_map
               (fun c -> if t.alive.(c) then None else Some (string_of_int c))
               (List.init t.n Fun.id)))
         t.n_active t.n
         (String.concat " "
            (List.filter_map
               (fun c ->
                 if t.alive.(c) then
                   Some
                     (Printf.sprintf "%d:[%s]" c
                        (String.concat ";"
                           (List.map string_of_int t.owned.(c))))
                 else None)
               (List.init t.n Fun.id))));
  (match t.phase with
  | Serial ->
      Buffer.add_string b
        (Printf.sprintf "  phase: serial (serial ctx %s)\n"
           (match Context.status t.serial_ctx with
           | Context.Running -> "running"
           | Context.Blocked -> "blocked-on-shared-load"
           | Context.Suspended _ -> "suspended"
           | Context.Finished _ -> "finished"))
  | Parallel ps ->
      Buffer.add_string b
        (Printf.sprintf
           "  phase: parallel loop %d entered @%d: started=%d finished=%d \
            executed=%d trip=%s%s\n"
           ps.ps_pl.Parallel_loop.pl_id ps.ps_entry_cycle ps.ps_started
           ps.ps_finished ps.ps_executed
           (match ps.ps_trip with
           | Some k -> string_of_int k
           | None -> "?")
           (if ps.ps_stopped then " stopped" else ""));
      let segs =
        List.map
          (fun (si : Parallel_loop.segment_info) -> si.Parallel_loop.si_id)
          ps.ps_pl.Parallel_loop.pl_segments
      in
      Array.iteri
        (fun c w ->
          match w with
          | None -> ()
          | Some w ->
              Buffer.add_string b
                (Printf.sprintf
                   "  worker %d: local_iter=%d running=%b status=%s\n" c
                   w.w_local_iter w.w_running_iter
                   (match Context.status w.w_ctx with
                   | Context.Running -> "running"
                   | Context.Blocked -> "blocked-on-shared-load"
                   | Context.Suspended _ -> "suspended"
                   | Context.Finished _ -> "finished"));
              Buffer.add_string b
                (Printf.sprintf "    core-model: %s\n"
                   (Core.describe t.cores.(c)));
              let k = max 0 (w.w_local_iter - 1) in
              List.iter
                (fun seg ->
                  let targets =
                    List.map
                      (fun (origin, threshold) ->
                        let have = received_for t ~core:c ~seg ~origin in
                        Printf.sprintf "from %d need %d have %d%s" origin
                          threshold have
                          (if have >= threshold then "" else " MISSING"))
                      (wait_thresholds t ~core:c ~local_iter:k)
                  in
                  Buffer.add_string b
                    (Printf.sprintf "    wait targets seg %d (iter %d): %s\n"
                       seg k
                       (if targets = [] then "(none: single core)"
                        else String.concat "; " targets)))
                segs)
        t.workers);
  (match t.ring with
  | Some r ->
      Buffer.add_string b "  ring state:\n";
      Buffer.add_string b (Ring.describe r)
  | None -> ());
  Buffer.contents b

(* Structured variant for tooling (attached to traces / dumped by the
   CLI next to the JSONL trace). *)
let stuck_snapshot t ~reason : Json.t =
  let phase_name =
    match t.phase with Serial -> "serial" | Parallel _ -> "parallel"
  in
  Json.Obj
    ([
       ("reason", Json.String reason);
       ("cycle", Json.Int !(t.now));
       ("phase", Json.String phase_name);
       ("dead_cores", Json.Int (t.n - t.n_active));
     ]
    @ match t.ring with
      | Some r -> [ ("ring", Ring.snapshot r) ]
      | None -> [])

(* ---- fail-stop processing ---- *)

(* Redistribute the dead core's lanes round-robin over the survivors,
   balanced: each lane goes to the currently lowest-loaded live core
   (lowest id on ties).  Keeps every lane single-owner, so the compiled
   [iter mod n] privatization slots stay exclusive. *)
let adopt_lanes t ~dead =
  List.iter
    (fun lane ->
      let best = ref (-1) in
      for c = t.n - 1 downto 0 do
        if
          t.alive.(c)
          && (!best < 0
             || List.length t.owned.(c) <= List.length t.owned.(!best))
        then best := c
      done;
      if !best >= 0 then
        t.owned.(!best) <- List.sort compare (lane :: t.owned.(!best)))
    t.owned.(dead);
  t.owned.(dead) <- [];
  t.n_active <- 0;
  for c = 0 to t.n - 1 do
    if t.alive.(c) then t.n_active <- t.n_active + 1
  done

(* The fault plan's scheduled fail-stop has arrived: kill the core,
   reknit the ring around its node, and decide whether the run can
   continue.  During the serial phase (or before an invocation makes any
   observable progress) reknitting preserves the wait/signal contract --
   survivors adopt the dead core's lanes and the threshold formulas
   account for multi-lane owners.  Once an invocation has started
   iterations or the dead core took accepted-but-unsent messages down
   with it, the contract is broken (consumed thresholds and lockstep
   barriers reference the old ownership map), so the invocation rolls
   back to its checkpoint and replays sequentially; without that option
   the run is stuck with the [Faulted] reason.  Core 0 is the serial
   core: its death is always fatal. *)
let process_fail_stop t ~node ~cycle =
  t.pending_death <- None;
  if node < t.n && t.alive.(node) then begin
    let lost_d, lost_s =
      match t.ring with
      | Some r -> Ring.kill_node r ~node ~cycle
      | None -> (0, 0)
    in
    t.alive.(node) <- false;
    adopt_lanes t ~dead:node;
    t.workers.(node) <- None;
    if node = 0 || t.n_active = 0 then
      raise
        (Stuck
           ( Faulted,
             stuck_report t
               ~reason:
                 (Printf.sprintf
                    "core 0 fail-stopped at cycle %d: no serial core \
                     survives"
                    cycle) ));
    match t.phase with
    | Serial -> () (* future invocations spawn workers over survivors *)
    | Parallel ps ->
        let pristine =
          ps.ps_started = 0 && lost_d = 0 && lost_s = 0
          && (match t.ring with Some r -> Ring.drained r | None -> true)
        in
        if pristine then spawn_workers t
        else if t.cfg.robust.fallback && ps.ps_checkpoint <> None then begin
          do_fallback t ps ~reason:"fail_stop";
          t.last_progress <- cycle
        end
        else
          raise
            (Stuck
               ( Faulted,
                 stuck_report t
                   ~reason:
                     (Printf.sprintf
                        "core %d fail-stopped at cycle %d mid-invocation \
                         (started=%d lost_data=%d lost_sig=%d) and no \
                         fallback is available"
                        node cycle ps.ps_started lost_d lost_s) ))
  end

(* ---- main loop ---- *)

(* The scheduler's view of iteration-scheduling state: if any of this
   changed during a cycle (workers finishing iterations, conditional
   continue-prefix growth, phase transitions), another core's uop supply
   may unblock on the very next cycle, so the engine must not
   fast-forward across it.  [n_active] is part of the signature: a
   fail-stop reassigns lanes, which can unblock (or create) supply on
   every surviving core. *)
let sched_signature t =
  match t.phase with
  | Serial -> (false, 0, 0, 0, 0, false, t.n_active)
  | Parallel ps ->
      ( true,
        ps.ps_entry_cycle,
        ps.ps_started,
        ps.ps_finished,
        ps.ps_contig,
        ps.ps_stopped,
        t.n_active )

(* Everything the legacy loop body did besides ring/core ticks: the
   progress watchdog and the phase state machine.  Runs as the last
   engine component, in the exact position the legacy loop had it. *)
let sched_tick t ~cycle =
  (* scheduled fail-stop first: the death is an external event, so it
     must be visible to everything else this cycle does (watchdog,
     phase machinery) *)
  (match t.pending_death with
  | Some (node, at) when cycle >= at -> process_fail_stop t ~node ~cycle
  | _ -> ());
  (* progress watchdog over the monotonic retirement counter *)
  let retired = !(t.total_retired) in
  if retired <> t.last_retired || cycle < t.serial_stall_until then begin
    (* a stalled serial core (flush or fallback re-execution charge) is
       deliberate progress-free time, not a wedge *)
    t.last_retired <- retired;
    t.last_progress <- cycle
  end
  else if cycle - t.last_progress > t.cfg.watchdog_cycles then begin
    let reason =
      Printf.sprintf "no retirement progress since cycle %d (now %d)"
        t.last_progress cycle
    in
    Trace.stuck t.cfg.trace ~cycle
      ~phase:(match t.phase with Serial -> "serial" | Parallel _ -> "parallel");
    Trace.emit t.cfg.trace ~cycle ~kind:"stuck_snapshot"
      [ ("snapshot", stuck_snapshot t ~reason) ];
    match t.phase with
    | Parallel ps when t.cfg.robust.fallback && ps.ps_checkpoint <> None ->
        (* a wedged parallel invocation degrades to sequential *)
        do_fallback t ps ~reason:"deadlock";
        t.last_progress <- cycle
    | _ -> raise (Stuck (Deadlock, stuck_report t ~reason))
  end;
  (* phase transitions *)
  (match t.phase with
  | Serial -> begin
      t.serial_cycles <- t.serial_cycles + 1;
      match Context.status t.serial_ctx with
      | Context.Suspended trig when Core.quiescent t.cores.(0) -> begin
          match
            find_loop t ~func:trig.Context.p_func ~header:trig.Context.p_header
          with
          | Some pl -> begin_parallel t pl
          | None ->
              (* spurious trigger: resume where we stopped *)
              Context.jump_to t.serial_ctx trig.Context.p_header
        end
      | Context.Finished rv when Core.quiescent t.cores.(0) ->
          t.ret <- rv;
          t.done_ <- true
      | _ -> ()
    end
  | Parallel ps ->
      t.parallel_cycles <- t.parallel_cycles + 1;
      if parallel_done t ps then end_parallel t ps);
  let s = sched_signature t in
  t.sched_changed <- s <> t.sched_sig;
  t.sched_sig <- s

(* Earliest future cycle at which the scheduler itself could act.  The
   returned cycle is always finite (the watchdog trigger bounds it), so
   runaway skips are impossible. *)
let sched_next_event t ~now =
  if t.done_ || t.sched_changed then Some now
  else begin
    let w = ref max_int in
    let add c = if c >= now && c < !w then w := c in
    (* serial-core stall release (flush / fallback re-execution charge).
       The release cycle itself must be ticked: the serial core's supply
       unblocks on it, and the core may already be idle-settled *)
    if t.serial_stall_until >= now then add t.serial_stall_until;
    (* parallel-phase setup-latency release: the release cycle itself
       must be ticked, like the serial stall above — an idle-settled
       core's [can_start] flips exactly there *)
    (match t.phase with
    | Parallel ps -> if ps.ps_start_cycle >= now then add ps.ps_start_cycle
    | Serial -> ());
    (* a scheduled fail-stop is a hard wake-up: the engines must not
       fast-forward across the death cycle *)
    (match t.pending_death with
    | Some (_, at) -> add (max now at)
    | None -> ());
    (* conventional-mode signal visibility boundaries *)
    let rec conv () =
      match Queue.peek_opt t.conv_vis with
      | Some v when v < now ->
          ignore (Queue.pop t.conv_vis);
          conv ()
      | Some v -> add v
      | None -> ()
    in
    conv ();
    (* watchdog trigger: within a serial stall window last_progress
       tracks the clock up to serial_stall_until - 1 *)
    let lp =
      if t.serial_stall_until > now then
        max t.last_progress (t.serial_stall_until - 1)
      else t.last_progress
    in
    add (max now (lp + t.cfg.watchdog_cycles + 1));
    Some !w
  end

(* Charge the skipped window [now .. now + cycles - 1] exactly as the
   per-cycle loop would have: phase counters every cycle, and watchdog
   progress credit while the serial core is deliberately stalled. *)
let sched_skip t ~now ~cycles =
  (match t.phase with
  | Serial -> t.serial_cycles <- t.serial_cycles + cycles
  | Parallel _ -> t.parallel_cycles <- t.parallel_cycles + cycles);
  if t.serial_stall_until > now then
    t.last_progress <- min (now + cycles - 1) (t.serial_stall_until - 1)

let components t =
  let noop_skip ~now:_ ~cycles:_ = () in
  let governor =
    {
      Engine.cp_name = "governor";
      cp_tick =
        (fun ~cycle ->
          if cycle > t.cfg.fuel then begin
            Trace.stuck t.cfg.trace ~cycle ~phase:"fuel";
            raise
              (Stuck
                 ( Fuel,
                   stuck_report t
                     ~reason:
                       (Printf.sprintf "cycle fuel exhausted (fuel=%d)"
                          t.cfg.fuel) ))
          end);
      (* the fuel check must run at cycle fuel+1: cap every skip there *)
      cp_next_event = (fun ~now -> Some (max now (t.cfg.fuel + 1)));
      cp_skip = noop_skip;
      (* the promise is a constant: never re-poll *)
      cp_changed = (fun () -> false);
    }
  in
  let ring =
    match t.ring with
    | None -> []
    | Some r ->
        [
          {
            Engine.cp_name = "ring";
            cp_tick = (fun ~cycle -> Ring.tick r ~cycle);
            cp_next_event = (fun ~now -> Ring.next_event r ~now);
            cp_skip = noop_skip;
            (* injections by cores are covered by [wake_ring] pokes *)
            cp_changed = (fun () -> Ring.tick_changed r);
          };
        ]
  in
  (* read [t.cores.(i)] on every call: fallback rebuilds the array *)
  let core i =
    {
      Engine.cp_name = Printf.sprintf "core.%d" i;
      cp_tick = (fun ~cycle -> Core.tick t.cores.(i) cycle);
      cp_next_event = (fun ~now -> Core.next_event t.cores.(i) ~now);
      cp_skip = (fun ~now ~cycles -> Core.skip t.cores.(i) ~now ~cycles);
      cp_changed = (fun () -> Core.changed t.cores.(i));
    }
  in
  let hier =
    {
      (Engine.passive "hier") with
      Engine.cp_next_event = (fun ~now -> Hierarchy.next_event t.hier ~now);
    }
  in
  let sched =
    {
      Engine.cp_name = "sched";
      cp_tick = (fun ~cycle -> sched_tick t ~cycle);
      cp_next_event = (fun ~now -> sched_next_event t ~now);
      cp_skip = (fun ~now ~cycles -> sched_skip t ~now ~cycles);
      (* the scheduler is poked from everywhere (worker iteration
         completions, conventional signal records, phase machinery) and
         its promise is cheap: always re-poll *)
      cp_changed = (fun () -> true);
    }
  in
  (governor :: ring) @ List.init t.n core @ [ hier; sched ]

(* ---- serial-phase interpret-ahead (heap engine) -------------------- *)

let interpret_ahead_enabled =
  match Sys.getenv_opt "HELIX_INTERPRET_AHEAD" with
  | Some ("0" | "off" | "false") -> false
  | _ -> true

(* Batch hook registered for core 0: called by the heap engine when core
   0 is the only runnable component and every other component is
   provably idle until [now + limit].  Runs the serial core and the
   scheduler cycle-by-cycle -- exactly the ticks the legacy loop would
   perform, since ring/governor/hierarchy ticks are no-ops while the
   ring is drained and the fuel bound (part of [limit]) is not reached
   -- and charges the idle workers' stall buckets in closed form
   afterwards.  Stops as soon as the equivalence argument no longer
   holds: a shared-world operation (could inject into the ring), a
   phase transition, [done_], or core 0 no longer provably active. *)
let serial_batch t ~now ~limit =
  match t.phase with
  | Parallel _ -> 0
  | Serial ->
      if
        t.done_
        || (match t.ring with Some r -> not (Ring.drained r) | None -> false)
      then 0
      else begin
        let k = ref 0 in
        let stop = ref false in
        while (not !stop) && !k < limit do
          let cycle = now + !k in
          (* any [!(t.now)] reader inside the ticks must observe the
             batched cycle, exactly as in the per-cycle loop *)
          t.now := cycle;
          t.shared_poke <- false;
          Core.tick t.cores.(0) cycle;
          sched_tick t ~cycle;
          incr k;
          if
            t.done_ || t.shared_poke
            || (match t.phase with Serial -> false | Parallel _ -> true)
            || Core.next_event t.cores.(0) ~now:(cycle + 1)
               <> Some (cycle + 1)
          then stop := true
        done;
        if !k > 0 then
          for i = 1 to t.n - 1 do
            Core.skip t.cores.(i) ~now ~cycles:!k
          done;
        !k
      end

let run ?compiled (cfg : config) (prog : Ir.program) (mem : Memory.t) : result
    =
  let t = create ?compiled cfg prog mem in
  Context.start t.serial_ctx prog.Ir.p_main [];
  let eng = Engine.create ~kind:cfg.engine ~clock:t.now () in
  List.iter
    (fun (c : Engine.component) ->
      let id = Engine.register eng c in
      if c.Engine.cp_name = "ring" then
        t.wake_ring <- (fun ~at -> Engine.wake eng ~id ~at)
      else if c.Engine.cp_name = "core.0" && interpret_ahead_enabled then
        Engine.set_batch eng ~id (fun ~now ~limit -> serial_batch t ~now ~limit))
    (components t);
  while not t.done_ do
    Engine.step eng
  done;
  (* cores discarded by fallbacks contribute their statistics too *)
  let all_stats =
    Array.to_list (Array.map Core.stats t.cores) @ t.extra_stats
  in
  let total_retired =
    List.fold_left (fun acc (s : Stats.t) -> acc + s.Stats.retired) 0 all_stats
  in
  let metrics =
    let m = Metrics.create () in
    let core_stats = Array.map Core.stats t.cores in
    Array.iteri
      (fun i s ->
        Stats.export_metrics ~prefix:(Printf.sprintf "core.%d" i) s m)
      core_stats;
    Stats.export_metrics ~prefix:"cores" (Stats.merge all_stats) m;
    (match t.ring with Some r -> Ring.export_metrics r m | None -> ());
    Hierarchy.export_metrics t.hier m;
    Metrics.set_int m "exec.cycles" !(t.now);
    Metrics.set_int m "exec.serial_cycles" t.serial_cycles;
    Metrics.set_int m "exec.parallel_cycles" t.parallel_cycles;
    Metrics.set_int m "exec.invocations" (List.length t.invocations);
    Metrics.set_int m "exec.max_outstanding_signals" t.max_outstanding;
    Metrics.set_int m "exec.fallbacks" t.fallbacks;
    Metrics.set_int m "exec.violations" t.violations;
    Metrics.set_int m "exec.dead_cores" (t.n - t.n_active);
    Metrics.set_int m "exec.retired" total_retired;
    (* engine-specific counters: excluded from cross-engine metric
       comparisons (everything else must be bit-identical) *)
    Metrics.set_int m "engine.kind"
      (match Engine.kind eng with
      | Engine.Legacy -> 0
      | Engine.Event -> 1
      | Engine.Heap -> 2);
    Metrics.set_int m "engine.steps" (Engine.steps eng);
    Metrics.set_int m "engine.fast_forwards" (Engine.fast_forwards eng);
    Metrics.set_int m "engine.skipped_cycles" (Engine.skipped_cycles eng);
    Metrics.set_int m "engine.batched_cycles" (Engine.batched_cycles eng);
    Metrics.set_int m "engine.batches" (Engine.batches eng);
    Metrics.set_int m "engine.heap_pushes" (Engine.heap_pushes eng);
    (* skip effectiveness: fraction of simulated cycles not paid for
       with a full tick round (fast-forwarded or batch-executed) *)
    Metrics.set_float m "engine.skip_ratio"
      (float_of_int (Engine.skipped_cycles eng + Engine.batched_cycles eng)
      /. float_of_int (max 1 !(t.now)));
    m
  in
  {
    r_metrics = metrics;
    r_cycles = !(t.now);
    r_ret = t.ret;
    r_mem = t.mem;
    r_core_stats = Array.map Core.stats t.cores;
    r_retired = total_retired;
    r_invocations = List.rev t.invocations;
    r_serial_cycles = t.serial_cycles;
    r_parallel_cycles = t.parallel_cycles;
    r_ring_dist_hist =
      (match t.ring with Some r -> Ring.dist_histogram r | None -> Array.make 7 0);
    r_ring_consumers_hist =
      (match t.ring with
      | Some r -> Ring.consumers_histogram r
      | None -> Array.make 7 0);
    r_max_outstanding_signals = t.max_outstanding;
    r_ring_hit_rate =
      (match t.ring with Some r -> Ring.ring_hit_rate r | None -> 1.0);
    r_fallbacks = t.fallbacks;
    r_violations = t.violations;
  }
