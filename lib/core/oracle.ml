open Helix_ir
open Helix_hcc

(* Differential oracle (ISSUE 2): shadow-execute one parallel-loop
   invocation sequentially through the reference interpreter and compare
   its architectural effect -- final memory image, executed trip count,
   live-out register values -- against what the parallel run produced.

   The shadow replays the compiled protocol, not the original loop: it
   initializes the runtime cells (reduction partials, last-value stamps,
   demoted-register cells) exactly as the executor does at loop entry,
   runs the generated per-iteration body function for each iteration in
   order, then reconstructs live-out registers from closed forms and
   cells and clears the compiler scratch.  A correct compilation makes
   this bit-identical to the sequential semantics of the original loop,
   so any divergence in the parallel run is a protocol or timing bug,
   not a modelling artifact.

   [Wait]/[Signal]/[Flush] are no-ops in the interpreter; the shadow is
   the timing-free sequential semantics of the same code.  Note
   [Interp.run_func] reseeds [Lc_rand] per call where a worker context
   carries its seed across iterations -- parallel bodies do not use
   [Lc_rand], so the shadow stays exact. *)

exception Replay_stuck of string

(* Everything captured at parallel-loop entry that the shadow needs:
   evaluated parameters and the entry values (r0, and for quadratic IVs
   the step register's s0 plus the step operand's value) feeding the
   exit-time register reconstruction. *)
type entry = {
  en_pl : Parallel_loop.t;
  en_trip : int option;    (* None: conditional loop, replay until stop *)
  en_params : int list;
  en_ivs : (Parallel_loop.iv_info * int * int * int) list;
      (* (info, r0, s0, step_value) *)
  en_reds : (Parallel_loop.reduction * int) list;
  en_lvs : (Parallel_loop.lastval * int) list;
  en_srs : (Parallel_loop.shared_reg * int) list;
  en_n : int;              (* cores: the cell-slot count *)
}

type replay = {
  rp_executed : int;              (* iterations that continued *)
  rp_regs : (Ir.reg * int) list;  (* live-out register values *)
  rp_dyn_instrs : int;            (* interpreter work, for timing charges *)
}

(* Cap for conditional replays so a non-terminating mis-compiled body
   fails loudly instead of hanging the oracle. *)
let max_conditional_iters = 100_000_000

let replay (prog : Ir.program) (en : entry) (mem : Memory.t) : replay =
  let pl = en.en_pl in
  (* runtime-cell initialization, mirroring the executor's loop entry *)
  List.iter
    (fun ((rd : Parallel_loop.reduction), _r0) ->
      for slot = 0 to en.en_n - 1 do
        Memory.store mem
          (rd.Parallel_loop.rd_base + slot)
          rd.Parallel_loop.rd_identity
      done)
    en.en_reds;
  List.iter
    (fun ((lv : Parallel_loop.lastval), _r0) ->
      for slot = 0 to en.en_n - 1 do
        Memory.store mem (lv.Parallel_loop.lv_iter_base + slot) 0
      done)
    en.en_lvs;
  List.iter
    (fun ((sr : Parallel_loop.shared_reg), r0) ->
      Memory.store mem sr.Parallel_loop.sr_addr r0)
    en.en_srs;
  let dyn = ref 0 in
  let run_iter i =
    match
      Interp.run_func prog pl.Parallel_loop.pl_body_fn mem
        ~args:(i :: en.en_params)
    with
    | res ->
        dyn := !dyn + res.Interp.stats.Interp.dyn_instrs;
        res.Interp.ret
    | exception Interp.Out_of_fuel ->
        raise (Replay_stuck "shadow iteration out of fuel")
    | exception Interp.Runtime_error e ->
        raise (Replay_stuck ("shadow iteration failed: " ^ e))
  in
  let executed =
    match en.en_trip with
    | Some trip ->
        for i = 0 to trip - 1 do
          ignore (run_iter i)
        done;
        trip
    | None ->
        let rec go i =
          if i > max_conditional_iters then
            raise (Replay_stuck "conditional replay exceeds iteration cap")
          else
            match run_iter i with Some v when v <> 0 -> go (i + 1) | _ -> i
        in
        go 0
  in
  (* exit-time reconstruction: the same recipe as [Executor.end_parallel] *)
  let regs = ref [] in
  List.iter
    (fun ((info : Parallel_loop.iv_info), r0, s0, step_value) ->
      if info.Parallel_loop.ivi_live_out then
        regs :=
          ( info.Parallel_loop.ivi_reg,
            Parallel_loop.iv_value_at info ~r0 ~s0 ~step_value executed )
          :: !regs)
    en.en_ivs;
  List.iter
    (fun ((rd : Parallel_loop.reduction), r0) ->
      let partials =
        List.init en.en_n (fun slot ->
            Memory.load mem (rd.Parallel_loop.rd_base + slot))
      in
      if rd.Parallel_loop.rd_live_out then
        regs :=
          ( rd.Parallel_loop.rd_reg,
            Parallel_loop.combine_reduction rd r0 partials )
          :: !regs)
    en.en_reds;
  List.iter
    (fun ((lv : Parallel_loop.lastval), r0) ->
      let best = ref (0, r0) in
      for slot = 0 to en.en_n - 1 do
        let stamp = Memory.load mem (lv.Parallel_loop.lv_iter_base + slot) in
        if stamp > fst !best then
          best :=
            (stamp, Memory.load mem (lv.Parallel_loop.lv_val_base + slot))
      done;
      if lv.Parallel_loop.lv_live_out then
        regs := (lv.Parallel_loop.lv_reg, snd !best) :: !regs)
    en.en_lvs;
  List.iter
    (fun ((sr : Parallel_loop.shared_reg), _r0) ->
      if sr.Parallel_loop.sr_live_out then
        regs :=
          (sr.Parallel_loop.sr_reg, Memory.load mem sr.Parallel_loop.sr_addr)
          :: !regs)
    en.en_srs;
  (* clear compiler scratch so the image matches the sequential one *)
  List.iter
    (fun (base, size) ->
      for a = base to base + size - 1 do
        Memory.store mem a 0
      done)
    pl.Parallel_loop.pl_scratch;
  { rp_executed = executed; rp_regs = List.rev !regs; rp_dyn_instrs = !dyn }
