(* Dynamic dependence sanitizer (ISSUE 2).

   HELIX's correctness argument is that every loop-carried dependence is
   wrapped in a wait/signal sequential segment: two accesses to the same
   shared address from different iterations are ordered because they
   execute inside the *same* segment, whose instances run in iteration
   order by construction.  The sanitizer checks exactly that invariant
   dynamically: it records every worker memory access as
   (core, iteration, segment, addr, read/write) and flags any cross-core
   conflicting pair (at least one write) that is NOT covered by a common
   segment.

   Happens-before model.  Within one invocation, iterations are
   round-robin over cores, and each core executes its own iterations in
   program order -- so same-core pairs are always ordered and only
   cross-core pairs can race.  A cross-core pair is ordered if and only
   if both accesses run under the same sequential segment (same seg id):
   segment instances of one segment are serialized across cores by the
   wait/signal protocol.  Accesses under *different* segments, or outside
   any segment, share no ordering edge.

   The implementation keeps, per address and per segment key (segment id,
   or "unguarded"), bitmasks of writer cores and accessor cores.  A new
   access conflicts if some key other than its own covering segment has a
   writer (for reads) or any accessor (for writes) on a different core.
   This is O(distinct keys per address) per access, and addresses touched
   by only one core or never written are filtered by the masks for
   free. *)

type violation = {
  v_addr : int;
  v_seg1 : int option;          (* segment of the earlier (stored) access *)
  v_core1 : int;
  v_iter1 : int;
  v_write1 : bool;
  v_seg2 : int option;          (* segment of the access that tripped it *)
  v_core2 : int;
  v_iter2 : int;
  v_write2 : bool;
}

(* Per-(addr, seg-key) access summary.  [sample] is one representative
   access for reporting, preferring writes (the interesting side of a
   conflict pair). *)
type entry = {
  e_key : int;                  (* segment id, or -1 = unguarded *)
  mutable writers : int;        (* core bitmask *)
  mutable accessors : int;      (* core bitmask, includes writers *)
  mutable sample : int * int * bool; (* core, iter, write *)
}

type t = {
  table : (int, entry list ref) Hashtbl.t; (* addr -> per-key entries *)
  mutable violations : int;
  mutable samples : violation list;        (* newest first, capped *)
}

let max_samples = 8
let no_seg = -1

let create () = { table = Hashtbl.create 1024; violations = 0; samples = [] }

let reset t =
  Hashtbl.reset t.table;
  t.violations <- 0;
  t.samples <- []

let key_of = function Some s -> s | None -> no_seg
let seg_of k = if k = no_seg then None else Some k

let record t ~core ~iter ~seg ~addr ~write =
  let key = key_of seg in
  (* clamp the shift for 63-bit ints; cores >= 62 share the top bit,
     which can only under-report cross-core conflicts on machines far
     larger than anything simulated here *)
  let bit = 1 lsl (min core 62) in
  let entries =
    match Hashtbl.find_opt t.table addr with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add t.table addr r;
        r
  in
  (* conflict with any entry not covered by a common segment *)
  let conflicting e =
    let same_segment = e.e_key = key && key <> no_seg in
    (not same_segment)
    && (if write then e.accessors land lnot bit <> 0
        else e.writers land lnot bit <> 0)
  in
  (match List.find_opt conflicting !entries with
  | Some e ->
      t.violations <- t.violations + 1;
      if List.length t.samples < max_samples then begin
        let c1, i1, w1 = e.sample in
        t.samples <-
          {
            v_addr = addr;
            v_seg1 = seg_of e.e_key;
            v_core1 = c1;
            v_iter1 = i1;
            v_write1 = w1;
            v_seg2 = seg;
            v_core2 = core;
            v_iter2 = iter;
            v_write2 = write;
          }
          :: t.samples
      end
  | None -> ());
  match List.find_opt (fun e -> e.e_key = key) !entries with
  | Some e ->
      if write then e.writers <- e.writers lor bit;
      e.accessors <- e.accessors lor bit;
      let _, _, w0 = e.sample in
      if write && not w0 then e.sample <- (core, iter, write)
  | None ->
      entries :=
        {
          e_key = key;
          writers = (if write then bit else 0);
          accessors = bit;
          sample = (core, iter, write);
        }
        :: !entries

let violations t = t.violations
let sample_violations t = List.rev t.samples

let pp_seg = function
  | Some s -> "seg " ^ string_of_int s
  | None -> "unguarded"

let describe_violation v =
  Printf.sprintf
    "addr 0x%x: core %d iter %d %s (%s) vs core %d iter %d %s (%s)" v.v_addr
    v.v_core1 v.v_iter1
    (if v.v_write1 then "write" else "read")
    (pp_seg v.v_seg1) v.v_core2 v.v_iter2
    (if v.v_write2 then "write" else "read")
    (pp_seg v.v_seg2)

let summary t =
  match sample_violations t with
  | [] -> "no unguarded loop-carried dependences"
  | v :: _ ->
      Printf.sprintf "%d unguarded access pair(s); first: %s" t.violations
        (describe_violation v)
