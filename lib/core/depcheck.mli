(** Dynamic dependence sanitizer: flags cross-iteration conflicting
    access pairs not ordered by the wait/signal happens-before relation.

    The model: within one parallel invocation, same-core pairs are
    ordered by program order (a core runs its iterations sequentially),
    and a cross-core pair is ordered iff both accesses execute under the
    {e same} sequential segment — segment instances are serialized in
    iteration order by the wait/signal protocol.  Any other cross-core
    pair touching the same address with at least one write is a
    loop-carried dependence the compiler failed to guard. *)

type violation = {
  v_addr : int;
  v_seg1 : int option;  (** segment of the earlier access, [None] = unguarded *)
  v_core1 : int;
  v_iter1 : int;
  v_write1 : bool;
  v_seg2 : int option;  (** segment of the access that tripped the check *)
  v_core2 : int;
  v_iter2 : int;
  v_write2 : bool;
}

type t

val create : unit -> t

val reset : t -> unit
(** Clear all recorded accesses and violations (per-invocation scope). *)

val record :
  t -> core:int -> iter:int -> seg:int option -> addr:int -> write:bool -> unit
(** Record one worker memory access; O(distinct segment keys at [addr]). *)

val violations : t -> int
(** Conflicting access pairs detected since the last [reset]. *)

val sample_violations : t -> violation list
(** Up to 8 representative violations, oldest first. *)

val describe_violation : violation -> string
val summary : t -> string
