open Helix_ir
open Helix_machine
open Helix_ring
open Helix_hcc

(** The HELIX-RC executor: a cycle-stepped simulation of a multicore
    running a compiled program.

    Serial phase: core 0 executes through its context; the others idle.
    At a selected parallel-loop header the executor suspends the serial
    context, spawns one worker per core (iterations round-robin over the
    logical ring) and runs the parallel phase; at the end the ring is
    flushed, sequential register state is reconstructed (closed-form
    IVs, reduction partials, stamped last-values, demoted cells) and the
    serial context resumes at the loop exit.

    Communication routing implements the paper's decoupling matrix
    (Figure 8): segment memory traffic goes to the ring or to the
    coherent conventional hierarchy per [comm_mode]; synchronization is
    either proactive ring broadcast or the lazy conventional scheme whose
    per-signal visibility latency produces the Figure-5b chains. *)

type comm_mode = {
  reg_via_ring : bool;   (** demoted-register cells through the ring *)
  mem_via_ring : bool;   (** program shared memory through the ring *)
  sync_via_ring : bool;  (** decoupled signals *)
}

val fully_decoupled : comm_mode
val fully_coupled : comm_mode

(** Robustness layer: differential oracle, dependence sanitizer and
    graceful sequential fallback.  All checks default off — they cost a
    memory checkpoint per invocation plus per-access sanitizer work. *)
type robustness = {
  check_oracle : bool;
      (** shadow-execute each parallel invocation sequentially via
          {!Oracle.replay} and compare trip count, live-out registers
          and the final memory image *)
  sanitize : bool;
      (** record worker memory accesses and flag cross-iteration
          conflicts not ordered by wait/signal ({!Depcheck}); also
          asserts the paper's ≤2 outstanding-signals bound at flush *)
  fallback : bool;
      (** on a violation or a parallel-phase deadlock, roll back to the
          loop-entry checkpoint, re-execute sequentially and continue *)
  strict : bool;  (** violations raise [Stuck (Violation, _)] instead *)
}

val no_robustness : robustness
val checked : robustness
(** Oracle + sanitizer + fallback on, strict off: the [--check] mode. *)

type config = {
  mach : Mach_config.t;
  ring_cfg : Ring.config option;  (** [None]: no ring hardware *)
  comm : comm_mode;
  setup_latency : int;            (** parallel-phase entry charge *)
  fuel : int;
  watchdog_cycles : int;
      (** cycles without any retirement before the run is declared
          [Stuck] (default 2M; tests lower it to force cheap wedges) *)
  trace : Helix_obs.Trace.t option;  (** event trace sink, off by default *)
  robust : robustness;
  engine : Helix_engine.Engine.kind;
      (** [Heap] (the default) fast-forwards over provably dead cycle
          windows using per-component wake-up promises cached in a
          min-heap, and batch-executes serial phases when the ring is
          quiescent ([HELIX_INTERPRET_AHEAD=0] disables the batching);
          [Event] recomputes the windows by a full component rescan
          every round; results of both are bit-identical to [Legacy],
          which ticks every cycle.  Overridable via
          [HELIX_ENGINE=legacy|event|heap]. *)
}

val default_engine : Helix_engine.Engine.kind
(** [Heap], unless the [HELIX_ENGINE] environment variable says
    otherwise. *)

val default_config :
  ?ring:bool -> ?comm:comm_mode -> ?trace:Helix_obs.Trace.t ->
  ?robust:robustness -> ?engine:Helix_engine.Engine.kind ->
  Mach_config.t -> config

type invocation_record = {
  inv_loop : int;
  inv_trip : int;
  inv_cycles : int;
}

type result = {
  r_cycles : int;
  r_ret : int option;
  r_mem : Memory.t;
  r_core_stats : Stats.t array;
  r_retired : int;
  r_invocations : invocation_record list;
  r_serial_cycles : int;
  r_parallel_cycles : int;
  r_ring_dist_hist : int array;       (** Figure 4b *)
  r_ring_consumers_hist : int array;  (** Figure 4c *)
  r_max_outstanding_signals : int;    (** must stay <= 2 *)
  r_ring_hit_rate : float;
  r_fallbacks : int;   (** invocations re-executed sequentially *)
  r_violations : int;  (** robustness checks tripped *)
  r_metrics : Helix_obs.Metrics.t;
      (** every counter of the run under stable names
          under the ring./core.<i>./cores./hier./exec. prefixes *)
}

(** Why a run died: [Fuel] is the cycle/trip budget, [Deadlock] the
    no-retirement watchdog, [Violation] a robustness check under
    [strict] (or one the fallback machinery could not recover from),
    [Faulted] an injected fail-stop the machine could neither reknit
    around (survivors taking over the dead core's iterations) nor roll
    back from — core 0 died, or a mid-invocation death found no
    checkpoint/fallback.  Names: ["fuel"], ["deadlock"], ["violation"],
    ["fault"]. *)
type stuck_reason = Fuel | Deadlock | Violation | Faulted

val stuck_reason_name : stuck_reason -> string

exception Stuck of stuck_reason * string
(** The string payload is a full report: loop/phase scheduling counters,
    dead cores (if any), every worker's context state and per-segment
    wait targets (signals expected vs received from each origin), and
    the complete ring snapshot (all nodes' signal buffers, lockstep
    acceptance vectors, per-class in-flight and fault-recovery counters,
    link occupancy). *)

val run :
  ?compiled:Hcc.compiled -> config -> Ir.program -> Memory.t -> result
(** Simulate the program to completion on the given initial memory
    (mutated in place).  Without [compiled] there are no parallel
    triggers: the single-core sequential baseline. *)
