(* The conventional memory hierarchy: per-core L1s, a shared banked L2, a
   DRAM backend, and a directory that charges cache-to-cache transfer
   latency when a core touches a line last written by another core.

   This is a timing model: data lives in the functional memory owned by
   the runtime.  The directory implements the "optimistic 10-cycle
   cache-to-cache latency" coherence abstraction the paper uses for the
   conventional machine (Section 6.1), including the guarantee that a
   particular L1 preserves the order of stores to a location. *)

type line_state = {
  mutable owner : int;    (* last writer core, -1 if clean/shared *)
  mutable sharers : int;  (* bitmask of cores with a copy *)
}

type t = {
  cfg : Mach_config.mem_config;
  l1s : Cache.t array;
  l2 : Cache.t;
  dram : Dram.t;
  directory : (int, line_state) Hashtbl.t; (* line addr -> state *)
  l2_banks : int array;                    (* busy-until per bank *)
  mutable c2c_transfers : int;
  mutable l2_accesses : int;
}

let create (mcfg : Mach_config.t) =
  {
    cfg = mcfg.Mach_config.mem;
    l1s = Array.init mcfg.Mach_config.n_cores (fun _ ->
        Cache.create mcfg.Mach_config.mem.Mach_config.l1);
    l2 = Cache.create mcfg.Mach_config.mem.Mach_config.l2;
    dram =
      Dram.create ~latency:mcfg.Mach_config.mem.Mach_config.dram_latency
        ~banks:mcfg.Mach_config.mem.Mach_config.dram_banks;
    directory = Hashtbl.create 4096;
    l2_banks = Array.make (max 1 mcfg.Mach_config.mem.Mach_config.l2_banks) 0;
    c2c_transfers = 0;
    l2_accesses = 0;
  }

let line_words t = t.cfg.Mach_config.l1.Mach_config.line_words

let dir_state t laddr =
  match Hashtbl.find_opt t.directory laddr with
  | Some s -> s
  | None ->
      let s = { owner = -1; sharers = 0 } in
      Hashtbl.replace t.directory laddr s;
      s

(* Charge an L2 access at [cycle], including bank contention; returns
   latency. *)
let l2_access t ~cycle ~write addr =
  t.l2_accesses <- t.l2_accesses + 1;
  let laddr = addr / line_words t in
  let bank_i = laddr mod Array.length t.l2_banks in
  let start = max cycle t.l2_banks.(bank_i) in
  let queue = start - cycle in
  t.l2_banks.(bank_i) <- start + 2; (* bank occupied 2 cycles per access *)
  match Cache.access t.l2 ~write addr with
  | Cache.Hit -> queue + t.cfg.Mach_config.l2_latency
  | Cache.Miss _ ->
      queue + t.cfg.Mach_config.l2_latency + Dram.access t.dram ~cycle addr

(* A core access through its private L1.  [coherent] charges directory
   cost for lines dirty in a remote L1 (used for shared data on the
   conventional machine; ring-cache accesses bypass this path). *)
let access t ~core ~cycle ~(write : bool) ~(coherent : bool) addr : int =
  let laddr = addr / line_words t in
  let c2c =
    if not coherent then 0
    else begin
      let st = dir_state t laddr in
      let cost =
        if st.owner >= 0 && st.owner <> core then begin
          (* dirty in a remote L1: cache-to-cache transfer *)
          t.c2c_transfers <- t.c2c_transfers + 1;
          (* remote copy is downgraded/invalidated *)
          Cache.invalidate t.l1s.(st.owner) addr;
          t.cfg.Mach_config.c2c_latency
        end
        else 0
      in
      if write then begin
        st.owner <- core;
        st.sharers <- 1 lsl core
      end
      else st.sharers <- st.sharers lor (1 lsl core);
      cost
    end
  in
  match Cache.access t.l1s.(core) ~write addr with
  | Cache.Hit ->
      if c2c > 0 then
        (* treat the transfer cost as dominating the local hit *)
        c2c
      else t.cfg.Mach_config.l1.Mach_config.hit_latency
  | Cache.Miss { evicted_dirty_line } ->
      let wb =
        match evicted_dirty_line with
        | Some el -> ignore (l2_access t ~cycle ~write:true (el * line_words t)); 0
        | None -> 0
      in
      ignore wb;
      let lower = l2_access t ~cycle ~write:false addr in
      t.cfg.Mach_config.l1.Mach_config.hit_latency + lower + c2c

(* Latency for the ring cache's owner node to reach the L1 level on a ring
   miss or eviction (Section 5.2 "remote L1 request/reply"). *)
let owner_l1_access t ~core ~cycle ~write addr =
  access t ~core ~cycle ~write ~coherent:true addr

let l1_hit_rate t core = Cache.hit_rate t.l1s.(core)
let c2c_transfers t = t.c2c_transfers

let export_metrics t (m : Helix_obs.Metrics.t) =
  let open Helix_obs in
  Metrics.set_int m "hier.c2c_transfers" t.c2c_transfers;
  Metrics.set_int m "hier.l2_accesses" t.l2_accesses;
  Array.iteri
    (fun core l1 ->
      Metrics.set_float m
        (Printf.sprintf "hier.l1.%d.hit_rate" core)
        (Cache.hit_rate l1))
    t.l1s

(* The hierarchy is purely passive (see the .mli): all latencies are
   charged at access time, so it never schedules its own wake-up. *)
let next_event _t ~now:_ = None
