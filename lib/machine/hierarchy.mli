(** The conventional memory hierarchy: per-core L1s, shared banked L2,
    DRAM, and a directory charging cache-to-cache latency when a core
    touches a line last written by another core (the paper's optimistic
    10-cycle coherence abstraction). *)

type t

val create : Mach_config.t -> t

val access :
  t -> core:int -> cycle:int -> write:bool -> coherent:bool -> int -> int
(** Latency of a word access through core-local L1.  [coherent] charges
    directory cost for remotely-dirty lines (shared data on the
    conventional machine); private accesses never pay it. *)

val owner_l1_access : t -> core:int -> cycle:int -> write:bool -> int -> int
(** The ring cache's owner node reaching the L1 level on a ring miss or
    eviction. *)

val l1_hit_rate : t -> int -> float
val c2c_transfers : t -> int

val next_event : t -> now:int -> int option
(** Event-engine contract.  The hierarchy (caches, directory, DRAM) is
    purely passive: every latency is charged synchronously at [access]
    time against the requesting core's clock, so it holds no pending
    state of its own and never wakes up by itself — always [None]. *)

val export_metrics : t -> Helix_obs.Metrics.t -> unit
(** Publish directory/L2 counters and per-core L1 hit rates under
    ["hier."]. *)
