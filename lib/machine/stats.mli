(** Per-core cycle accounting: every simulated cycle lands in exactly one
    bucket, following the overhead taxonomy of Figure 12. *)

type bucket =
  | Busy
  | Sync_instr
  | Dep_wait
  | Communication
  | Mem_stall
  | Pipeline
  | Idle

val all_buckets : bucket list
val bucket_name : bucket -> string

type t = {
  mutable cycles : int;
  mutable retired : int;
  mutable retired_sync : int;
  mutable shared_loads : int;
  mutable shared_stores : int;
  by_bucket : (bucket, int) Hashtbl.t;
}

val create : unit -> t
val charge : t -> bucket -> unit
val get : t -> bucket -> int
val merge : t list -> t
val fraction : t -> bucket -> float

val export_metrics : prefix:string -> t -> Helix_obs.Metrics.t -> unit
(** Publish cycles, retirement counters, IPC and the per-bucket counts
    and fractions under [prefix ^ "."] — the same fractions [pp]
    prints. *)

val pp : Format.formatter -> t -> unit
