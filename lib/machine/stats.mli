(** Per-core cycle accounting: every simulated cycle lands in exactly one
    bucket, following the overhead taxonomy of Figure 12. *)

type bucket =
  | Busy
  | Sync_instr
  | Dep_wait
  | Communication
  | Mem_stall
  | Pipeline
  | Idle

val all_buckets : bucket list
val bucket_name : bucket -> string

type t = {
  mutable cycles : int;
  mutable retired : int;
  mutable retired_sync : int;
  mutable shared_loads : int;
  mutable shared_stores : int;
  by_bucket : (bucket, int) Hashtbl.t;
  retired_sink : int ref;
}

val create : ?retired_sink:int ref -> unit -> t
(** [retired_sink] (default: a private ref) is a shared monotonic
    counter bumped by every {!retire}; the executor threads one ref
    through all cores so its watchdog can observe aggregate retirement
    progress in O(1) instead of folding over every core each cycle. *)

val charge : t -> bucket -> unit

val charge_n : t -> bucket -> int -> unit
(** [charge_n t b n] records [n] cycles in bucket [b] — exactly what [n]
    consecutive [charge t b] calls would.  Used when the event engine
    fast-forwards over a stall window. *)

val retire : t -> unit
(** Count one retired uop, in both [t.retired] and the shared sink. *)

val get : t -> bucket -> int
val merge : t list -> t
val fraction : t -> bucket -> float

val export_metrics : prefix:string -> t -> Helix_obs.Metrics.t -> unit
(** Publish cycles, retirement counters, IPC and the per-bucket counts
    and fractions under [prefix ^ "."] — the same fractions [pp]
    prints. *)

val pp : Format.formatter -> t -> unit
