(* Common interface between core timing models and the runtime.

   The runtime hands each core a [supply]:
   - [sup_next] pops the next uop on the committed path, or [None] when
     the core has no work (loop finished, or the next iteration is not
     assigned yet);
   - [sup_mem] charges a private (non-segment) memory access against the
     core's L1 path and returns its latency;
   - [sup_shared] performs a shared-world operation *at this cycle*
     (ring-cache or coherent access, wait/signal, flush) and either
     completes it with a latency or asks the core to retry next cycle;
   - [sup_settled] may only be consulted right after [sup_next] returned
     [None]: [true] asserts that further [sup_next] calls are pure and
     will keep returning [None] until some *other* component (scheduler,
     ring, another core) changes shared state — the event engine uses it
     to prove a core idle without waiting out the conservative
     two-fruitless-pulls rule. *)

type supply = {
  sup_next : unit -> Uop.t option;
  sup_mem : cycle:int -> write:bool -> addr:int -> int;
  sup_shared : cycle:int -> tag:int -> Uop.shared_op -> Uop.shared_outcome;
      (* [tag] is the uop's [Uop.meta]: the iteration the operation
         belongs to *)
  sup_settled : unit -> bool;
}

module type S = sig
  type t

  val create : Mach_config.core_config -> supply -> t
  val tick : t -> int -> unit
  (** [tick t cycle] advances the core by one clock cycle. *)

  val quiescent : t -> bool
  (** No uop in flight and the supply currently yields nothing. *)

  val stats : t -> Stats.t
end
