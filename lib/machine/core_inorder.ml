(* Two-way in-order core timing model (Atom-like, as in XIOSim).

   Issue is strictly in program order: a uop issues when its sources are
   ready, the fetch front-end is not redirecting, and its functional unit
   is free.  The data cache is blocking: one outstanding memory access.
   Shared-world uops poll the executor's callback until they complete,
   which is where wait-stalls and communication stalls appear. *)

type t = {
  my_id : int;
  cfg : Mach_config.core_config;
  supply : Core_model.supply;
  stats : Stats.t;
  predictor : Branch_pred.t;
  reg_ready : (int, int) Hashtbl.t;
  mutable pending : Uop.t option;  (* fetched, not yet issued *)
  mutable fetch_avail : int;       (* front-end redirect until this cycle *)
  mutable mem_busy_until : int;    (* blocking data-cache port *)
  mutable last_stall : Stats.bucket;
  (* event-engine bookkeeping: enough state to prove, after a tick, that
     the core cannot act before some future cycle *)
  mutable ne_full : bool;          (* tick ended at the width limit *)
  mutable ne_attempt : int;        (* cycle of the last try_issue call *)
  mutable ne_retry : bool;         (* that attempt ended in Sh_retry *)
  mutable ne_idle_ticks : int;     (* consecutive ticks ending in a
                                      fruitless supply pull *)
  mutable ne_changed : bool;       (* last tick (or quiescence probe)
                                      changed state: issued or fetched *)
}

let trace_core =
  match Sys.getenv_opt "HELIX_TRACE_CORE" with
  | Some v -> (try int_of_string v with _ -> -1)
  | None -> -1

let trace_win =
  match Sys.getenv_opt "HELIX_TRACE_WIN" with
  | Some v -> (
      match String.split_on_char '-' v with
      | [ a; b ] -> (int_of_string a, int_of_string b)
      | _ -> (0, -1))
  | None -> (0, -1)

let core_counter = ref (-1)

let create ?retired_sink cfg supply =
  incr core_counter;
  {
    my_id = !core_counter mod 16;
    cfg;
    supply;
    stats = Stats.create ?retired_sink ();
    predictor = Branch_pred.create ();
    reg_ready = Hashtbl.create 64;
    pending = None;
    fetch_avail = 0;
    mem_busy_until = 0;
    last_stall = Stats.Idle;
    ne_full = false;
    ne_attempt = min_int;
    ne_retry = false;
    ne_idle_ticks = 0;
    ne_changed = false;
  }

let ready t r = try Hashtbl.find t.reg_ready r with Not_found -> 0

let srcs_ready t (u : Uop.t) cycle =
  List.for_all (fun r -> ready t r <= cycle) u.Uop.srcs

let set_dst t (u : Uop.t) c =
  match u.Uop.dst with
  | Some d -> Hashtbl.replace t.reg_ready d c
  | None -> ()

let src_ready_cycle t (u : Uop.t) =
  List.fold_left (fun acc r -> max acc (ready t r)) 0 u.Uop.srcs

(* memory-unit occupancy: loads and stores contend for the port;
   wait/signal issue from the store queue for ordering but ride their own
   wires, so an outstanding data access does not delay them *)
let is_mem (u : Uop.t) =
  match u.Uop.kind with
  | Uop.Load_priv _ | Uop.Store_priv _
  | Uop.Shared (Uop.S_load _ | Uop.S_store _) ->
      true
  | _ -> false

(* Attempt to issue [u] at [cycle].  Returns [`Issued], or [`Stall b]
   attributing the blockage. *)
let try_issue t (u : Uop.t) cycle =
  t.ne_attempt <- cycle;
  t.ne_retry <- false;
  if cycle < t.fetch_avail then `Stall Stats.Pipeline
  else if not (srcs_ready t u cycle) then
    (* blocked on an in-flight producer; attribute to memory if the
       producer is a load still outstanding through the cache port *)
    if src_ready_cycle t u > cycle && t.mem_busy_until > cycle then
      `Stall Stats.Mem_stall
    else `Stall Stats.Pipeline
  else if is_mem u && cycle < t.mem_busy_until then `Stall Stats.Mem_stall
  else begin
    match u.Uop.kind with
    | Uop.Alu lat ->
        set_dst t u (cycle + lat);
        Stats.retire t.stats;
        `Issued
    | Uop.Branch { taken; static_id } ->
        let mis = Branch_pred.predict_update t.predictor ~static_id ~taken in
        if mis then t.fetch_avail <- cycle + 1 + t.cfg.Mach_config.branch_penalty;
        Stats.retire t.stats;
        `Issued
    | Uop.Load_priv addr ->
        let lat = t.supply.Core_model.sup_mem ~cycle ~write:false ~addr in
        set_dst t u (cycle + lat);
        (* cache hits are pipelined; only misses block the port *)
        t.mem_busy_until <- (cycle + if lat <= 4 then 1 else lat);
        Stats.retire t.stats;
        `Issued
    | Uop.Store_priv addr ->
        (* retire through a write buffer: charge the cache state change,
           hide the latency, occupy the port for one cycle *)
        ignore (t.supply.Core_model.sup_mem ~cycle ~write:true ~addr);
        t.mem_busy_until <- cycle + 1;
        Stats.retire t.stats;
        `Issued
    | Uop.Shared op -> begin
        match t.supply.Core_model.sup_shared ~cycle ~tag:u.Uop.meta op with
        | Uop.Sh_done { latency; value } ->
            (match op with
            | Uop.S_load _ ->
                set_dst t u (cycle + latency);
                t.mem_busy_until <- cycle + latency;
                (match u.Uop.sink with Some k -> k value | None -> ());
                t.stats.Stats.shared_loads <- t.stats.Stats.shared_loads + 1
            | Uop.S_store _ ->
                (* shared stores hold the port for their full latency:
                   ring injection is ~1 cycle, conventional ownership
                   acquisition is a round trip *)
                t.mem_busy_until <- cycle + max 1 latency;
                t.stats.Stats.shared_stores <- t.stats.Stats.shared_stores + 1
            | Uop.S_wait _ | Uop.S_signal _ ->
                t.stats.Stats.retired_sync <- t.stats.Stats.retired_sync + 1
            | Uop.S_flush -> ());
            Stats.retire t.stats;
            `Issued
        | Uop.Sh_retry ->
            t.ne_retry <- true;
            let bucket =
              match op with
              | Uop.S_wait _ -> Stats.Dep_wait
              | Uop.S_load _ | Uop.S_store _ | Uop.S_signal _ | Uop.S_flush ->
                  Stats.Communication
            in
            `Stall bucket
      end
  end

let tick t cycle =
  let lo, hi = trace_win in
  let tracing = t.my_id = trace_core && cycle >= lo && cycle <= hi in
  if tracing then
    (match t.pending with
    | Some u ->
        Printf.eprintf "@%d core%d pending %s membusy=%d\n" cycle t.my_id
          (Format.asprintf "%a" Uop.pp u)
          t.mem_busy_until
    | None -> ());
  let issued = ref 0 in
  let fetched = ref false in
  let only_sync = ref true in
  let stall = ref None in
  let continue_ = ref true in
  while !continue_ && !issued < t.cfg.Mach_config.width do
    let next =
      match t.pending with
      | Some u -> Some u
      | None ->
          let u = t.supply.Core_model.sup_next () in
          t.pending <- u;
          if u <> None then fetched := true;
          u
    in
    match next with
    | None ->
        if !issued = 0 then stall := Some Stats.Idle;
        continue_ := false
    | Some u -> begin
        match try_issue t u cycle with
        | `Issued ->
            t.pending <- None;
            incr issued;
            if not (Uop.is_sync u) then only_sync := false
        | `Stall b ->
            if !issued = 0 then stall := Some b;
            continue_ := false
      end
  done;
  let bucket =
    if !issued > 0 then if !only_sync then Stats.Sync_instr else Stats.Busy
    else match !stall with Some b -> b | None -> Stats.Pipeline
  in
  t.last_stall <- bucket;
  t.ne_full <- !issued >= t.cfg.Mach_config.width;
  (* A single fruitless pull proves nothing: [Context.next_uop] returns
     [None] on the very call that executes the iteration's [ret], and
     the *next* pull is the one that runs [finish_iteration] / starts
     the next iteration.  The supply can often certify settledness
     directly ([sup_settled]); otherwise only two consecutive
     idle-ending ticks prove it (further pulls are pure). *)
  (if t.pending = None && not t.ne_full then
     if t.supply.Core_model.sup_settled () then t.ne_idle_ticks <- 2
     else t.ne_idle_ticks <- (if !issued > 0 then 1 else t.ne_idle_ticks + 1)
   else t.ne_idle_ticks <- 0);
  (* Heap-engine re-poll hint: issuing or fetching is the only way a
     tick can move this core's earliest event earlier (stall deadlines
     are only ever written by successful issues). *)
  t.ne_changed <- !issued > 0 || !fetched;
  Stats.charge t.stats bucket

(* ---- event-engine interface ------------------------------------------ *)

(* Pure re-derivation of the stall bucket [try_issue] would report for
   [u] at [cycle], mirroring its check order exactly.  Only called when
   the uop provably cannot issue at [cycle] (inside a skip window), so
   the fall-through arm for issuable non-shared uops is unreachable. *)
let stall_bucket t (u : Uop.t) cycle =
  if cycle < t.fetch_avail then Stats.Pipeline
  else if not (srcs_ready t u cycle) then
    if src_ready_cycle t u > cycle && t.mem_busy_until > cycle then
      Stats.Mem_stall
    else Stats.Pipeline
  else if is_mem u && cycle < t.mem_busy_until then Stats.Mem_stall
  else
    match u.Uop.kind with
    | Uop.Shared (Uop.S_wait _) -> Stats.Dep_wait
    | Uop.Shared _ -> Stats.Communication
    | _ -> Stats.Pipeline

(* Earliest future cycle at which this core could change state on its
   own; [Some now] = active (do not skip); [None] = purely reactive
   (blocked on the shared world: only executor/ring events unblock it,
   and those components publish their own wake-ups). *)
let next_event t ~now =
  if t.ne_full then
    (* the last tick ended at the issue-width limit, so the state of the
       uop supply beyond it is unknown: assume active *)
    Some now
  else
    match t.pending with
    | None ->
        (* idle is only provably stable after two consecutive
           fruitless-pull ticks (see the tick epilogue) *)
        if t.ne_idle_ticks >= 2 then None else Some now
    | Some u ->
        if t.ne_attempt <> now - 1 then
          (* the pending uop was fetched after this core's tick (the
             scheduler's quiescence probe pulls from the supply): it has
             never been attempted, so no stall proof exists yet *)
          Some now
        else begin
          let w = ref max_int in
          let add c = if c >= now && c < !w then w := c in
          add t.fetch_avail;
          add (src_ready_cycle t u);
          add t.mem_busy_until;
          if !w < max_int then Some !w
          else if t.ne_retry then None
          else Some now
        end

(* Account for [cycles] skipped cycles starting at [now]: the ticks the
   engine elided would each have charged the (constant) stall bucket of
   the current state. *)
let skip t ~now ~cycles =
  let b =
    match t.pending with
    | None -> Stats.Idle
    | Some u -> stall_bucket t u now
  in
  t.last_stall <- b;
  Stats.charge_n t.stats b cycles

let quiescent t =
  match t.pending with
  | Some _ -> false
  | None -> (
      match t.supply.Core_model.sup_next () with
      | None -> true
      | Some u ->
          t.pending <- Some u;
          t.ne_changed <- true;
          false)

let changed t = t.ne_changed

let stats t = t.stats

let describe t =
  match t.pending with
  | None -> "no pending"
  | Some u ->
      Format.asprintf "pending=%a membusy=%d fetch_avail=%d" Uop.pp u
        t.mem_busy_until t.fetch_avail
