(* Core-model dispatcher: picks the in-order or out-of-order timing engine
   according to the configuration. *)

type t =
  | In_order of Core_inorder.t
  | Out_of_order of Core_ooo.t

let create ?retired_sink (cfg : Mach_config.core_config)
    (supply : Core_model.supply) =
  match cfg.Mach_config.kind with
  | Mach_config.In_order -> In_order (Core_inorder.create ?retired_sink cfg supply)
  | Mach_config.Out_of_order ->
      Out_of_order (Core_ooo.create ?retired_sink cfg supply)

let tick = function
  | In_order c -> Core_inorder.tick c
  | Out_of_order c -> Core_ooo.tick c

let next_event = function
  | In_order c -> Core_inorder.next_event c
  | Out_of_order c -> Core_ooo.next_event c

let skip = function
  | In_order c -> Core_inorder.skip c
  | Out_of_order c -> Core_ooo.skip c

let quiescent = function
  | In_order c -> Core_inorder.quiescent c
  | Out_of_order c -> Core_ooo.quiescent c

let changed = function
  | In_order c -> Core_inorder.changed c
  | Out_of_order c -> Core_ooo.changed c

let stats = function
  | In_order c -> Core_inorder.stats c
  | Out_of_order c -> Core_ooo.stats c

let describe = function
  | In_order c -> Core_inorder.describe c
  | Out_of_order c -> Core_ooo.describe c
