(** Core-model dispatcher: the in-order or out-of-order timing engine,
    chosen by configuration. *)

type t

val create :
  ?retired_sink:int ref -> Mach_config.core_config -> Core_model.supply -> t
(** [retired_sink] is shared with {!Stats.create}: a monotonic counter
    bumped on every retirement, letting the executor watchdog observe
    aggregate progress without folding over all cores each cycle. *)

val tick : t -> int -> unit
(** Advance the core one clock cycle. *)

val next_event : t -> now:int -> int option
(** Event-engine contract: [Some c] (c >= now) promises the core cannot
    change architectural state before cycle [c] without an external
    event; [Some now] means active; [None] means purely reactive
    (blocked on the shared world). *)

val skip : t -> now:int -> cycles:int -> unit
(** Charge the cycle-accounting the elided ticks of a fast-forwarded
    window would have performed (the stall bucket is constant across an
    event-free window). *)

val quiescent : t -> bool
(** Nothing in flight and the supply currently yields no work. *)

val changed : t -> bool
(** Heap-engine re-poll hint: did the last tick (or a subsequent
    {!quiescent} probe) change core state in a way that could move its
    earliest event earlier?  [false] guarantees the last {!next_event}
    promise still stands. *)

val stats : t -> Stats.t
val describe : t -> string
