(* Out-of-order core timing model (Nehalem-like, as in Zesto).

   A single unified window holds dispatched uops.  Uops issue out of order
   when their producers have completed, bounded by issue width; they
   commit in order.  Per the paper (Section 5.1), wait/signal and all
   sequential-segment memory operations issue non-speculatively from the
   head of the window -- a lightweight local fence -- so regular accesses
   are never reordered around them.  Mispredicted branches block dispatch
   until they resolve, plus a front-end redirect penalty. *)

type entry = {
  u : Uop.t;
  seq : int;
  mutable issued : bool;
  mutable completion : int;
  mutable committed : bool;
  deps : entry list;            (* in-window producers of our sources *)
  fallback_srcs : int list;     (* sources with no in-window producer *)
  order_dep : entry option;     (* previous store-like op, for mem order *)
  mispredicted : bool;          (* branches: known at dispatch *)
}

type t = {
  cfg : Mach_config.core_config;
  supply : Core_model.supply;
  stats : Stats.t;
  predictor : Branch_pred.t;
  reg_ready : (int, int) Hashtbl.t;        (* committed producers *)
  reg_writer : (int, entry) Hashtbl.t;     (* latest in-window writer *)
  mutable window : entry list;             (* oldest first *)
  mutable window_size : int;
  mutable next_seq : int;
  mutable fetch_avail : int;
  mutable blocking_branch : entry option;  (* dispatch stalled until resolve *)
  mutable last_mem_order : entry option;
  (* event-engine bookkeeping *)
  mutable ne_progress : bool;  (* last tick committed/issued/dispatched *)
  mutable ne_poked : bool;     (* quiescence probe dispatched after tick *)
  mutable ne_supply_none : bool;  (* last dispatch ended on an empty pull *)
  mutable ne_idle_ticks : int;    (* consecutive empty-pull ticks *)
}

let create ?retired_sink cfg supply =
  {
    cfg;
    supply;
    stats = Stats.create ?retired_sink ();
    predictor = Branch_pred.create ();
    reg_ready = Hashtbl.create 64;
    reg_writer = Hashtbl.create 64;
    window = [];
    window_size = 0;
    next_seq = 0;
    fetch_avail = 0;
    blocking_branch = None;
    last_mem_order = None;
    ne_progress = false;
    ne_poked = false;
    ne_supply_none = false;
    ne_idle_ticks = 0;
  }

let reg_ready_at t r = try Hashtbl.find t.reg_ready r with Not_found -> 0

let srcs_ready t (e : entry) cycle =
  List.for_all (fun d -> d.issued && d.completion <= cycle) e.deps
  && List.for_all (fun r -> reg_ready_at t r <= cycle) e.fallback_srcs

let order_ok (e : entry) =
  match e.order_dep with None -> true | Some d -> d.issued

let is_store_like (u : Uop.t) =
  match u.Uop.kind with
  | Uop.Store_priv _ | Uop.Shared _ -> true
  | _ -> false

let is_head t (e : entry) =
  match t.window with e0 :: _ -> e0 == e | [] -> false

(* -- dispatch -------------------------------------------------------- *)

let dispatch t cycle =
  let n = ref 0 in
  let continue_ = ref true in
  t.ne_supply_none <- false;
  while
    !continue_ && !n < t.cfg.Mach_config.width
    && t.window_size < t.cfg.Mach_config.window
    && cycle >= t.fetch_avail
    && t.blocking_branch = None
  do
    match t.supply.Core_model.sup_next () with
    | None ->
        t.ne_supply_none <- true;
        continue_ := false
    | Some u ->
        let deps, fallback =
          List.fold_left
            (fun (ds, fb) r ->
              match Hashtbl.find_opt t.reg_writer r with
              | Some e when not e.committed -> (e :: ds, fb)
              | _ -> (ds, r :: fb))
            ([], []) u.Uop.srcs
        in
        let mispredicted =
          match u.Uop.kind with
          | Uop.Branch { taken; static_id } ->
              Branch_pred.predict_update t.predictor ~static_id ~taken
          | _ -> false
        in
        let order_dep =
          match u.Uop.kind with
          | Uop.Load_priv _ | Uop.Store_priv _ | Uop.Shared _ ->
              t.last_mem_order
          | _ -> None
        in
        let e =
          {
            u;
            seq = t.next_seq;
            issued = false;
            completion = max_int;
            committed = false;
            deps;
            fallback_srcs = fallback;
            order_dep;
            mispredicted;
          }
        in
        t.next_seq <- t.next_seq + 1;
        (match u.Uop.dst with
        | Some d -> Hashtbl.replace t.reg_writer d e
        | None -> ());
        if is_store_like u then t.last_mem_order <- Some e;
        if mispredicted then t.blocking_branch <- Some e;
        t.window <- t.window @ [ e ];
        t.window_size <- t.window_size + 1;
        incr n
  done;
  !n

(* -- issue ----------------------------------------------------------- *)

(* Try to issue entry [e]; returns true on success. *)
let try_issue t e cycle =
  match e.u.Uop.kind with
  | Uop.Alu lat ->
      e.issued <- true;
      e.completion <- cycle + lat;
      true
  | Uop.Branch _ ->
      e.issued <- true;
      e.completion <- cycle + 1;
      true
  | Uop.Load_priv addr ->
      let lat = t.supply.Core_model.sup_mem ~cycle ~write:false ~addr in
      e.issued <- true;
      e.completion <- cycle + lat;
      true
  | Uop.Store_priv addr ->
      ignore (t.supply.Core_model.sup_mem ~cycle ~write:true ~addr);
      e.issued <- true;
      e.completion <- cycle + 1;
      true
  | Uop.Shared op -> begin
      (* non-speculative: only from the head of the window *)
      if not (is_head t e) then false
      else
        match t.supply.Core_model.sup_shared ~cycle ~tag:e.u.Uop.meta op with
        | Uop.Sh_done { latency; value } ->
            (match op with
            | Uop.S_load _ -> (
                match e.u.Uop.sink with Some k -> k value | None -> ())
            | _ -> ());
            (match op with
            | Uop.S_load _ ->
                t.stats.Stats.shared_loads <- t.stats.Stats.shared_loads + 1
            | Uop.S_store _ ->
                t.stats.Stats.shared_stores <- t.stats.Stats.shared_stores + 1
            | _ -> ());
            e.issued <- true;
            e.completion <- cycle + max 1 latency;
            true
        | Uop.Sh_retry -> false
    end

let issue t cycle =
  let ports = ref t.cfg.Mach_config.width in
  List.iter
    (fun e ->
      if
        !ports > 0 && (not e.issued)
        && srcs_ready t e cycle
        && order_ok e
      then
        if try_issue t e cycle then begin
          decr ports;
          (* resolve a blocking mispredicted branch *)
          if e.mispredicted then begin
            t.fetch_avail <- e.completion + t.cfg.Mach_config.branch_penalty;
            match t.blocking_branch with
            | Some b when b == e -> t.blocking_branch <- None
            | _ -> ()
          end
        end)
    t.window;
  t.cfg.Mach_config.width - !ports

(* -- commit ---------------------------------------------------------- *)

let commit t cycle =
  let n = ref 0 in
  let rec go () =
    match t.window with
    | e :: rest
      when !n < t.cfg.Mach_config.width && e.issued && e.completion <= cycle
      -> begin
        e.committed <- true;
        t.window <- rest;
        t.window_size <- t.window_size - 1;
        incr n;
        Stats.retire t.stats;
        if Uop.is_sync e.u then
          t.stats.Stats.retired_sync <- t.stats.Stats.retired_sync + 1;
        (match e.u.Uop.dst with
        | Some d ->
            Hashtbl.replace t.reg_ready d e.completion;
            (match Hashtbl.find_opt t.reg_writer d with
            | Some w when w == e -> Hashtbl.remove t.reg_writer d
            | _ -> ());
            ()
        | None -> ());
        (match t.last_mem_order with
        | Some m when m == e -> t.last_mem_order <- None
        | _ -> ());
        go ()
      end
    | _ -> ()
  in
  go ();
  !n

(* -- one clock ------------------------------------------------------- *)

(* Stall attribution when nothing committed/issued/dispatched this
   cycle: read off the window head.  Shared with [skip], which charges
   the same (frozen) state for every elided cycle. *)
let stall_bucket t =
  match t.window with
  | [] -> Stats.Idle
  | e :: _ -> begin
      match (e.u.Uop.kind, e.issued) with
      | Uop.Shared (Uop.S_wait _), false -> Stats.Dep_wait
      | Uop.Shared _, false -> Stats.Communication
      | (Uop.Load_priv _ | Uop.Store_priv _), true -> Stats.Mem_stall
      | Uop.Shared (Uop.S_load _), true -> Stats.Communication
      | _ -> Stats.Pipeline
    end

let tick t cycle =
  t.ne_poked <- false;
  let committed = commit t cycle in
  let issued = issue t cycle in
  let dispatched = dispatch t cycle in
  t.ne_progress <- committed > 0 || issued > 0 || dispatched > 0;
  (* Supply settledness: a single fruitless pull proves nothing (the
     next pull may run [finish_iteration] or start an iteration — see
     core_inorder.ml); the supply can often certify it directly
     ([sup_settled]), otherwise two consecutive empty-pull ticks do.
     Ticks whose dispatch never reached a pull (gated on window space,
     the front end or a blocking branch) leave the supply state
     unchanged. *)
  if t.ne_supply_none then
    if t.supply.Core_model.sup_settled () then t.ne_idle_ticks <- 2
    else t.ne_idle_ticks <- (if dispatched > 0 then 1 else t.ne_idle_ticks + 1)
  else if dispatched > 0 then t.ne_idle_ticks <- 0;
  let bucket =
    if issued > 0 || committed > 0 then begin
      (* busy unless purely synchronization is flowing *)
      let only_sync =
        t.window <> []
        && List.for_all (fun e -> (not e.issued) || Uop.is_sync e.u) t.window
      in
      if only_sync && issued > 0 then Stats.Sync_instr else Stats.Busy
    end
    else stall_bucket t
  in
  Stats.charge t.stats bucket

(* ---- event-engine interface ------------------------------------------ *)

(* Earliest future cycle at which this core could change state on its
   own.  Candidates: the front-end redirect clearing (gates dispatch),
   issued entries' completions (gate commit and dependents), and
   unissued entries' committed-register ready times.  Entries blocked
   only on the shared world contribute nothing: the executor and ring
   publish those wake-ups themselves. *)
let next_event t ~now =
  if t.ne_progress || t.ne_poked then Some now
  else if
    (* dispatch is unblocked but the supply is not provably settled: the
       very next pull may yield uops (or advance iteration scheduling) *)
    t.ne_idle_ticks < 2
    && t.window_size < t.cfg.Mach_config.window
    && now >= t.fetch_avail
    && t.blocking_branch = None
  then Some now
  else begin
    let w = ref max_int in
    let add c = if c >= now && c < !w then w := c in
    add t.fetch_avail;
    List.iter
      (fun e ->
        if e.issued then (if e.completion < max_int then add e.completion)
        else List.iter (fun r -> add (reg_ready_at t r)) e.fallback_srcs)
      t.window;
    if !w < max_int then Some !w else None
  end

let skip t ~now:_ ~cycles = Stats.charge_n t.stats (stall_bucket t) cycles

(* Heap-engine re-poll hint: without commit/issue/dispatch (or a
   quiescence-probe dispatch), a tick only advances the idle-tick
   counter, which can never move the earliest event earlier. *)
let changed t = t.ne_progress || t.ne_poked

let quiescent t =
  t.window = []
  &&
  match t.supply.Core_model.sup_next () with
  | None -> true
  | Some u ->
      (* push it back by dispatching it into the (empty) window *)
      let e =
        {
          u;
          seq = t.next_seq;
          issued = false;
          completion = max_int;
          committed = false;
          deps = [];
          fallback_srcs = u.Uop.srcs;
          order_dep = None;
          mispredicted = false;
        }
      in
      t.next_seq <- t.next_seq + 1;
      (match u.Uop.dst with
      | Some d -> Hashtbl.replace t.reg_writer d e
      | None -> ());
      if is_store_like u then t.last_mem_order <- Some e;
      t.window <- [ e ];
      t.window_size <- 1;
      (* the probe ran after this core's tick: the new entry has never
         been attempted, so the engine must not fast-forward past it *)
      t.ne_poked <- true;
      false

let stats t = t.stats

(* Diagnostic snapshot of the window head, for deadlock reports. *)
let describe t =
  match t.window with
  | [] -> "window empty"
  | entries ->
      String.concat " | "
        (List.map
           (fun e ->
             Format.asprintf "%a%s" Uop.pp e.u
               (if e.issued then "!" else "?"))
           entries)
      ^ Printf.sprintf " (fetch_avail=%d blocked=%b)" t.fetch_avail
        (t.blocking_branch <> None)
