(* Per-core cycle accounting.

   Every simulated cycle of every core is attributed to exactly one
   bucket.  The buckets follow the overhead taxonomy of Figure 12 (via
   Burger et al.'s methodology): a cycle is useful computation, or it is
   lost to synchronization instructions, dependence waiting, communication
   of shared data, the private memory hierarchy, or idling (no iteration
   assigned -- low trip count / iteration imbalance). *)

type bucket =
  | Busy              (* at least one uop issued *)
  | Sync_instr        (* issuing/executing wait-signal instructions *)
  | Dep_wait          (* blocked in wait for a predecessor's signal *)
  | Communication     (* stalled on shared-data transfer (ring or c2c) *)
  | Mem_stall         (* stalled on private cache miss *)
  | Pipeline          (* RAW / structural / branch-penalty stalls *)
  | Idle              (* no work available *)

let all_buckets =
  [ Busy; Sync_instr; Dep_wait; Communication; Mem_stall; Pipeline; Idle ]

let bucket_name = function
  | Busy -> "busy"
  | Sync_instr -> "wait/signal"
  | Dep_wait -> "dependence-waiting"
  | Communication -> "communication"
  | Mem_stall -> "memory"
  | Pipeline -> "pipeline"
  | Idle -> "idle"

type t = {
  mutable cycles : int;
  mutable retired : int;
  mutable retired_sync : int;    (* wait+signal instructions retired *)
  mutable shared_loads : int;
  mutable shared_stores : int;
  by_bucket : (bucket, int) Hashtbl.t;
  retired_sink : int ref;
      (* shared monotonic retirement counter, bumped on every [retire];
         lets the executor's watchdog observe aggregate progress without
         folding over all cores each cycle *)
}

let create ?(retired_sink = ref 0) () =
  {
    cycles = 0;
    retired = 0;
    retired_sync = 0;
    shared_loads = 0;
    shared_stores = 0;
    by_bucket = Hashtbl.create 7;
    retired_sink;
  }

let charge t bucket =
  t.cycles <- t.cycles + 1;
  Hashtbl.replace t.by_bucket bucket
    (1 + (try Hashtbl.find t.by_bucket bucket with Not_found -> 0))

(* Charge [n] cycles to [bucket] at once: what a run of identical
   per-cycle [charge] calls would record.  Used by the event engine when
   it fast-forwards over a stall window. *)
let charge_n t bucket n =
  if n > 0 then begin
    t.cycles <- t.cycles + n;
    Hashtbl.replace t.by_bucket bucket
      (n + (try Hashtbl.find t.by_bucket bucket with Not_found -> 0))
  end

let retire t =
  t.retired <- t.retired + 1;
  incr t.retired_sink

let get t bucket = try Hashtbl.find t.by_bucket bucket with Not_found -> 0

let merge (ts : t list) =
  let m = create () in
  List.iter
    (fun t ->
      m.cycles <- m.cycles + t.cycles;
      m.retired <- m.retired + t.retired;
      m.retired_sync <- m.retired_sync + t.retired_sync;
      m.shared_loads <- m.shared_loads + t.shared_loads;
      m.shared_stores <- m.shared_stores + t.shared_stores;
      List.iter
        (fun b ->
          let v = get t b in
          if v > 0 then
            Hashtbl.replace m.by_bucket b (v + get m b))
        all_buckets)
    ts;
  m

let fraction t bucket =
  if t.cycles = 0 then 0.0
  else float_of_int (get t bucket) /. float_of_int t.cycles

(* Publish this accounting under [prefix] ("core.3", "cores", ...).  The
   bucket fractions exported here are exactly what [pp] prints, so a
   metrics dump and the legacy text path can be cross-checked. *)
let export_metrics ~prefix t (m : Helix_obs.Metrics.t) =
  let open Helix_obs in
  let key k = prefix ^ "." ^ k in
  Metrics.set_int m (key "cycles") t.cycles;
  Metrics.set_int m (key "retired") t.retired;
  Metrics.set_int m (key "retired_sync") t.retired_sync;
  Metrics.set_int m (key "shared_loads") t.shared_loads;
  Metrics.set_int m (key "shared_stores") t.shared_stores;
  Metrics.set_float m (key "ipc")
    (if t.cycles = 0 then 0.0
     else float_of_int t.retired /. float_of_int t.cycles);
  List.iter
    (fun b ->
      Metrics.set_int m (key ("bucket." ^ bucket_name b)) (get t b);
      Metrics.set_float m (key ("frac." ^ bucket_name b)) (fraction t b))
    all_buckets

let pp ppf t =
  Format.fprintf ppf "cycles=%d retired=%d ipc=%.2f" t.cycles t.retired
    (if t.cycles = 0 then 0.0
     else float_of_int t.retired /. float_of_int t.cycles);
  List.iter
    (fun b ->
      let v = get t b in
      if v > 0 then
        Format.fprintf ppf " %s=%.1f%%" (bucket_name b)
          (100.0 *. float_of_int v /. float_of_int t.cycles))
    all_buckets
