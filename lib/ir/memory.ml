(* Flat, word-addressed memory shared by the reference interpreter and the
   cycle-stepped simulator.  Uninitialized words read as zero.

   Workloads allocate named regions statically through [Layout]; the
   region table doubles as the ground truth for allocation sites and for
   the ring cache's owner-node address hashing. *)

type t = {
  words : (int, int) Hashtbl.t;
  mutable writes : int; (* total stores, for statistics *)
}

let create () = { words = Hashtbl.create 4096; writes = 0 }

let load m a = match Hashtbl.find_opt m.words a with Some v -> v | None -> 0

let store m a v =
  m.writes <- m.writes + 1;
  if v = 0 then Hashtbl.remove m.words a else Hashtbl.replace m.words a v

let copy m = { words = Hashtbl.copy m.words; writes = m.writes }

let clear m =
  Hashtbl.reset m.words;
  m.writes <- 0

(* Roll [m] back to the image captured in [from] (itself untouched).  The
   executor's fallback path checkpoints memory at parallel-loop entry and
   restores it here before re-executing the invocation sequentially. *)
let restore m ~from =
  Hashtbl.reset m.words;
  Hashtbl.iter (fun a v -> if v <> 0 then Hashtbl.replace m.words a v) from.words;
  m.writes <- m.writes + 1

(* Content hash, independent of insertion order; used as the oracle that a
   parallel execution produced exactly the sequential memory image. *)
let hash m =
  let acc = ref 0 in
  Hashtbl.iter
    (fun a v -> if v <> 0 then acc := !acc lxor (Hashtbl.hash (a, v) * 0x9e3779b1))
    m.words;
  !acc

let equal m1 m2 =
  let sub a b =
    try
      Hashtbl.iter
        (fun k v -> if v <> 0 && load b k <> v then raise Exit)
        a.words;
      true
    with Exit -> false
  in
  sub m1 m2 && sub m2 m1

let nonzero_bindings m =
  Hashtbl.fold (fun a v acc -> if v <> 0 then (a, v) :: acc else acc) m.words []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Static layout of named regions                                      *)
(* ------------------------------------------------------------------ *)

module Layout = struct
  type region = { name : string; site : int; base : int; size : int }

  type t = {
    mutable regions : region list; (* newest first *)
    mutable next_base : int;
    mutable next_site : int;
  }

  let create () = { regions = []; next_base = 0x1000; next_site = 0 }

  (* Allocate [size] words for region [name]; returns the region.  Regions
     are padded to a multiple of 64 words so that distinct sites never
     share a cache line in any simulated cache. *)
  let alloc t name size =
    let site = t.next_site in
    t.next_site <- site + 1;
    let base = t.next_base in
    let padded = ((max 1 size + 63) / 64) * 64 in
    t.next_base <- base + padded;
    let r = { name; site; base; size } in
    t.regions <- r :: t.regions;
    r

  let find t name =
    match List.find_opt (fun r -> r.name = name) t.regions with
    | Some r -> r
    | None -> invalid_arg ("Memory.Layout.find: unknown region " ^ name)

  let region_of_addr t a =
    List.find_opt (fun r -> a >= r.base && a < r.base + r.size) t.regions

  let site_of_addr t a =
    match region_of_addr t a with Some r -> r.site | None -> -1

  let regions t = List.rev t.regions
end
