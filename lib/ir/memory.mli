(** Flat, word-addressed memory shared by the reference interpreter and
    the cycle-stepped simulator.  Uninitialized words read as zero; a
    store of zero erases the binding, so two memories with the same
    observable contents are [equal]. *)

type t

val create : unit -> t
val load : t -> int -> int
val store : t -> int -> int -> unit
val copy : t -> t
val clear : t -> unit

val restore : t -> from:t -> unit
(** [restore m ~from] rolls [m] back to the image captured in [from]
    (which is left untouched): the rollback half of the executor's
    checkpoint/re-execute fallback. *)

val hash : t -> int
(** Content hash, independent of insertion order: the oracle that a
    parallel execution reproduced the sequential memory image. *)

val equal : t -> t -> bool
val nonzero_bindings : t -> (int * int) list

(** Static layout of named regions: the ground truth for allocation
    sites, and the address map workload generators build against. *)
module Layout : sig
  type region = { name : string; site : int; base : int; size : int }
  type t

  val create : unit -> t

  val alloc : t -> string -> int -> region
  (** [alloc t name size] reserves [size] words.  Regions are padded so
      distinct sites never share a simulated cache line. *)

  val find : t -> string -> region
  val region_of_addr : t -> int -> region option
  val site_of_addr : t -> int -> int
  val regions : t -> region list
end
