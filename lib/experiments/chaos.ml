(* Chaos harness: registry workloads under seeded lossy-ring fault
   schedules, across all three simulation engines, every run checked
   against the differential oracle.

   A schedule is derived purely from its integer seed: the four
   message-class rates (drop / duplicate / reorder / corrupt, a few per
   mille each) plus, with probability ~1/4, a fail-stop of a non-zero
   core at a cycle inside the workload's fault-free horizon.  Schedules
   are spread round-robin over the workload registry and each schedule
   runs on every requested engine, so a sweep of N schedules covers the
   whole registry and engine matrix with N * |engines| runs.

   A run passes when it either recovers in-protocol (correct result,
   zero fallbacks -- the retransmission layer absorbed every fault) or
   degrades cleanly to the sequential fallback and still produces the
   correct result.  An oracle mismatch or an unexpected [Stuck] is a
   failure: the machine must never return a wrong answer or wedge. *)

open Helix_core
open Helix_machine
open Helix_workloads
module Ring = Helix_ring.Ring
module Engine = Helix_engine.Engine
module Metrics = Helix_obs.Metrics

(* Same splitmix-style mixer family as the ring's fault roll, but over
   (schedule_seed, salt) -- schedule derivation and in-run fault rolls
   draw from unrelated streams. *)
let hash (seed : int) (salt : int) : int =
  let x = seed lxor (salt * 0x9e3779b97f4a7c1) in
  let x = (x lxor (x lsr 30)) * 0xbf58476d1ce4e5b in
  let x = (x lxor (x lsr 27)) * 0x94d049bb133111e in
  (x lxor (x lsr 31)) land max_int

type outcome =
  | Recovered           (* correct result, no fallback: in-protocol *)
  | Fell_back           (* correct result after sequential fallback *)
  | Mismatch of string  (* wrong architectural result: a real failure *)
  | Died of string      (* unexpected [Stuck] / exception: a failure *)

let outcome_name = function
  | Recovered -> "recovered"
  | Fell_back -> "fell-back"
  | Mismatch _ -> "MISMATCH"
  | Died _ -> "DIED"

type run_result = {
  cr_workload : string;
  cr_engine : Engine.kind;
  cr_seed : int;
  cr_plan : Ring.fault_plan;
  cr_outcome : outcome;
  cr_cycles : int;
  cr_faults_injected : int;
  cr_retransmits : int;
  cr_drops_detected : int;
  cr_reknits : int;
  cr_fallbacks : int;
}

let passed r =
  match r.cr_outcome with
  | Recovered | Fell_back -> true
  | Mismatch _ | Died _ -> false

(* Watchdog for chaos runs: low enough that a protocol wedge surfaces
   quickly, far above the worst-case retransmission backoff
   (rtx_base * 2^6 is a few thousand cycles at default geometry). *)
let default_watchdog = 200_000

let plan_of_seed ~(n_cores : int) ~(horizon : int) (seed : int) :
    Ring.fault_plan =
  let h salt = hash seed salt in
  let drop = h 1 mod 9
  and dup = h 2 mod 9
  and reorder = h 3 mod 9
  and corrupt = h 4 mod 9 in
  let fail_stop =
    if n_cores > 1 && h 5 mod 4 = 0 then
      (* Never core 0: its death is unrecoverable by design (the serial
         core owns the program); chaos probes the recoverable space. *)
      Some (1 + (h 6 mod (n_cores - 1)), h 7 mod max 1 horizon)
    else None
  in
  Ring.faulty ~drop ~dup ~reorder ~corrupt ?fail_stop ~seed ()

let run_one ?(watchdog = default_watchdog) (wl : Workload.t)
    (engine : Engine.kind) (seed : int) (plan : Ring.fault_plan) : run_result
    =
  let cfg =
    Exp_common.helix_cfg ~robust:Executor.checked ~faults:plan ~engine ()
  in
  let cfg = { cfg with Executor.watchdog_cycles = watchdog } in
  let tag =
    Printf.sprintf "chaos/%s/%d" (Engine.kind_to_string engine) seed
  in
  let base outcome cycles m fallbacks =
    let find k = Option.value ~default:0 (Metrics.find_int m k) in
    {
      cr_workload = wl.Workload.name;
      cr_engine = engine;
      cr_seed = seed;
      cr_plan = plan;
      cr_outcome = outcome;
      cr_cycles = cycles;
      cr_faults_injected = find "ring.faults_injected";
      cr_retransmits = find "ring.retransmits";
      cr_drops_detected = find "ring.drops_detected";
      cr_reknits = find "ring.reknits";
      cr_fallbacks = fallbacks;
    }
  in
  match Exp_common.parallel ~cache:false ~tag wl Exp_common.V3 cfg with
  | r ->
      let outcome =
        if not (Exp_common.verified wl r) then
          Mismatch "final state differs from the sequential oracle"
        else if r.Executor.r_fallbacks > 0 then Fell_back
        else Recovered
      in
      base outcome r.Executor.r_cycles r.Executor.r_metrics
        r.Executor.r_fallbacks
  | exception Executor.Stuck (reason, _) ->
      base
        (Died (Printf.sprintf "stuck: %s" (Executor.stuck_reason_name reason)))
        0 (Metrics.create ()) 0
  | exception exn ->
      base (Died (Printexc.to_string exn)) 0 (Metrics.create ()) 0

type summary = {
  s_total : int;
  s_recovered : int;
  s_fell_back : int;
  s_faults_injected : int;
  s_retransmits : int;
  s_reknits : int;
  s_failures : run_result list;  (* mismatches and unexpected deaths *)
}

let default_engines = [ Engine.Legacy; Engine.Event; Engine.Heap ]

let summarize (runs : run_result list) : summary =
  List.fold_left
    (fun s r ->
      {
        s_total = s.s_total + 1;
        s_recovered =
          (s.s_recovered + if r.cr_outcome = Recovered then 1 else 0);
        s_fell_back =
          (s.s_fell_back + if r.cr_outcome = Fell_back then 1 else 0);
        s_faults_injected = s.s_faults_injected + r.cr_faults_injected;
        s_retransmits = s.s_retransmits + r.cr_retransmits;
        s_reknits = s.s_reknits + r.cr_reknits;
        s_failures = (if passed r then s.s_failures else r :: s.s_failures);
      })
    {
      s_total = 0;
      s_recovered = 0;
      s_fell_back = 0;
      s_faults_injected = 0;
      s_retransmits = 0;
      s_reknits = 0;
      s_failures = [];
    }
    runs

(* Run the sweep.  [schedules] seeds (offset by [seed_base]) are spread
   round-robin over [workloads]; each (seed, workload) pair runs once
   per engine.  Returns every run in deterministic (seed, engine)
   order regardless of pool parallelism. *)
let sweep ?(schedules = 200) ?(engines = default_engines)
    ?(workloads = Registry.all) ?(seed_base = 0)
    ?(watchdog = default_watchdog) () : run_result list =
  if workloads = [] then invalid_arg "Chaos.sweep: empty workload list";
  if engines = [] then invalid_arg "Chaos.sweep: empty engine list";
  (* Warm compile + sequential-baseline caches before domains fan out. *)
  Exp_common.precompile ~versions:[ Exp_common.V3 ] workloads;
  let n_cores = Mach_config.default.Mach_config.n_cores in
  let horizon =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun wl ->
        Hashtbl.replace tbl wl.Workload.name
          (Exp_common.run_helix wl Exp_common.V3).Executor.r_cycles)
      workloads;
    fun wl -> Hashtbl.find tbl wl.Workload.name
  in
  let wls = Array.of_list workloads in
  let jobs =
    List.concat_map
      (fun i ->
        let seed = seed_base + i in
        let wl = wls.(i mod Array.length wls) in
        let plan = plan_of_seed ~n_cores ~horizon:(horizon wl) seed in
        List.map (fun e -> (wl, e, seed, plan)) engines)
      (List.init schedules Fun.id)
  in
  Exp_common.Pool.map
    (fun (wl, e, seed, plan) -> run_one ~watchdog wl e seed plan)
    jobs

let pp_run ppf (r : run_result) =
  Format.fprintf ppf
    "seed %4d  %-8s %-6s  %-9s  cycles=%d faults=%d rtx=%d reknits=%d \
     fallbacks=%d  [%s]%s"
    r.cr_seed r.cr_workload
    (Engine.kind_to_string r.cr_engine)
    (outcome_name r.cr_outcome) r.cr_cycles r.cr_faults_injected
    r.cr_retransmits r.cr_reknits r.cr_fallbacks
    (Ring.fault_plan_to_string r.cr_plan)
    (match r.cr_outcome with
    | Mismatch why | Died why -> Printf.sprintf "  -- %s" why
    | Recovered | Fell_back -> "")

let pp_summary ppf (s : summary) =
  Format.fprintf ppf
    "chaos: %d runs -- %d recovered in-protocol, %d fell back cleanly, %d \
     FAILED@\n\
     faults injected: %d   retransmits: %d   reknits: %d"
    s.s_total s.s_recovered s.s_fell_back
    (List.length s.s_failures)
    s.s_faults_injected s.s_retransmits s.s_reknits;
  List.iter
    (fun r -> Format.fprintf ppf "@\n  FAIL %a" pp_run r)
    (List.rev s.s_failures)
