open Helix_workloads

(* Figure 1: improving the compiler alone (HCCv1 -> HCCv2) helps the
   numerical programs but not SPEC CINT, on a 16-core conventional
   machine with the optimistic 10-cycle core-to-core latency. *)

type row = {
  name : string;
  kind : Workload.kind;
  v1 : float;
  v2 : float;
}

let run ?(workloads = Registry.all) () : row list =
  Exp_common.Pool.map
    (fun wl ->
      let v1 =
        Exp_common.speedup_of wl (Exp_common.run_conventional wl Exp_common.V1)
      in
      let v2 =
        Exp_common.speedup_of wl (Exp_common.run_conventional wl Exp_common.V2)
      in
      { name = wl.Workload.name; kind = wl.Workload.kind; v1; v2 })
    workloads

let report (rows : row list) : Report.t =
  let ints = List.filter (fun r -> r.kind = Workload.Int) rows in
  let fps = List.filter (fun r -> r.kind = Workload.Fp) rows in
  let geo sel = Exp_common.geomean (List.map sel rows) in
  let geo_k rs sel = Exp_common.geomean (List.map sel rs) in
  Report.make ~title:"Figure 1: HCCv1 vs HCCv2 program speedup (16 cores)"
    ~header:[ "benchmark"; "HCCv1"; "HCCv2" ]
    (List.map
       (fun r -> [ r.name; Report.xf r.v1; Report.xf r.v2 ])
       rows
    @ [
        [ "INT Geomean";
          Report.xf (geo_k ints (fun r -> r.v1));
          Report.xf (geo_k ints (fun r -> r.v2)) ];
        [ "FP Geomean";
          Report.xf (geo_k fps (fun r -> r.v1));
          Report.xf (geo_k fps (fun r -> r.v2)) ];
        [ "Geomean"; Report.xf (geo (fun r -> r.v1));
          Report.xf (geo (fun r -> r.v2)) ];
      ])
    ~notes:
      [ "paper: FP geomean rises 2.4x -> 11x; CINT stays near 2x" ]
