(* Minimal fixed-width table / series rendering for experiment output.
   Every experiment produces a [t] that prints identically on the console
   and into EXPERIMENTS.md code blocks. *)

type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ?(notes = []) ~title ~header rows = { title; header; rows; notes }

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
let xf x = Printf.sprintf "%.2fx" x

let render (t : t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let all = t.header :: t.rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) 0 all
  in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let render_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let pad = widths.(i) - String.length cell in
          if i = 0 then cell ^ String.make pad ' '
          else String.make pad ' ' ^ cell)
        row
    in
    Buffer.add_string buf ("  " ^ String.concat "  " cells ^ "\n")
  in
  render_row t.header;
  render_row
    (List.init (List.length t.header) (fun i ->
         String.make widths.(i) '-'));
  List.iter render_row t.rows;
  List.iter (fun n -> Buffer.add_string buf ("  note: " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

let print t = print_string (render t)

(* Machine-readable form of the same table: each row becomes an object
   keyed by the header cells (numeric-looking cells stay strings — the
   header, not this module, knows their units). *)
let to_json (t : t) : Helix_obs.Json.t =
  let open Helix_obs in
  let row_obj row =
    Json.Obj
      (List.mapi
         (fun i cell ->
           let key =
             match List.nth_opt t.header i with
             | Some h when h <> "" -> h
             | _ -> Printf.sprintf "col%d" i
           in
           (key, Json.String cell))
         row)
  in
  Json.Obj
    [
      ("title", Json.String t.title);
      ("header", Json.List (List.map (fun h -> Json.String h) t.header));
      ("rows", Json.List (List.map row_obj t.rows));
      ("notes", Json.List (List.map (fun n -> Json.String n) t.notes));
    ]
