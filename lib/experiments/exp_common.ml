open Helix_ir
open Helix_hcc
open Helix_core
open Helix_machine
open Helix_workloads

(* Shared plumbing for the paper's experiments: building, compiling and
   simulating workloads under the different compiler versions and machine
   configurations, with memoization so the bench harness does not repeat
   identical simulations across figures. *)

type version = V1 | V2 | V3

let version_name = function V1 -> "HCCv1" | V2 -> "HCCv2" | V3 -> "HELIX-RC"

let config_of = function
  | V1 -> Hcc_config.v1
  | V2 -> Hcc_config.v2
  | V3 -> Hcc_config.v3

(* ---- memo tables --------------------------------------------------- *)

let seq_cache : (string * string, Executor.result) Hashtbl.t =
  Hashtbl.create 16

let compiled_cache : (string * string, Hcc.compiled) Hashtbl.t =
  Hashtbl.create 16

let par_cache : (string * string, Executor.result) Hashtbl.t =
  Hashtbl.create 64

let core_kind_name (c : Mach_config.core_config) =
  Printf.sprintf "%s%d"
    (match c.Mach_config.kind with
    | Mach_config.In_order -> "io"
    | Mach_config.Out_of_order -> "ooo")
    c.Mach_config.width

(* Sequential baseline on one core of [mach]'s core type. *)
let sequential ?(mach = Mach_config.default) (wl : Workload.t) :
    Executor.result =
  let key = (wl.Workload.name, core_kind_name mach.Mach_config.core) in
  match Hashtbl.find_opt seq_cache key with
  | Some r -> r
  | None ->
      let s = wl.Workload.build () in
      let r =
        Helix.run_sequential mach s.Workload.prog (s.Workload.init Workload.Ref)
      in
      Hashtbl.replace seq_cache key r;
      r

(* Compile [wl] with [version] targeting [cores]. *)
let compiled ?(cores = 16) (wl : Workload.t) (version : version) :
    Hcc.compiled =
  let key =
    (wl.Workload.name, Printf.sprintf "%s/%d" (version_name version) cores)
  in
  match Hashtbl.find_opt compiled_cache key with
  | Some c -> c
  | None ->
      let s = wl.Workload.build () in
      let c =
        Hcc.compile
          ((config_of version) ~target_cores:cores ())
          s.Workload.prog s.Workload.layout
          ~train_mem:(s.Workload.init Workload.Train)
      in
      (* remember the init function via a fresh build (same deterministic
         data); store compiled only *)
      Hashtbl.replace compiled_cache key c;
      c

(* Reference-input memory for a compiled program (deterministic rebuild). *)
let ref_mem (wl : Workload.t) : Memory.t =
  let s = wl.Workload.build () in
  s.Workload.init Workload.Ref

(* Parallel run; [tag] distinguishes executor configurations in the memo
   key.  Pass [cache:false] for sweep points used only once. *)
let parallel ?(cache = true) ~(tag : string) (wl : Workload.t)
    (version : version) (exec_cfg : Executor.config) : Executor.result =
  let key =
    ( wl.Workload.name,
      Printf.sprintf "%s/%d/%s" (version_name version)
        exec_cfg.Executor.mach.Mach_config.n_cores tag )
  in
  match if cache then Hashtbl.find_opt par_cache key else None with
  | Some r -> r
  | None ->
      let c =
        compiled ~cores:exec_cfg.Executor.mach.Mach_config.n_cores wl version
      in
      let r = Executor.run ~compiled:c exec_cfg c.Hcc.cp_prog (ref_mem wl) in
      if cache then Hashtbl.replace par_cache key r;
      r

(* Canonical executor configurations *)

let conventional_cfg ?(mach = Mach_config.default) () =
  Executor.default_config ~ring:false ~comm:Executor.fully_coupled mach

let helix_cfg ?(mach = Mach_config.default) ?trace ?robust ?jitter_seed () =
  let cfg =
    Executor.default_config ~ring:true ~comm:Executor.fully_decoupled ?trace
      ?robust mach
  in
  match jitter_seed with
  | None -> cfg
  | Some seed ->
      {
        cfg with
        Executor.ring_cfg =
          Option.map
            (fun rc ->
              {
                rc with
                Helix_ring.Ring.perturb =
                  Some (Helix_ring.Ring.perturbed ~seed ());
              })
            cfg.Executor.ring_cfg;
      }

(* Conventional run of a version's code (HCCv1/v2 always run here). *)
let run_conventional wl version =
  parallel ~tag:"conv" wl version (conventional_cfg ())

(* Full HELIX-RC run. *)
let run_helix wl version = parallel ~tag:"helix" wl version (helix_cfg ())

let speedup_of wl (par : Executor.result) =
  Helix.speedup ~seq:(sequential wl) ~par

let geomean = Helix.geomean

(* ---- verification -------------------------------------------------- *)

(* Check a simulated run against the reference interpreter. *)
let verified (wl : Workload.t) (r : Executor.result) : bool =
  let s = wl.Workload.build () in
  let g = Helix.golden_run s.Workload.prog (s.Workload.init Workload.Ref) in
  (Helix.verify g r).Helix.ok
