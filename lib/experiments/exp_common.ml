open Helix_ir
open Helix_hcc
open Helix_core
open Helix_machine
open Helix_workloads

(* Shared plumbing for the paper's experiments: building, compiling and
   simulating workloads under the different compiler versions and machine
   configurations, with memoization so the bench harness does not repeat
   identical simulations across figures. *)

type version = V1 | V2 | V3

let version_name = function V1 -> "HCCv1" | V2 -> "HCCv2" | V3 -> "HELIX-RC"

let config_of = function
  | V1 -> Hcc_config.v1
  | V2 -> Hcc_config.v2
  | V3 -> Hcc_config.v3

(* ---- host-parallel evaluation pool (OCaml 5 domains) ----------------- *)

(* Independent figure points share no simulator state (each run builds
   its own program, memory and machine), so they can evaluate on
   separate host cores.  [Pool.map] preserves order and re-raises the
   first exception after all domains join.  Jobs come from
   HELIX_BENCH_JOBS or the CLI's [-j]; the default of 1 keeps every
   existing entry point strictly sequential. *)
module Pool = struct
  let env_jobs =
    match Sys.getenv_opt "HELIX_BENCH_JOBS" with
    | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
    | None -> 1

  let jobs_ref = ref env_jobs
  let set_jobs n = jobs_ref := max 1 n
  let jobs () = !jobs_ref

  let map (f : 'a -> 'b) (xs : 'a list) : 'b list =
    (* cap at the host's useful parallelism: extra domains on a small
       host only add GC coordination overhead *)
    let j = min (jobs ()) (Domain.recommended_domain_count ()) in
    let n = List.length xs in
    if j <= 1 || n <= 1 then List.map f xs
    else begin
      let arr = Array.of_list xs in
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let worker () =
        let continue_ = ref true in
        while !continue_ do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue_ := false
          else
            results.(i) <-
              Some (try Ok (f arr.(i)) with e -> Error (e, Printexc.get_raw_backtrace ()))
        done
      in
      let spawned = List.init (min j n - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join spawned;
      Array.to_list results
      |> List.map (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)
    end
end

(* ---- memo tables --------------------------------------------------- *)

(* The caches are shared across pool domains; Hashtbl is not
   thread-safe, so every access goes through [memo_lock].  Lookup and
   store are locked separately: two domains may race to compute the
   same key, which costs a duplicate simulation but never corrupts the
   table (both compute identical results). *)
let memo_mutex = Mutex.create ()

let memo_lock f =
  Mutex.lock memo_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock memo_mutex) f

let seq_cache : (string * string, Executor.result) Hashtbl.t =
  Hashtbl.create 16

let compiled_cache : (string * string, Hcc.compiled) Hashtbl.t =
  Hashtbl.create 16

let par_cache : (string * string, Executor.result) Hashtbl.t =
  Hashtbl.create 64

let core_kind_name (c : Mach_config.core_config) =
  Printf.sprintf "%s%d"
    (match c.Mach_config.kind with
    | Mach_config.In_order -> "io"
    | Mach_config.Out_of_order -> "ooo")
    c.Mach_config.width

(* Sequential baseline on one core of [mach]'s core type. *)
let sequential ?(mach = Mach_config.default) (wl : Workload.t) :
    Executor.result =
  let key = (wl.Workload.name, core_kind_name mach.Mach_config.core) in
  match memo_lock (fun () -> Hashtbl.find_opt seq_cache key) with
  | Some r -> r
  | None ->
      let s = wl.Workload.build () in
      let r =
        Helix.run_sequential mach s.Workload.prog (s.Workload.init Workload.Ref)
      in
      memo_lock (fun () -> Hashtbl.replace seq_cache key r);
      r

(* Compile [wl] with [version] targeting [cores]. *)
let compiled ?(cores = 16) (wl : Workload.t) (version : version) :
    Hcc.compiled =
  let key =
    (wl.Workload.name, Printf.sprintf "%s/%d" (version_name version) cores)
  in
  match memo_lock (fun () -> Hashtbl.find_opt compiled_cache key) with
  | Some c -> c
  | None ->
      let s = wl.Workload.build () in
      let c =
        Hcc.compile
          ((config_of version) ~target_cores:cores ())
          s.Workload.prog s.Workload.layout
          ~train_mem:(s.Workload.init Workload.Train)
      in
      (* remember the init function via a fresh build (same deterministic
         data); store compiled only *)
      memo_lock (fun () -> Hashtbl.replace compiled_cache key c);
      c

(* Warm the memo tables for a whole workload registry in parallel before
   a sweep: every (workload, compiler version) pair plus the sequential
   baselines.  Compilation and baseline simulation are independent jobs,
   so they spread over the pool; the figures that follow then hit the
   caches instead of compiling one-by-one inside their own loops.  A
   no-op (beyond the work itself) with 1 job, and safe to call twice --
   already-cached keys are skipped by [compiled]/[sequential]. *)
let precompile ?(cores = 16) ?(versions = [ V1; V2; V3 ]) (wls : Workload.t list)
    : unit =
  let compile_jobs =
    List.concat_map (fun wl -> List.map (fun v -> (wl, v)) versions) wls
  in
  ignore
    (Pool.map (fun (wl, v) -> ignore (compiled ~cores wl v)) compile_jobs);
  ignore (Pool.map (fun wl -> ignore (sequential wl)) wls)

(* Reference-input memory for a compiled program (deterministic rebuild). *)
let ref_mem (wl : Workload.t) : Memory.t =
  let s = wl.Workload.build () in
  s.Workload.init Workload.Ref

(* Parallel run; [tag] distinguishes executor configurations in the memo
   key.  Pass [cache:false] for sweep points used only once. *)
let parallel ?(cache = true) ~(tag : string) (wl : Workload.t)
    (version : version) (exec_cfg : Executor.config) : Executor.result =
  let key =
    ( wl.Workload.name,
      Printf.sprintf "%s/%d/%s" (version_name version)
        exec_cfg.Executor.mach.Mach_config.n_cores tag )
  in
  match
    if cache then memo_lock (fun () -> Hashtbl.find_opt par_cache key)
    else None
  with
  | Some r -> r
  | None ->
      let c =
        compiled ~cores:exec_cfg.Executor.mach.Mach_config.n_cores wl version
      in
      let r = Executor.run ~compiled:c exec_cfg c.Hcc.cp_prog (ref_mem wl) in
      if cache then memo_lock (fun () -> Hashtbl.replace par_cache key r);
      r

(* Canonical executor configurations *)

let conventional_cfg ?(mach = Mach_config.default) ?engine () =
  Executor.default_config ~ring:false ~comm:Executor.fully_coupled ?engine mach

let helix_cfg ?(mach = Mach_config.default) ?trace ?robust ?jitter_seed
    ?faults ?engine () =
  let cfg =
    Executor.default_config ~ring:true ~comm:Executor.fully_decoupled ?trace
      ?robust ?engine mach
  in
  let with_ring f cfg =
    { cfg with
      Executor.ring_cfg = Option.map f cfg.Executor.ring_cfg }
  in
  let cfg =
    match jitter_seed with
    | None -> cfg
    | Some seed ->
        with_ring
          (fun rc ->
            { rc with
              Helix_ring.Ring.perturb = Some (Helix_ring.Ring.perturbed ~seed ())
            })
          cfg
  in
  match faults with
  | None -> cfg
  | Some plan ->
      with_ring
        (fun rc -> { rc with Helix_ring.Ring.faults = Some plan })
        cfg

(* Conventional run of a version's code (HCCv1/v2 always run here). *)
let run_conventional wl version =
  parallel ~tag:"conv" wl version (conventional_cfg ())

(* Full HELIX-RC run. *)
let run_helix wl version = parallel ~tag:"helix" wl version (helix_cfg ())

let speedup_of wl (par : Executor.result) =
  Helix.speedup ~seq:(sequential wl) ~par

let geomean = Helix.geomean

(* ---- verification -------------------------------------------------- *)

(* Check a simulated run against the reference interpreter. *)
let verified (wl : Workload.t) (r : Executor.result) : bool =
  let s = wl.Workload.build () in
  let g = Helix.golden_run s.Workload.prog (s.Workload.init Workload.Ref) in
  (Helix.verify g r).Helix.ok
