open Helix_workloads

(* Figure 7: HELIX-RC triples the speedup of HCCv2.  Speedups relative to
   sequential execution on the same core type; HCCv2 runs on the
   conventional machine, HELIX-RC on the ring-cache machine. *)

type row = {
  name : string;
  kind : Workload.kind;
  v2 : float;
  helix : float;
  helix_verified : bool;
}

let run ?(workloads = Registry.all) () : row list =
  Exp_common.Pool.map
    (fun wl ->
      let v2 =
        Exp_common.speedup_of wl (Exp_common.run_conventional wl Exp_common.V2)
      in
      let hr = Exp_common.run_helix wl Exp_common.V3 in
      {
        name = wl.Workload.name;
        kind = wl.Workload.kind;
        v2;
        helix = Exp_common.speedup_of wl hr;
        helix_verified = Exp_common.verified wl hr;
      })
    workloads

let report (rows : row list) : Report.t =
  let ints = List.filter (fun r -> r.kind = Workload.Int) rows in
  let fps = List.filter (fun r -> r.kind = Workload.Fp) rows in
  let geo rs sel = Exp_common.geomean (List.map sel rs) in
  Report.make
    ~title:"Figure 7: HCCv2 vs HELIX-RC program speedup (16 cores)"
    ~header:[ "benchmark"; "HCCv2"; "HELIX-RC"; "oracle" ]
    (List.map
       (fun r ->
         [
           r.name;
           Report.xf r.v2;
           Report.xf r.helix;
           (if r.helix_verified then "OK" else "FAIL");
         ])
       rows
    @ [
        [ "INT Geomean"; Report.xf (geo ints (fun r -> r.v2));
          Report.xf (geo ints (fun r -> r.helix)); "" ];
        [ "FP Geomean"; Report.xf (geo fps (fun r -> r.v2));
          Report.xf (geo fps (fun r -> r.helix)); "" ];
        [ "Geomean"; Report.xf (geo rows (fun r -> r.v2));
          Report.xf (geo rows (fun r -> r.helix)); "" ];
      ])
    ~notes:
      [ "paper: CINT geomean 2.2x -> 6.85x; CFP 11.4x -> ~12x" ]
