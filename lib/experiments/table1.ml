open Helix_hcc
open Helix_workloads

(* Table 1: characteristics of the parallelized benchmarks -- phases and
   parallel-loop coverage per compiler version. *)

type row = {
  name : string;
  phases : int;
  cov_v3 : float;
  cov_v2 : float;
  cov_v1 : float;
}

let run ?(workloads = Registry.all) () : row list =
  Exp_common.Pool.map
    (fun wl ->
      let cov v = (Exp_common.compiled wl v).Hcc.cp_coverage in
      {
        name = wl.Workload.name;
        phases = wl.Workload.phases;
        cov_v3 = cov Exp_common.V3;
        cov_v2 = cov Exp_common.V2;
        cov_v1 = cov Exp_common.V1;
      })
    workloads

let report (rows : row list) : Report.t =
  Report.make ~title:"Table 1: parallel loop coverage"
    ~header:[ "benchmark"; "phases"; "HELIX-RC"; "HCCv2"; "HCCv1" ]
    (List.map
       (fun r ->
         [
           r.name;
           string_of_int r.phases;
           Report.pct r.cov_v3;
           Report.pct r.cov_v2;
           Report.pct r.cov_v1;
         ])
       rows)
    ~notes:[ "paper: HELIX-RC reaches >98% on every benchmark" ]
