(* Bench trend comparison: the pure core of the CI perf-regression gate.

   Two artifact directories -- the previous successful run's and the
   current one's -- each hold BENCH_engine.json (simulated cycles per
   host second per engine) and the figure tables dumped by
   HELIX_BENCH_METRICS_DIR.  The gate fails when

   - an engine's cycles/sec dropped by more than [threshold] (default
     10%) against the previous run, or
   - a figure table changed *shape*: different keys, list lengths or
     value types.  Values are allowed to move (they are simulated
     numbers and change whenever the model legitimately changes); the
     shape only changes when a figure gains/loses rows or columns, which
     is never a silent accident.

   Everything here is pure (strings in, findings out) so it can be unit
   tested; the filesystem walking lives in bin/bench_trend.ml. *)

module Json = Helix_obs.Json

type finding = { severity : [ `Fail | `Note ]; message : string }

let fail fmt = Printf.ksprintf (fun m -> { severity = `Fail; message = m }) fmt
let note fmt = Printf.ksprintf (fun m -> { severity = `Note; message = m }) fmt
let failures fs = List.filter (fun f -> f.severity = `Fail) fs

(* ---- engine throughput ---------------------------------------------- *)

let rate_of json engine =
  match Json.member engine json with
  | None -> None
  | Some side ->
      Option.bind (Json.member "cycles_per_sec" side) Json.to_float_opt

(* Engines present in both files are compared; an engine only present in
   one side is a note (the set legitimately grows when a new engine
   lands, and the very first run after that has no baseline for it). *)
let compare_engine ?(threshold = 0.10) ~old_json ~new_json () :
    finding list =
  match (Json.of_string old_json, Json.of_string new_json) with
  | Error e, _ -> [ fail "previous BENCH_engine.json unreadable: %s" e ]
  | _, Error e -> [ fail "current BENCH_engine.json unreadable: %s" e ]
  | Ok old_j, Ok new_j ->
      List.concat_map
        (fun engine ->
          match (rate_of old_j engine, rate_of new_j engine) with
          | Some o, Some n ->
              if o > 0.0 && n < o *. (1.0 -. threshold) then
                [
                  fail
                    "%s engine regressed: %.0f -> %.0f cycles/sec (%.1f%% \
                     drop, threshold %.0f%%)"
                    engine o n
                    ((o -. n) /. o *. 100.0)
                    (threshold *. 100.0);
                ]
              else
                [
                  note "%s engine: %.0f -> %.0f cycles/sec" engine o n;
                ]
          | None, Some _ ->
              [ note "%s engine has no baseline yet" engine ]
          | Some _, None ->
              [ fail "%s engine disappeared from BENCH_engine.json" engine ]
          | None, None -> [])
        [ "legacy"; "event"; "heap" ]

(* ---- figure shape ---------------------------------------------------- *)

(* Structural skeleton: keys, ordering-insensitive, list lengths and
   leaf types, with every numeric/string/bool value erased. *)
let rec shape (j : Json.t) : Json.t =
  match j with
  | Json.Null -> Json.Null
  | Json.Bool _ -> Json.String "bool"
  | Json.Int _ | Json.Float _ -> Json.String "number"
  | Json.String _ -> Json.String "string"
  | Json.List l -> Json.List (List.map shape l)
  | Json.Obj kvs ->
      Json.Obj
        (List.sort
           (fun (a, _) (b, _) -> compare a b)
           (List.map (fun (k, v) -> (k, shape v)) kvs))

let compare_figure ~name ~old_json ~new_json () : finding list =
  match (Json.of_string old_json, Json.of_string new_json) with
  | Error e, _ -> [ fail "%s: previous table unreadable: %s" name e ]
  | _, Error e -> [ fail "%s: current table unreadable: %s" name e ]
  | Ok old_j, Ok new_j ->
      if Json.equal (shape old_j) (shape new_j) then
        [ note "%s: shape unchanged" name ]
      else [ fail "%s: figure shape changed against the previous run" name ]

(* ---- whole-directory comparison -------------------------------------- *)

(* [figures] maps file name to (old contents option, new contents
   option); the engine jsons come separately.  A figure missing from the
   new run is a failure (a table silently vanished); a figure with no
   baseline is a note. *)
let compare_all ?threshold ~engine_old ~engine_new
    ~(figures : (string * (string option * string option)) list) () :
    finding list =
  let engine_findings =
    match (engine_old, engine_new) with
    | None, Some _ -> [ note "no previous BENCH_engine.json; skipping" ]
    | Some _, None -> [ fail "current run produced no BENCH_engine.json" ]
    | None, None -> [ note "no BENCH_engine.json on either side" ]
    | Some o, Some n -> compare_engine ?threshold ~old_json:o ~new_json:n ()
  in
  let figure_findings =
    List.concat_map
      (fun (name, (o, n)) ->
        match (o, n) with
        | None, Some _ -> [ note "%s: no baseline yet" name ]
        | Some _, None -> [ fail "%s: table missing from current run" name ]
        | None, None -> []
        | Some o, Some n -> compare_figure ~name ~old_json:o ~new_json:n ())
      figures
  in
  engine_findings @ figure_findings
