open Helix_core
open Helix_workloads

(* Figure 12: breakdown of the overheads that prevent ideal speedup, per
   benchmark, for HELIX-RC on 16 in-order cores. *)

type row = {
  name : string;
  overhead : Overhead.t;
  speedup : float;
}

let run ?(workloads = Registry.all) () : row list =
  Exp_common.Pool.map
    (fun wl ->
      let seq = Exp_common.sequential wl in
      let par = Exp_common.run_helix wl Exp_common.V3 in
      {
        name = wl.Workload.name;
        overhead =
          Overhead.analyze ~n_cores:16
            ~seq_retired:seq.Executor.r_retired par;
        speedup = Helix.speedup ~seq ~par;
      })
    workloads

let report (rows : row list) : Report.t =
  let cat_names = List.map fst (Overhead.categories (List.hd rows).overhead) in
  Report.make ~title:"Figure 12: overhead breakdown (HELIX-RC, 16 cores)"
    ~header:
      ("benchmark"
      :: List.map
           (fun n ->
             (* compact column names *)
             match n with
             | "Additional Instructions" -> "add'l"
             | "Wait/Signal Instructions" -> "w/s"
             | "Memory" -> "mem"
             | "Iteration Imbalance" -> "imbal"
             | "Low Trip Count" -> "lowtrip"
             | "Communication" -> "comm"
             | "Dependence Waiting" -> "depwait"
             | other -> other)
           cat_names
      @ [ "speedup" ])
    (List.map
       (fun r ->
         r.name
         :: List.map (fun (_, v) -> Report.pct v) (Overhead.categories r.overhead)
         @ [ Report.xf r.speedup ])
       rows)
    ~notes:
      [
        "paper: communication is near zero for most benchmarks; vpr, \
         twolf, bzip2, art are dominated by low trip count; gzip, parser, \
         mcf, ammp by dependence waiting";
      ]
