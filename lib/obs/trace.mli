(** Ring-buffered structured event trace.

    A [t] holds the most recent [capacity] events of a run; when a
    wedged simulation has produced millions of stall events, the tail of
    the buffer is exactly the window around the wedge.  Events are
    generic (kind + integer cycle + named JSON fields) so the trace
    layer stays a leaf library; the typed emitters below document the
    event vocabulary the simulator produces.

    All emitters take a [t option] and are no-ops on [None], so hot
    paths pay one branch when tracing is off. *)

type event = {
  ev_cycle : int;
  ev_kind : string;
  ev_fields : (string * Json.t) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 65536 events. *)

val emit : t option -> cycle:int -> kind:string -> (string * Json.t) list -> unit

val events : t -> event list
(** Oldest first (at most [capacity]). *)

val length : t -> int

val dropped : t -> int
(** Events evicted by the ring buffer since creation. *)

val clear : t -> unit

(** {1 JSONL encoding}

    One event per line: [{"c":<cycle>,"k":"<kind>", <fields...>}].
    Field names ["c"] and ["k"] are reserved. *)

val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result
val event_of_line : string -> (event, string) result
val to_jsonl : t -> string
val write_jsonl : t -> out_channel -> unit

(** {1 Typed emitters (the simulator's event vocabulary)} *)

val store_inject :
  t option -> cycle:int -> node:int -> addr:int -> value:int -> seq:int -> unit

val signal_inject :
  t option -> cycle:int -> node:int -> seg:int -> seq:int -> barrier:int -> unit

val inject_blocked : t option -> cycle:int -> node:int -> cls:string -> unit
(** Injection queue full; [cls] is ["data"] or ["sig"]. *)

val lockstep_hold :
  t option ->
  cycle:int -> node:int -> origin:int -> barrier:int -> applied:int -> unit
(** A signal held at [node] until [origin]'s store [barrier] lands. *)

val backpressure : t option -> cycle:int -> node:int -> cls:string -> unit
(** Forwarding stalled on exhausted link credits. *)

val wait_complete :
  t option -> cycle:int -> core:int -> seg:int -> iter:int -> unit

val loop_enter : t option -> cycle:int -> loop:int -> trip:int option -> unit

val loop_flush :
  t option ->
  cycle:int -> loop:int -> iterations:int -> span:int -> flush_latency:int -> unit

val stuck : t option -> cycle:int -> phase:string -> unit

val violation :
  t option -> cycle:int -> loop:int -> kind:string -> detail:string -> unit
(** A robustness check tripped during a parallel invocation; [kind] is
    ["dependence"], ["signal_bound"] or ["oracle"]. *)

val fallback :
  t option -> cycle:int -> loop:int -> reason:string -> iterations:int -> unit
(** The executor rolled the invocation back to its entry checkpoint and
    re-executed it sequentially. *)

val oracle_result :
  t option -> cycle:int -> loop:int -> ok:bool -> detail:string -> unit
(** Differential-oracle verdict for one parallel invocation. *)

val fault :
  t option ->
  cycle:int -> fclass:string -> link:int -> wire:string -> hop:int -> unit
(** The seeded fault plan injected a fault on a link send; [fclass] is
    ["drop"], ["dup"], ["reorder"], ["corrupt"] or ["fail_stop"] (for
    which [link] is the dying node, [wire] is ["core"] and [hop] is
    [-1]); for the message classes [wire] is ["data"] or ["sig"]. *)

val retransmit :
  t option ->
  cycle:int -> node:int -> wire:string -> count:int -> attempt:int -> unit
(** [node]'s per-link retransmission timer expired: [count] unacked
    messages were resent on its outgoing [wire] link ([attempt] grows
    the exponential backoff). *)

val reknit :
  t option ->
  cycle:int -> node:int -> lost_data:int -> lost_sig:int -> unit
(** The ring routed around fail-stopped [node] (its predecessor now
    forwards past it); [lost_data]/[lost_sig] count injection-queue
    messages that died with the node's core. *)
