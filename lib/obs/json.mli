(** A minimal JSON tree, encoder and parser.

    The observability layer needs machine-readable output (metrics dumps,
    JSONL traces) without pulling a JSON dependency into the simulator;
    this module covers exactly the subset the obs layer produces: finite
    numbers, strings with standard escapes, arrays and objects.  The
    parser exists so traces round-trip in tests and so external tools'
    output can be re-read by follow-up tooling. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Floats are printed with enough
    digits to round-trip; non-finite floats degrade to [null]. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; [Error msg] carries the byte offset. *)

val of_string_exn : string -> t
(** @raise Failure on malformed input. *)

(** {1 Accessors} (total: return [None] / default on shape mismatch) *)

val member : string -> t -> t option
val to_int_opt : t -> int option
val to_float_opt : t -> float option
val to_string_opt : t -> string option

val equal : t -> t -> bool
(** Structural equality with object fields compared order-insensitively. *)
