(** A registry of named metrics with one JSON / pretty export.

    The simulator's components (ring, caches, per-core stats, executor)
    each keep cheap mutable counters on their hot paths; at report time
    they {e publish} current values into a registry under dotted names
    ([ring.hit_rate], [core.3.frac.busy], ...).  One registry per run
    gives a single machine-readable dump, in the spirit of XIOSim's and
    DRAMSim2's structured stat output. *)

type value =
  | Int of int
  | Float of float
  | Hist of int array  (** ordered buckets, e.g. the Figure-4 histograms *)

type t

val create : unit -> t

val set_int : t -> string -> int -> unit
val set_float : t -> string -> float -> unit
val set_hist : t -> string -> int array -> unit
(** The array is copied. *)

val add_int : t -> string -> int -> unit
(** Accumulate into an [Int] metric (creates it at 0). *)

val find : t -> string -> value option
val find_int : t -> string -> int option
val find_float : t -> string -> float option
(** [find_float] also widens an [Int]. *)

val names : t -> string list
(** Sorted. *)

val to_json : t -> Json.t
(** A flat object keyed by metric name, sorted; histograms become
    arrays. *)

val pp : Format.formatter -> t -> unit
(** One [name = value] line per metric, sorted. *)
