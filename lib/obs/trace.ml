(* Ring-buffered structured trace.  The buffer keeps the newest events:
   in a stuck run the interesting window is the one just before the
   watchdog fires, so eviction drops from the front. *)

type event = {
  ev_cycle : int;
  ev_kind : string;
  ev_fields : (string * Json.t) list;
}

type t = {
  buf : event option array;
  mutable head : int;   (* next write slot *)
  mutable count : int;  (* live events, <= capacity *)
  mutable dropped : int;
}

let create ?(capacity = 65536) () =
  let capacity = max 1 capacity in
  { buf = Array.make capacity None; head = 0; count = 0; dropped = 0 }

let capacity t = Array.length t.buf

let emit (t : t option) ~cycle ~kind fields =
  match t with
  | None -> ()
  | Some t ->
      t.buf.(t.head) <- Some { ev_cycle = cycle; ev_kind = kind; ev_fields = fields };
      t.head <- (t.head + 1) mod capacity t;
      if t.count < capacity t then t.count <- t.count + 1
      else t.dropped <- t.dropped + 1

let length t = t.count
let dropped t = t.dropped

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.count <- 0;
  t.dropped <- 0

let events t =
  let cap = capacity t in
  let start = (t.head - t.count + cap) mod cap in
  List.init t.count (fun i ->
      match t.buf.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

(* ---- JSONL ---------------------------------------------------------- *)

let event_to_json (e : event) : Json.t =
  Json.Obj (("c", Json.Int e.ev_cycle) :: ("k", Json.String e.ev_kind) :: e.ev_fields)

let event_of_json (j : Json.t) : (event, string) result =
  match j with
  | Json.Obj fields ->
      let cycle = Option.bind (List.assoc_opt "c" fields) Json.to_int_opt in
      let kind = Option.bind (List.assoc_opt "k" fields) Json.to_string_opt in
      (match (cycle, kind) with
      | Some c, Some k ->
          Ok
            {
              ev_cycle = c;
              ev_kind = k;
              ev_fields =
                List.filter (fun (name, _) -> name <> "c" && name <> "k") fields;
            }
      | _ -> Error "event missing \"c\" or \"k\"")
  | _ -> Error "event is not a JSON object"

let event_of_line line =
  match Json.of_string line with
  | Error e -> Error e
  | Ok j -> event_of_json j

let to_jsonl t =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (Json.to_string (event_to_json e));
      Buffer.add_char b '\n')
    (events t);
  Buffer.contents b

let write_jsonl t oc = output_string oc (to_jsonl t)

(* ---- typed emitters ------------------------------------------------- *)

let store_inject t ~cycle ~node ~addr ~value ~seq =
  emit t ~cycle ~kind:"store_inject"
    [ ("node", Json.Int node); ("addr", Json.Int addr);
      ("value", Json.Int value); ("seq", Json.Int seq) ]

let signal_inject t ~cycle ~node ~seg ~seq ~barrier =
  emit t ~cycle ~kind:"signal_inject"
    [ ("node", Json.Int node); ("seg", Json.Int seg);
      ("seq", Json.Int seq); ("barrier", Json.Int barrier) ]

let inject_blocked t ~cycle ~node ~cls =
  emit t ~cycle ~kind:"inject_blocked"
    [ ("node", Json.Int node); ("cls", Json.String cls) ]

let lockstep_hold t ~cycle ~node ~origin ~barrier ~applied =
  emit t ~cycle ~kind:"lockstep_hold"
    [ ("node", Json.Int node); ("origin", Json.Int origin);
      ("barrier", Json.Int barrier); ("applied", Json.Int applied) ]

let backpressure t ~cycle ~node ~cls =
  emit t ~cycle ~kind:"backpressure"
    [ ("node", Json.Int node); ("cls", Json.String cls) ]

let wait_complete t ~cycle ~core ~seg ~iter =
  emit t ~cycle ~kind:"wait_complete"
    [ ("core", Json.Int core); ("seg", Json.Int seg); ("iter", Json.Int iter) ]

let loop_enter t ~cycle ~loop ~trip =
  emit t ~cycle ~kind:"loop_enter"
    [ ("loop", Json.Int loop);
      ("trip", match trip with Some k -> Json.Int k | None -> Json.Null) ]

let loop_flush t ~cycle ~loop ~iterations ~span ~flush_latency =
  emit t ~cycle ~kind:"loop_flush"
    [ ("loop", Json.Int loop); ("iterations", Json.Int iterations);
      ("span", Json.Int span); ("flush_latency", Json.Int flush_latency) ]

let stuck t ~cycle ~phase =
  emit t ~cycle ~kind:"stuck" [ ("phase", Json.String phase) ]

let violation t ~cycle ~loop ~kind:vkind ~detail =
  emit t ~cycle ~kind:"violation"
    [ ("loop", Json.Int loop); ("vkind", Json.String vkind);
      ("detail", Json.String detail) ]

let fallback t ~cycle ~loop ~reason ~iterations =
  emit t ~cycle ~kind:"fallback"
    [ ("loop", Json.Int loop); ("reason", Json.String reason);
      ("iterations", Json.Int iterations) ]

let oracle_result t ~cycle ~loop ~ok ~detail =
  emit t ~cycle ~kind:"oracle_result"
    [ ("loop", Json.Int loop); ("ok", Json.Bool ok);
      ("detail", Json.String detail) ]

let fault t ~cycle ~fclass ~link ~wire ~hop =
  emit t ~cycle ~kind:"fault"
    [ ("fclass", Json.String fclass); ("link", Json.Int link);
      ("wire", Json.String wire); ("hop", Json.Int hop) ]

let retransmit t ~cycle ~node ~wire ~count ~attempt =
  emit t ~cycle ~kind:"retransmit"
    [ ("node", Json.Int node); ("wire", Json.String wire);
      ("count", Json.Int count); ("attempt", Json.Int attempt) ]

let reknit t ~cycle ~node ~lost_data ~lost_sig =
  emit t ~cycle ~kind:"reknit"
    [ ("node", Json.Int node); ("lost_data", Json.Int lost_data);
      ("lost_sig", Json.Int lost_sig) ]
