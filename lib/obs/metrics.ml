(* Named-metric registry.  Publishing is pull-style: components keep
   their own counters and copy them in at export time, so the registry
   costs nothing on simulator hot paths. *)

type value =
  | Int of int
  | Float of float
  | Hist of int array

type t = { tbl : (string, value) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let set_int t name v = Hashtbl.replace t.tbl name (Int v)
let set_float t name v = Hashtbl.replace t.tbl name (Float v)
let set_hist t name a = Hashtbl.replace t.tbl name (Hist (Array.copy a))

let add_int t name by =
  let cur =
    match Hashtbl.find_opt t.tbl name with Some (Int i) -> i | _ -> 0
  in
  Hashtbl.replace t.tbl name (Int (cur + by))

let find t name = Hashtbl.find_opt t.tbl name

let find_int t name =
  match find t name with Some (Int i) -> Some i | _ -> None

let find_float t name =
  match find t name with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort compare

let json_of_value = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Hist a -> Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a))

let to_json t =
  Json.Obj
    (List.map (fun n -> (n, json_of_value (Hashtbl.find t.tbl n))) (names t))

let pp ppf t =
  List.iter
    (fun n ->
      match Hashtbl.find t.tbl n with
      | Int i -> Format.fprintf ppf "%s = %d@." n i
      | Float f -> Format.fprintf ppf "%s = %.6g@." n f
      | Hist a ->
          Format.fprintf ppf "%s = [%s]@." n
            (String.concat "; "
               (Array.to_list (Array.map string_of_int a))))
    (names t)
