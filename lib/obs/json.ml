(* Minimal JSON: just what the observability layer emits and re-reads.
   No streaming, no unicode validation beyond byte-transparent strings
   (the simulator only ever emits ASCII). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- encoding ------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* keep a decimal point so the value re-parses as a float *)
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if not (Float.is_finite f) then
        (* NaN or infinite: JSON has no spelling for these *)
        Buffer.add_string b "null"
      else Buffer.add_string b (float_to_string f)
  | String s -> escape_string b s
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        l;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* ---- parsing -------------------------------------------------------- *)

exception Parse_error of int * string

type parser_state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let fail st msg = raise (Parse_error (st.pos, msg))

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st ("expected " ^ word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some '"' -> Buffer.add_char b '"'; advance st
        | Some '\\' -> Buffer.add_char b '\\'; advance st
        | Some '/' -> Buffer.add_char b '/'; advance st
        | Some 'n' -> Buffer.add_char b '\n'; advance st
        | Some 'r' -> Buffer.add_char b '\r'; advance st
        | Some 't' -> Buffer.add_char b '\t'; advance st
        | Some 'b' -> Buffer.add_char b '\b'; advance st
        | Some 'f' -> Buffer.add_char b '\012'; advance st
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
            let hex = String.sub st.src st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail st "bad \\u escape"
            in
            (* ASCII only; higher codepoints are not produced by the
               encoder, decode as '?' rather than building UTF-8 *)
            Buffer.add_char b (if code < 128 then Char.chr code else '?');
            st.pos <- st.pos + 4
        | _ -> fail st "bad escape");
        go ()
    | Some c -> Buffer.add_char b c; advance st; go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail st ("bad number " ^ text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin advance st; List [] end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; items (v :: acc)
          | Some ']' -> advance st; List (List.rev (v :: acc))
          | _ -> fail st "expected ',' or ']'"
        in
        items []
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin advance st; Obj [] end
      else begin
        let field () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; fields (f :: acc)
          | Some '}' -> advance st; Obj (List.rev (f :: acc))
          | _ -> fail st "expected ',' or '}'"
        in
        fields []
      end
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing input at offset %d" st.pos)
      else Ok v
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "%s at offset %d" msg pos)

let of_string_exn s =
  match of_string s with Ok v -> v | Error e -> failwith ("Json: " ^ e)

(* ---- accessors ------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y || Float.abs (x -. y) < 1e-12
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | String x, String y -> x = y
  | List x, List y ->
      List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
      let sorted l = List.sort (fun (a, _) (b, _) -> compare a b) l in
      let x, y = (sorted x, sorted y) in
      List.length x = List.length y
      && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && equal v1 v2) x y
  | _ -> false
