(* CI bench trend gate.

     bench_trend --old PREV_DIR --new CUR_DIR [--threshold 0.10]

   Each directory is a bench artifact: BENCH_engine.json at its root
   plus the figure tables (<name>.json) either alongside or in a
   bench-metrics/ subdirectory.  Exits 1 when an engine's cycles/sec
   regressed past the threshold or a figure table changed shape
   (Trend.compare_all); exits 0 -- with a note -- when the previous run
   has no artifact at all, so the gate tolerates the first run on a
   fresh repository. *)

open Helix_experiments

let usage () =
  prerr_endline
    "usage: bench_trend --old PREV_DIR --new CUR_DIR [--threshold FRACTION]";
  exit 2

let read_file path =
  if Sys.file_exists path && not (Sys.is_directory path) then begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s
  end
  else None

(* figure tables live either next to BENCH_engine.json or under
   bench-metrics/ depending on how the artifact was packed *)
let figure_dir dir =
  let sub = Filename.concat dir "bench-metrics" in
  if Sys.file_exists sub && Sys.is_directory sub then sub else dir

let figure_names dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           Filename.check_suffix f ".json" && f <> "BENCH_engine.json")
    |> List.sort compare
  else []

let () =
  let old_dir = ref None and new_dir = ref None and threshold = ref 0.10 in
  let rec parse = function
    | [] -> ()
    | "--old" :: v :: rest ->
        old_dir := Some v;
        parse rest
    | "--new" :: v :: rest ->
        new_dir := Some v;
        parse rest
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0.0 && f < 1.0 -> threshold := f
        | _ -> usage ());
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match (!old_dir, !new_dir) with
  | Some old_dir, Some new_dir ->
      if not (Sys.file_exists old_dir && Sys.is_directory old_dir) then begin
        (* no baseline artifact: nothing to gate against *)
        Printf.printf
          "bench-trend: no previous artifact at %s; skipping (first run?)\n"
          old_dir;
        exit 0
      end;
      let engine_old =
        read_file (Filename.concat old_dir "BENCH_engine.json")
      in
      let engine_new =
        read_file (Filename.concat new_dir "BENCH_engine.json")
      in
      let fig_old = figure_dir old_dir and fig_new = figure_dir new_dir in
      let names =
        List.sort_uniq compare (figure_names fig_old @ figure_names fig_new)
      in
      let figures =
        List.map
          (fun name ->
            ( name,
              ( read_file (Filename.concat fig_old name),
                read_file (Filename.concat fig_new name) ) ))
          names
      in
      let findings =
        Trend.compare_all ~threshold:!threshold ~engine_old ~engine_new
          ~figures ()
      in
      List.iter
        (fun (f : Trend.finding) ->
          Printf.printf "%s %s\n"
            (match f.Trend.severity with `Fail -> "FAIL" | `Note -> "  ok")
            f.Trend.message)
        findings;
      let fails = Trend.failures findings in
      if fails <> [] then begin
        Printf.printf "bench-trend: %d failure(s)\n" (List.length fails);
        exit 1
      end
      else print_endline "bench-trend: pass"
  | _ -> usage ()
