(* helix-rc: command-line driver.

   Subcommands regenerate each table/figure of the paper's evaluation,
   inspect the compilation of a workload, or run single simulations. *)

open Cmdliner
open Helix_hcc
open Helix_core
open Helix_workloads
open Helix_experiments

let wl_conv =
  let parse s =
    match List.find_opt (fun w -> w.Workload.name = s) Registry.all with
    | Some w -> Ok w
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown workload %s (try: %s)" s
               (String.concat ", "
                  (List.map (fun w -> w.Workload.name) Registry.all))))
  in
  Arg.conv (parse, fun ppf w -> Fmt.string ppf w.Workload.name)

let quick =
  let doc = "Run on the integer benchmarks only (faster)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let pick_workloads quick = if quick then Registry.integer else Registry.all

let jobs_arg =
  let doc =
    "Evaluate independent figure points on up to $(docv) host cores \
     (OCaml domains).  Defaults to the HELIX_BENCH_JOBS environment \
     variable, or 1 (strictly sequential)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let set_jobs = function Some n -> Exp_common.Pool.set_jobs n | None -> ()

(* ---- experiment commands ---- *)

let experiment name runner =
  let doc = Printf.sprintf "Regenerate %s of the paper." name in
  Cmd.v
    (Cmd.info (String.lowercase_ascii name) ~doc)
    Term.(
      const (fun quick jobs ->
          set_jobs jobs;
          runner ~workloads:(pick_workloads quick) ();
          `Ok ())
      $ quick $ jobs_arg |> ret)

let fig1_cmd =
  experiment "Fig1" (fun ~workloads () ->
      Report.print (Fig1.report (Fig1.run ~workloads ())))

let fig2_cmd =
  experiment "Fig2" (fun ~workloads:_ () ->
      Report.print (Fig2.report (Fig2.run ())))

let fig3_cmd =
  experiment "Fig3" (fun ~workloads:_ () ->
      Report.print (Fig3.report (Fig3.run ())))

let fig4_cmd =
  experiment "Fig4" (fun ~workloads:_ () ->
      Report.print (Fig4.report (Fig4.run ())))

let table1_cmd =
  experiment "Table1" (fun ~workloads () ->
      Report.print (Table1.report (Table1.run ~workloads ())))

let fig7_cmd =
  experiment "Fig7" (fun ~workloads () ->
      Report.print (Fig7.report (Fig7.run ~workloads ())))

let fig8_cmd =
  experiment "Fig8" (fun ~workloads:_ () ->
      Report.print (Fig8.report (Fig8.run ())))

let fig9_cmd =
  experiment "Fig9" (fun ~workloads:_ () ->
      Report.print (Fig9.report (Fig9.run ())))

let fig10_cmd =
  experiment "Fig10" (fun ~workloads:_ () ->
      Report.print (Fig10.report (Fig10.run ())))

let fig11_cmd =
  let doc = "Regenerate Figure 11 (sensitivity sweeps) of the paper." in
  Cmd.v (Cmd.info "fig11" ~doc)
    Term.(
      const (fun () ->
          Report.print
            (Fig11.report ~title:"Figure 11a: core count"
               (Fig11.core_count ()));
          Report.print
            (Fig11.report ~title:"Figure 11b: link latency"
               (Fig11.link_latency ()));
          Report.print
            (Fig11.report ~title:"Figure 11c: signal bandwidth"
               (Fig11.signal_bandwidth ()));
          Report.print
            (Fig11.report ~title:"Figure 11d: node memory size"
               (Fig11.node_memory ()));
          `Ok ())
      $ const () |> ret)

let fig12_cmd =
  experiment "Fig12" (fun ~workloads () ->
      Report.print (Fig12.report (Fig12.run ~workloads ())))

let tlp_cmd =
  experiment "TLP" (fun ~workloads:_ () ->
      Report.print (Tlp_study.report (Tlp_study.run ())))

let ablations_cmd =
  let doc = "Run the design-decision ablations (beyond the paper's sweeps)." in
  Cmd.v (Cmd.info "ablations" ~doc)
    Term.(
      const (fun () ->
          Report.print (Ablations.report (Ablations.run ()));
          `Ok ())
      $ const () |> ret)

let all_cmd =
  let doc = "Regenerate every table and figure (the full evaluation)." in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(
      const (fun quick jobs ->
          set_jobs jobs;
          let workloads = pick_workloads quick in
          Exp_common.precompile workloads;
          Report.print (Fig1.report (Fig1.run ~workloads ()));
          Report.print (Fig2.report (Fig2.run ()));
          Report.print (Fig3.report (Fig3.run ()));
          Report.print (Fig4.report (Fig4.run ()));
          Report.print (Table1.report (Table1.run ~workloads ()));
          Report.print (Fig7.report (Fig7.run ~workloads ()));
          Report.print (Fig8.report (Fig8.run ()));
          Report.print (Fig9.report (Fig9.run ()));
          Report.print (Fig10.report (Fig10.run ()));
          Report.print
            (Fig11.report ~title:"Figure 11a: core count" (Fig11.core_count ()));
          Report.print
            (Fig11.report ~title:"Figure 11b: link latency"
               (Fig11.link_latency ()));
          Report.print
            (Fig11.report ~title:"Figure 11c: signal bandwidth"
               (Fig11.signal_bandwidth ()));
          Report.print
            (Fig11.report ~title:"Figure 11d: node memory size"
               (Fig11.node_memory ()));
          Report.print (Fig12.report (Fig12.run ~workloads ()));
          Report.print (Tlp_study.report (Tlp_study.run ()));
          Report.print (Ablations.report (Ablations.run ()));
          `Ok ())
      $ quick $ jobs_arg |> ret)

(* ---- inspection commands ---- *)

let version_arg =
  let doc = "Compiler version: v1, v2 or v3." in
  let vconv =
    Arg.conv
      ( (function
        | "v1" -> Ok Exp_common.V1
        | "v2" -> Ok Exp_common.V2
        | "v3" -> Ok Exp_common.V3
        | s -> Error (`Msg ("unknown version " ^ s))),
        fun ppf v -> Fmt.string ppf (Exp_common.version_name v) )
  in
  Arg.(value & opt vconv Exp_common.V3 & info [ "version" ] ~doc)

let compile_cmd =
  let doc = "Compile a workload and show the selected parallel loops." in
  let wl = Arg.(required & pos 0 (some wl_conv) None & info [] ~docv:"WORKLOAD") in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(
      const (fun wl version ->
          let c = Exp_common.compiled wl version in
          Fmt.pr "%s with %s: coverage %.1f%%, %d/%d loops selected@."
            wl.Workload.name
            (Exp_common.version_name version)
            (100.0 *. c.Hcc.cp_coverage)
            (List.length c.Hcc.cp_selected)
            (List.length c.Hcc.cp_candidates);
          List.iter
            (fun (s : Select.candidate) ->
              let pl = s.Select.cd_loop in
              Fmt.pr
                "  loop %d in %s (header L%d): %d segments, est. speedup \
                 %.2fx@."
                pl.Parallel_loop.pl_id pl.Parallel_loop.pl_func
                pl.Parallel_loop.pl_header
                (List.length pl.Parallel_loop.pl_segments)
                s.Select.cd_estimate.Perf_model.e_speedup;
              Fmt.pr "%a@." Helix_ir.Pretty.pp_func
                (Helix_ir.Ir.find_func c.Hcc.cp_prog
                   pl.Parallel_loop.pl_body_fn))
            c.Hcc.cp_selected;
          `Ok ())
      $ wl $ version_arg |> ret)

(* ---- observability options (shared by run and stats) ---- *)

let trace_arg =
  let doc =
    "Record a structured event trace of the HELIX-RC run (stores, signals, \
     lockstep holds, back-pressure, waits, loop entry/flush) and write the \
     most recent events to $(docv) as JSON lines."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write every counter of the HELIX-RC run (ring, per-core cycle buckets, \
     memory hierarchy, executor) to $(docv) as a flat JSON object."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

(* Open an output path before the (possibly minutes-long) simulation so
   a typo'd directory fails fast with a clean error. *)
let open_sink = function
  | None -> Ok None
  | Some file -> (
      try Ok (Some (file, open_out file)) with Sys_error m -> Error m)

(* ---- robustness options (ISSUE 2) ---- *)

let check_arg =
  let doc =
    "Enable the robustness layer: shadow-execute each parallel invocation \
     sequentially and compare (differential oracle), sanitize worker memory \
     accesses for unguarded loop-carried dependences, and degrade gracefully \
     -- a violating or wedged invocation is rolled back to its entry \
     checkpoint and re-executed sequentially.  Exits nonzero if the final \
     result still differs from the sequential oracle."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let strict_arg =
  let doc =
    "With $(b,--check): make violations fatal (exit code 12) instead of \
     falling back to sequential re-execution."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let jitter_arg =
  let doc =
    "Delay-only fault injection (the mildest class of the fault family): \
     perturb ring link/injection/signal latencies with bounded extra \
     delays deterministically derived from $(docv).  Jitter never loses, \
     repeats or reorders a message, so architectural results must be \
     invariant under any seed with no recovery machinery engaged.  For \
     the five lossy classes (drop, duplicate, reorder, corrupt, \
     fail-stop) see $(b,--faults)."
  in
  Arg.(value & opt (some int) None & info [ "jitter" ] ~docv:"SEED" ~doc)

let faults_arg =
  let doc =
    "Lossy-ring fault schedule, e.g. \
     $(b,seed=42,drop=5,dup=3,reorder=2,corrupt=1,kill=3\\@50000): \
     comma-separated key=value pairs; drop/dup/reorder/corrupt are \
     per-mille per-link-send rates, kill=NODE\\@CYCLE fail-stops a core.  \
     The recovery protocol (sequence numbers, checksums, go-back-N \
     retransmission) must deliver the correct result for any message-loss \
     schedule; fail-stop recovers by reknitting the ring or falling back \
     (pair with $(b,--check)), and exits 13 when unrecoverable."
  in
  let fconv =
    Arg.conv
      ( (fun s ->
          match Helix_ring.Ring.fault_plan_of_string s with
          | Ok p -> Ok p
          | Error m -> Error (`Msg m)),
        fun ppf p ->
          Fmt.string ppf (Helix_ring.Ring.fault_plan_to_string p) )
  in
  Arg.(value & opt (some fconv) None & info [ "faults" ] ~docv:"SPEC" ~doc)

let engine_arg =
  let doc =
    "Simulation engine: $(b,legacy) ticks every cycle, $(b,event) \
     fast-forwards across provably idle cycle windows by a full \
     component rescan, $(b,heap) tracks wake-up promises in a min-heap \
     and batch-executes quiescent serial phases \
     (HELIX_INTERPRET_AHEAD=0 disables the batching).  Results are \
     bit-identical; only wall-clock differs.  Defaults to the \
     HELIX_ENGINE environment variable, or $(b,heap)."
  in
  let econv =
    Arg.conv
      ( (fun s ->
          match Helix_engine.Engine.kind_of_string s with
          | Some k -> Ok k
          | None -> Error (`Msg ("unknown engine " ^ s ^ " (legacy|event|heap)"))),
        fun ppf k -> Fmt.string ppf (Helix_engine.Engine.kind_to_string k) )
  in
  Arg.(value & opt (some econv) None & info [ "engine" ] ~docv:"ENGINE" ~doc)

(* HELIX-RC run honouring --trace/--check/--strict/--jitter/--faults/
   --engine: any of them bypasses the memo cache (the cached result has
   no events attached and was produced under the unperturbed, unchecked,
   default configuration). *)
let run_helix_obs wl ~trace ~check ~strict ~jitter ?faults ~engine () =
  let robust =
    if strict then
      Some { Executor.checked with Executor.strict = true; fallback = false }
    else if check then Some Executor.checked
    else None
  in
  if trace = None && robust = None && jitter = None && faults = None
     && engine = None
  then Exp_common.run_helix wl Exp_common.V3
  else
    Exp_common.parallel ~cache:false ~tag:"helix-robust" wl Exp_common.V3
      (Exp_common.helix_cfg ?trace ?robust ?jitter_seed:jitter ?faults ?engine
         ())

let dump_obs (par : Executor.result) ~trace_sink ~metrics_sink trace =
  (match (trace_sink, trace) with
  | Some (file, oc), Some tr ->
      Helix_obs.Trace.write_jsonl tr oc;
      close_out oc;
      Fmt.pr "trace: %d events to %s (%d dropped by ring buffer)@."
        (Helix_obs.Trace.length tr)
        file
        (Helix_obs.Trace.dropped tr)
  | _ -> ());
  match metrics_sink with
  | None -> ()
  | Some (file, oc) ->
      output_string oc (Helix_obs.Json.to_string
                          (Helix_obs.Metrics.to_json par.Executor.r_metrics));
      output_char oc '\n';
      close_out oc;
      Fmt.pr "metrics: %d counters to %s@."
        (List.length (Helix_obs.Metrics.names par.Executor.r_metrics))
        file

let run_cmd =
  let doc = "Simulate one workload sequentially and with HELIX-RC." in
  let wl = Arg.(required & pos 0 (some wl_conv) None & info [] ~docv:"WORKLOAD") in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const (fun wl trace_file metrics_file check strict jitter faults engine ->
          match (open_sink trace_file, open_sink metrics_file) with
          | Error m, _ | _, Error m -> `Error (false, m)
          | Ok trace_sink, Ok metrics_sink ->
              let seq = Exp_common.sequential wl in
              let tr =
                if trace_sink <> None then Some (Helix_obs.Trace.create ())
                else None
              in
              let par =
                (* on Stuck, flush the trace collected so far: it is the
                   diagnostic artifact CI uploads *)
                try
                  run_helix_obs wl ~trace:tr ~check ~strict ~jitter ?faults
                    ~engine ()
                with Executor.Stuck _ as e ->
                  (match (trace_sink, tr) with
                  | Some (file, oc), Some t ->
                      Helix_obs.Trace.write_jsonl t oc;
                      close_out oc;
                      Fmt.epr "trace: %d events to %s@."
                        (Helix_obs.Trace.length t)
                        file
                  | _ -> ());
                  raise e
              in
              let ok = Exp_common.verified wl par in
              Fmt.pr "%s: sequential %d cycles; HELIX-RC %d cycles; speedup \
                      %.2fx; oracle %s@."
                wl.Workload.name seq.Executor.r_cycles par.Executor.r_cycles
                (Helix.speedup ~seq ~par)
                (if ok then "OK" else "FAIL");
              if check || strict || jitter <> None || faults <> None then
                Fmt.pr
                  "robustness: %d violation(s), %d sequential fallback(s)@."
                  par.Executor.r_violations par.Executor.r_fallbacks;
              if faults <> None then begin
                let m k =
                  Option.value ~default:0
                    (Helix_obs.Metrics.find_int par.Executor.r_metrics k)
                in
                Fmt.pr
                  "recovery: %d fault(s) injected, %d retransmit(s), %d \
                   drop(s) detected, %d reknit(s)@."
                  (m "ring.faults_injected") (m "ring.retransmits")
                  (m "ring.drops_detected") (m "ring.reknits")
              end;
              dump_obs par ~trace_sink ~metrics_sink tr;
              if check && not ok then begin
                Fmt.epr "helix-rc: %s: result differs from the sequential \
                         oracle@."
                  wl.Workload.name;
                Stdlib.exit 1
              end;
              `Ok ())
      $ wl $ trace_arg $ metrics_arg $ check_arg $ strict_arg $ jitter_arg
      $ faults_arg $ engine_arg |> ret)

let overhead_cmd =
  let doc = "Show the Figure-12 overhead taxonomy for one workload." in
  let wl = Arg.(required & pos 0 (some wl_conv) None & info [] ~docv:"WORKLOAD") in
  Cmd.v (Cmd.info "overhead" ~doc)
    Term.(
      const (fun wl ->
          let seq = Exp_common.sequential wl in
          let par = Exp_common.run_helix wl Exp_common.V3 in
          let ov =
            Overhead.analyze ~n_cores:16
              ~seq_retired:seq.Executor.r_retired par
          in
          Fmt.pr "%s: speedup %.2fx@." wl.Workload.name
            (Helix.speedup ~seq ~par);
          List.iter
            (fun (n, v) -> Fmt.pr "  %-26s %5.1f%%@." n (100.0 *. v))
            (Overhead.categories ov);
          `Ok ())
      $ wl |> ret)

let stats_cmd =
  let doc = "Detailed simulation statistics for one workload under              HELIX-RC: per-core cycle buckets, ring histograms,              invocation summary." in
  let wl = Arg.(required & pos 0 (some wl_conv) None & info [] ~docv:"WORKLOAD") in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(
      const (fun wl trace_file metrics_file engine ->
          match (open_sink trace_file, open_sink metrics_file) with
          | Error m, _ | _, Error m -> `Error (false, m)
          | Ok trace_sink, Ok metrics_sink ->
          let tr =
            if trace_sink <> None then Some (Helix_obs.Trace.create ())
            else None
          in
          let par =
            run_helix_obs wl ~trace:tr ~check:false ~strict:false ~jitter:None
              ~engine ()
          in
          Fmt.pr "%s: %d cycles (%d serial, %d parallel), %d instructions@."
            wl.Workload.name par.Executor.r_cycles
            par.Executor.r_serial_cycles par.Executor.r_parallel_cycles
            par.Executor.r_retired;
          Array.iteri
            (fun c st ->
              Fmt.pr "  core %2d: %a@." c Helix_machine.Stats.pp st)
            par.Executor.r_core_stats;
          let per_loop = Hashtbl.create 7 in
          List.iter
            (fun (inv : Executor.invocation_record) ->
              let c, k =
                try Hashtbl.find per_loop inv.Executor.inv_loop
                with Not_found -> (0, 0)
              in
              Hashtbl.replace per_loop inv.Executor.inv_loop
                (c + inv.Executor.inv_cycles, k + 1))
            par.Executor.r_invocations;
          Hashtbl.iter
            (fun loop (cycles, invocs) ->
              Fmt.pr "  loop %d: %d cycles over %d invocations@." loop cycles
                invocs)
            per_loop;
          Fmt.pr "  ring hit rate: %.1f%%; max outstanding signals: %d@."
            (100.0 *. par.Executor.r_ring_hit_rate)
            par.Executor.r_max_outstanding_signals;
          dump_obs par ~trace_sink ~metrics_sink tr;
          `Ok ())
      $ wl $ trace_arg $ metrics_arg $ engine_arg |> ret)

let chaos_cmd =
  let doc =
    "Sweep seeded lossy-ring fault schedules over the workload registry \
     and every simulation engine, checking each run against the \
     differential oracle.  Every run must either recover in-protocol \
     (retransmission absorbs the faults) or fall back cleanly to \
     sequential re-execution; a wrong result or an unexpected wedge \
     fails the sweep (exit 1)."
  in
  let schedules_arg =
    let doc = "Number of seeded fault schedules (each runs on every engine)." in
    Arg.(value & opt int 200 & info [ "schedules" ] ~docv:"N" ~doc)
  in
  let seed_base_arg =
    let doc = "First schedule seed (schedules use seeds $(docv)..$(docv)+N-1)." in
    Arg.(value & opt int 0 & info [ "seed-base" ] ~docv:"BASE" ~doc)
  in
  let engine_filter_arg =
    let doc =
      "Restrict the sweep to one engine (legacy, event or heap); default \
       is all three."
    in
    let econv =
      Arg.conv
        ( (fun s ->
            match Helix_engine.Engine.kind_of_string s with
            | Some k -> Ok k
            | None ->
                Error (`Msg ("unknown engine " ^ s ^ " (legacy|event|heap)"))),
          fun ppf k -> Fmt.string ppf (Helix_engine.Engine.kind_to_string k) )
    in
    Arg.(value & opt (some econv) None & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let workload_filter_arg =
    let doc = "Restrict the sweep to one workload; default is the registry." in
    Arg.(value & opt (some wl_conv) None & info [ "workload" ] ~docv:"W" ~doc)
  in
  let verbose_arg =
    let doc = "Print every run, not just the summary and failures." in
    Arg.(value & flag & info [ "verbose" ] ~doc)
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const (fun schedules seed_base engine workload quick verbose jobs ->
          set_jobs jobs;
          let engines =
            match engine with
            | Some e -> [ e ]
            | None -> Chaos.default_engines
          in
          let workloads =
            match workload with
            | Some w -> [ w ]
            | None -> if quick then Registry.integer else Registry.all
          in
          let runs =
            Chaos.sweep ~schedules ~engines ~workloads ~seed_base ()
          in
          if verbose then
            List.iter (fun r -> Fmt.pr "%a@." Chaos.pp_run r) runs;
          let s = Chaos.summarize runs in
          Fmt.pr "%a@." Chaos.pp_summary s;
          if s.Chaos.s_failures <> [] then Stdlib.exit 1;
          `Ok ())
      $ schedules_arg $ seed_base_arg $ engine_filter_arg
      $ workload_filter_arg $ quick $ verbose_arg $ jobs_arg |> ret)

let list_cmd =
  let doc = "List the available workload models." in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          List.iter
            (fun w ->
              Fmt.pr "%-12s %s, %d phases, paper speedup %.1fx@."
                w.Workload.name
                (match w.Workload.kind with
                | Workload.Int -> "CINT"
                | Workload.Fp -> "CFP")
                w.Workload.phases w.Workload.paper.Workload.p_speedup)
            Registry.all;
          `Ok ())
      $ const () |> ret)

(* Exit codes (documented in README): 1 = --check oracle failure,
   10 = deadlock, 11 = fuel exhausted, 12 = violation under --strict,
   13 = unrecoverable fail-stop fault. *)
let stuck_exit_code = function
  | Executor.Deadlock -> 10
  | Executor.Fuel -> 11
  | Executor.Violation -> 12
  | Executor.Faulted -> 13

let () =
  let doc = "HELIX-RC (ISCA 2014) reproduction" in
  let info = Cmd.info "helix-rc" ~version:"1.0" ~doc in
  let group =
    Cmd.group info
      [
        fig1_cmd; fig2_cmd; fig3_cmd; fig4_cmd; table1_cmd; fig7_cmd;
        fig8_cmd; fig9_cmd; fig10_cmd; fig11_cmd; fig12_cmd; tlp_cmd;
        ablations_cmd; all_cmd; compile_cmd; run_cmd; overhead_cmd;
        stats_cmd; chaos_cmd; list_cmd;
      ]
  in
  (* ~catch:false so a Stuck simulation reaches this handler instead of
     dying with a raw backtrace: print the full report to stderr and exit
     with a reason-specific code *)
  try exit (Cmd.eval ~catch:false group)
  with Executor.Stuck (reason, report) ->
    prerr_string report;
    if report <> "" && report.[String.length report - 1] <> '\n' then
      prerr_newline ();
    Printf.eprintf "helix-rc: simulation stuck (%s)\n%!"
      (Executor.stuck_reason_name reason);
    exit (stuck_exit_code reason)
