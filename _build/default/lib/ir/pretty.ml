(* Pretty-printing of the IR using [Fmt].  Output is stable and parse-free;
   it exists for debugging, examples, and golden tests. *)

open Ir

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
    | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
    | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
    | Min -> "min" | Max -> "max")

let pp_unop ppf op =
  Fmt.string ppf (match op with Neg -> "neg" | Not -> "not")

let pp_operand ppf = function
  | Reg r -> Fmt.pf ppf "r%d" r
  | Imm i -> Fmt.pf ppf "%d" i

let pp_annot ppf a =
  if a.site >= 0 then begin
    Fmt.pf ppf " @@site%d" a.site;
    if a.flow >= 0 then Fmt.pf ppf ".f%d" a.flow;
    if a.path <> "" then Fmt.pf ppf "[%s]" a.path;
    if a.ty <> "" then Fmt.pf ppf ":%s" a.ty
  end

let pp_addr ppf a =
  (match a.offset with
  | Imm 0 -> Fmt.pf ppf "[%a]" pp_operand a.base
  | o -> Fmt.pf ppf "[%a + %a]" pp_operand a.base pp_operand o);
  pp_annot ppf a.annot

let pp_instr ppf = function
  | Binop (r, op, a, b) ->
      Fmt.pf ppf "r%d = %a %a, %a" r pp_binop op pp_operand a pp_operand b
  | Unop (r, op, a) -> Fmt.pf ppf "r%d = %a %a" r pp_unop op pp_operand a
  | Mov (r, a) -> Fmt.pf ppf "r%d = %a" r pp_operand a
  | Load (r, ad) -> Fmt.pf ppf "r%d = load %a" r pp_addr ad
  | Store (ad, v) -> Fmt.pf ppf "store %a, %a" pp_addr ad pp_operand v
  | Call (None, f, args) ->
      Fmt.pf ppf "call %s(%a)" f Fmt.(list ~sep:comma pp_operand) args
  | Call (Some r, f, args) ->
      Fmt.pf ppf "r%d = call %s(%a)" r f Fmt.(list ~sep:comma pp_operand) args
  | Libcall (r, lc, args) ->
      Fmt.pf ppf "r%d = lib %s(%a)" r (libcall_name lc)
        Fmt.(list ~sep:comma pp_operand) args
  | Wait id -> Fmt.pf ppf "wait %d" id
  | Signal id -> Fmt.pf ppf "signal %d" id
  | Flush -> Fmt.string ppf "flush"
  | Nop -> Fmt.string ppf "nop"

let pp_term ppf = function
  | Jmp l -> Fmt.pf ppf "jmp L%d" l
  | Br (c, l1, l2) -> Fmt.pf ppf "br %a, L%d, L%d" pp_operand c l1 l2
  | Ret None -> Fmt.string ppf "ret"
  | Ret (Some o) -> Fmt.pf ppf "ret %a" pp_operand o

let pp_block ppf (b : block) =
  Fmt.pf ppf "L%d:@." b.b_label;
  List.iter (fun i -> Fmt.pf ppf "  %a@." pp_instr i) b.b_instrs;
  Fmt.pf ppf "  %a@." pp_term b.b_term

let pp_func ppf (f : func) =
  Fmt.pf ppf "func %s(%a):@." f.f_name
    Fmt.(list ~sep:comma (fun ppf r -> pf ppf "r%d" r))
    f.f_params;
  List.iter (fun l -> pp_block ppf (block_of_func f l)) f.f_order

let pp_program ppf (p : program) =
  let names =
    Hashtbl.fold (fun n _ acc -> n :: acc) p.p_funcs [] |> List.sort compare
  in
  List.iter (fun n -> Fmt.pf ppf "%a@." pp_func (find_func p n)) names

let func_to_string f = Fmt.str "%a" pp_func f
let instr_to_string i = Fmt.str "%a" pp_instr i
