(** Control-flow-graph view over an [Ir.func]: successor/predecessor
    maps, reverse postorder and reachability.  All analyses build on
    this. *)

type t = {
  func : Ir.func;
  succ : (Ir.label, Ir.label list) Hashtbl.t;
  pred : (Ir.label, Ir.label list) Hashtbl.t;
  rpo : Ir.label array;
  rpo_index : (Ir.label, int) Hashtbl.t;
}

val of_func : Ir.func -> t

val successors : t -> Ir.label -> Ir.label list
val predecessors : t -> Ir.label -> Ir.label list
val entry : t -> Ir.label

val reverse_postorder : t -> Ir.label array
(** Reverse postorder over the blocks reachable from the entry; the entry
    is first. *)

val rpo_index : t -> Ir.label -> int option
val is_reachable : t -> Ir.label -> bool
val reachable_blocks : t -> Ir.label list
val num_reachable : t -> int

val dfs_order : t -> (Ir.label, int) Hashtbl.t
(** DFS discovery indices, used by property tests. *)
