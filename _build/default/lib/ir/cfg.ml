(* Control-flow graph view over an [Ir.func]: successor/predecessor maps,
   reverse postorder, and reachability.  All analyses are built on top of
   this module. *)

type t = {
  func : Ir.func;
  succ : (Ir.label, Ir.label list) Hashtbl.t;
  pred : (Ir.label, Ir.label list) Hashtbl.t;
  rpo : Ir.label array;              (* reverse postorder of reachable blocks *)
  rpo_index : (Ir.label, int) Hashtbl.t;
}

let successors t l = try Hashtbl.find t.succ l with Not_found -> []
let predecessors t l = try Hashtbl.find t.pred l with Not_found -> []
let entry t = t.func.Ir.f_entry
let reverse_postorder t = t.rpo
let rpo_index t l = Hashtbl.find_opt t.rpo_index l
let is_reachable t l = Hashtbl.mem t.rpo_index l

let of_func (f : Ir.func) : t =
  let succ = Hashtbl.create 17 and pred = Hashtbl.create 17 in
  List.iter
    (fun l ->
      let b = Ir.block_of_func f l in
      let ss = Ir.successors b.Ir.b_term in
      Hashtbl.replace succ l ss;
      List.iter
        (fun s ->
          let ps = try Hashtbl.find pred s with Not_found -> [] in
          if not (List.mem l ps) then Hashtbl.replace pred s (l :: ps))
        ss)
    f.Ir.f_order;
  (* Depth-first postorder from the entry block. *)
  let visited = Hashtbl.create 17 in
  let post = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.replace visited l ();
      List.iter dfs (try Hashtbl.find succ l with Not_found -> []);
      post := l :: !post
    end
  in
  dfs f.Ir.f_entry;
  let rpo = Array.of_list !post in
  let rpo_index = Hashtbl.create 17 in
  Array.iteri (fun i l -> Hashtbl.replace rpo_index l i) rpo;
  { func = f; succ; pred; rpo; rpo_index }

(* Blocks in layout order that are reachable from the entry. *)
let reachable_blocks t =
  List.filter (is_reachable t) t.func.Ir.f_order

let num_reachable t = Array.length t.rpo

(* [dfs_tree t] returns, for each reachable block, its DFS discovery index;
   used by property tests to cross-check dominator results. *)
let dfs_order t =
  let order = Hashtbl.create 17 in
  let n = ref 0 in
  let rec go l =
    if not (Hashtbl.mem order l) then begin
      Hashtbl.replace order l !n;
      incr n;
      List.iter go (successors t l)
    end
  in
  go (entry t);
  order
