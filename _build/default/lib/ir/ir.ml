(* Core intermediate representation for the HELIX-RC compiler family.

   The IR is a register machine over machine words (OCaml [int]s) with
   explicit basic blocks and a flat, word-addressed shared memory.  It is
   deliberately close to the low-level IR that HCCv3 operates on in the
   paper: every loop-carried communication is either a virtual register or
   a memory word, and the new [Wait]/[Signal] instructions extend the ISA
   exactly as described in Section 3.1 of the paper. *)

type reg = int
type label = int

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Min | Max

type unop = Neg | Not

type operand =
  | Reg of reg
  | Imm of int

(* Standard-library calls whose memory semantics the compiler knows.  The
   paper's dependence analysis tier (iv) exploits these semantics to prune
   apparent dependences (Figure 2). *)
type libcall =
  | Lc_abs            (* pure *)
  | Lc_min            (* pure *)
  | Lc_max            (* pure *)
  | Lc_hash           (* pure *)
  | Lc_log2           (* pure *)
  | Lc_isqrt          (* pure *)
  | Lc_rand           (* reads/writes only its private seed word *)
  | Lc_strcmp         (* reads both argument buffers, writes nothing *)
  | Lc_memchr         (* reads the argument buffer, writes nothing *)

(* Static annotation attached to every memory access; this is the
   information the alias-analysis tiers (Section 2.2, Figure 2) are able to
   recover.  Workload generators must keep annotations *sound*: accesses
   that can dynamically alias must never carry distinguishing annotations.

   - [site] is the allocation site (base tier: VLLPA-style allocation-site
     points-to sets).
   - [flow] distinguishes values a flow-sensitive analysis can separate
     within the same site; [-1] means "unknown at this tier".
   - [path] is the storeless access path (Deutsch-style naming).
   - [ty] is the static data type of the accessed object.
   - [affine] marks accesses whose address is an affine function of the
     enclosing loop's canonical induction variable, recording the offset
     relative to it.  A flow-sensitive analysis proves that two affine
     accesses to the same site with equal offsets touch a different
     address on every iteration, killing the false self-carried
     dependence; unequal offsets are a real carried dependence at their
     distance.  Generators must keep the field sound: within a site all
     affine accesses use the same canonical stride. *)
type mem_annot = {
  site : int;
  flow : int;
  path : string;
  ty : string;
  affine : int option;
}

type addr = {
  base : operand;
  offset : operand;
  annot : mem_annot;
}

type instr =
  | Binop of reg * binop * operand * operand
  | Unop of reg * unop * operand
  | Mov of reg * operand
  | Load of reg * addr
  | Store of addr * operand
  | Call of reg option * string * operand list
  | Libcall of reg * libcall * operand list
  | Wait of int      (* enter sequential segment [id] *)
  | Signal of int    (* leave sequential segment [id] *)
  | Flush            (* ring-cache flush fence at parallel-loop exit *)
  | Nop

type terminator =
  | Jmp of label
  | Br of operand * label * label  (* non-zero -> first target *)
  | Ret of operand option

type block = {
  b_label : label;
  mutable b_instrs : instr list;
  mutable b_term : terminator;
}

type func = {
  f_name : string;
  f_params : reg list;
  f_entry : label;
  f_blocks : (label, block) Hashtbl.t;
  mutable f_order : label list;      (* layout order, entry first *)
  mutable f_next_reg : int;
  mutable f_next_label : int;
}

type program = {
  p_funcs : (string, func) Hashtbl.t;
  p_main : string;
}

(* ------------------------------------------------------------------ *)
(* Constructors and accessors                                          *)
(* ------------------------------------------------------------------ *)

let no_annot = { site = -1; flow = -1; path = ""; ty = ""; affine = None }

let annot ?(flow = -1) ?(path = "") ?(ty = "") ?affine site =
  { site; flow; path; ty; affine }

let mk_addr ?(offset = Imm 0) ?(an = no_annot) base =
  { base; offset; annot = an }

let block_of_func f l =
  match Hashtbl.find_opt f.f_blocks l with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Ir.block_of_func: no block %d in %s" l f.f_name)

let blocks_in_order f = List.map (block_of_func f) f.f_order

let fresh_reg f =
  let r = f.f_next_reg in
  f.f_next_reg <- r + 1;
  r

let fresh_label f =
  let l = f.f_next_label in
  f.f_next_label <- l + 1;
  l

let add_block f b =
  if Hashtbl.mem f.f_blocks b.b_label then
    invalid_arg (Printf.sprintf "Ir.add_block: duplicate label %d" b.b_label);
  Hashtbl.replace f.f_blocks b.b_label b;
  f.f_order <- f.f_order @ [ b.b_label ]

let create_func ?(params = []) name entry =
  {
    f_name = name;
    f_params = params;
    f_entry = entry;
    f_blocks = Hashtbl.create 17;
    f_order = [];
    f_next_reg =
      (match params with [] -> 0 | ps -> 1 + List.fold_left max 0 ps);
    f_next_label = entry + 1;
  }

let create_program ?(main = "main") () =
  { p_funcs = Hashtbl.create 7; p_main = main }

let add_func p f = Hashtbl.replace p.p_funcs f.f_name f

let find_func p name =
  match Hashtbl.find_opt p.p_funcs name with
  | Some f -> f
  | None -> invalid_arg ("Ir.find_func: unknown function " ^ name)

let main_func p = find_func p p.p_main

(* ------------------------------------------------------------------ *)
(* Structural helpers                                                  *)
(* ------------------------------------------------------------------ *)

let successors = function
  | Jmp l -> [ l ]
  | Br (_, l1, l2) -> if l1 = l2 then [ l1 ] else [ l1; l2 ]
  | Ret _ -> []

let defs_of_instr = function
  | Binop (r, _, _, _) | Unop (r, _, _) | Mov (r, _) | Load (r, _)
  | Libcall (r, _, _) ->
      [ r ]
  | Call (Some r, _, _) -> [ r ]
  | Call (None, _, _) | Store _ | Wait _ | Signal _ | Flush | Nop -> []

let regs_of_operand = function Reg r -> [ r ] | Imm _ -> []

let regs_of_addr a = regs_of_operand a.base @ regs_of_operand a.offset

let uses_of_instr = function
  | Binop (_, _, a, b) -> regs_of_operand a @ regs_of_operand b
  | Unop (_, _, a) | Mov (_, a) -> regs_of_operand a
  | Load (_, ad) -> regs_of_addr ad
  | Store (ad, v) -> regs_of_addr ad @ regs_of_operand v
  | Call (_, _, args) | Libcall (_, _, args) ->
      List.concat_map regs_of_operand args
  | Wait _ | Signal _ | Flush | Nop -> []

let uses_of_term = function
  | Jmp _ -> []
  | Br (c, _, _) -> regs_of_operand c
  | Ret (Some o) -> regs_of_operand o
  | Ret None -> []

let is_mem_access = function Load _ | Store _ -> true | _ -> false

let is_sync = function Wait _ | Signal _ -> true | _ -> false

let libcall_name = function
  | Lc_abs -> "abs"
  | Lc_min -> "min"
  | Lc_max -> "max"
  | Lc_hash -> "hash"
  | Lc_log2 -> "log2"
  | Lc_isqrt -> "isqrt"
  | Lc_rand -> "rand"
  | Lc_strcmp -> "strcmp"
  | Lc_memchr -> "memchr"

(* Memory effect summary of a library call, used by the libcall-semantics
   tier of the dependence analysis.  [Lib_pure] calls touch no user-visible
   memory; [Lib_reads] calls only read their argument buffers. *)
type lib_effect = Lib_pure | Lib_reads | Lib_private_state

let libcall_effect = function
  | Lc_abs | Lc_min | Lc_max | Lc_hash | Lc_log2 | Lc_isqrt -> Lib_pure
  | Lc_rand -> Lib_private_state
  | Lc_strcmp | Lc_memchr -> Lib_reads

(* Unique position of an instruction inside a function: block label and
   index within the block.  Analyses use this as a stable instruction id. *)
type ipos = { ip_block : label; ip_index : int }

let iter_instrs f k =
  List.iter
    (fun l ->
      let b = block_of_func f l in
      List.iteri (fun i ins -> k { ip_block = l; ip_index = i } ins) b.b_instrs)
    f.f_order

let instr_at f pos =
  let b = block_of_func f pos.ip_block in
  List.nth b.b_instrs pos.ip_index

let fold_instrs f acc k =
  let acc = ref acc in
  iter_instrs f (fun pos ins -> acc := k !acc pos ins);
  !acc

let num_instrs f = fold_instrs f 0 (fun n _ _ -> n + 1)
