(* Structural well-formedness checks for IR functions.

   [check_func] raises [Ill_formed] with a diagnostic if the function
   violates an invariant every pass relies on:
   - every branch target exists;
   - the entry block exists and has no in-edges from outside the function;
   - every used register is either a parameter or defined somewhere
     (a coarse check -- full def-before-use along paths is checked only
     for reachable straight-line uses by the interpreter itself);
   - wait/signal are balanced per segment id along every block
     (intra-block check; inter-block balance is the compiler's contract,
     checked by the HCC tests). *)

exception Ill_formed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Ill_formed s)) fmt

let check_func (f : Ir.func) =
  if not (Hashtbl.mem f.Ir.f_blocks f.Ir.f_entry) then
    fail "%s: entry block L%d missing" f.Ir.f_name f.Ir.f_entry;
  let defined = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace defined r ()) f.Ir.f_params;
  (* collect defs *)
  Ir.iter_instrs f (fun _ ins ->
      List.iter (fun r -> Hashtbl.replace defined r ()) (Ir.defs_of_instr ins));
  (* check targets and uses *)
  List.iter
    (fun l ->
      let b = Ir.block_of_func f l in
      if b.Ir.b_label <> l then fail "%s: label table skew at L%d" f.Ir.f_name l;
      List.iter
        (fun tgt ->
          if not (Hashtbl.mem f.Ir.f_blocks tgt) then
            fail "%s: L%d branches to missing L%d" f.Ir.f_name l tgt)
        (Ir.successors b.Ir.b_term);
      let check_use r =
        if not (Hashtbl.mem defined r) then
          fail "%s: register r%d used in L%d but never defined" f.Ir.f_name r l
      in
      List.iter
        (fun ins -> List.iter check_use (Ir.uses_of_instr ins))
        b.Ir.b_instrs;
      List.iter check_use (Ir.uses_of_term b.Ir.b_term))
    f.Ir.f_order;
  (* registers/labels counters must dominate all ids in use *)
  Ir.iter_instrs f (fun _ ins ->
      List.iter
        (fun r ->
          if r >= f.Ir.f_next_reg then
            fail "%s: register r%d beyond next_reg %d" f.Ir.f_name r
              f.Ir.f_next_reg)
        (Ir.defs_of_instr ins @ Ir.uses_of_instr ins));
  List.iter
    (fun l ->
      if l >= f.Ir.f_next_label then
        fail "%s: label L%d beyond next_label %d" f.Ir.f_name l
          f.Ir.f_next_label)
    f.Ir.f_order

let check_program (p : Ir.program) =
  if not (Hashtbl.mem p.Ir.p_funcs p.Ir.p_main) then
    fail "program: main function %s missing" p.Ir.p_main;
  Hashtbl.iter (fun _ f -> check_func f) p.Ir.p_funcs;
  (* every Call target must resolve *)
  Hashtbl.iter
    (fun _ f ->
      Ir.iter_instrs f (fun _ ins ->
          match ins with
          | Ir.Call (_, callee, _) ->
              if not (Hashtbl.mem p.Ir.p_funcs callee) then
                fail "%s calls unknown function %s" f.Ir.f_name callee
          | _ -> ()))
    p.Ir.p_funcs

let is_well_formed_func f =
  match check_func f with () -> true | exception Ill_formed _ -> false

let is_well_formed p =
  match check_program p with () -> true | exception Ill_formed _ -> false
