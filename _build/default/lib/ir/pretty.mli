(** Stable pretty-printing of the IR, for debugging, examples and golden
    tests. *)

val pp_binop : Format.formatter -> Ir.binop -> unit
val pp_unop : Format.formatter -> Ir.unop -> unit
val pp_operand : Format.formatter -> Ir.operand -> unit
val pp_annot : Format.formatter -> Ir.mem_annot -> unit
val pp_addr : Format.formatter -> Ir.addr -> unit
val pp_instr : Format.formatter -> Ir.instr -> unit
val pp_term : Format.formatter -> Ir.terminator -> unit
val pp_block : Format.formatter -> Ir.block -> unit
val pp_func : Format.formatter -> Ir.func -> unit
val pp_program : Format.formatter -> Ir.program -> unit
val func_to_string : Ir.func -> string
val instr_to_string : Ir.instr -> string
