(* Imperative construction DSL for IR functions.

   A builder keeps a current insertion block; [instr]-emitting helpers
   return the destination register so chains read naturally:

     let b = Builder.create "f" in
     let x = Builder.add b (Reg p) (Imm 1) in
     Builder.ret b (Some (Reg x))
*)

open Ir

type t = {
  func : func;
  mutable cur : block option; (* current insertion block *)
}

let create ?(params = []) name =
  let entry = 0 in
  let f = create_func ~params name entry in
  let b0 = { b_label = entry; b_instrs = []; b_term = Ret None } in
  add_block f b0;
  { func = f; cur = Some b0 }

let func t = t.func

let current_label t =
  match t.cur with
  | Some b -> b.b_label
  | None -> invalid_arg "Builder: no current block"

let fresh_label t = fresh_label t.func

(* Create (if needed) and switch to the block labelled [l]. *)
let switch_to t l =
  let b =
    match Hashtbl.find_opt t.func.f_blocks l with
    | Some b -> b
    | None ->
        let b = { b_label = l; b_instrs = []; b_term = Ret None } in
        add_block t.func b;
        b
  in
  t.cur <- Some b

let new_block t =
  let l = fresh_label t in
  switch_to t l;
  l

let emit t ins =
  match t.cur with
  | None -> invalid_arg "Builder.emit: no current block"
  | Some b -> b.b_instrs <- b.b_instrs @ [ ins ]

let terminate t term =
  match t.cur with
  | None -> invalid_arg "Builder.terminate: no current block"
  | Some b ->
      b.b_term <- term;
      t.cur <- None

(* -- instruction helpers ------------------------------------------- *)

let fresh t = Ir.fresh_reg t.func

let binop t op a b =
  let r = fresh t in
  emit t (Binop (r, op, a, b));
  r

let add t a b = binop t Add a b
let sub t a b = binop t Sub a b
let mul t a b = binop t Mul a b
let div t a b = binop t Div a b
let rem t a b = binop t Rem a b
let band t a b = binop t And a b
let bor t a b = binop t Or a b
let bxor t a b = binop t Xor a b
let shl t a b = binop t Shl a b
let shr t a b = binop t Shr a b
let eq t a b = binop t Eq a b
let ne t a b = binop t Ne a b
let lt t a b = binop t Lt a b
let le t a b = binop t Le a b
let gt t a b = binop t Gt a b
let ge t a b = binop t Ge a b
let imin t a b = binop t Min a b
let imax t a b = binop t Max a b

let unop t op a =
  let r = fresh t in
  emit t (Unop (r, op, a));
  r

let neg t a = unop t Neg a
let bnot t a = unop t Not a

let mov t a =
  let r = fresh t in
  emit t (Mov (r, a));
  r

let mov_to t r a = emit t (Mov (r, a))

let load t ?(offset = Imm 0) ~an base =
  let r = fresh t in
  emit t (Load (r, { base; offset; annot = an }));
  r

let store t ?(offset = Imm 0) ~an base v =
  emit t (Store ({ base; offset; annot = an }, v))

let call t ?dst name args = emit t (Call (dst, name, args))

let libcall t lc args =
  let r = fresh t in
  emit t (Libcall (r, lc, args));
  r

let wait t id = emit t (Wait id)
let signal t id = emit t (Signal id)
let flush t = emit t Flush
let nop t = emit t Nop

(* -- terminators ---------------------------------------------------- *)

let jmp t l = terminate t (Jmp l)
let br t c l1 l2 = terminate t (Br (c, l1, l2))
let ret t o = terminate t (Ret o)

(* -- structured helpers --------------------------------------------- *)

(* [counted_loop t ~from ~below body] builds

     for i = from; i < below; i++ do body i done

   and returns [(header_label, exit_label)].  The induction variable is a
   fresh register passed to [body].  The builder is positioned in the exit
   block on return. *)
let counted_loop t ~from ~below body =
  let i = fresh t in
  mov_to t i from;
  let header = fresh_label t in
  let body_l = fresh_label t in
  let exit_l = fresh_label t in
  jmp t header;
  switch_to t header;
  let c = lt t (Reg i) below in
  br t (Reg c) body_l exit_l;
  switch_to t body_l;
  body i;
  let i' = add t (Reg i) (Imm 1) in
  mov_to t i (Reg i');
  jmp t header;
  switch_to t exit_l;
  (header, exit_l)

(* [while_loop t cond body] builds a while loop whose condition is rebuilt
   in the header each trip; returns [(header, exit)]. *)
let while_loop t cond body =
  let header = fresh_label t in
  let body_l = fresh_label t in
  let exit_l = fresh_label t in
  jmp t header;
  switch_to t header;
  let c = cond () in
  br t (Reg c) body_l exit_l;
  switch_to t body_l;
  body ();
  jmp t header;
  switch_to t exit_l;
  (header, exit_l)

(* [if_ t c then_ else_] builds a diamond; builder ends in the join block. *)
let if_ t c then_ else_ =
  let then_l = fresh_label t in
  let else_l = fresh_label t in
  let join_l = fresh_label t in
  br t c then_l else_l;
  switch_to t then_l;
  then_ ();
  jmp t join_l;
  switch_to t else_l;
  else_ ();
  jmp t join_l;
  switch_to t join_l

(* [if_then t c then_] is [if_] with an empty else branch. *)
let if_then t c then_ = if_ t c then_ (fun () -> ())
