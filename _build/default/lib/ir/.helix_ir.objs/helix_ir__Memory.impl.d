lib/ir/memory.ml: Hashtbl List
