lib/ir/pretty.ml: Fmt Hashtbl Ir List
