lib/ir/memory.mli:
