lib/ir/interp.ml: Array Ir List Memory Option Printf
