lib/ir/cfg.ml: Array Hashtbl Ir List
