lib/ir/interp.mli: Ir Memory
