lib/ir/cfg.mli: Hashtbl Ir
