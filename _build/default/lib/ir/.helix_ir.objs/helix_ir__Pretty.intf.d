lib/ir/pretty.mli: Format Ir
