lib/ir/ir.ml: Hashtbl List Printf
