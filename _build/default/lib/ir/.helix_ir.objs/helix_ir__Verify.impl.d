lib/ir/verify.ml: Hashtbl Ir List Printf
