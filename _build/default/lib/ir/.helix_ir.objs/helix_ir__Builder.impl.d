lib/ir/builder.ml: Hashtbl Ir
