lib/ir/ir.mli: Hashtbl
