(** Imperative construction DSL for IR functions: a builder keeps a
    current insertion block, and instruction helpers return their
    destination register so chains read naturally. *)

type t

val create : ?params:Ir.reg list -> string -> t
(** New function with an empty entry block as the insertion point. *)

val func : t -> Ir.func

val current_label : t -> Ir.label
val fresh_label : t -> Ir.label
val switch_to : t -> Ir.label -> unit
(** Create (if needed) and move insertion to the block labelled [l]. *)

val new_block : t -> Ir.label
val emit : t -> Ir.instr -> unit
val fresh : t -> Ir.reg

(** {1 Instructions} *)

val binop : t -> Ir.binop -> Ir.operand -> Ir.operand -> Ir.reg
val add : t -> Ir.operand -> Ir.operand -> Ir.reg
val sub : t -> Ir.operand -> Ir.operand -> Ir.reg
val mul : t -> Ir.operand -> Ir.operand -> Ir.reg
val div : t -> Ir.operand -> Ir.operand -> Ir.reg
val rem : t -> Ir.operand -> Ir.operand -> Ir.reg
val band : t -> Ir.operand -> Ir.operand -> Ir.reg
val bor : t -> Ir.operand -> Ir.operand -> Ir.reg
val bxor : t -> Ir.operand -> Ir.operand -> Ir.reg
val shl : t -> Ir.operand -> Ir.operand -> Ir.reg
val shr : t -> Ir.operand -> Ir.operand -> Ir.reg
val eq : t -> Ir.operand -> Ir.operand -> Ir.reg
val ne : t -> Ir.operand -> Ir.operand -> Ir.reg
val lt : t -> Ir.operand -> Ir.operand -> Ir.reg
val le : t -> Ir.operand -> Ir.operand -> Ir.reg
val gt : t -> Ir.operand -> Ir.operand -> Ir.reg
val ge : t -> Ir.operand -> Ir.operand -> Ir.reg
val imin : t -> Ir.operand -> Ir.operand -> Ir.reg
val imax : t -> Ir.operand -> Ir.operand -> Ir.reg
val unop : t -> Ir.unop -> Ir.operand -> Ir.reg
val neg : t -> Ir.operand -> Ir.reg
val bnot : t -> Ir.operand -> Ir.reg
val mov : t -> Ir.operand -> Ir.reg
val mov_to : t -> Ir.reg -> Ir.operand -> unit

val load :
  t -> ?offset:Ir.operand -> an:Ir.mem_annot -> Ir.operand -> Ir.reg

val store :
  t -> ?offset:Ir.operand -> an:Ir.mem_annot -> Ir.operand -> Ir.operand ->
  unit

val call : t -> ?dst:Ir.reg -> string -> Ir.operand list -> unit
val libcall : t -> Ir.libcall -> Ir.operand list -> Ir.reg
val wait : t -> int -> unit
val signal : t -> int -> unit
val flush : t -> unit
val nop : t -> unit

(** {1 Terminators} *)

val jmp : t -> Ir.label -> unit
val br : t -> Ir.operand -> Ir.label -> Ir.label -> unit
val ret : t -> Ir.operand option -> unit

(** {1 Structured helpers}

    All three produce the canonical loop / diamond shapes the compiler
    recognizes. *)

val counted_loop :
  t -> from:Ir.operand -> below:Ir.operand -> (Ir.reg -> unit) ->
  Ir.label * Ir.label
(** [counted_loop t ~from ~below body] builds
    [for i = from; i < below; i++ do body i done] and returns
    [(header, exit)]; the builder ends in the exit block. *)

val while_loop :
  t -> (unit -> Ir.reg) -> (unit -> unit) -> Ir.label * Ir.label
(** The condition closure is re-emitted in the header each trip. *)

val if_ : t -> Ir.operand -> (unit -> unit) -> (unit -> unit) -> unit
val if_then : t -> Ir.operand -> (unit -> unit) -> unit
