(** Core intermediate representation for the HELIX-RC compiler family.

    A register machine over machine words with explicit basic blocks and a
    flat, word-addressed shared memory.  The [Wait]/[Signal] instructions
    are the paper's ISA extension (Section 3.1): they delimit sequential
    segments, and a core derives "am I inside a segment?" by counting
    them. *)

type reg = int
(** Virtual register id, dense per function. *)

type label = int
(** Basic-block label, dense per function. *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Min | Max

type unop = Neg | Not

type operand = Reg of reg | Imm of int

(** Standard-library calls whose memory semantics the compiler knows; the
    "+lib calls" analysis tier (Figure 2) exploits them. *)
type libcall =
  | Lc_abs | Lc_min | Lc_max | Lc_hash | Lc_log2 | Lc_isqrt
  | Lc_rand | Lc_strcmp | Lc_memchr

(** Static annotation on a memory access: exactly the information each
    alias-analysis tier can recover.  [site] is the allocation site;
    [flow] a flow-sensitive value id ([-1] unknown); [path] the storeless
    access path; [ty] the static type; [affine] marks accesses whose
    address is an affine function of the enclosing loop's induction
    variable, with the recorded offset.  Generators must keep annotations
    sound: accesses that can dynamically alias never carry distinguishing
    annotations. *)
type mem_annot = {
  site : int;
  flow : int;
  path : string;
  ty : string;
  affine : int option;
}

type addr = { base : operand; offset : operand; annot : mem_annot }

type instr =
  | Binop of reg * binop * operand * operand
  | Unop of reg * unop * operand
  | Mov of reg * operand
  | Load of reg * addr
  | Store of addr * operand
  | Call of reg option * string * operand list
  | Libcall of reg * libcall * operand list
  | Wait of int      (** enter sequential segment [id] *)
  | Signal of int    (** leave sequential segment [id] *)
  | Flush            (** ring-cache flush fence *)
  | Nop

type terminator =
  | Jmp of label
  | Br of operand * label * label  (** non-zero takes the first target *)
  | Ret of operand option

type block = {
  b_label : label;
  mutable b_instrs : instr list;
  mutable b_term : terminator;
}

type func = {
  f_name : string;
  f_params : reg list;
  f_entry : label;
  f_blocks : (label, block) Hashtbl.t;
  mutable f_order : label list;
  mutable f_next_reg : int;
  mutable f_next_label : int;
}

type program = { p_funcs : (string, func) Hashtbl.t; p_main : string }

(** {1 Construction} *)

val no_annot : mem_annot
(** The fully-unknown annotation: aliases everything at every tier. *)

val annot :
  ?flow:int -> ?path:string -> ?ty:string -> ?affine:int -> int -> mem_annot
(** [annot site] builds an annotation for [site] with optional precision
    facets. *)

val mk_addr : ?offset:operand -> ?an:mem_annot -> operand -> addr

val create_func : ?params:reg list -> string -> label -> func
(** [create_func name entry] makes an empty function whose entry block
    must be added by the caller. *)

val create_program : ?main:string -> unit -> program
val add_func : program -> func -> unit
val add_block : func -> block -> unit
val fresh_reg : func -> reg
val fresh_label : func -> label

(** {1 Access} *)

val find_func : program -> string -> func
val main_func : program -> func
val block_of_func : func -> label -> block
val blocks_in_order : func -> block list
val successors : terminator -> label list

(** {1 Structural queries} *)

val defs_of_instr : instr -> reg list
val uses_of_instr : instr -> reg list
val uses_of_term : terminator -> reg list
val regs_of_operand : operand -> reg list
val regs_of_addr : addr -> reg list
val is_mem_access : instr -> bool
val is_sync : instr -> bool

val libcall_name : libcall -> string

(** Memory-effect class of a library call. *)
type lib_effect = Lib_pure | Lib_reads | Lib_private_state

val libcall_effect : libcall -> lib_effect

(** Stable instruction position: block label and index within it. *)
type ipos = { ip_block : label; ip_index : int }

val iter_instrs : func -> (ipos -> instr -> unit) -> unit
val instr_at : func -> ipos -> instr
val fold_instrs : func -> 'a -> ('a -> ipos -> instr -> 'a) -> 'a
val num_instrs : func -> int
