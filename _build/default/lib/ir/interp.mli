(** Reference interpreter: the golden sequential semantics every parallel
    execution must reproduce, and the measurement engine behind the
    profiler, the dynamic dependence ground truth and the Figure-4
    statistics.  [Wait]/[Signal]/[Flush] are no-ops here. *)

exception Out_of_fuel
exception Runtime_error of string

type access_kind = Read | Write

(** Instrumentation hooks.  [on_mem] fires for every load/store (and for
    the bounded reads of [strcmp]/[memchr]); [on_block] at every block
    entry; [on_instr] per retired instruction. *)
type hooks = {
  on_mem :
    (fname:string -> pos:Ir.ipos -> access_kind -> int -> int -> unit) option;
  on_block : (fname:string -> Ir.label -> unit) option;
  on_instr : (fname:string -> Ir.ipos -> Ir.instr -> unit) option;
}

val no_hooks : hooks

type stats = {
  mutable dyn_instrs : int;
  mutable dyn_loads : int;
  mutable dyn_stores : int;
  mutable dyn_branches : int;
  mutable dyn_calls : int;
}

type result = { ret : int option; stats : stats; mem_hash : int }

val eval_binop : Ir.binop -> int -> int -> int
(** Word arithmetic shared with the runtime contexts (division by zero
    yields 0; shifts mask their amount). *)

val eval_unop : Ir.unop -> int -> int

val ilog2 : int -> int
val isqrt : int -> int
val mix_hash : int -> int

val run :
  ?hooks:hooks -> ?fuel:int -> ?args:int list -> Ir.program -> Memory.t ->
  result
(** Execute [main] against the given memory (mutated in place).
    @raise Out_of_fuel when more than [fuel] instructions retire. *)

val run_func :
  ?hooks:hooks -> ?fuel:int -> ?args:int list -> Ir.program -> string ->
  Memory.t -> result
(** Execute a single named function. *)
