(** Structural well-formedness checks every pass relies on: branch
    targets exist, used registers have definitions, counters dominate the
    ids in use, call targets resolve. *)

exception Ill_formed of string

val check_func : Ir.func -> unit
val check_program : Ir.program -> unit
val is_well_formed_func : Ir.func -> bool
val is_well_formed : Ir.program -> bool
