(* Reference interpreter.

   Executes a program sequentially against a [Memory.t].  It defines the
   golden semantics every parallel execution must reproduce, and it doubles
   as the profiling engine: instrumentation hooks expose every memory
   access, block entry, and retired instruction, which the dependence
   ground truth, the loop profiler (HCCv3's ring-cache profiler), and the
   figure-4 statistics are built from.

   [Wait]/[Signal]/[Flush] are no-ops here: sequential execution trivially
   satisfies every synchronization constraint. *)

exception Out_of_fuel
exception Runtime_error of string

type access_kind = Read | Write

type hooks = {
  on_mem :
    (fname:string -> pos:Ir.ipos -> access_kind -> int -> int -> unit) option;
        (* fname pos kind address value *)
  on_block : (fname:string -> Ir.label -> unit) option;
  on_instr : (fname:string -> Ir.ipos -> Ir.instr -> unit) option;
}

let no_hooks = { on_mem = None; on_block = None; on_instr = None }

type stats = {
  mutable dyn_instrs : int;
  mutable dyn_loads : int;
  mutable dyn_stores : int;
  mutable dyn_branches : int;
  mutable dyn_calls : int;
}

type result = { ret : int option; stats : stats; mem_hash : int }

type state = {
  prog : Ir.program;
  mem : Memory.t;
  hooks : hooks;
  fuel : int;
  stats : stats;
  mutable rand_seed : int;
}

let eval_binop op a b =
  match op with
  | Ir.Add -> a + b
  | Ir.Sub -> a - b
  | Ir.Mul -> a * b
  | Ir.Div -> if b = 0 then 0 else a / b
  | Ir.Rem -> if b = 0 then 0 else a mod b
  | Ir.And -> a land b
  | Ir.Or -> a lor b
  | Ir.Xor -> a lxor b
  | Ir.Shl -> a lsl (b land 63)
  | Ir.Shr -> a asr (b land 63)
  | Ir.Eq -> if a = b then 1 else 0
  | Ir.Ne -> if a <> b then 1 else 0
  | Ir.Lt -> if a < b then 1 else 0
  | Ir.Le -> if a <= b then 1 else 0
  | Ir.Gt -> if a > b then 1 else 0
  | Ir.Ge -> if a >= b then 1 else 0
  | Ir.Min -> min a b
  | Ir.Max -> max a b

let eval_unop op a = match op with Ir.Neg -> -a | Ir.Not -> lnot a

let ilog2 n =
  if n <= 1 then 0
  else
    let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
    go n 0

let isqrt n =
  if n <= 0 then 0
  else
    let rec go x =
      let y = (x + (n / x)) / 2 in
      if y >= x then x else go y
    in
    go n

let mix_hash x =
  let x = x * 0x9e3779b97f4a7c1 in
  let x = x lxor (x lsr 29) in
  let x = x * 0xbf58476d1ce4e5b in
  (x lxor (x lsr 32)) land max_int

(* Deterministic LCG: the "private seed word" of the C library's rand. *)
let lib_rand st =
  st.rand_seed <- ((st.rand_seed * 2862933555777941757) + 3037000493)
                  land max_int;
  (st.rand_seed lsr 16) land 0x3fffffff

let eval_libcall st ~fname ~pos lc (args : int list) =
  let arg i = try List.nth args i with _ -> 0 in
  let record kind a v =
    match st.hooks.on_mem with
    | Some f -> f ~fname ~pos kind a v
    | None -> ()
  in
  match lc with
  | Ir.Lc_abs -> abs (arg 0)
  | Ir.Lc_min -> min (arg 0) (arg 1)
  | Ir.Lc_max -> max (arg 0) (arg 1)
  | Ir.Lc_hash -> mix_hash (arg 0)
  | Ir.Lc_log2 -> ilog2 (arg 0)
  | Ir.Lc_isqrt -> isqrt (arg 0)
  | Ir.Lc_rand -> lib_rand st
  | Ir.Lc_strcmp ->
      (* strcmp (a, b, len): bounded word-wise comparison *)
      let a = arg 0 and b = arg 1 and len = min (arg 2) 64 in
      let rec go i =
        if i >= len then 0
        else
          let va = Memory.load st.mem (a + i)
          and vb = Memory.load st.mem (b + i) in
          record Read (a + i) va;
          record Read (b + i) vb;
          if va <> vb then compare va vb else go (i + 1)
      in
      go 0
  | Ir.Lc_memchr ->
      (* memchr (base, needle, len): first index holding needle, or -1 *)
      let base = arg 0 and needle = arg 1 and len = min (arg 2) 256 in
      let rec go i =
        if i >= len then -1
        else
          let v = Memory.load st.mem (base + i) in
          record Read (base + i) v;
          if v = needle then i else go (i + 1)
      in
      go 0

(* Execute one function call frame; returns the optional return value. *)
let rec exec_func st (f : Ir.func) (args : int list) : int option =
  let regs = Array.make (max 1 f.Ir.f_next_reg) 0 in
  (try
     List.iter2 (fun p a -> regs.(p) <- a) f.Ir.f_params args
   with Invalid_argument _ ->
     raise (Runtime_error (Printf.sprintf "%s: arity mismatch" f.Ir.f_name)));
  let value = function Ir.Reg r -> regs.(r) | Ir.Imm i -> i in
  let addr_of (a : Ir.addr) = value a.Ir.base + value a.Ir.offset in
  let fname = f.Ir.f_name in
  let record kind ~pos a v =
    match st.hooks.on_mem with
    | Some h -> h ~fname ~pos kind a v
    | None -> ()
  in
  let rec run_block l : int option =
    (match st.hooks.on_block with Some h -> h ~fname l | None -> ());
    let b = Ir.block_of_func f l in
    let rec run_instrs idx = function
      | [] -> run_term b.Ir.b_term
      | ins :: rest ->
          st.stats.dyn_instrs <- st.stats.dyn_instrs + 1;
          if st.stats.dyn_instrs > st.fuel then raise Out_of_fuel;
          let pos = { Ir.ip_block = l; Ir.ip_index = idx } in
          (match st.hooks.on_instr with
          | Some h -> h ~fname pos ins
          | None -> ());
          (match ins with
          | Ir.Binop (r, op, a, b') -> regs.(r) <- eval_binop op (value a) (value b')
          | Ir.Unop (r, op, a) -> regs.(r) <- eval_unop op (value a)
          | Ir.Mov (r, a) -> regs.(r) <- value a
          | Ir.Load (r, ad) ->
              st.stats.dyn_loads <- st.stats.dyn_loads + 1;
              let a = addr_of ad in
              let v = Memory.load st.mem a in
              record Read ~pos a v;
              regs.(r) <- v
          | Ir.Store (ad, v) ->
              st.stats.dyn_stores <- st.stats.dyn_stores + 1;
              let a = addr_of ad in
              let v = value v in
              record Write ~pos a v;
              Memory.store st.mem a v
          | Ir.Call (dst, callee, cargs) ->
              st.stats.dyn_calls <- st.stats.dyn_calls + 1;
              let cf = Ir.find_func st.prog callee in
              let rv = exec_func st cf (List.map value cargs) in
              (match (dst, rv) with
              | Some r, Some v -> regs.(r) <- v
              | Some r, None -> regs.(r) <- 0
              | None, _ -> ())
          | Ir.Libcall (r, lc, cargs) ->
              regs.(r) <- eval_libcall st ~fname ~pos lc (List.map value cargs)
          | Ir.Wait _ | Ir.Signal _ | Ir.Flush | Ir.Nop -> ());
          run_instrs (idx + 1) rest
    and run_term = function
      | Ir.Jmp l' -> run_block l'
      | Ir.Br (c, l1, l2) ->
          st.stats.dyn_branches <- st.stats.dyn_branches + 1;
          if value c <> 0 then run_block l1 else run_block l2
      | Ir.Ret o -> Option.map value o
    in
    run_instrs 0 b.Ir.b_instrs
  in
  run_block f.Ir.f_entry

let fresh_stats () =
  { dyn_instrs = 0; dyn_loads = 0; dyn_stores = 0; dyn_branches = 0;
    dyn_calls = 0 }

let run ?(hooks = no_hooks) ?(fuel = 200_000_000) ?(args = [])
    (prog : Ir.program) (mem : Memory.t) : result =
  let st =
    { prog; mem; hooks; fuel; stats = fresh_stats (); rand_seed = 0x12345 }
  in
  let ret = exec_func st (Ir.main_func prog) args in
  { ret; stats = st.stats; mem_hash = Memory.hash mem }

(* Convenience: run a single function against a fresh private register
   file, e.g. to execute just a loop body during profiling. *)
let run_func ?(hooks = no_hooks) ?(fuel = 200_000_000) ?(args = []) prog fname
    mem =
  let st =
    { prog; mem; hooks; fuel; stats = fresh_stats (); rand_seed = 0x12345 }
  in
  let f = Ir.find_func prog fname in
  let ret = exec_func st f args in
  { ret; stats = st.stats; mem_hash = Memory.hash mem }
