open Helix_ir

(** Workload descriptors: synthetic IR programs whose hot-loop structure
    is calibrated to the paper's published per-benchmark statistics.
    Program text is identical for training and reference runs; input
    sizes live in a parameter block in memory. *)

type variant = Train | Ref

type spec = {
  prog : Ir.program;
  layout : Memory.Layout.t;
  init : variant -> Memory.t;
}

(** Reference values from the paper, for reporting. *)
type paper_numbers = {
  p_speedup : float;
  p_coverage_v3 : float;
  p_coverage_v2 : float;
  p_coverage_v1 : float;
  p_dominant : string;
}

type kind = Int | Fp

type t = {
  name : string;
  kind : kind;
  phases : int;          (** SimPoint phases, Table 1 *)
  build : unit -> spec;  (** deterministic *)
  paper : paper_numbers;
}

(** {1 Generator helpers} *)

val param_region : Memory.Layout.t -> Memory.Layout.region

val an_of :
  Memory.Layout.region ->
  ?flow:int -> ?affine:int -> ?path:string -> ?ty:string -> unit ->
  Ir.mem_annot

val load_param : Builder.t -> Memory.Layout.region -> int -> Ir.reg

val noncanonical_loop :
  Builder.t -> from:Ir.operand -> below:Ir.operand -> (Ir.reg -> unit) ->
  Ir.reg
(** A counted loop with two latch blocks: no HCC version can parallelize
    it — models the irregular outer loops the compiler skips. *)

val repeat : Builder.t -> times:Ir.operand -> (Ir.reg -> unit) -> unit
(** Non-canonical outer pass loop (SPEC workloads iterate over a warm
    working set). *)

val mk_rng : int -> int -> int
(** Deterministic generator for input synthesis: [mk_rng seed bound]. *)

val fill : Memory.t -> int -> int -> (int -> int) -> unit
