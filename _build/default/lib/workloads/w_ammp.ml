open Helix_ir
open Workload

(* 188.ammp model -- molecular dynamics force evaluation.

   The hot loop iterates over atoms; each iteration scans the atom's
   neighbor list (beefy: ~16 pairwise interactions with division-heavy
   arithmetic), accumulates forces into the atom's own slots
   (iteration-affine, independent) and a global potential-energy cell --
   the single genuinely carried memory dependence, which makes
   dependence waiting ammp's dominant (if small) overhead (12.5x in
   Fig. 12).  The energy accumulation is branchless so the segment stays
   tight.  A second DOALL phase integrates positions. *)

let natoms = 2048
let nbrs = 16

let build () : spec =
  let layout = Memory.Layout.create () in
  let params = param_region layout in
  let pos = Memory.Layout.alloc layout "pos" natoms in
  let nbr = Memory.Layout.alloc layout "nbr" (natoms * nbrs) in
  let force = Memory.Layout.alloc layout "force" natoms in
  let pe = Memory.Layout.alloc layout "pe" 8 in
  let an_pos = an_of pos ~path:"atom.pos" ~ty:"fp" () in
  (* integration touches each atom exactly once per iteration *)
  let an_pos_aff = an_of pos ~path:"atom.pos" ~ty:"fp" ~affine:0 () in
  let an_nbr = an_of nbr ~path:"nbr[]" ~ty:"idx" ~affine:0 () in
  let an_force = an_of force ~path:"atom.force" ~ty:"fp" ~affine:0 () in
  let an_pe = an_of pe ~path:"pe" ~ty:"fp" () in
  let b = Builder.create "main" in
  let n = load_param b params 0 in
  let steps = load_param b params 1 in
  let chk = Builder.mov b (Ir.Imm 0) in
  repeat b ~times:(Ir.Reg steps) (fun _step ->
      (* force loop *)
      let _ =
        Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg n) (fun a ->
            let pa0 = Builder.add b (Ir.Imm pos.Memory.Layout.base) (Ir.Reg a) in
            let xa = Builder.load b ~an:an_pos (Ir.Reg pa0) in
            let nbase = Builder.mul b (Ir.Reg a) (Ir.Imm nbrs) in
            let f = Builder.mov b (Ir.Imm 0) in
            let e = Builder.mov b (Ir.Imm 0) in
            let _ =
              Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm nbrs)
                (fun j ->
                  let na = Builder.add b (Ir.Reg nbase) (Ir.Reg j) in
                  let other =
                    Builder.load b ~offset:(Ir.Reg na) ~an:an_nbr
                      (Ir.Imm nbr.Memory.Layout.base)
                  in
                  let pb =
                    Builder.add b (Ir.Imm pos.Memory.Layout.base)
                      (Ir.Reg other)
                  in
                  let xb = Builder.load b ~an:an_pos (Ir.Reg pb) in
                  let d0 = Builder.sub b (Ir.Reg xa) (Ir.Reg xb) in
                  let d = Builder.libcall b Ir.Lc_abs [ Ir.Reg d0 ] in
                  let d1 = Builder.add b (Ir.Reg d) (Ir.Imm 1) in
                  let inv = Builder.div b (Ir.Imm 100000) (Ir.Reg d1) in
                  let f' = Builder.add b (Ir.Reg f) (Ir.Reg inv) in
                  Builder.mov_to b f (Ir.Reg f');
                  let e' = Builder.add b (Ir.Reg e) (Ir.Reg d) in
                  Builder.mov_to b e (Ir.Reg e'))
            in
            Builder.store b ~offset:(Ir.Reg a) ~an:an_force
              (Ir.Imm force.Memory.Layout.base) (Ir.Reg f);
            (* global potential energy: the carried dependence *)
            let pev =
              Builder.load b ~an:an_pe (Ir.Imm pe.Memory.Layout.base)
            in
            let pe' = Builder.add b (Ir.Reg pev) (Ir.Reg e) in
            Builder.store b ~an:an_pe (Ir.Imm pe.Memory.Layout.base)
              (Ir.Reg pe'))
      in
      (* integration: DOALL *)
      let _ =
        Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg n) (fun a ->
            let pa = Builder.add b (Ir.Imm pos.Memory.Layout.base) (Ir.Reg a) in
            let x = Builder.load b ~an:an_pos_aff (Ir.Reg pa) in
            let fv =
              Builder.load b ~offset:(Ir.Reg a) ~an:an_force
                (Ir.Imm force.Memory.Layout.base)
            in
            let dx = Builder.shr b (Ir.Reg fv) (Ir.Imm 6) in
            let x1 = Builder.add b (Ir.Reg x) (Ir.Reg dx) in
            let x2 = Builder.band b (Ir.Reg x1) (Ir.Imm 1023) in
            Builder.store b ~an:an_pos_aff (Ir.Reg pa) (Ir.Reg x2))
      in
      ());
  let pev = Builder.load b ~an:an_pe (Ir.Imm pe.Memory.Layout.base) in
  let r = Builder.add b (Ir.Reg chk) (Ir.Reg pev) in
  Builder.ret b (Some (Ir.Reg r));
  let prog = Ir.create_program () in
  Ir.add_func prog (Builder.func b);
  let init variant =
    let mem = Memory.create () in
    let nn = match variant with Train -> 512 | Ref -> 1536 in
    let steps = match variant with Train -> 1 | Ref -> 3 in
    Memory.store mem params.Memory.Layout.base nn;
    Memory.store mem (params.Memory.Layout.base + 1) steps;
    let rng = mk_rng 0x188 in
    fill mem pos.Memory.Layout.base natoms (fun _ -> rng 1024);
    fill mem nbr.Memory.Layout.base (natoms * nbrs) (fun e ->
        let a = e / nbrs in
        (a + 1 + rng 31) mod natoms);
    mem
  in
  { prog; layout; init }

let workload : t =
  {
    name = "188.ammp";
    kind = Fp;
    phases = 23;
    build;
    paper =
      {
        p_speedup = 12.5;
        p_coverage_v3 = 0.99;
        p_coverage_v2 = 0.99;
        p_coverage_v1 = 0.602;
        p_dominant = "Dependence Waiting";
      };
  }
