open Helix_ir
open Workload

(* 300.twolf model -- standard-cell placement swap evaluation.

   - Phase B (hot, ~45%): for every proposed swap, a small inner loop
     (trip 8..16) walks the nets affected by the two cells, gathering
     scattered placement data (irregular private accesses over a working
     set larger than the L1: the memory-stall column of Fig. 12) and
     accumulating a delta cost; an accept test conditionally updates the
     shared total-cost cell (Figure-5 diamond).
   - Phase C (~50%): window-density recomputation with beefy iterations,
     selected by every version.
   Paper: 7.6x, overheads dominated by low trip count + memory. *)

let ncells = 4096

let build () : spec =
  let layout = Memory.Layout.create () in
  let params = param_region layout in
  let cellx = Memory.Layout.alloc layout "cellx" ncells in
  let celly = Memory.Layout.alloc layout "celly" ncells in
  let nets = Memory.Layout.alloc layout "netlist" 8192 in
  let cost = Memory.Layout.alloc layout "cost" 8 in
  let dens = Memory.Layout.alloc layout "dens" 1024 in
  let an_cellx = an_of cellx ~path:"cell.x" ~ty:"int" () in
  let an_celly = an_of celly ~path:"cell.y" ~ty:"int" () in
  let an_nets = an_of nets ~path:"nets[]" ~ty:"int" ~affine:0 () in
  let an_cost = an_of cost ~path:"totcost" ~ty:"int" () in
  let an_dens = an_of dens ~path:"dens[]" ~ty:"int" ~affine:0 () in
  let b = Builder.create "main" in
  let n = load_param b params 0 in
  let passes = load_param b params 1 in
  let total = Builder.mov b (Ir.Imm 0) in
  repeat b ~times:(Ir.Reg passes) (fun _pass ->
      (* phase B: swap evaluations; irregular outer, small hot inner *)
      let _ =
        noncanonical_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg n) (fun move ->
            let seed0 = Builder.libcall b Ir.Lc_hash [ Ir.Reg move ] in
            let start = Builder.band b (Ir.Reg seed0) (Ir.Imm 8191) in
            let cnt0 = Builder.band b (Ir.Reg seed0) (Ir.Imm 7) in
            let cnt = Builder.add b (Ir.Reg cnt0) (Ir.Imm 8) in
            let stop = Builder.add b (Ir.Reg start) (Ir.Reg cnt) in
            let delta = Builder.mov b (Ir.Imm 0) in
            (* the small hot loop: trip 8..15, scattered private loads *)
            let _ =
              Builder.counted_loop b ~from:(Ir.Reg start) ~below:(Ir.Reg stop)
                (fun j ->
                  let ja = Builder.band b (Ir.Reg j) (Ir.Imm 8191) in
                  let cell0 =
                    Builder.load b ~offset:(Ir.Reg ja) ~an:an_nets
                      (Ir.Imm nets.Memory.Layout.base)
                  in
                  let cell = Builder.band b (Ir.Reg cell0) (Ir.Imm (ncells - 1)) in
                  let xa =
                    Builder.add b (Ir.Imm cellx.Memory.Layout.base) (Ir.Reg cell)
                  in
                  let x = Builder.load b ~an:an_cellx (Ir.Reg xa) in
                  let ya =
                    Builder.add b (Ir.Imm celly.Memory.Layout.base) (Ir.Reg cell)
                  in
                  let y = Builder.load b ~an:an_celly (Ir.Reg ya) in
                  let dx = Builder.sub b (Ir.Reg x) (Ir.Reg y) in
                  let adx = Builder.libcall b Ir.Lc_abs [ Ir.Reg dx ] in
                  let d = Builder.add b (Ir.Reg delta) (Ir.Reg adx) in
                  Builder.mov_to b delta (Ir.Reg d);
                  (* accept test on a shared cost cell: Figure-5 diamond *)
                  let low = Builder.band b (Ir.Reg adx) (Ir.Imm 15) in
                  let good = Builder.eq b (Ir.Reg low) (Ir.Imm 0) in
                  Builder.if_then b (Ir.Reg good) (fun () ->
                      let c =
                        Builder.load b ~an:an_cost
                          (Ir.Imm cost.Memory.Layout.base)
                      in
                      let c1 = Builder.add b (Ir.Reg c) (Ir.Imm 1) in
                      Builder.store b ~an:an_cost
                        (Ir.Imm cost.Memory.Layout.base) (Ir.Reg c1)))
            in
            let t = Builder.add b (Ir.Reg total) (Ir.Reg delta) in
            Builder.mov_to b total (Ir.Reg t))
      in
      (* phase C: window densities, beefy iterations *)
      let wins = Builder.shr b (Ir.Reg n) (Ir.Imm 1) in
      let _ =
        Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg wins)
          (fun w ->
            let acc = Builder.mov b (Ir.Imm 0) in
            let _ =
              Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 72)
                (fun k ->
                  let a0 = Builder.mul b (Ir.Reg w) (Ir.Imm 7) in
                  let a1 = Builder.add b (Ir.Reg a0) (Ir.Reg k) in
                  let a = Builder.band b (Ir.Reg a1) (Ir.Imm 8191) in
                  let v =
                    Builder.load b ~offset:(Ir.Reg a) ~an:an_nets
                      (Ir.Imm nets.Memory.Layout.base)
                  in
                  let d = Builder.mul b (Ir.Reg v) (Ir.Imm 3) in
                  let acc' = Builder.add b (Ir.Reg acc) (Ir.Reg d) in
                  Builder.mov_to b acc (Ir.Reg acc'))
            in
            let wa = Builder.band b (Ir.Reg w) (Ir.Imm 1023) in
            Builder.store b ~offset:(Ir.Reg wa) ~an:an_dens
              (Ir.Imm dens.Memory.Layout.base) (Ir.Reg acc);
            let t = Builder.add b (Ir.Reg total) (Ir.Reg acc) in
            Builder.mov_to b total (Ir.Reg t))
      in
      ());
  let c0 = Builder.load b ~an:an_cost (Ir.Imm cost.Memory.Layout.base) in
  let r = Builder.add b (Ir.Reg total) (Ir.Reg c0) in
  Builder.ret b (Some (Ir.Reg r));
  let prog = Ir.create_program () in
  Ir.add_func prog (Builder.func b);
  let init variant =
    let mem = Memory.create () in
    let nn = match variant with Train -> 48 | Ref -> 144 in
    let passes = match variant with Train -> 1 | Ref -> 4 in
    Memory.store mem params.Memory.Layout.base nn;
    Memory.store mem (params.Memory.Layout.base + 1) passes;
    let rng = mk_rng 0x300 in
    fill mem cellx.Memory.Layout.base ncells (fun _ -> rng 512);
    fill mem celly.Memory.Layout.base ncells (fun _ -> rng 512);
    fill mem nets.Memory.Layout.base 8192 (fun _ -> rng ncells);
    mem
  in
  { prog; layout; init }

let workload : t =
  {
    name = "300.twolf";
    kind = Int;
    phases = 18;
    build;
    paper =
      {
        p_speedup = 7.6;
        p_coverage_v3 = 0.99;
        p_coverage_v2 = 0.624;
        p_coverage_v1 = 0.624;
        p_dominant = "Low Trip Count";
      };
  }
