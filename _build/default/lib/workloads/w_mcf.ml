open Helix_ir
open Workload

(* 181.mcf model -- network simplex arc scanning.

   - Phase B (hot, ~55%): the pricing loop over arcs.  Each iteration
     loads arc data (iteration-indexed, disambiguated by the flow-aware
     tiers), computes the reduced cost, and on violating arcs updates the
     shared node-potential array at data-dependent endpoints plus a
     shared violation counter: two distinct shared structures yield two
     sequential segments with long bodies -- dependence waiting and
     communication dominate (8.7x in Fig. 12).
   - Phase C (~40%): flow accumulation with beefy iterations (all
     versions; v1 synchronizes the accumulator). *)

let nnodes = 96

let build () : spec =
  let layout = Memory.Layout.create () in
  let params = param_region layout in
  let tail = Memory.Layout.alloc layout "arc.tail" 8192 in
  let head = Memory.Layout.alloc layout "arc.head" 8192 in
  let acost = Memory.Layout.alloc layout "arc.cost" 8192 in
  let potential = Memory.Layout.alloc layout "potential" nnodes in

  let flow = Memory.Layout.alloc layout "flow" 8192 in
  let an_tail = an_of tail ~path:"arc.tail" ~ty:"int" ~affine:0 () in
  let an_head = an_of head ~path:"arc.head" ~ty:"int" ~affine:0 () in
  let an_acost = an_of acost ~path:"arc.cost" ~ty:"int" ~affine:0 () in
  let an_pot = an_of potential ~path:"node.potential" ~ty:"int" () in

  let an_flow = an_of flow ~path:"flow[]" ~ty:"int" ~affine:0 () in
  let b = Builder.create "main" in
  let n = load_param b params 0 in
  let passes = load_param b params 1 in
  let total = Builder.mov b (Ir.Imm 0) in
  let nviol = Builder.mov b (Ir.Imm 0) in
  repeat b ~times:(Ir.Reg passes) (fun _pass ->
      (* phase B: arc pricing *)
      let _ =
        Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg n) (fun arc ->
            let t0 =
              Builder.load b ~offset:(Ir.Reg arc) ~an:an_tail
                (Ir.Imm tail.Memory.Layout.base)
            in
            let h0 =
              Builder.load b ~offset:(Ir.Reg arc) ~an:an_head
                (Ir.Imm head.Memory.Layout.base)
            in
            let c =
              Builder.load b ~offset:(Ir.Reg arc) ~an:an_acost
                (Ir.Imm acost.Memory.Layout.base)
            in
            (* private pricing arithmetic sizes the iteration (~60 instrs) *)
            let w0 = Builder.mul b (Ir.Reg c) (Ir.Imm 5) in
            let w1 = Builder.libcall b Ir.Lc_hash [ Ir.Reg w0 ] in
            let w2 = Builder.band b (Ir.Reg w1) (Ir.Imm 255) in
            let w3 = Builder.add b (Ir.Reg w2) (Ir.Reg c) in
            let w4 = Builder.libcall b Ir.Lc_isqrt [ Ir.Reg w3 ] in
            let u0 = Builder.mul b (Ir.Reg w4) (Ir.Reg w2) in
            let u1 = Builder.libcall b Ir.Lc_hash [ Ir.Reg u0 ] in
            let u2 = Builder.band b (Ir.Reg u1) (Ir.Imm 127) in
            let u3 = Builder.libcall b Ir.Lc_isqrt [ Ir.Reg u2 ] in
            let w4 = Builder.add b (Ir.Reg w4) (Ir.Reg u3) in
            (* longest-path relabeling arithmetic: beefy private work *)
            let q0 = Builder.mul b (Ir.Reg w4) (Ir.Imm 7) in
            let q1 = Builder.libcall b Ir.Lc_hash [ Ir.Reg q0 ] in
            let q2 = Builder.band b (Ir.Reg q1) (Ir.Imm 511) in
            let q3 = Builder.libcall b Ir.Lc_isqrt [ Ir.Reg q2 ] in
            let q4 = Builder.mul b (Ir.Reg q3) (Ir.Reg w2) in
            let q5 = Builder.libcall b Ir.Lc_hash [ Ir.Reg q4 ] in
            let q6 = Builder.band b (Ir.Reg q5) (Ir.Imm 63) in
            let w4 = Builder.add b (Ir.Reg w4) (Ir.Reg q6) in
            (* reduced cost needs both endpoint potentials (shared) *)
            let ta =
              Builder.add b (Ir.Imm potential.Memory.Layout.base) (Ir.Reg t0)
            in
            let pt = Builder.load b ~an:an_pot (Ir.Reg ta) in
            let ha =
              Builder.add b (Ir.Imm potential.Memory.Layout.base) (Ir.Reg h0)
            in
            let ph = Builder.load b ~an:an_pot (Ir.Reg ha) in
            let red0 = Builder.sub b (Ir.Reg pt) (Ir.Reg ph) in
            let red = Builder.add b (Ir.Reg red0) (Ir.Reg w4) in
            (* branchless pivot: raise the tail potential by 0 or 1;
               keeping every access in one block gives a tight (not
               loop-wide) segment bracket.  Violations accumulate in a
               register (a reduction HCCv2/v3 privatize). *)
            let neg = Builder.lt b (Ir.Reg red) (Ir.Imm 120) in
            let p1 = Builder.add b (Ir.Reg pt) (Ir.Reg neg) in
            Builder.store b ~an:an_pot (Ir.Reg ta) (Ir.Reg p1);
            let nv = Builder.add b (Ir.Reg nviol) (Ir.Reg neg) in
            Builder.mov_to b nviol (Ir.Reg nv);
            let t = Builder.add b (Ir.Reg total) (Ir.Reg red) in
            Builder.mov_to b total (Ir.Reg t))
      in
      (* phase C: flow accumulation, beefy iterations *)
      let m = Builder.shr b (Ir.Reg n) (Ir.Imm 3) in
      let _ =
        Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg m) (fun j ->
            let acc = Builder.mov b (Ir.Imm 0) in
            let _ =
              Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 64)
                (fun k ->
                  let a0 = Builder.shl b (Ir.Reg j) (Ir.Imm 3) in
                  let a1 = Builder.add b (Ir.Reg a0) (Ir.Reg k) in
                  let a = Builder.band b (Ir.Reg a1) (Ir.Imm 8191) in
                  let v =
                    Builder.load b ~offset:(Ir.Reg a) ~an:an_acost
                      (Ir.Imm acost.Memory.Layout.base)
                  in
                  let d = Builder.mul b (Ir.Reg v) (Ir.Reg k) in
                  let acc' = Builder.add b (Ir.Reg acc) (Ir.Reg d) in
                  Builder.mov_to b acc (Ir.Reg acc'))
            in
            Builder.store b ~offset:(Ir.Reg j) ~an:an_flow
              (Ir.Imm flow.Memory.Layout.base) (Ir.Reg acc);
            let t = Builder.add b (Ir.Reg total) (Ir.Reg acc) in
            Builder.mov_to b total (Ir.Reg t))
      in
      ());
  let r = Builder.add b (Ir.Reg total) (Ir.Reg nviol) in
  Builder.ret b (Some (Ir.Reg r));
  let prog = Ir.create_program () in
  Ir.add_func prog (Builder.func b);
  let init variant =
    let mem = Memory.create () in
    let nn = match variant with Train -> 500 | Ref -> 1800 in
    let passes = match variant with Train -> 1 | Ref -> 3 in
    Memory.store mem params.Memory.Layout.base nn;
    Memory.store mem (params.Memory.Layout.base + 1) passes;
    let rng = mk_rng 0x181 in
    fill mem tail.Memory.Layout.base 8192 (fun _ -> rng nnodes);
    fill mem head.Memory.Layout.base 8192 (fun _ -> rng nnodes);
    fill mem acost.Memory.Layout.base 8192 (fun _ -> rng 256);
    fill mem potential.Memory.Layout.base nnodes (fun _ -> 100 + rng 64);
    mem
  in
  { prog; layout; init }

let workload : t =
  {
    name = "181.mcf";
    kind = Int;
    phases = 19;
    build;
    paper =
      {
        p_speedup = 8.7;
        p_coverage_v3 = 0.99;
        p_coverage_v2 = 0.653;
        p_coverage_v1 = 0.653;
        p_dominant = "Dependence Waiting";
      };
  }
