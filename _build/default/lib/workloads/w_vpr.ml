open Helix_ir
open Workload

(* 175.vpr model -- FPGA placement cost evaluation.

   - Phase B (hot, ~45%): for every net, a small inner loop over its 8-16
     pins computes the bounding box (min/max reductions).  The inner loop
     is the loop HELIX-RC parallelizes: its low trip count is the dominant
     overhead (74% in Fig. 12; 6.1x).  The outer net loop carries a
     sequential perturbation seed whose uses span the body, so its single
     segment is loop-wide and no version profits from it.
   - Phase B also contains the paper's Figure-5 diamond: the new cost
     updates a shared best-cost cell only on improving paths.
   - Phase C (~55%): cost accumulation with beefy per-net iterations;
     selected by every version (v1 synchronizes the accumulator). *)

let build () : spec =
  let layout = Memory.Layout.create () in
  let params = param_region layout in
  let nets = 512 in
  let max_pins = 16 in
  let pinx = Memory.Layout.alloc layout "pinx" (nets * max_pins) in
  let piny = Memory.Layout.alloc layout "piny" (nets * max_pins) in
  let netstart = Memory.Layout.alloc layout "netstart" (nets + 1) in
  let cost = Memory.Layout.alloc layout "cost" nets in
  let best = Memory.Layout.alloc layout "best" 8 in
  let bucket = Memory.Layout.alloc layout "bucket" 8 in
  let an_pinx = an_of pinx ~path:"pinx[]" ~ty:"int" ~affine:0 () in
  let an_piny = an_of piny ~path:"piny[]" ~ty:"int" ~affine:0 () in
  let an_ns ?(ofs = 0) () =
    an_of netstart ~path:"netstart[]" ~ty:"int" ~affine:ofs ()
  in
  let an_cost = an_of cost ~path:"cost[]" ~ty:"int" ~affine:0 () in
  let an_best = an_of best ~path:"best" ~ty:"int" () in
  let an_bucket = an_of bucket ~path:"bucket[]" ~ty:"int" () in
  let b = Builder.create "main" in
  let n = load_param b params 0 in
  let passes = load_param b params 1 in
  let seed = Builder.mov b (Ir.Imm 7) in
  let total = Builder.mov b (Ir.Imm 0) in
  (* placement passes: irregular outer loops, warm working set *)
  repeat b ~times:(Ir.Reg passes) (fun _pass ->
  (* phase B: bounding boxes per net; the outer net loop has irregular
     control flow (two latches) and is not parallelizable -- HELIX-RC
     targets the small pin loop inside *)
  let _ =
    noncanonical_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg n) (fun net ->
        (* sequential perturbation chain: uses span the body *)
        let s1 = Builder.libcall b Ir.Lc_hash [ Ir.Reg seed ] in
        Builder.mov_to b seed (Ir.Reg s1);
        let first =
          Builder.load b ~offset:(Ir.Reg net) ~an:(an_ns ())
            (Ir.Imm netstart.Memory.Layout.base)
        in
        let net1 = Builder.add b (Ir.Reg net) (Ir.Imm 1) in
        let last =
          Builder.load b ~offset:(Ir.Reg net1) ~an:(an_ns ~ofs:1 ())
            (Ir.Imm netstart.Memory.Layout.base)
        in
        let minx = Builder.mov b (Ir.Imm 1000000) in
        let maxx = Builder.mov b (Ir.Imm (-1000000)) in
        let miny = Builder.mov b (Ir.Imm 1000000) in
        let maxy = Builder.mov b (Ir.Imm (-1000000)) in
        (* the small hot loop HELIX-RC targets: trip 8..16, ~25-cycle
           iterations (Figure 4a) *)
        let _ =
          Builder.counted_loop b ~from:(Ir.Reg first) ~below:(Ir.Reg last)
            (fun p ->
              let x =
                Builder.load b ~offset:(Ir.Reg p) ~an:an_pinx
                  (Ir.Imm pinx.Memory.Layout.base)
              in
              let y =
                Builder.load b ~offset:(Ir.Reg p) ~an:an_piny
                  (Ir.Imm piny.Memory.Layout.base)
              in
              (* timing-model cost: criticality-weighted coordinates *)
              let w0 = Builder.mul b (Ir.Reg x) (Ir.Imm 3) in
              let w1 = Builder.add b (Ir.Reg w0) (Ir.Reg y) in
              let w2 = Builder.libcall b Ir.Lc_hash [ Ir.Reg w1 ] in
              let w3 = Builder.band b (Ir.Reg w2) (Ir.Imm 15) in
              let xx = Builder.add b (Ir.Reg x) (Ir.Reg w3) in
              let yy = Builder.add b (Ir.Reg y) (Ir.Reg w3) in
              (* the paper's Figure-5 pattern: a = a + 1 on a shared cell,
                 executed only on some paths of the small hot loop *)
              let is0 = Builder.eq b (Ir.Reg w3) (Ir.Imm 0) in
              Builder.if_then b (Ir.Reg is0) (fun () ->
                  let v =
                    Builder.load b ~an:an_best
                      (Ir.Imm best.Memory.Layout.base)
                  in
                  let v1 = Builder.add b (Ir.Reg v) (Ir.Imm 1) in
                  Builder.store b ~an:an_best
                    (Ir.Imm best.Memory.Layout.base) (Ir.Reg v1));
              let nx = Builder.imin b (Ir.Reg minx) (Ir.Reg xx) in
              Builder.mov_to b minx (Ir.Reg nx);
              let mx = Builder.imax b (Ir.Reg maxx) (Ir.Reg xx) in
              Builder.mov_to b maxx (Ir.Reg mx);
              let ny = Builder.imin b (Ir.Reg miny) (Ir.Reg yy) in
              Builder.mov_to b miny (Ir.Reg ny);
              let my = Builder.imax b (Ir.Reg maxy) (Ir.Reg yy) in
              Builder.mov_to b maxy (Ir.Reg my))
        in
        let dx = Builder.sub b (Ir.Reg maxx) (Ir.Reg minx) in
        let dy = Builder.sub b (Ir.Reg maxy) (Ir.Reg miny) in
        let c0 = Builder.add b (Ir.Reg dx) (Ir.Reg dy) in
        let jitter = Builder.band b (Ir.Reg s1) (Ir.Imm 3) in
        let c = Builder.add b (Ir.Reg c0) (Ir.Reg jitter) in
        Builder.store b ~offset:(Ir.Reg net) ~an:an_cost
          (Ir.Imm cost.Memory.Layout.base) (Ir.Reg c))
  in
  (* phase C: beefy per-net cost recomputation with a global accumulator
     and a shared bucket histogram (a real memory-carried dependence) *)
  let _ =
    Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg n) (fun net ->
        let first =
          Builder.load b ~offset:(Ir.Reg net) ~an:(an_ns ())
            (Ir.Imm netstart.Memory.Layout.base)
        in
        let acc = Builder.mov b (Ir.Imm 0) in
        (* fixed-length scan keeps iterations beefy (~96 pins worth) *)
        let _ =
          Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 72)
            (fun k ->
              let p0 = Builder.add b (Ir.Reg first) (Ir.Reg k) in
              let p = Builder.band b (Ir.Reg p0) (Ir.Imm (nets * max_pins - 1)) in
              let x =
                Builder.load b ~offset:(Ir.Reg p) ~an:an_pinx
                  (Ir.Imm pinx.Memory.Layout.base)
              in
              let y =
                Builder.load b ~offset:(Ir.Reg p) ~an:an_piny
                  (Ir.Imm piny.Memory.Layout.base)
              in
              let d = Builder.mul b (Ir.Reg x) (Ir.Reg y) in
              let a = Builder.add b (Ir.Reg acc) (Ir.Reg d) in
              Builder.mov_to b acc (Ir.Reg a))
        in
        let t = Builder.add b (Ir.Reg total) (Ir.Reg acc) in
        Builder.mov_to b total (Ir.Reg t);
        let bk = Builder.band b (Ir.Reg acc) (Ir.Imm 7) in
        let baddr =
          Builder.add b (Ir.Imm bucket.Memory.Layout.base) (Ir.Reg bk)
        in
        let bv = Builder.load b ~an:an_bucket (Ir.Reg baddr) in
        let bv1 = Builder.add b (Ir.Reg bv) (Ir.Imm 1) in
        Builder.store b ~an:an_bucket (Ir.Reg baddr) (Ir.Reg bv1))
  in
  ());
  let bestv = Builder.load b ~an:an_best (Ir.Imm best.Memory.Layout.base) in
  let r0 = Builder.add b (Ir.Reg total) (Ir.Reg bestv) in
  let r = Builder.add b (Ir.Reg r0) (Ir.Reg seed) in
  Builder.ret b (Some (Ir.Reg r));
  let prog = Ir.create_program () in
  Ir.add_func prog (Builder.func b);
  let init variant =
    let mem = Memory.create () in
    let nn, np = match variant with Train -> (48, 1) | Ref -> (128, 5) in
    Memory.store mem params.Memory.Layout.base nn;
    Memory.store mem (params.Memory.Layout.base + 1) np;
    let rng = mk_rng 0xbeef in
    (* CSR layout: nets with 8..16 pins *)
    let pos = ref 0 in
    for net = 0 to nets do
      Memory.store mem (netstart.Memory.Layout.base + net) !pos;
      if net < nets then pos := !pos + 8 + rng 13
    done;
    fill mem pinx.Memory.Layout.base (nets * max_pins) (fun _ -> rng 100);
    fill mem piny.Memory.Layout.base (nets * max_pins) (fun _ -> rng 100);
    mem
  in
  { prog; layout; init }

let workload : t =
  {
    name = "175.vpr";
    kind = Int;
    phases = 28;
    build;
    paper =
      {
        p_speedup = 6.1;
        p_coverage_v3 = 0.99;
        p_coverage_v2 = 0.551;
        p_coverage_v1 = 0.551;
        p_dominant = "Low Trip Count";
      };
  }
