open Helix_ir
open Workload

(* 183.equake model -- sparse matrix-vector product (earthquake sim).

   The hot loop (smvp, ~85% of time) iterates over matrix rows: each
   iteration scans the row's nonzeros through a column-index array --
   strided, partially irregular private loads over a working set larger
   than the L1, so memory stalls dominate the (small) overhead (Fig. 12:
   87.7% memory, 10.1x).  The output vector is written at the row index
   (iteration-affine): HCCv2/v3 prove independence and run it DOALL;
   HCCv1's flow-insensitive analysis keeps a false self-dependence and
   serializes the stores (FP jumps from 2.4x to 11x in Figure 1).
   A second phase updates the displacement vectors (also DOALL). *)

let nrows = 2048
let nnz_per_row = 12

let build () : spec =
  let layout = Memory.Layout.create () in
  let params = param_region layout in
  let aval = Memory.Layout.alloc layout "A.val" (nrows * nnz_per_row) in
  let acol = Memory.Layout.alloc layout "A.col" (nrows * nnz_per_row) in
  let x = Memory.Layout.alloc layout "x" nrows in
  let y = Memory.Layout.alloc layout "y" nrows in
  let disp = Memory.Layout.alloc layout "disp" nrows in
  let an_aval = an_of aval ~path:"A.val[]" ~ty:"fp" ~affine:0 () in
  let an_acol = an_of acol ~path:"A.col[]" ~ty:"idx" ~affine:0 () in
  let an_x = an_of x ~path:"x[]" ~ty:"fp" () in
  let an_y = an_of y ~path:"y[]" ~ty:"fp" ~affine:0 () in
  let an_disp = an_of disp ~path:"disp[]" ~ty:"fp" ~affine:0 () in
  let b = Builder.create "main" in
  let n = load_param b params 0 in
  let steps = load_param b params 1 in
  let energy = Builder.mov b (Ir.Imm 0) in
  repeat b ~times:(Ir.Reg steps) (fun _step ->
      (* smvp: y[i] = sum_j A[i,j] * x[col[i,j]] *)
      let _ =
        Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg n) (fun row ->
            let base = Builder.mul b (Ir.Reg row) (Ir.Imm nnz_per_row) in
            let acc = Builder.mov b (Ir.Imm 0) in
            let _ =
              Builder.counted_loop b ~from:(Ir.Imm 0)
                ~below:(Ir.Imm nnz_per_row) (fun j ->
                  let e = Builder.add b (Ir.Reg base) (Ir.Reg j) in
                  let v =
                    Builder.load b ~offset:(Ir.Reg e) ~an:an_aval
                      (Ir.Imm aval.Memory.Layout.base)
                  in
                  let col =
                    Builder.load b ~offset:(Ir.Reg e) ~an:an_acol
                      (Ir.Imm acol.Memory.Layout.base)
                  in
                  let xa =
                    Builder.add b (Ir.Imm x.Memory.Layout.base) (Ir.Reg col)
                  in
                  let xv = Builder.load b ~an:an_x (Ir.Reg xa) in
                  let p = Builder.mul b (Ir.Reg v) (Ir.Reg xv) in
                  let acc' = Builder.add b (Ir.Reg acc) (Ir.Reg p) in
                  Builder.mov_to b acc (Ir.Reg acc'))
            in
            Builder.store b ~offset:(Ir.Reg row) ~an:an_y
              (Ir.Imm y.Memory.Layout.base) (Ir.Reg acc);
            let e' = Builder.add b (Ir.Reg energy) (Ir.Reg acc) in
            Builder.mov_to b energy (Ir.Reg e'))
      in
      (* displacement update: pure DOALL vector work *)
      let _ =
        Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg n) (fun i ->
            let yv =
              Builder.load b ~offset:(Ir.Reg i) ~an:an_y
                (Ir.Imm y.Memory.Layout.base)
            in
            let dv =
              Builder.load b ~offset:(Ir.Reg i) ~an:an_disp
                (Ir.Imm disp.Memory.Layout.base)
            in
            let s = Builder.mul b (Ir.Reg yv) (Ir.Imm 3) in
            let d1 = Builder.add b (Ir.Reg dv) (Ir.Reg s) in
            let d2 = Builder.shr b (Ir.Reg d1) (Ir.Imm 1) in
            Builder.store b ~offset:(Ir.Reg i) ~an:an_disp
              (Ir.Imm disp.Memory.Layout.base) (Ir.Reg d2))
      in
      ());
  Builder.ret b (Some (Ir.Reg energy));
  let prog = Ir.create_program () in
  Ir.add_func prog (Builder.func b);
  let init variant =
    let mem = Memory.create () in
    let nn = match variant with Train -> 512 | Ref -> 2048 in
    let steps = match variant with Train -> 1 | Ref -> 3 in
    Memory.store mem params.Memory.Layout.base nn;
    Memory.store mem (params.Memory.Layout.base + 1) steps;
    let rng = mk_rng 0x183 in
    fill mem aval.Memory.Layout.base (nrows * nnz_per_row) (fun _ -> rng 64);
    (* banded sparsity: columns near the row, some far *)
    fill mem acol.Memory.Layout.base (nrows * nnz_per_row) (fun e ->
        let row = e / nnz_per_row in
        let d = rng 48 - 24 in
        (row + d + nrows) mod nn);
    fill mem x.Memory.Layout.base nrows (fun _ -> rng 128);
    mem
  in
  { prog; layout; init }

let workload : t =
  {
    name = "183.equake";
    kind = Fp;
    phases = 7;
    build;
    paper =
      {
        p_speedup = 10.1;
        p_coverage_v3 = 0.99;
        p_coverage_v2 = 0.99;
        p_coverage_v1 = 0.771;
        p_dominant = "Memory";
      };
  }
