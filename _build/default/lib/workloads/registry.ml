(* All SPEC CPU2000 workload models, in the paper's presentation order. *)

let integer : Workload.t list =
  [
    W_gzip.workload;
    W_vpr.workload;
    W_parser.workload;
    W_twolf.workload;
    W_mcf.workload;
    W_bzip2.workload;
  ]

let floating : Workload.t list =
  [ W_equake.workload; W_art.workload; W_ammp.workload; W_mesa.workload ]

let all = integer @ floating

let find name =
  match List.find_opt (fun w -> w.Workload.name = name) all with
  | Some w -> w
  | None -> invalid_arg ("Registry.find: unknown workload " ^ name)
