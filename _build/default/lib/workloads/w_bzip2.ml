open Helix_ir
open Workload

(* 256.bzip2 model -- block-based compression.

   - Phase B (hot, ~60%): per block, a rank-update loop with trip 24..40
     (the low-trip-count column dominates in Fig. 12) whose iterations do
     moderate private work plus a run-length state cell shared across
     iterations (communication + wait/signal overhead, 12.0x).
   - Phase C (~35%): per-block Huffman cost estimation with beefy
     iterations, selected by every version. *)

let build () : spec =
  let layout = Memory.Layout.create () in
  let params = param_region layout in
  (* one block object: bytes at [0..16384), ranks at [16384..32768).
     Same allocation site, same access path, different element types --
     only the data-type tier separates them (Figure 2). *)
  let block = Memory.Layout.alloc layout "block" 32768 in
  let rle = Memory.Layout.alloc layout "rle" 8 in
  let costs = Memory.Layout.alloc layout "costs" 2048 in
  let an_data = an_of block ~path:"block[]" ~ty:"byte" ~affine:0 () in
  (* distinct affine offset: the flow tier must not merge the two halves,
     so the data-type tier gets the disambiguation credit *)
  let an_ranks = an_of block ~path:"block[]" ~ty:"int" ~affine:1 () in
  let an_rle = an_of rle ~path:"rle" ~ty:"int" () in
  let an_costs = an_of costs ~path:"costs[]" ~ty:"int" ~affine:0 () in
  let b = Builder.create "main" in
  let nblocks = load_param b params 0 in
  let total = Builder.mov b (Ir.Imm 0) in
  (* block loop: irregular control flow, models the compression driver *)
  let _ =
    noncanonical_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg nblocks) (fun blk ->
        let h = Builder.libcall b Ir.Lc_hash [ Ir.Reg blk ] in
        let base0 = Builder.band b (Ir.Reg h) (Ir.Imm 8191) in
        let len0 = Builder.band b (Ir.Reg h) (Ir.Imm 15) in
        let len = Builder.add b (Ir.Reg len0) (Ir.Imm 24) in
        let stop = Builder.add b (Ir.Reg base0) (Ir.Reg len) in
        (* phase B: rank updates, trip 24..39 *)
        let _ =
          Builder.counted_loop b ~from:(Ir.Reg base0) ~below:(Ir.Reg stop)
            (fun i ->
              let ia = Builder.band b (Ir.Reg i) (Ir.Imm 16383) in
              let d =
                Builder.load b ~offset:(Ir.Reg ia) ~an:an_data
                  (Ir.Imm block.Memory.Layout.base)
              in
              let r0 = Builder.mul b (Ir.Reg d) (Ir.Imm 11) in
              let r1 = Builder.libcall b Ir.Lc_hash [ Ir.Reg r0 ] in
              let r2 = Builder.band b (Ir.Reg r1) (Ir.Imm 4095) in
              let r3 = Builder.add b (Ir.Reg r2) (Ir.Reg d) in
              Builder.store b ~offset:(Ir.Reg ia) ~an:an_ranks
                (Ir.Imm (block.Memory.Layout.base + 16384)) (Ir.Reg r3);
              (* run-length state: genuinely carried, branchless update *)
              let s =
                Builder.load b ~an:an_rle (Ir.Imm rle.Memory.Layout.base)
              in
              let same = Builder.eq b (Ir.Reg s) (Ir.Reg d) in
              let inc = Builder.add b (Ir.Reg s) (Ir.Reg same) in
              let nxt = Builder.bxor b (Ir.Reg inc) (Ir.Reg d) in
              Builder.store b ~an:an_rle (Ir.Imm rle.Memory.Layout.base)
                (Ir.Reg nxt))
        in
        (* phase C: Huffman cost estimation, beefy iterations *)
        let _ =
          Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 12)
            (fun g ->
              let acc = Builder.mov b (Ir.Imm 0) in
              let _ =
                Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 64)
                  (fun k ->
                    let a0 = Builder.mul b (Ir.Reg g) (Ir.Imm 64) in
                    let a1 = Builder.add b (Ir.Reg a0) (Ir.Reg k) in
                    let a2 = Builder.add b (Ir.Reg a1) (Ir.Reg base0) in
                    let a = Builder.band b (Ir.Reg a2) (Ir.Imm 16383) in
                    let v =
                      Builder.load b ~offset:(Ir.Reg a) ~an:an_ranks
                        (Ir.Imm (block.Memory.Layout.base + 16384))
                    in
                    let l = Builder.libcall b Ir.Lc_log2 [ Ir.Reg v ] in
                    let d = Builder.mul b (Ir.Reg l) (Ir.Imm 3) in
                    let acc' = Builder.add b (Ir.Reg acc) (Ir.Reg d) in
                    Builder.mov_to b acc (Ir.Reg acc'))
              in
              let ca0 = Builder.mul b (Ir.Reg blk) (Ir.Imm 12) in
              let ca1 = Builder.add b (Ir.Reg ca0) (Ir.Reg g) in
              let ca = Builder.band b (Ir.Reg ca1) (Ir.Imm 2047) in
              Builder.store b ~offset:(Ir.Reg ca) ~an:an_costs
                (Ir.Imm costs.Memory.Layout.base) (Ir.Reg acc);
              let t = Builder.add b (Ir.Reg total) (Ir.Reg acc) in
              Builder.mov_to b total (Ir.Reg t))
        in
        ())
  in
  let s = Builder.load b ~an:an_rle (Ir.Imm rle.Memory.Layout.base) in
  let r = Builder.add b (Ir.Reg total) (Ir.Reg s) in
  Builder.ret b (Some (Ir.Reg r));
  let prog = Ir.create_program () in
  Ir.add_func prog (Builder.func b);
  let init variant =
    let mem = Memory.create () in
    let nb = match variant with Train -> 16 | Ref -> 64 in
    Memory.store mem params.Memory.Layout.base nb;
    let rng = mk_rng 0x256 in
    let cur = ref 0 in
    fill mem block.Memory.Layout.base 16384 (fun _ ->
        if rng 3 = 0 then cur := rng 256;
        !cur);
    mem
  in
  { prog; layout; init }

let workload : t =
  {
    name = "256.bzip2";
    kind = Int;
    phases = 23;
    build;
    paper =
      {
        p_speedup = 12.0;
        p_coverage_v3 = 0.99;
        p_coverage_v2 = 0.723;
        p_coverage_v1 = 0.721;
        p_dominant = "Low Trip Count";
      };
  }
