open Helix_ir

(* Workload descriptors.

   Each SPEC CPU2000 model is a synthetic IR program whose hot-loop
   structure is calibrated to the paper's published per-benchmark
   characteristics: Table 1 (phases, parallel-loop coverage), Figure 4
   (iteration-length distribution, sharing patterns), and Figure 12
   (dominant overhead category and HELIX-RC speedup).  The program text is
   identical for training and reference runs; input sizes live in a
   parameter block in memory, exactly like argv-driven SPEC binaries. *)

type variant = Train | Ref

type spec = {
  prog : Ir.program;
  layout : Memory.Layout.t;
  init : variant -> Memory.t;
}

(* Reference values from the paper, used by EXPERIMENTS.md reporting. *)
type paper_numbers = {
  p_speedup : float;          (* HELIX-RC on 16 in-order cores (Fig. 12) *)
  p_coverage_v3 : float;      (* Table 1 *)
  p_coverage_v2 : float;
  p_coverage_v1 : float;
  p_dominant : string;        (* dominant overhead category (Fig. 12) *)
}

type kind = Int | Fp

type t = {
  name : string;
  kind : kind;
  phases : int;               (* SimPoint phases, Table 1 *)
  build : unit -> spec;
  paper : paper_numbers;
}

(* -- common generator helpers ---------------------------------------- *)

(* Parameter block: word 0 holds the main problem size [n]. *)
let param_region layout = Memory.Layout.alloc layout "params" 8

let an_of (r : Memory.Layout.region) ?(flow = 0) ?affine ?(path = "")
    ?(ty = "") () =
  Ir.annot ~flow ~path ~ty ?affine r.Memory.Layout.site

(* Load the problem size into a register (invariant thereafter). *)
let load_param b (params : Memory.Layout.region) idx =
  Builder.load b
    ~offset:(Ir.Imm idx)
    ~an:(an_of params ~path:"params" ~ty:"int" ())
    (Ir.Imm params.Memory.Layout.base)

(* A counted loop that no HCC version can parallelize: its body ends with
   two distinct latch blocks (complex control flow back to the header), so
   canonicalization fails.  Models the irregular outer loops of
   non-numerical programs -- the compiler targets the small hot loops
   nested inside instead. *)
let noncanonical_loop b ~from ~below body =
  let open Ir in
  let i = Builder.fresh b in
  Builder.mov_to b i from;
  let header = Builder.fresh_label b in
  let body_l = Builder.fresh_label b in
  let latch_a = Builder.fresh_label b in
  let latch_b = Builder.fresh_label b in
  let exit_l = Builder.fresh_label b in
  Builder.jmp b header;
  Builder.switch_to b header;
  let c = Builder.lt b (Reg i) below in
  Builder.br b (Reg c) body_l exit_l;
  Builder.switch_to b body_l;
  body i;
  let i' = Builder.add b (Reg i) (Imm 1) in
  Builder.mov_to b i (Reg i');
  let parity = Builder.band b (Reg i) (Imm 1) in
  Builder.br b (Reg parity) latch_a latch_b;
  Builder.switch_to b latch_a;
  Builder.jmp b header;
  Builder.switch_to b latch_b;
  Builder.jmp b header;
  Builder.switch_to b exit_l;
  i

(* Outer pass loop, non-canonical so no compiler version parallelizes it:
   SPEC workloads iterate many times over their working set (placement
   passes, compression blocks, simplex pivots); the repeat structure also
   keeps caches warm, as in the real programs. *)
let repeat b ~(times : Ir.operand) body =
  ignore (noncanonical_loop b ~from:(Ir.Imm 0) ~below:times body)

(* Deterministic pseudo-random stream for memory initialization. *)
let mk_rng seed =
  let state = ref (seed land max_int) in
  fun bound ->
    state := ((!state * 2862933555777941757) + 3037000493) land max_int;
    if bound <= 0 then 0 else (!state lsr 17) mod bound

(* Write [n] words starting at [base] using [f]. *)
let fill mem base n f =
  for i = 0 to n - 1 do
    Memory.store mem (base + i) (f i)
  done
