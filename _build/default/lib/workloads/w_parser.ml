open Helix_ir
open Workload

(* 197.parser model -- dictionary lookups over a linked word database.

   - Phase B (hot, ~40%): word loop.  Each word hashes into a 1024-bucket
     open-addressed table; a bounded probe walks up to three slots reading
     key fields and bumping per-slot counters.  The counter table is a
     large, genuinely shared structure (thousands of distinct hot words):
     this gives parser the largest ring-cache working set of the suite,
     the benchmark the paper singles out in the node-memory sensitivity
     study (Figure 11d).  Keys and counters live at distinct access paths
     ("slot.key" vs "slot.count"), which only the path-based analysis
     tier can tell apart (Figure 2).
   - A second small shared structure (parse statistics) adds more
     segments: wait/signal overhead and dependence waiting dominate
     (7.3x in Fig. 12).
   - Phase C (~55%): sentence-scoring loop with beefy iterations,
     selected by every compiler version. *)

let tsize = 1024

let build () : spec =
  let layout = Memory.Layout.create () in
  let params = param_region layout in
  let words = Memory.Layout.alloc layout "words" 8192 in
  (* one dictionary object: keys at [0..tsize), counters at
     [tsize..2*tsize).  Same allocation site, distinct access paths --
     only the path-based analysis tier separates them (Figure 2). *)
  let dict = Memory.Layout.alloc layout "dict" (2 * tsize) in
  let stats = Memory.Layout.alloc layout "stats" 8 in
  let score = Memory.Layout.alloc layout "score" 4096 in
  let an_words = an_of words ~path:"words[]" ~ty:"int" ~affine:0 () in
  let an_keys = an_of dict ~path:"slot.key" ~ty:"int" () in
  let an_counts = an_of dict ~path:"slot.count" ~ty:"int" () in
  let an_stats = an_of stats ~path:"stats" ~ty:"int" () in
  let an_score = an_of score ~path:"score[]" ~ty:"int" ~affine:0 () in
  let b = Builder.create "main" in
  let n = load_param b params 0 in
  let passes = load_param b params 1 in
  let total = Builder.mov b (Ir.Imm 0) in
  repeat b ~times:(Ir.Reg passes) (fun _pass ->
      (* phase B: dictionary probes *)
      let _ =
        Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg n) (fun i ->
            let w =
              Builder.load b ~offset:(Ir.Reg i) ~an:an_words
                (Ir.Imm words.Memory.Layout.base)
            in
            (* morphology: private stemming arithmetic per word *)
            let m0 = Builder.mul b (Ir.Reg w) (Ir.Imm 131) in
            let m1 = Builder.libcall b Ir.Lc_hash [ Ir.Reg m0 ] in
            let m2 = Builder.band b (Ir.Reg m1) (Ir.Imm 255) in
            let m3 = Builder.add b (Ir.Reg m2) (Ir.Reg w) in
            let m4 = Builder.libcall b Ir.Lc_isqrt [ Ir.Reg m3 ] in
            let w = Builder.add b (Ir.Reg w) (Ir.Reg m4) in
            let h0 = Builder.libcall b Ir.Lc_hash [ Ir.Reg w ] in
            let h = Builder.band b (Ir.Reg h0) (Ir.Imm (tsize - 1)) in
            (* bounded probe: three slots, branchless counter updates so
               the dictionary segment stays tight (one block) while
               touching many distinct hot words -- parser's ring working
               set is the largest of the suite (Figure 11d) *)
            let hit = Builder.mov b (Ir.Imm 0) in
            let probe d =
              let s0 = Builder.add b (Ir.Reg h) (Ir.Imm d) in
              let s = Builder.band b (Ir.Reg s0) (Ir.Imm (tsize - 1)) in
              let kaddr =
                Builder.add b (Ir.Imm dict.Memory.Layout.base) (Ir.Reg s)
              in
              let k = Builder.load b ~an:an_keys (Ir.Reg kaddr) in
              let m = Builder.eq b (Ir.Reg k) (Ir.Reg w) in
              let caddr =
                Builder.add b
                  (Ir.Imm (dict.Memory.Layout.base + tsize))
                  (Ir.Reg s)
              in
              let c = Builder.load b ~an:an_counts (Ir.Reg caddr) in
              let c1 = Builder.add b (Ir.Reg c) (Ir.Reg m) in
              Builder.store b ~an:an_counts (Ir.Reg caddr) (Ir.Reg c1);
              let h' = Builder.bor b (Ir.Reg hit) (Ir.Reg m) in
              Builder.mov_to b hit (Ir.Reg h')
            in
            probe 0;
            (* parse statistics: a second, tiny shared structure *)
            let sa =
              Builder.add b (Ir.Imm stats.Memory.Layout.base) (Ir.Reg hit)
            in
            let sv = Builder.load b ~an:an_stats (Ir.Reg sa) in
            let sv1 = Builder.add b (Ir.Reg sv) (Ir.Imm 1) in
            Builder.store b ~an:an_stats (Ir.Reg sa) (Ir.Reg sv1))
      in
      (* phase C: sentence scoring, beefy iterations *)
      let m = Builder.shr b (Ir.Reg n) (Ir.Imm 3) in
      let _ =
        Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg m) (fun j ->
            let base = Builder.shl b (Ir.Reg j) (Ir.Imm 3) in
            let acc = Builder.mov b (Ir.Imm 0) in
            let _ =
              Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 64)
                (fun k ->
                  let a0 = Builder.add b (Ir.Reg base) (Ir.Reg k) in
                  let a = Builder.band b (Ir.Reg a0) (Ir.Imm 8191) in
                  let w =
                    Builder.load b ~offset:(Ir.Reg a) ~an:an_words
                      (Ir.Imm words.Memory.Layout.base)
                  in
                  let d = Builder.mul b (Ir.Reg w) (Ir.Reg k) in
                  let acc' = Builder.add b (Ir.Reg acc) (Ir.Reg d) in
                  Builder.mov_to b acc (Ir.Reg acc'))
            in
            Builder.store b ~offset:(Ir.Reg j) ~an:an_score
              (Ir.Imm score.Memory.Layout.base) (Ir.Reg acc);
            let t = Builder.add b (Ir.Reg total) (Ir.Reg acc) in
            Builder.mov_to b total (Ir.Reg t))
      in
      ());
  let s0 =
    Builder.load b ~an:an_stats (Ir.Imm stats.Memory.Layout.base)
  in
  let r = Builder.add b (Ir.Reg total) (Ir.Reg s0) in
  Builder.ret b (Some (Ir.Reg r));
  let prog = Ir.create_program () in
  Ir.add_func prog (Builder.func b);
  let init variant =
    let mem = Memory.create () in
    let nn = match variant with Train -> 400 | Ref -> 1400 in
    let passes = match variant with Train -> 1 | Ref -> 3 in
    Memory.store mem params.Memory.Layout.base nn;
    Memory.store mem (params.Memory.Layout.base + 1) passes;
    let rng = mk_rng 0x197 in
    (* word stream with a Zipf-ish skew: the hot dictionary set sits just
       at the default 1KB node-array capacity (Figure 11d) *)
    fill mem words.Memory.Layout.base 8192 (fun _ ->
        let r = rng 1000 in
        if r < 500 then rng 40 else rng 130);
    (* dictionary: slot keys that words sometimes match *)
    fill mem dict.Memory.Layout.base tsize (fun i ->
        if i land 1 = 0 then i land 600 else rng 600);
    mem
  in
  { prog; layout; init }

let workload : t =
  {
    name = "197.parser";
    kind = Int;
    phases = 19;
    build;
    paper =
      {
        p_speedup = 7.3;
        p_coverage_v3 = 0.987;
        p_coverage_v2 = 0.602;
        p_coverage_v1 = 0.602;
        p_dominant = "Dependence Waiting";
      };
  }
