open Helix_ir
open Workload

(* 177.mesa model -- software rasterization.

   The hot loop iterates over scanlines.  Iteration lengths vary widely
   (span widths of 8..64 pixels from the edge tables), which makes
   iteration imbalance the dominant overhead exactly as in Fig. 12
   (58.4%, 15.1x -- the best-scaling benchmark).  Every pixel write lands
   in the scanline's own framebuffer row (iteration-affine), so HCCv2/v3
   run it DOALL; HCCv1 keeps the false output dependence.  A small
   gamma-table pass follows. *)

let width = 64
let height = 512

let build () : spec =
  let layout = Memory.Layout.create () in
  let params = param_region layout in
  let edges = Memory.Layout.alloc layout "edges" (2 * height) in
  let tex = Memory.Layout.alloc layout "tex" 1024 in
  let fb = Memory.Layout.alloc layout "fb" (width * height) in
  let gamma = Memory.Layout.alloc layout "gamma" 1024 in
  let clipc = Memory.Layout.alloc layout "clipped" 8 in
  let an_edges = an_of edges ~path:"edges[]" ~ty:"int" ~affine:0 () in
  let an_tex = an_of tex ~path:"tex[]" ~ty:"rgba" () in
  let an_fb = an_of fb ~path:"fb[row]" ~ty:"rgba" ~affine:0 () in
  let an_gamma = an_of gamma ~path:"gamma[]" ~ty:"rgba" ~affine:0 () in
  let an_clip = an_of clipc ~path:"clipped" ~ty:"int" () in
  let b = Builder.create "main" in
  let n = load_param b params 0 in
  let frames = load_param b params 1 in
  let chk = Builder.mov b (Ir.Imm 0) in
  repeat b ~times:(Ir.Reg frames) (fun _f ->
      (* scanline rasterization: variable-width spans *)
      let _ =
        Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg n) (fun row ->
            let e0 = Builder.shl b (Ir.Reg row) (Ir.Imm 1) in
            let xstart =
              Builder.load b ~offset:(Ir.Reg e0) ~an:an_edges
                (Ir.Imm edges.Memory.Layout.base)
            in
            let e1 = Builder.add b (Ir.Reg e0) (Ir.Imm 1) in
            let xend =
              Builder.load b ~offset:(Ir.Reg e1) ~an:an_edges
                (Ir.Imm edges.Memory.Layout.base)
            in
            let rowbase = Builder.mul b (Ir.Reg row) (Ir.Imm width) in
            (* pixel span: 8..64 pixels, textured *)
            let _ =
              Builder.counted_loop b ~from:(Ir.Reg xstart) ~below:(Ir.Reg xend)
                (fun px ->
                  let t0 = Builder.mul b (Ir.Reg px) (Ir.Imm 17) in
                  let t1 = Builder.add b (Ir.Reg t0) (Ir.Reg row) in
                  let t = Builder.band b (Ir.Reg t1) (Ir.Imm 1023) in
                  let texel =
                    Builder.load b ~offset:(Ir.Reg t) ~an:an_tex
                      (Ir.Imm tex.Memory.Layout.base)
                  in
                  let shade = Builder.mul b (Ir.Reg texel) (Ir.Imm 3) in
                  let lit = Builder.add b (Ir.Reg shade) (Ir.Reg px) in
                  let fa = Builder.add b (Ir.Reg rowbase) (Ir.Reg px) in
                  Builder.store b ~offset:(Ir.Reg fa) ~an:an_fb
                    (Ir.Imm fb.Memory.Layout.base) (Ir.Reg lit))
            in
            ())
      in
      (* vertex transform: beefy iterations plus a clipped-vertex
         counter cell; coarse enough that even HCCv1 profits *)
      let nv = Builder.shr b (Ir.Reg n) (Ir.Imm 1) in
      let _ =
        Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg nv) (fun v ->
            let acc = Builder.mov b (Ir.Imm 0) in
            let _ =
              Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 48)
                (fun k ->
                  let a0 = Builder.mul b (Ir.Reg v) (Ir.Imm 5) in
                  let a1 = Builder.add b (Ir.Reg a0) (Ir.Reg k) in
                  let a = Builder.band b (Ir.Reg a1) (Ir.Imm 1023) in
                  let t =
                    Builder.load b ~offset:(Ir.Reg a) ~an:an_tex
                      (Ir.Imm tex.Memory.Layout.base)
                  in
                  let d = Builder.mul b (Ir.Reg t) (Ir.Reg k) in
                  let acc' = Builder.add b (Ir.Reg acc) (Ir.Reg d) in
                  Builder.mov_to b acc (Ir.Reg acc'))
            in
            let clip = Builder.band b (Ir.Reg acc) (Ir.Imm 1) in
            let cv =
              Builder.load b ~an:an_clip (Ir.Imm clipc.Memory.Layout.base)
            in
            let cv1 = Builder.add b (Ir.Reg cv) (Ir.Reg clip) in
            Builder.store b ~an:an_clip (Ir.Imm clipc.Memory.Layout.base)
              (Ir.Reg cv1))
      in
      (* gamma table regeneration: small DOALL pass *)
      let _ =
        Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 1024)
          (fun i ->
            let g0 = Builder.mul b (Ir.Reg i) (Ir.Reg i) in
            let g1 = Builder.shr b (Ir.Reg g0) (Ir.Imm 2) in
            let g2 = Builder.band b (Ir.Reg g1) (Ir.Imm 255) in
            Builder.store b ~offset:(Ir.Reg i) ~an:an_gamma
              (Ir.Imm gamma.Memory.Layout.base) (Ir.Reg g2))
      in
      ());
  let probe =
    Builder.load b
      ~offset:(Ir.Imm (width + 5))
      ~an:an_fb (Ir.Imm fb.Memory.Layout.base)
  in
  let r = Builder.add b (Ir.Reg chk) (Ir.Reg probe) in
  Builder.ret b (Some (Ir.Reg r));
  let prog = Ir.create_program () in
  Ir.add_func prog (Builder.func b);
  let init variant =
    let mem = Memory.create () in
    let nn = match variant with Train -> 128 | Ref -> 512 in
    let frames = match variant with Train -> 1 | Ref -> 3 in
    Memory.store mem params.Memory.Layout.base nn;
    Memory.store mem (params.Memory.Layout.base + 1) frames;
    let rng = mk_rng 0x177 in
    for row = 0 to height - 1 do
      let s = rng 8 in
      let w = 8 + rng 57 in
      Memory.store mem (edges.Memory.Layout.base + (2 * row)) s;
      Memory.store mem
        (edges.Memory.Layout.base + (2 * row) + 1)
        (min width (s + w))
    done;
    fill mem tex.Memory.Layout.base 1024 (fun _ -> rng 256);
    mem
  in
  { prog; layout; init }

let workload : t =
  {
    name = "177.mesa";
    kind = Fp;
    phases = 8;
    build;
    paper =
      {
        p_speedup = 15.1;
        p_coverage_v3 = 0.99;
        p_coverage_v2 = 0.99;
        p_coverage_v1 = 0.643;
        p_dominant = "Iteration Imbalance";
      };
  }
