open Helix_ir
open Workload

(* 164.gzip model -- LZ-style compression.

   Structure calibrated to the paper:
   - Phase B (hot, ~55% of time): token loop.  Each iteration hashes the
     next input bytes, reads and updates the shared hash-chain heads, runs
     a bounded match probe (a read-only library call), and appends to the
     output buffer through a data-dependently advancing output cursor.
     The cursor is an unpredictable carried register (demoted to a shared
     cell) and the output stores cannot be proven iteration-disjoint, so
     HCCv3 builds several sequential segments: this is the
     dependence-waiting / wait-signal-heavy benchmark (3.0x in Fig. 12).
   - Phase C (~40%): block checksum with beefy iterations (inner scan of
     a 64-word block) and a global sum.  All compiler versions select it;
     HCCv1 synchronizes the sum, HCCv2/v3 privatize it as a reduction.
   Coverage: v3 ~98% (B+C), v1/v2 ~40% (C only). *)

let hsize = 512

let build () : spec =
  let layout = Memory.Layout.create () in
  let params = param_region layout in
  let input = Memory.Layout.alloc layout "input" 16384 in
  let head = Memory.Layout.alloc layout "head" hsize in
  let outbuf = Memory.Layout.alloc layout "outbuf" 32768 in
  let freq = Memory.Layout.alloc layout "freq" 8 in
  let an_input ?(ofs = 0) () =
    an_of input ~path:"input[]" ~ty:"byte" ~affine:ofs ()
  in
  let an_head = an_of head ~path:"head[]" ~ty:"int" () in
  let an_out = an_of outbuf ~path:"out[]" ~ty:"byte" () in
  let an_freq = an_of freq ~path:"freq[]" ~ty:"int" () in
  let b = Builder.create "main" in
  let n = load_param b params 0 in
  let m = load_param b params 1 in
  let passes = load_param b params 2 in
  let sum = Builder.mov b (Ir.Imm 0) in
  let last_out = Builder.mov b (Ir.Imm 0) in
  (* each pass compresses one input block (same working set, warm caches) *)
  repeat b ~times:(Ir.Reg passes) (fun _pass ->
  (* phase B: token loop *)
  let out_pos = Builder.mov b (Ir.Imm 0) in
  let nb = Builder.sub b (Ir.Reg n) (Ir.Imm 4) in
  let _ =
    Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg nb) (fun i ->
        let d =
          Builder.load b ~offset:(Ir.Reg i) ~an:(an_input ())
            (Ir.Imm input.Memory.Layout.base)
        in
        let i1 = Builder.add b (Ir.Reg i) (Ir.Imm 1) in
        let d2 =
          Builder.load b ~offset:(Ir.Reg i1) ~an:(an_input ~ofs:1 ())
            (Ir.Imm input.Memory.Layout.base)
        in
        let h0 = Builder.mul b (Ir.Reg d) (Ir.Imm 31) in
        let h1 = Builder.add b (Ir.Reg h0) (Ir.Reg d2) in
        let h = Builder.band b (Ir.Reg h1) (Ir.Imm (hsize - 1)) in
        let slot = Builder.add b (Ir.Imm head.Memory.Layout.base) (Ir.Reg h) in
        (* shared hash-chain head: read previous position, write ours *)
        let prev = Builder.load b ~an:an_head (Ir.Reg slot) in
        Builder.store b ~an:an_head (Ir.Reg slot) (Ir.Reg i);
        (* bounded match probe at the previous position (read-only) *)
        let paddr =
          Builder.add b (Ir.Imm input.Memory.Layout.base)
            (Ir.Reg (Builder.band b (Ir.Reg prev) (Ir.Imm 16383)))
        in
        let found =
          Builder.libcall b Ir.Lc_memchr [ Ir.Reg paddr; Ir.Reg d; Ir.Imm 4 ]
        in
        let got = Builder.ge b (Ir.Reg found) (Ir.Imm 0) in
        let len = Builder.mov b (Ir.Imm 1) in
        Builder.if_then b (Ir.Reg got) (fun () ->
            Builder.mov_to b len (Ir.Imm 3));
        (* append token: the output cursor is data-dependent *)
        let oaddr =
          Builder.add b (Ir.Imm outbuf.Memory.Layout.base) (Ir.Reg out_pos)
        in
        Builder.store b ~an:an_out (Ir.Reg oaddr) (Ir.Reg d);
        let np = Builder.add b (Ir.Reg out_pos) (Ir.Reg len) in
        Builder.mov_to b out_pos (Ir.Reg np))
  in
  Builder.mov_to b last_out (Ir.Reg out_pos);
  (* phase C: block checksums over the output, beefy iterations *)
  let _ =
    Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg m) (fun j ->
        let base = Builder.shl b (Ir.Reg j) (Ir.Imm 6) in
        let local = Builder.mov b (Ir.Imm 0) in
        let _ =
          Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 64)
            (fun k ->
              let a = Builder.add b (Ir.Reg base) (Ir.Reg k) in
              let v =
                Builder.load b ~offset:(Ir.Reg a) ~an:an_out
                  (Ir.Imm outbuf.Memory.Layout.base)
              in
              let w = Builder.mul b (Ir.Reg v) (Ir.Reg k) in
              let x = Builder.bxor b (Ir.Reg local) (Ir.Reg w) in
              Builder.mov_to b local (Ir.Reg x))
        in
        let s = Builder.add b (Ir.Reg sum) (Ir.Reg local) in
        Builder.mov_to b sum (Ir.Reg s);
        let bk = Builder.band b (Ir.Reg local) (Ir.Imm 7) in
        let baddr =
          Builder.add b (Ir.Imm freq.Memory.Layout.base) (Ir.Reg bk)
        in
        let fv = Builder.load b ~an:an_freq (Ir.Reg baddr) in
        let fv1 = Builder.add b (Ir.Reg fv) (Ir.Imm 1) in
        Builder.store b ~an:an_freq (Ir.Reg baddr) (Ir.Reg fv1))
  in
  ());
  let chk = Builder.add b (Ir.Reg sum) (Ir.Reg last_out) in
  Builder.ret b (Some (Ir.Reg chk));
  let prog = Ir.create_program () in
  Ir.add_func prog (Builder.func b);
  let init variant =
    let mem = Memory.create () in
    let n, np = match variant with Train -> (500, 1) | Ref -> (900, 3) in
    Memory.store mem params.Memory.Layout.base n;
    Memory.store mem (params.Memory.Layout.base + 1) (n / 20);
    Memory.store mem (params.Memory.Layout.base + 2) np;
    let rng = mk_rng 0x6421 in
    (* compressible-ish input: runs of repeated bytes *)
    let cur = ref 0 in
    fill mem input.Memory.Layout.base n (fun _ ->
        if rng 4 = 0 then cur := rng 256;
        !cur);
    mem
  in
  { prog; layout; init }

let workload : t =
  {
    name = "164.gzip";
    kind = Int;
    phases = 12;
    build;
    paper =
      {
        p_speedup = 3.0;
        p_coverage_v3 = 0.982;
        p_coverage_v2 = 0.423;
        p_coverage_v1 = 0.423;
        p_dominant = "Dependence Waiting";
      };
  }
