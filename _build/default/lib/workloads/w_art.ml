open Helix_ir
open Workload

(* 179.art model -- adaptive resonance theory neural network.

   Training scans images; per image:
   - F1 activation: loop over a smallish feature window (trip ~24: low
     trip count is art's dominant overhead in Fig. 12, 10.5x) computing
     activations with moderate work per neuron;
   - F2 competition: loop over output neurons with a winner-take-all
     (max) reduction -- HCCv1 cannot privatize it and serializes;
   - weight update: DOALL pass over the winner's weight row. *)

let f1 = 1024
let f2 = 256

let build () : spec =
  let layout = Memory.Layout.create () in
  let params = param_region layout in
  let images = Memory.Layout.alloc layout "images" 16384 in
  let weights = Memory.Layout.alloc layout "weights" (f2 * 64) in
  let act = Memory.Layout.alloc layout "act" f2 in
  let an_img = an_of images ~path:"img[]" ~ty:"fp" ~affine:0 () in
  let an_w = an_of weights ~path:"w[]" ~ty:"fp" () in
  let an_act = an_of act ~path:"act[]" ~ty:"fp" ~affine:0 () in
  let b = Builder.create "main" in
  let nimg = load_param b params 0 in
  let score = Builder.mov b (Ir.Imm 0) in
  let _ =
    noncanonical_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg nimg) (fun img ->
        let ibase0 = Builder.mul b (Ir.Reg img) (Ir.Imm 64) in
        let ibase = Builder.band b (Ir.Reg ibase0) (Ir.Imm 16383) in
        (* F2 competition: activation of each output neuron (beefy, ~64
           multiply-accumulates each), plus winner-take-all max *)
        let best = Builder.mov b (Ir.Imm min_int) in
        let _ =
          Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm f2)
            (fun neuron ->
              let wbase = Builder.mul b (Ir.Reg neuron) (Ir.Imm 64) in
              let acc = Builder.mov b (Ir.Imm 0) in
              let _ =
                Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 64)
                  (fun k ->
                    let ia = Builder.add b (Ir.Reg ibase) (Ir.Reg k) in
                    let iv =
                      Builder.load b ~offset:(Ir.Reg ia) ~an:an_img
                        (Ir.Imm images.Memory.Layout.base)
                    in
                    let wa = Builder.add b (Ir.Reg wbase) (Ir.Reg k) in
                    let wv =
                      Builder.load b ~offset:(Ir.Reg wa) ~an:an_w
                        (Ir.Imm weights.Memory.Layout.base)
                    in
                    let p = Builder.mul b (Ir.Reg iv) (Ir.Reg wv) in
                    let acc' = Builder.add b (Ir.Reg acc) (Ir.Reg p) in
                    Builder.mov_to b acc (Ir.Reg acc'))
              in
              Builder.store b ~offset:(Ir.Reg neuron) ~an:an_act
                (Ir.Imm act.Memory.Layout.base) (Ir.Reg acc);
              let best' = Builder.imax b (Ir.Reg best) (Ir.Reg acc) in
              Builder.mov_to b best (Ir.Reg best'))
        in
        (* vigilance scan: small low-trip loop over a feature window *)
        let vig = Builder.mov b (Ir.Imm 0) in
        let _ =
          Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 24)
            (fun k ->
              let ia = Builder.add b (Ir.Reg ibase) (Ir.Reg k) in
              let iv =
                Builder.load b ~offset:(Ir.Reg ia) ~an:an_img
                  (Ir.Imm images.Memory.Layout.base)
              in
              let h = Builder.libcall b Ir.Lc_hash [ Ir.Reg iv ] in
              let t0 = Builder.band b (Ir.Reg h) (Ir.Imm 63) in
              let v' = Builder.add b (Ir.Reg vig) (Ir.Reg t0) in
              Builder.mov_to b vig (Ir.Reg v'))
        in
        let s0 = Builder.add b (Ir.Reg best) (Ir.Reg vig) in
        let s1 = Builder.add b (Ir.Reg score) (Ir.Reg s0) in
        Builder.mov_to b score (Ir.Reg s1))
  in
  Builder.ret b (Some (Ir.Reg score));
  let prog = Ir.create_program () in
  Ir.add_func prog (Builder.func b);
  let init variant =
    let mem = Memory.create () in
    let ni = match variant with Train -> 12 | Ref -> 48 in
    Memory.store mem params.Memory.Layout.base ni;
    let rng = mk_rng 0x179 in
    fill mem images.Memory.Layout.base 16384 (fun _ -> rng 64);
    fill mem weights.Memory.Layout.base (f2 * 64) (fun _ -> rng 32);
    mem
  in
  { prog; layout; init }

let workload : t =
  {
    name = "179.art";
    kind = Fp;
    phases = 11;
    build;
    paper =
      {
        p_speedup = 10.5;
        p_coverage_v3 = 0.99;
        p_coverage_v2 = 0.99;
        p_coverage_v1 = 0.841;
        p_dominant = "Low Trip Count";
      };
  }
