lib/workloads/w_equake.ml: Builder Helix_ir Ir Memory Workload
