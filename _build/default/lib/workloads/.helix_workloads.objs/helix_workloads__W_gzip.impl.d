lib/workloads/w_gzip.ml: Builder Helix_ir Ir Memory Workload
