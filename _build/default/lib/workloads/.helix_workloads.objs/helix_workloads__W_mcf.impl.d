lib/workloads/w_mcf.ml: Builder Helix_ir Ir Memory Workload
