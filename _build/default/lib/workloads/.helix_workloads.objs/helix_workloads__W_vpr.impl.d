lib/workloads/w_vpr.ml: Builder Helix_ir Ir Memory Workload
