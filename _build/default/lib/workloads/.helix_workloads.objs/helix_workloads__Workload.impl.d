lib/workloads/workload.ml: Builder Helix_ir Ir Memory
