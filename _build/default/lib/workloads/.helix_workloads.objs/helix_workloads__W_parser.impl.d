lib/workloads/w_parser.ml: Builder Helix_ir Ir Memory Workload
