lib/workloads/w_art.ml: Builder Helix_ir Ir Memory Workload
