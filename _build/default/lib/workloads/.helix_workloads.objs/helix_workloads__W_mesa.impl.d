lib/workloads/w_mesa.ml: Builder Helix_ir Ir Memory Workload
