lib/workloads/w_ammp.ml: Builder Helix_ir Ir Memory Workload
