lib/workloads/w_twolf.ml: Builder Helix_ir Ir Memory Workload
