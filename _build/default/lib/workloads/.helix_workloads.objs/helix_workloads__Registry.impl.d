lib/workloads/registry.ml: List W_ammp W_art W_bzip2 W_equake W_gzip W_mcf W_mesa W_parser W_twolf W_vpr Workload
