lib/workloads/w_bzip2.ml: Builder Helix_ir Ir Memory Workload
