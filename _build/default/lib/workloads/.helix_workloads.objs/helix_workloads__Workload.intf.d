lib/workloads/workload.mli: Builder Helix_ir Ir Memory
