open Helix_analysis

(** Loop selection: choose a nesting antichain of compiled candidate
    loops maximizing estimated benefit, keeping only candidates whose
    predicted speedup clears the threshold. *)

type candidate = {
  cd_loop : Parallel_loop.t;
  cd_depth : int;
  cd_profile : Profiler.loop_profile option;
  cd_estimate : Perf_model.estimate;
}

val threshold : float
(** Minimum predicted speedup for selection. *)

val conflicts : candidate -> candidate -> (string -> Loops.t) -> bool
(** Nesting overlap within one function (only one loop of a nest may run
    in parallel at a time). *)

val choose : candidate list -> (string -> Loops.t) -> candidate list

val coverage : candidate list -> Profiler.t -> float
(** Dynamic instruction coverage of the selected set (Table 1). *)
