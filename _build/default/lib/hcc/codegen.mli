open Helix_ir

(** Parallel-loop code generation: from a canonical loop to the
    per-iteration body function plus the [Parallel_loop.t] metadata the
    runtime executes.

    Predictable registers leave the communication set (closed-form
    induction recomputation, per-core reduction partials, stamped
    last-value cells); unpredictable registers are demoted to shared
    memory cells; wait/signal brackets delimit each sequential segment —
    tightly in a single dominating block or across the arms of a
    Figure-5 diamond (with signal-only empty arms when the version
    eliminates unnecessary waits), conservatively around the whole body
    otherwise. *)

type input = {
  cg_prog : Ir.program;
  cg_layout : Memory.Layout.t;
  cg_config : Hcc_config.t;
}

val compile_loop :
  input -> Ir.func -> Cfg.t -> Helix_analysis.Loops.loop -> loop_id:int ->
  Parallel_loop.t option
(** [None] when the loop cannot be parallelized under the configuration
    (non-canonical shape, segment access in the header, unsupported
    idioms); the reason is logged at debug level. *)
