open Helix_analysis

(* Loop selection.

   Given every successfully compiled candidate loop with its estimated
   benefit, choose the set to parallelize: a nesting antichain (only one
   loop of a nest can run in parallel at a time) maximizing the estimated
   benefit greedily, keeping only loops whose predicted speedup clears a
   threshold.  HCCv3 feeds profiled facts with the decoupled cost model;
   HCCv1/v2 feed static facts with the conventional model. *)

type candidate = {
  cd_loop : Parallel_loop.t;
  cd_depth : int;
  cd_profile : Profiler.loop_profile option;
  cd_estimate : Perf_model.estimate;
}

let threshold = 1.2

(* Nesting conflict: two candidates overlap when one's body contains the
   other's header (same function only). *)
let conflicts (a : candidate) (b : candidate) (loops_of : string -> Loops.t) =
  a.cd_loop.Parallel_loop.pl_func = b.cd_loop.Parallel_loop.pl_func
  &&
  let lt = loops_of a.cd_loop.Parallel_loop.pl_func in
  let body_of pl =
    match Loops.loop_of_header lt pl.Parallel_loop.pl_header with
    | Some id -> (Loops.loop lt id).Loops.l_body
    | None -> Loops.Label_set.empty
  in
  let ba = body_of a.cd_loop and bb = body_of b.cd_loop in
  Loops.Label_set.mem b.cd_loop.Parallel_loop.pl_header ba
  || Loops.Label_set.mem a.cd_loop.Parallel_loop.pl_header bb

let choose (candidates : candidate list) (loops_of : string -> Loops.t) :
    candidate list =
  let eligible =
    List.filter
      (fun c -> c.cd_estimate.Perf_model.e_speedup >= threshold)
      candidates
  in
  let sorted =
    List.sort
      (fun a b ->
        compare b.cd_estimate.Perf_model.e_benefit
          a.cd_estimate.Perf_model.e_benefit)
      eligible
  in
  List.fold_left
    (fun chosen c ->
      if List.exists (fun c' -> conflicts c c' loops_of) chosen then chosen
      else c :: chosen)
    [] sorted
  |> List.rev

(* Dynamic program coverage of the selected loops (Table 1): instructions
   executed inside any selected loop body over total instructions. *)
let coverage (selected : candidate list) (profile : Profiler.t) : float =
  if profile.Profiler.total_instrs = 0 then 0.0
  else
    let covered =
      List.fold_left
        (fun acc c ->
          match c.cd_profile with
          | Some p -> acc + p.Profiler.lpf_instrs
          | None -> acc)
        0 selected
    in
    float_of_int covered /. float_of_int profile.Profiler.total_instrs
