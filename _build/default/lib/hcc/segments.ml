open Helix_ir
open Helix_analysis

(* Sequential-segment construction.

   Input: shared-data classes -- alias classes of memory annotations from
   the dependence analysis, plus one class per compiler-demoted shared
   register -- each with the loop positions that access it.  Output:
   numbered segments.  "Different sequential segments always access
   different shared data" (Section 4), so distinct segments may execute
   concurrently; HCCv1/v2 merge everything into one segment (conservative
   splitting for machines with expensive synchronization), while HCCv3
   keeps one segment per class. *)

type t = {
  seg_id : int;
  seg_annots : Ir.mem_annot list;   (* the shared-data class *)
  seg_positions : Ir.ipos list;     (* loop positions accessing the class *)
}

(* Does effect [e] touch class [annots] under [tier]? *)
let effect_touches tier (e : Alias.effect_) annots =
  e.Alias.e_opaque
  || List.exists
       (fun a ->
         List.exists
           (fun b -> Alias.may_alias tier a b)
           (e.Alias.e_reads @ e.Alias.e_writes))
       annots

(* Positions of loop memory nodes touching [annots]. *)
let mem_positions tier (deps : Depend.loop_deps) annots =
  List.filter_map
    (fun n ->
      if effect_touches tier n.Depend.mn_effect annots then
        Some n.Depend.mn_pos
      else None)
    deps.Depend.ld_nodes

(* [build ~max_segments ~opaque classes] numbers and, if necessary,
   merges the given (annots, positions) classes.  [opaque] forces a
   single segment (an unknown call may touch anything). *)
let build ~(max_segments : int) ~(opaque : bool)
    (classes : (Ir.mem_annot list * Ir.ipos list) list) : t list =
  let merged =
    if classes = [] then []
    else if opaque || List.length classes > max_segments then begin
      let sorted =
        List.sort
          (fun (a, _) (b, _) -> compare (List.length b) (List.length a))
          classes
      in
      let keep = if opaque then 0 else max 0 (max_segments - 1) in
      let rec split i acc rest =
        match rest with
        | [] -> (List.rev acc, [])
        | x :: tl when i < keep -> split (i + 1) (x :: acc) tl
        | _ -> (List.rev acc, rest)
      in
      let kept, fused = split 0 [] sorted in
      match fused with
      | [] -> kept
      | _ ->
          let annots =
            List.concat_map fst fused |> List.sort_uniq compare
          in
          let positions =
            List.concat_map snd fused |> List.sort_uniq compare
          in
          kept @ [ (annots, positions) ]
    end
    else classes
  in
  List.mapi
    (fun i (annots, positions) ->
      { seg_id = i; seg_annots = annots;
        seg_positions = List.sort_uniq compare positions })
    merged

(* Average static instructions per segment, for the TLP study (Section
   6.2: aggressive splitting drops segment size from 8.5 to 3.2). *)
let mean_size (segs : t list) =
  match segs with
  | [] -> 0.0
  | _ ->
      let total =
        List.fold_left
          (fun acc s -> acc + max 1 (List.length s.seg_positions))
          0 segs
      in
      float_of_int total /. float_of_int (List.length segs)
