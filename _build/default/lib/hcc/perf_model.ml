(* Loop-selection cost models.

   Both models estimate the cycles saved by parallelizing a loop on
   [n_cores] with a given core-to-core synchronization latency, using the
   classic DOACROSS steady-state bound: with a per-iteration sequential
   portion [s], parallel portion [p] and synchronization cost [c], the
   initiation interval is max(s + c, (s + p) / n), so

     speedup = (s + p) / max(s + c, (s + p) / n)

   HCCv1/v2 (analytical model, conventional target): static instruction
   counts, an assumed trip count, and the conventional coherence latency.
   This model rejects small hot loops -- their iterations are shorter than
   the synchronization cost -- and favours large outer loops, reproducing
   the selection behaviour the paper describes.

   HCCv3 (profiler, ring-cache target): measured per-iteration lengths and
   trip counts, and the ring-cache latency, under which small hot loops
   become profitable. *)

type estimate = {
  e_speedup : float;
  e_benefit : float;  (* estimated cycles saved over the whole program *)
  e_seq_portion : float; (* fraction of the iteration inside segments *)
}

type loop_facts = {
  lf_iter_instrs : float;       (* per-iteration instructions *)
  lf_iterations : float;        (* total iterations across invocations *)
  lf_invocations : float;
  lf_segments : int;            (* number of sequential segments *)
  lf_segment_instrs : float;    (* mean static instrs under brackets *)
  lf_body_static : int;
  lf_loop_wide : bool;          (* some segment brackets the whole body *)
}

let cpi = 1.3 (* rough in-order CPI used to convert instructions to cycles *)

let estimate ~(n_cores : int) ~(sync_latency : int) ~(decoupled : bool)
    (lf : loop_facts) : estimate =
  let iter_cycles = cpi *. max 1.0 lf.lf_iter_instrs in
  let seq_frac =
    if lf.lf_segments = 0 then 0.0
    else if lf.lf_loop_wide then 1.0
    else
      min 1.0
        (lf.lf_segment_instrs
         *. float_of_int lf.lf_segments
         /. float_of_int (max 1 lf.lf_body_static))
  in
  let s = seq_frac *. iter_cycles in
  let c =
    if lf.lf_segments = 0 then 0.0
    else if decoupled then
      (* signals and data travel while cores compute; only the hop to the
         adjacent core remains on the critical chain *)
      float_of_int (min sync_latency 2 * lf.lf_segments)
    else float_of_int (sync_latency * lf.lf_segments)
  in
  let interval = Float.max (s +. c) (iter_cycles /. float_of_int n_cores) in
  (* startup/teardown per invocation: iteration dispatch plus end-of-loop
     flush/fence *)
  let startup = if decoupled then 30.0 else float_of_int (2 * sync_latency) in
  let seq_time = lf.lf_iterations *. iter_cycles in
  let par_time =
    (lf.lf_iterations *. interval) +. (lf.lf_invocations *. startup)
  in
  {
    e_speedup = (if par_time <= 0.0 then 1.0 else seq_time /. par_time);
    e_benefit = seq_time -. par_time;
    e_seq_portion = seq_frac;
  }

(* Facts from profile data (HCCv3's profiler-driven selection). *)
let facts_of_profile (p : Profiler.loop_profile)
    (pl : Parallel_loop.t) : loop_facts =
  {
    lf_iter_instrs = Profiler.instrs_per_iteration p;
    lf_iterations = float_of_int p.Profiler.lpf_iterations;
    lf_invocations = float_of_int p.Profiler.lpf_invocations;
    lf_segments = List.length pl.Parallel_loop.pl_segments;
    lf_segment_instrs = pl.Parallel_loop.pl_mean_segment_size;
    lf_body_static = pl.Parallel_loop.pl_body_static_instrs;
    lf_loop_wide =
      List.exists
        (fun s ->
          match s.Parallel_loop.si_placement with
          | Parallel_loop.Loop_wide -> true
          | Parallel_loop.Tight _ -> false)
        pl.Parallel_loop.pl_segments;
  }

(* Facts from static estimates only (HCCv1/v2's analytical model): the
   compiler assumes a default trip count and invocation weight scaled by
   the loop's static size and nesting depth. *)
let facts_static ~(depth : int) (pl : Parallel_loop.t) : loop_facts =
  let assumed_trip = 100.0 in
  let weight = float_of_int (max 1 (10 - depth)) in
  {
    lf_iter_instrs = float_of_int pl.Parallel_loop.pl_body_static_instrs;
    lf_iterations = assumed_trip *. weight;
    lf_invocations = weight;
    lf_segments = List.length pl.Parallel_loop.pl_segments;
    lf_segment_instrs = pl.Parallel_loop.pl_mean_segment_size;
    lf_body_static = pl.Parallel_loop.pl_body_static_instrs;
    lf_loop_wide =
      List.exists
        (fun s ->
          match s.Parallel_loop.si_placement with
          | Parallel_loop.Loop_wide -> true
          | Parallel_loop.Tight _ -> false)
        pl.Parallel_loop.pl_segments;
  }
