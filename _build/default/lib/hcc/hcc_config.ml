open Helix_analysis

(* Compiler versions as feature tiers (paper Sections 2.1 and 4).

   HCCv1: the original HELIX compiler -- allocation-site alias analysis,
   linear induction variables only, conservative segment construction,
   analytical loop-selection model tuned for conventional hardware.

   HCCv2: engineering improvements -- the full alias-precision ladder,
   polynomial (degree-2) induction variables, reductions, privatization
   (scalar expansion/renaming), still a single merged sequential segment
   per loop and conventional-hardware loop selection.

   HCCv3: the HELIX-RC co-designed compiler -- everything in HCCv2 plus
   aggressive splitting of sequential segments (one per shared-data alias
   class), wait elimination enabled by decoupled signals, and a
   ring-cache-aware profiler for loop selection. *)

type version = V1 | V2 | V3

type t = {
  version : version;
  tier : Alias.tier;                (* dependence-analysis precision *)
  poly2 : bool;                     (* degree-2 induction variables *)
  recognize_reductions : bool;
  recognize_dead : bool;            (* set-but-unused-until-after-loop *)
  recognize_set_every : bool;       (* set-in-every-iteration *)
  max_segments : int;               (* merge shared classes down to this *)
  diamond_placement : bool;         (* tight wait/signal in conditionals *)
  eliminate_waits : bool;           (* signal-only on non-accessing paths *)
  profile_loop_selection : bool;    (* v3 ring-cache profiler *)
  target_cores : int;
  (* loop-selection cost model: expected core-to-core synchronization
     latency of the target machine *)
  sync_latency : int;
}

let v1 ?(target_cores = 16) () =
  {
    version = V1;
    tier = Alias.vllpa;
    poly2 = false;
    recognize_reductions = false;
    recognize_dead = false;
    recognize_set_every = false;
    max_segments = 1;
    diamond_placement = false;
    eliminate_waits = false;
    profile_loop_selection = false;
    target_cores;
    (* Figure 1's conventional target: optimistic 10-cycle c2c; one
       synchronization costs about three transfers (signal visibility,
       data request, data reply) *)
    sync_latency = 30;
  }

let v2 ?(target_cores = 16) () =
  {
    (v1 ~target_cores ()) with
    version = V2;
    tier = Alias.vllpa_lib;
    poly2 = true;
    recognize_reductions = true;
    recognize_dead = true;
    recognize_set_every = true;
    diamond_placement = true;
  }

let v3 ?(target_cores = 16) () =
  {
    (v2 ~target_cores ()) with
    version = V3;
    max_segments = max_int;
    eliminate_waits = true;
    profile_loop_selection = true;
    sync_latency = 10; (* ring-cache latency assumption *)
  }

let version_name = function V1 -> "HCCv1" | V2 -> "HCCv2" | V3 -> "HCCv3"
let name t = version_name t.version
