open Helix_analysis

(** Compiler versions as feature tiers (Sections 2.1 and 4): HCCv1 (the
    original HELIX), HCCv2 (better analyses and transformations, still
    conventional-hardware targeted) and HCCv3 (the HELIX-RC co-designed
    compiler). *)

type version = V1 | V2 | V3

type t = {
  version : version;
  tier : Alias.tier;             (** dependence-analysis precision *)
  poly2 : bool;                  (** degree-2 induction variables *)
  recognize_reductions : bool;
  recognize_dead : bool;
  recognize_set_every : bool;
  max_segments : int;            (** shared classes merged down to this *)
  diamond_placement : bool;      (** tight wait/signal in conditionals *)
  eliminate_waits : bool;        (** signal-only on non-accessing paths *)
  profile_loop_selection : bool; (** v3's ring-cache-aware cost model *)
  target_cores : int;
  sync_latency : int;            (** cost-model synchronization latency *)
}

val v1 : ?target_cores:int -> unit -> t
val v2 : ?target_cores:int -> unit -> t
val v3 : ?target_cores:int -> unit -> t

val version_name : version -> string
val name : t -> string
