open Helix_ir
open Helix_analysis

(* Parallel-loop code generation.

   Given a canonical loop, produce the per-iteration body function and the
   [Parallel_loop.t] metadata the runtime executes:

   - predictable registers are removed from cross-iteration communication:
     induction variables (degree <= 2) are recomputed from the iteration
     index in a prologue; reductions accumulate into per-core partial
     cells; last-value variables privatize into per-core (value, stamp)
     cells;
   - unpredictable registers are demoted to shared memory cells
     ("specially-allocated memory locations", Section 3.1) accessed inside
     sequential segments;
   - wait/signal brackets delimit each segment, tightly where the CFG
     shape allows (single dominating block, or the arms of a diamond as in
     Figure 5), conservatively around the whole body otherwise. *)

type input = {
  cg_prog : Ir.program;
  cg_layout : Memory.Layout.t;
  cg_config : Hcc_config.t;
}

(* Execution-order comparison of two positions, when statically decidable:
   same block compares indices; otherwise strict dominance. *)
let before (dom : Dominance.t) a b =
  if a.Ir.ip_block = b.Ir.ip_block then Some (a.Ir.ip_index < b.Ir.ip_index)
  else if Dominance.strictly_dominates dom a.Ir.ip_block b.Ir.ip_block then
    Some true
  else if Dominance.strictly_dominates dom b.Ir.ip_block a.Ir.ip_block then
    Some false
  else None

let sign_of_op = function Ir.Add -> 1 | Ir.Sub -> -1 | _ -> 1

(* -------------------------------------------------------------------- *)

exception Bail of string

let bail fmt = Printf.ksprintf (fun s -> raise (Bail s)) fmt

(* Mirror a comparison when the induction variable sits on the right. *)
let mirror_cmp = function
  | Ir.Lt -> Ir.Gt
  | Ir.Le -> Ir.Ge
  | Ir.Gt -> Ir.Lt
  | Ir.Ge -> Ir.Le
  | op -> op

let compile_loop (input : input) (f : Ir.func) (cfg : Cfg.t)
    (lp : Loops.loop) ~(loop_id : int) : Parallel_loop.t option =
  let cfgc = input.cg_config in
  let n_cores = cfgc.Hcc_config.target_cores in
  try
    let canon =
      match Transform.canonicalize f lp with
      | Some c -> c
      | None -> bail "not canonical"
    in
    let du = Defuse.compute f in
    let live = Liveness.compute cfg in
    let dom = Dominance.compute cfg in
    let in_loop pos = Loops.contains lp pos.Ir.ip_block in
    let live_out_reg r =
      Dataflow.Int_set.mem r (live.Liveness.live_in canon.Transform.c_exit)
    in
    (* ---- classification of carried registers ---- *)
    let cls =
      Predictable.classify ~poly2:cfgc.Hcc_config.poly2
        ~recognize_reductions:cfgc.Hcc_config.recognize_reductions
        ~recognize_dead:cfgc.Hcc_config.recognize_dead
        ~recognize_set_every:cfgc.Hcc_config.recognize_set_every f cfg lp
    in
    (* registers defined in the loop and live at the exit but not live at
       the header: value escapes the loop; privatize with last-value *)
    let carried = List.map (fun c -> c.Predictable.c_reg) cls in
    let extra =
      Loops.defined_regs f lp |> Loops.Label_set.elements
      |> List.filter (fun r ->
             (not (List.mem r carried)) && live_out_reg r)
      |> List.map (fun r ->
             let uses = List.filter in_loop (Defuse.uses_of du r) in
             let cat =
               if not cfgc.Hcc_config.recognize_dead then
                 Predictable.Unpredictable
               else if uses = [] then Predictable.Dead_in_loop
               else Predictable.Set_every_iter
             in
             { Predictable.c_reg = r; c_category = cat; c_iv = None })
    in
    let cls = cls @ extra in
    (* validate reductions: the accumulator may only be read by its own
       update; otherwise demote to unpredictable *)
    let cls =
      List.map
        (fun c ->
          match c.Predictable.c_category with
          | Predictable.Reduction -> begin
              match Induction.update_sites f du lp c.Predictable.c_reg with
              | Some us ->
                  let uses =
                    List.filter in_loop (Defuse.uses_of du c.Predictable.c_reg)
                  in
                  let term_uses =
                    Defuse.term_uses_of du c.Predictable.c_reg
                    |> List.filter (Loops.contains lp)
                  in
                  if
                    term_uses = []
                    && List.for_all (fun u -> u = us.Induction.us_binop) uses
                  then c
                  else
                    { c with Predictable.c_category = Predictable.Unpredictable }
              | None ->
                  { c with Predictable.c_category = Predictable.Unpredictable }
            end
          | _ -> c)
        cls
    in
    (* ---- induction variable closed forms ---- *)
    let iv_infos =
      List.filter_map
        (fun c ->
          match (c.Predictable.c_category, c.Predictable.c_iv) with
          | Predictable.Induction, Some iv -> begin
              let r = c.Predictable.c_reg in
              match iv.Induction.iv_kind with
              | Induction.Basic step ->
                  Some
                    {
                      Parallel_loop.ivi_reg = r;
                      ivi_form =
                        Parallel_loop.Linear
                          { step; sign = sign_of_op iv.Induction.iv_op };
                      ivi_live_out = live_out_reg r;
                    }
              | Induction.Polynomial2 s -> begin
                  (* closed form needs the static order of the two updates *)
                  let us_r =
                    match Induction.update_sites f du lp r with
                    | Some u -> u
                    | None -> bail "poly2 without update sites"
                  in
                  let us_s =
                    match Induction.update_sites f du lp s with
                    | Some u -> u
                    | None -> bail "poly2 step without update sites"
                  in
                  match before dom us_s.Induction.us_mov us_r.Induction.us_binop with
                  | None -> bail "poly2 phase undecidable"
                  | Some s_first ->
                      Some
                        {
                          Parallel_loop.ivi_reg = r;
                          ivi_form =
                            Parallel_loop.Quadratic
                              {
                                step_reg = s;
                                step = us_s.Induction.us_other;
                                sign = sign_of_op us_r.Induction.us_op;
                                inner_sign = sign_of_op us_s.Induction.us_op;
                                phase = (if s_first then 1 else 0);
                              };
                          ivi_live_out = live_out_reg r;
                        }
                end
              | _ -> None
            end
          | _ -> None)
        cls
    in
    let is_iv r =
      List.exists (fun i -> i.Parallel_loop.ivi_reg = r) iv_infos
    in
    (* a classified Induction register whose closed form failed would have
       bailed already; every Induction entry maps to an iv_info *)
    let unpredictable =
      List.filter_map
        (fun c ->
          match c.Predictable.c_category with
          | Predictable.Unpredictable -> Some c.Predictable.c_reg
          | Predictable.Induction when not (is_iv c.Predictable.c_reg) ->
              Some c.Predictable.c_reg
          | _ -> None)
        cls
    in
    let reductions_regs =
      List.filter_map
        (fun c ->
          match (c.Predictable.c_category, c.Predictable.c_iv) with
          | Predictable.Reduction, Some iv -> Some (c.Predictable.c_reg, iv)
          | _ -> None)
        cls
    in
    let lastval_regs =
      List.filter_map
        (fun c ->
          match c.Predictable.c_category with
          | Predictable.Dead_in_loop | Predictable.Set_every_iter ->
              Some c.Predictable.c_reg
          | _ -> None)
        cls
    in
    (* ---- loop kind (trip count recipe) ---- *)
    let invariant = Induction.invariant f lp in
    let kind =
      let hb = Ir.block_of_func f canon.Transform.c_header in
      let cond_reg =
        match canon.Transform.c_cond with
        | Ir.Reg r -> Some r
        | Ir.Imm _ -> None
      in
      let def_in_header r =
        List.find_map
          (fun ins ->
            if List.mem r (Ir.defs_of_instr ins) then Some ins else None)
          hb.Ir.b_instrs
      in
      match Option.map def_in_header cond_reg with
      | Some (Some (Ir.Binop (_, cmp, a, b)))
        when List.mem cmp [ Ir.Lt; Ir.Le; Ir.Gt; Ir.Ge; Ir.Ne ] -> begin
          let mk iv bound cmp =
            match
              List.find_opt (fun i -> i.Parallel_loop.ivi_reg = iv) iv_infos
            with
            | Some
                { Parallel_loop.ivi_form = Parallel_loop.Linear { step; sign };
                  _ }
              when invariant bound ->
                Some
                  (Parallel_loop.Counted
                     {
                       Parallel_loop.civ = iv;
                       cstep = step;
                       csign = sign;
                       cbound = bound;
                       ccmp = cmp;
                     })
            | _ -> None
          in
          let k =
            match (a, b) with
            | Ir.Reg iv, bound when is_iv iv -> mk iv bound cmp
            | bound, Ir.Reg iv when is_iv iv -> mk iv bound (mirror_cmp cmp)
            | _ -> None
          in
          match k with Some k -> k | None -> Parallel_loop.Conditional
        end
      | _ -> Parallel_loop.Conditional
    in
    (* ---- memory dependences and shared classes ---- *)
    let deps =
      Depend.compute cfgc.Hcc_config.tier input.cg_prog f lp
    in
    let opaque =
      List.exists
        (fun n -> n.Depend.mn_effect.Alias.e_opaque)
        deps.Depend.ld_nodes
    in
    let mem_classes =
      Depend.shared_classes cfgc.Hcc_config.tier deps.Depend.ld_shared
      |> List.map (fun annots ->
             (annots, Segments.mem_positions cfgc.Hcc_config.tier deps annots))
    in
    (* shared-register cells *)
    let shared_cells =
      List.map
        (fun r ->
          let region =
            Memory.Layout.alloc input.cg_layout
              (Printf.sprintf "hcc.l%d.reg%d" loop_id r)
              1
          in
          let annot =
            Ir.annot ~path:(Printf.sprintf "reg%d" r) ~ty:"word"
              region.Memory.Layout.site
          in
          let positions =
            List.sort_uniq compare
              (List.filter in_loop (Defuse.defs_of du r)
              @ List.filter in_loop (Defuse.uses_of du r))
          in
          (* shared registers used by in-loop terminators are not
             supported (the bracket cannot cover a terminator) *)
          if
            Defuse.term_uses_of du r |> List.exists (Loops.contains lp)
          then bail "shared register used in terminator";
          (r, region.Memory.Layout.base, annot, positions))
        unpredictable
    in
    let reg_classes =
      List.map (fun (_, _, annot, positions) -> ([ annot ], positions))
        shared_cells
    in
    let all_classes = mem_classes @ reg_classes in
    (* no segment access may live in the header: the bracket would not
       cover the exit evaluation *)
    List.iter
      (fun (_, positions) ->
        if
          List.exists
            (fun p -> p.Ir.ip_block = canon.Transform.c_header)
            positions
        then bail "segment access in loop header")
      all_classes;
    let segs =
      Segments.build ~max_segments:cfgc.Hcc_config.max_segments ~opaque
        all_classes
    in
    let seg_of_annot a =
      List.find_opt
        (fun s -> List.exists (fun b -> b = a) s.Segments.seg_annots)
        segs
    in
    let shared_regs =
      List.map
        (fun (r, addr, annot, _) ->
          match seg_of_annot annot with
          | Some s ->
              {
                Parallel_loop.sr_reg = r;
                sr_addr = addr;
                sr_segment = s.Segments.seg_id;
                sr_live_out = live_out_reg r;
              }
          | None -> bail "shared register lost its segment")
        shared_cells
    in
    let annot_of_shared_reg r =
      let _, _, annot, _ =
        List.find (fun (r', _, _, _) -> r' = r) shared_cells
      in
      annot
    in
    (* ---- placement per segment ---- *)
    let latch = canon.Transform.c_latch in
    let placement_of (s : Segments.t) : Parallel_loop.placement =
      let blocks =
        List.sort_uniq compare
          (List.map (fun p -> p.Ir.ip_block) s.Segments.seg_positions)
      in
      match blocks with
      | [] -> Parallel_loop.Tight { bracket = []; empty = [] }
      | [ b ] when Dominance.dominates dom b latch ->
          Parallel_loop.Tight { bracket = [ b ]; empty = [] }
      | bs when cfgc.Hcc_config.diamond_placement -> begin
          (* all blocks must be arms of one diamond: common predecessor p
             branching to exactly the arm set, all arms jumping to one
             join, and p dominating the latch *)
          let arm_info b =
            let preds =
              Cfg.predecessors cfg b |> List.filter (Cfg.is_reachable cfg)
            in
            match preds with
            | [ p ] -> begin
                let pb = Ir.block_of_func f p in
                match (pb.Ir.b_term, (Ir.block_of_func f b).Ir.b_term) with
                | Ir.Br (_, t1, t2), Ir.Jmp j -> Some (p, [ t1; t2 ], j)
                | _ -> None
              end
            | _ -> None
          in
          match arm_info (List.hd bs) with
          | Some (p, arms, join)
            when Dominance.dominates dom p latch
                 && List.for_all (fun b -> List.mem b arms) bs
                 && List.for_all
                      (fun a ->
                        match arm_info a with
                        | Some (p', _, j') -> p' = p && j' = join
                        | None -> false)
                      arms
                 && Loops.contains lp p ->
              let empty = List.filter (fun a -> not (List.mem a bs)) arms in
              Parallel_loop.Tight { bracket = bs; empty }
          | _ -> Parallel_loop.Loop_wide
        end
      | _ -> Parallel_loop.Loop_wide
    in
    let body_static = Loops.instr_positions f lp |> List.length in
    let seg_infos =
      List.map
        (fun s ->
          let placement = placement_of s in
          let footprint =
            match placement with
            | Parallel_loop.Loop_wide -> body_static
            | Parallel_loop.Tight { bracket; _ } ->
                (* span of the bracketed region in each block *)
                let span b =
                  let idxs =
                    List.filter_map
                      (fun p ->
                        if p.Ir.ip_block = b then Some p.Ir.ip_index else None)
                      s.Segments.seg_positions
                  in
                  match idxs with
                  | [] -> 0
                  | _ ->
                      List.fold_left max 0 idxs
                      - List.fold_left min max_int idxs
                      + 1
                in
                List.fold_left (fun acc b -> acc + span b) 0 bracket
          in
          {
            Parallel_loop.si_id = s.Segments.seg_id;
            si_annots = s.Segments.seg_annots;
            si_placement = placement;
            si_footprint = max 1 footprint;
          })
        segs
    in
    (* ---- scratch regions for reductions and last-values ---- *)
    let reductions =
      List.map
        (fun (r, iv) ->
          let region =
            Memory.Layout.alloc input.cg_layout
              (Printf.sprintf "hcc.l%d.red%d" loop_id r)
              n_cores
          in
          {
            Parallel_loop.rd_reg = r;
            rd_op = iv.Induction.iv_op;
            rd_base = region.Memory.Layout.base;
            rd_identity = Parallel_loop.identity_of_op iv.Induction.iv_op;
            rd_live_out = live_out_reg r;
          })
        reductions_regs
    in
    let lastvals =
      List.map
        (fun r ->
          let vreg =
            Memory.Layout.alloc input.cg_layout
              (Printf.sprintf "hcc.l%d.lastv%d" loop_id r)
              n_cores
          in
          let ireg =
            Memory.Layout.alloc input.cg_layout
              (Printf.sprintf "hcc.l%d.lasti%d" loop_id r)
              n_cores
          in
          {
            Parallel_loop.lv_reg = r;
            lv_val_base = vreg.Memory.Layout.base;
            lv_iter_base = ireg.Memory.Layout.base;
            lv_live_out = live_out_reg r;
          })
        lastval_regs
    in
    let scratch =
      List.map (fun sr -> (sr.Parallel_loop.sr_addr, 1)) shared_regs
      @ List.map (fun rd -> (rd.Parallel_loop.rd_base, n_cores)) reductions
      @ List.concat_map
          (fun lv ->
            [ (lv.Parallel_loop.lv_val_base, n_cores);
              (lv.Parallel_loop.lv_iter_base, n_cores) ])
          lastvals
    in
    (* ---- parameters of the body function ---- *)
    let demoted r =
      List.exists (fun (r', _, _, _) -> r' = r) shared_cells
      || List.exists (fun (r', _) -> r' = r) reductions_regs
      || List.mem r lastval_regs
    in
    let used_in_loop =
      Ir.fold_instrs f Dataflow.Int_set.empty (fun acc pos ins ->
          if in_loop pos then
            List.fold_left
              (fun s r -> Dataflow.Int_set.add r s)
              acc (Ir.uses_of_instr ins)
          else acc)
    in
    let used_in_loop =
      List.fold_left
        (fun acc l ->
          if Loops.contains lp l then
            List.fold_left
              (fun s r -> Dataflow.Int_set.add r s)
              acc
              (Ir.uses_of_term (Ir.block_of_func f l).Ir.b_term)
          else acc)
        used_in_loop f.Ir.f_order
    in
    let params =
      Dataflow.Int_set.elements
        (Dataflow.Int_set.inter used_in_loop
           (live.Liveness.live_in canon.Transform.c_header))
      |> List.filter (fun r -> not (demoted r))
    in
    (* ---- build the body function ---- *)
    let body_name = Printf.sprintf "%s$loop%d$body" f.Ir.f_name loop_id in
    let bf = Ir.create_func ~params:[] body_name 0 in
    bf.Ir.f_next_label <- f.Ir.f_next_label + 1;
    bf.Ir.f_next_reg <- f.Ir.f_next_reg;
    let iter_reg = Ir.fresh_reg bf in
    let bf =
      { bf with Ir.f_params = iter_reg :: params }
    in
    let fresh () = Ir.fresh_reg bf in
    let prologue = { Ir.b_label = 0; b_instrs = []; b_term = Ir.Ret None } in
    Ir.add_block bf prologue;
    let emit ins = prologue.Ir.b_instrs <- prologue.Ir.b_instrs @ [ ins ] in
    (* quadratics first: they read the step register's entry value *)
    let quad, lin =
      List.partition
        (fun i ->
          match i.Parallel_loop.ivi_form with
          | Parallel_loop.Quadratic _ -> true
          | Parallel_loop.Linear _ -> false)
        iv_infos
    in
    List.iter
      (fun i ->
        match i.Parallel_loop.ivi_form with
        | Parallel_loop.Quadratic { step_reg; step; sign; inner_sign; phase }
          ->
            let r = i.Parallel_loop.ivi_reg in
            (* tri = i*(i-1)/2 + phase*i *)
            let a = fresh () in
            emit (Ir.Binop (a, Ir.Sub, Ir.Reg iter_reg, Ir.Imm 1));
            let b = fresh () in
            emit (Ir.Binop (b, Ir.Mul, Ir.Reg iter_reg, Ir.Reg a));
            let tri = fresh () in
            emit (Ir.Binop (tri, Ir.Div, Ir.Reg b, Ir.Imm 2));
            let tri2 =
              if phase = 1 then begin
                let t = fresh () in
                emit (Ir.Binop (t, Ir.Add, Ir.Reg tri, Ir.Reg iter_reg));
                t
              end
              else tri
            in
            let st = fresh () in
            emit (Ir.Binop (st, Ir.Mul, step, Ir.Reg tri2));
            let lin_part = fresh () in
            emit
              (Ir.Binop (lin_part, Ir.Mul, Ir.Reg iter_reg, Ir.Reg step_reg));
            let sum = fresh () in
            emit
              (Ir.Binop
                 ( sum,
                   (if inner_sign >= 0 then Ir.Add else Ir.Sub),
                   Ir.Reg lin_part, Ir.Reg st ));
            emit
              (Ir.Binop
                 ( r,
                   (if sign >= 0 then Ir.Add else Ir.Sub),
                   Ir.Reg r, Ir.Reg sum ))
        | Parallel_loop.Linear _ -> ())
      quad;
    List.iter
      (fun i ->
        match i.Parallel_loop.ivi_form with
        | Parallel_loop.Linear { step; sign } ->
            let r = i.Parallel_loop.ivi_reg in
            let t = fresh () in
            emit (Ir.Binop (t, Ir.Mul, Ir.Reg iter_reg, step));
            emit
              (Ir.Binop
                 ( r,
                   (if sign >= 0 then Ir.Add else Ir.Sub),
                   Ir.Reg r, Ir.Reg t ))
        | Parallel_loop.Quadratic _ -> ())
      lin;
    (* per-core slot for private cells, and the iteration stamp; only
       materialized when some register is privatized *)
    let slot =
      if reductions = [] && lastvals = [] then iter_reg
      else begin
        let s = fresh () in
        emit (Ir.Binop (s, Ir.Rem, Ir.Reg iter_reg, Ir.Imm n_cores));
        s
      end
    in
    let stamp =
      if lastvals = [] then iter_reg
      else begin
        let s = fresh () in
        emit (Ir.Binop (s, Ir.Add, Ir.Reg iter_reg, Ir.Imm 1));
        s
      end
    in
    let red_cell =
      List.map
        (fun rd ->
          let c = fresh () in
          emit
            (Ir.Binop
               (c, Ir.Add, Ir.Imm rd.Parallel_loop.rd_base, Ir.Reg slot));
          (rd.Parallel_loop.rd_reg, (rd, c)))
        reductions
    in
    let lv_cells =
      List.map
        (fun lv ->
          let vc = fresh () in
          emit
            (Ir.Binop
               (vc, Ir.Add, Ir.Imm lv.Parallel_loop.lv_val_base, Ir.Reg slot));
          let ic = fresh () in
          emit
            (Ir.Binop
               (ic, Ir.Add, Ir.Imm lv.Parallel_loop.lv_iter_base, Ir.Reg slot));
          (lv.Parallel_loop.lv_reg, (lv, vc, ic)))
        lastvals
    in
    (* clone the loop blocks *)
    let ret0 = Ir.fresh_label bf in
    let ret1 = Ir.fresh_label bf in
    let body_labels = Loops.Label_set.elements lp.Loops.l_body in
    let map =
      (* canonical loops exit only through the header to [c_exit] *)
      Transform.clone_blocks ~src:f ~dst:bf ~labels:body_labels
        ~redirect:(fun _ -> ret0)
    in
    Ir.add_block bf { Ir.b_label = ret0; b_instrs = []; b_term = Ir.Ret (Some (Ir.Imm 0)) };
    Ir.add_block bf { Ir.b_label = ret1; b_instrs = []; b_term = Ir.Ret (Some (Ir.Imm 1)) };
    prologue.Ir.b_term <-
      Ir.Jmp (Hashtbl.find map canon.Transform.c_header);
    (* the cloned latch returns 1 instead of looping *)
    let cloned_latch = Ir.block_of_func bf (Hashtbl.find map latch) in
    (match cloned_latch.Ir.b_term with
    | Ir.Jmp t when t = Hashtbl.find map canon.Transform.c_header ->
        cloned_latch.Ir.b_term <- Ir.Jmp ret1
    | _ -> bail "latch shape changed during cloning");
    (* ---- per-block rewriting ---- *)
    (* bracket bookkeeping: for each Tight segment, the first and last
       access index per original block *)
    let bracket_bounds = Hashtbl.create 17 in
    (* (seg, block) -> (first_idx, last_idx) *)
    let record_bounds seg_id positions =
      List.iter
        (fun p ->
          let k = (seg_id, p.Ir.ip_block) in
          let lo, hi =
            try Hashtbl.find bracket_bounds k
            with Not_found -> (max_int, -1)
          in
          Hashtbl.replace bracket_bounds k
            (min lo p.Ir.ip_index, max hi p.Ir.ip_index))
        positions
    in
    List.iter
      (fun (s : Segments.t) -> record_bounds s.Segments.seg_id s.Segments.seg_positions)
      segs;
    let tight_of_block b =
      (* segments with an in-block bracket in original block [b] *)
      List.filter_map
        (fun si ->
          match si.Parallel_loop.si_placement with
          | Parallel_loop.Tight { bracket; _ }
            when List.mem b bracket ->
              Some si.Parallel_loop.si_id
          | _ -> None)
        seg_infos
    in
    let empty_of_block b =
      List.filter_map
        (fun si ->
          match si.Parallel_loop.si_placement with
          | Parallel_loop.Tight { empty; _ } when List.mem b empty ->
              Some si.Parallel_loop.si_id
          | _ -> None)
        seg_infos
    in
    let loop_wide_segs =
      List.filter_map
        (fun si ->
          match si.Parallel_loop.si_placement with
          | Parallel_loop.Loop_wide -> Some si.Parallel_loop.si_id
          | _ -> None)
        seg_infos
    in
    let shared_reg_of r =
      List.find_opt (fun sr -> sr.Parallel_loop.sr_reg = r) shared_regs
    in
    let added = ref 0 in
    let rewrite_block orig_label =
      let cl = Hashtbl.find map orig_label in
      let cb = Ir.block_of_func bf cl in
      let tight = tight_of_block orig_label in
      let out = ref [] in
      let push ins = out := ins :: !out in
      let push_added ins = incr added; push ins in
      (* non-accessing diamond arms: HCCv3 eliminates the unnecessary
         wait (the iteration forgoes the segment and notifies its
         successors immediately, Figure 5c); earlier versions must keep
         the wait to preserve the signal chain *)
      List.iter
        (fun s ->
          if not cfgc.Hcc_config.eliminate_waits then push_added (Ir.Wait s);
          push_added (Ir.Signal s))
        (empty_of_block orig_label);
      (* loop-wide bracket entry at the body entry block *)
      if orig_label = canon.Transform.c_body_entry then
        List.iter (fun s -> push_added (Ir.Wait s)) loop_wide_segs;
      let avail = Hashtbl.create 7 in
      List.iteri
        (fun idx ins ->
          let pos = { Ir.ip_block = orig_label; ip_index = idx } in
          (* opening tight brackets *)
          List.iter
            (fun s ->
              match Hashtbl.find_opt bracket_bounds (s, orig_label) with
              | Some (lo, _) when lo = idx -> push_added (Ir.Wait s)
              | _ -> ())
            tight;
          (* materialize shared registers used by this instruction *)
          List.iter
            (fun r ->
              match shared_reg_of r with
              | Some sr when not (Hashtbl.mem avail r) ->
                  push_added
                    (Ir.Load
                       ( r,
                         {
                           Ir.base = Ir.Imm sr.Parallel_loop.sr_addr;
                           offset = Ir.Imm 0;
                           annot = annot_of_shared_reg r;
                         } ));
                  Hashtbl.replace avail r ()
              | _ -> ())
            (Ir.uses_of_instr ins);
          (* the instruction itself, possibly transformed *)
          let handled = ref false in
          (* reduction update rewrite *)
          List.iter
            (fun (r, (rd, cell)) ->
              match Induction.update_sites f du lp r with
              | Some us when us.Induction.us_binop = pos && us.Induction.us_mov = pos ->
                  (* direct form: r = op r, x *)
                  let t = fresh () in
                  push_added
                    (Ir.Load (t, Ir.mk_addr (Ir.Reg cell)));
                  let t2 = fresh () in
                  let op' =
                    match rd.Parallel_loop.rd_op with
                    | Ir.Sub -> Ir.Add
                    | o -> o
                  in
                  push_added (Ir.Binop (t2, op', Ir.Reg t, us.Induction.us_other));
                  push_added (Ir.Store (Ir.mk_addr (Ir.Reg cell), Ir.Reg t2));
                  handled := true
              | Some us when us.Induction.us_binop = pos ->
                  (* split form, arithmetic part: s = op r, x  =>
                     s = op' partial, x *)
                  let t = fresh () in
                  push_added (Ir.Load (t, Ir.mk_addr (Ir.Reg cell)));
                  let dst =
                    match ins with
                    | Ir.Binop (d, _, _, _) -> d
                    | _ -> bail "reduction binop shape"
                  in
                  let op' =
                    match rd.Parallel_loop.rd_op with
                    | Ir.Sub -> Ir.Add
                    | o -> o
                  in
                  push_added (Ir.Binop (dst, op', Ir.Reg t, us.Induction.us_other));
                  handled := true
              | Some us when us.Induction.us_mov = pos ->
                  (* commit part: mov r, s  =>  store cell, s *)
                  let src =
                    match ins with
                    | Ir.Mov (_, s) -> s
                    | _ -> bail "reduction mov shape"
                  in
                  push_added (Ir.Store (Ir.mk_addr (Ir.Reg cell), src));
                  handled := true
              | _ -> ())
            red_cell;
          if not !handled then begin
            push ins;
            (* spill shared-register definitions *)
            List.iter
              (fun r ->
                match shared_reg_of r with
                | Some sr ->
                    push_added
                      (Ir.Store
                         ( {
                             Ir.base = Ir.Imm sr.Parallel_loop.sr_addr;
                             offset = Ir.Imm 0;
                             annot = annot_of_shared_reg r;
                           },
                           Ir.Reg r ));
                    Hashtbl.replace avail r ()
                | None -> ())
              (Ir.defs_of_instr ins);
            (* last-value privatization: stamp every definition *)
            List.iter
              (fun r ->
                match List.assoc_opt r lv_cells with
                | Some (_, vc, ic) ->
                    push_added (Ir.Store (Ir.mk_addr (Ir.Reg vc), Ir.Reg r));
                    push_added (Ir.Store (Ir.mk_addr (Ir.Reg ic), Ir.Reg stamp))
                | None -> ())
              (Ir.defs_of_instr ins)
          end;
          (* closing tight brackets *)
          List.iter
            (fun s ->
              match Hashtbl.find_opt bracket_bounds (s, orig_label) with
              | Some (_, hi) when hi = idx -> push_added (Ir.Signal s)
              | _ -> ())
            tight)
        cb.Ir.b_instrs;
      (* loop-wide bracket exit at the latch *)
      if orig_label = latch then
        List.iter (fun s -> push_added (Ir.Signal s)) loop_wide_segs;
      cb.Ir.b_instrs <- List.rev !out
    in
    List.iter rewrite_block body_labels;
    Verify.check_func bf;
    Ir.add_func input.cg_prog bf;
    Some
      {
        Parallel_loop.pl_id = loop_id;
        pl_func = f.Ir.f_name;
        pl_header = canon.Transform.c_header;
        pl_exit = canon.Transform.c_exit;
        pl_body_fn = body_name;
        pl_iter_reg = iter_reg;
        pl_params = params;
        pl_kind = kind;
        pl_segments = seg_infos;
        pl_ivs = iv_infos;
        pl_reductions = reductions;
        pl_lastvals = lastvals;
        pl_shared_regs = shared_regs;
        pl_scratch = scratch;
        pl_n_cores = n_cores;
        pl_body_static_instrs = body_static;
        pl_added_static_instrs = !added;
        pl_mean_segment_size = Segments.mean_size segs;
        pl_carried_reg_count = List.length cls;
        pl_mem_class_count = List.length mem_classes;
      }
  with Bail reason ->
    Logs.debug (fun m ->
        m "codegen: loop %d in %s not parallelized: %s" loop_id f.Ir.f_name
          reason);
    None
