open Helix_ir
open Helix_analysis

(* IR transformation utilities shared by the HCC pipeline: dead-code
   elimination, block cloning (used by the parallel-body extraction in
   [Codegen]), and the canonical-loop-shape check that gates
   parallelization. *)

(* -- dead code elimination ------------------------------------------- *)

(* Remove instructions that define registers never used anywhere and have
   no side effects.  Iterates to a fixpoint; returns removed count. *)
let dead_code_elim (f : Ir.func) : int =
  let removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let du = Defuse.compute f in
    List.iter
      (fun l ->
        let b = Ir.block_of_func f l in
        let keep ins =
          match ins with
          | Ir.Binop (r, _, _, _) | Ir.Unop (r, _, _) | Ir.Mov (r, _) ->
              Defuse.uses_of du r <> [] || Defuse.term_uses_of du r <> []
          | Ir.Load _ | Ir.Store _ | Ir.Call _ | Ir.Libcall _ | Ir.Wait _
          | Ir.Signal _ | Ir.Flush | Ir.Nop ->
              true
        in
        let before = List.length b.Ir.b_instrs in
        let kept = List.filter keep b.Ir.b_instrs in
        if List.length kept < before then begin
          removed := !removed + before - List.length kept;
          b.Ir.b_instrs <- kept;
          changed := true
        end)
      f.Ir.f_order
  done;
  !removed

(* -- canonical loop shape -------------------------------------------- *)

(* A loop is in canonical (rotated-while) form when:
   - the header ends with a conditional branch, one target in the loop
     (body entry) and one outside (the unique loop exit);
   - there is a single latch ending with an unconditional jump to the
     header;
   - no other block exits the loop.
   Both Builder loop combinators produce this shape; HCC only
   parallelizes canonical loops (matching HELIX's restriction to loops it
   can restructure). *)
type canonical = {
  c_header : Ir.label;
  c_body_entry : Ir.label;
  c_exit : Ir.label;           (* first block after the loop *)
  c_latch : Ir.label;
  c_cond : Ir.operand;         (* continue condition (non-zero = stay) *)
}

let canonicalize (f : Ir.func) (lp : Loops.loop) : canonical option =
  match lp.Loops.l_latches with
  | [ latch ] -> begin
      let hb = Ir.block_of_func f lp.Loops.l_header in
      let lb = Ir.block_of_func f latch in
      match (hb.Ir.b_term, lb.Ir.b_term) with
      | Ir.Br (cond, t1, t2), Ir.Jmp back when back = lp.Loops.l_header ->
          let inside l = Loops.contains lp l in
          let shape =
            if inside t1 && not (inside t2) then Some (t1, t2)
            else if inside t2 && not (inside t1) then None
              (* inverted condition: continue on false; not produced by
                 the builder, rejected to keep trip-count logic simple *)
            else None
          in
          (match shape with
          | Some (body_entry, exit_) ->
              (* the header must be the only exiting block *)
              let exits_ok =
                List.for_all
                  (fun (from, _) -> from = lp.Loops.l_header)
                  lp.Loops.l_exits
              in
              if exits_ok then
                Some
                  {
                    c_header = lp.Loops.l_header;
                    c_body_entry = body_entry;
                    c_exit = exit_;
                    c_latch = latch;
                    c_cond = cond;
                  }
              else None
          | None -> None)
      | _ -> None
    end
  | _ -> None

(* -- block cloning ---------------------------------------------------- *)

(* Clone the blocks of [labels] from [src] into [dst], remapping labels
   via a fresh mapping.  Edges to labels outside the set are redirected
   through [redirect].  Returns the label map. *)
let clone_blocks ~(src : Ir.func) ~(dst : Ir.func) ~(labels : Ir.label list)
    ~(redirect : Ir.label -> Ir.label) : (Ir.label, Ir.label) Hashtbl.t =
  let map = Hashtbl.create 17 in
  List.iter (fun l -> Hashtbl.replace map l (Ir.fresh_label dst)) labels;
  let tgt l =
    match Hashtbl.find_opt map l with Some l' -> l' | None -> redirect l
  in
  List.iter
    (fun l ->
      let b = Ir.block_of_func src l in
      let term =
        match b.Ir.b_term with
        | Ir.Jmp t -> Ir.Jmp (tgt t)
        | Ir.Br (c, t1, t2) -> Ir.Br (c, tgt t1, tgt t2)
        | Ir.Ret o -> Ir.Ret o
      in
      Ir.add_block dst
        {
          Ir.b_label = Hashtbl.find map l;
          Ir.b_instrs = b.Ir.b_instrs;
          Ir.b_term = term;
        })
    labels;
  map

(* Make register counters of [dst] at least those of [src], so cloned
   instructions' registers stay in range. *)
let adopt_reg_space ~(src : Ir.func) ~(dst : Ir.func) =
  dst.Ir.f_next_reg <- max dst.Ir.f_next_reg src.Ir.f_next_reg
