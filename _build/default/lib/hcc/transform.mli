open Helix_ir
open Helix_analysis

(** IR transformation utilities for the HCC pipeline. *)

val dead_code_elim : Ir.func -> int
(** Remove side-effect-free definitions that are never used, to a
    fixpoint; returns the count removed. *)

(** Canonical (rotated-while) loop shape: single conditional exit in the
    header, single latch jumping back.  HCC parallelizes only canonical
    loops. *)
type canonical = {
  c_header : Ir.label;
  c_body_entry : Ir.label;
  c_exit : Ir.label;
  c_latch : Ir.label;
  c_cond : Ir.operand;
}

val canonicalize : Ir.func -> Loops.loop -> canonical option

val clone_blocks :
  src:Ir.func -> dst:Ir.func -> labels:Ir.label list ->
  redirect:(Ir.label -> Ir.label) -> (Ir.label, Ir.label) Hashtbl.t
(** Clone blocks into [dst] with fresh labels; out-of-set edges pass
    through [redirect].  Returns the label map. *)

val adopt_reg_space : src:Ir.func -> dst:Ir.func -> unit
