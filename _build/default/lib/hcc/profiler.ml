open Helix_ir
open Helix_analysis

(* Loop profiler.

   HCCv3 "includes a profiler to capture the behavior of the ring cache";
   HCCv1/v2 rely on an analytical model over static estimates.  This
   module is the shared measurement engine: it interprets the program on
   a training input and attributes retired instructions, invocations and
   iterations to every natural loop.  [Perf_model] turns the numbers into
   speedup estimates under either cost model. *)

type loop_profile = {
  lpf_func : string;
  lpf_loop_id : int;                (* Loops.l_id within its function *)
  lpf_header : Ir.label;
  mutable lpf_invocations : int;
  mutable lpf_iterations : int;
  mutable lpf_instrs : int;         (* dynamic instrs inside the body *)
}

type t = {
  total_instrs : int;
  loops : loop_profile list;
  train_ret : int option;
}

let iterations_per_invocation p =
  if p.lpf_invocations = 0 then 0.0
  else float_of_int p.lpf_iterations /. float_of_int p.lpf_invocations

let instrs_per_iteration p =
  if p.lpf_iterations = 0 then 0.0
  else float_of_int p.lpf_instrs /. float_of_int p.lpf_iterations

(* Profile [prog] on the training memory.  [loops_of] must yield the loop
   analysis of each function (shared with the rest of the pipeline so loop
   ids line up). *)
let run (prog : Ir.program) (loops_of : string -> Loops.t)
    (train_mem : Memory.t) : t =
  (* per function: block -> innermost loop id, and header -> loop id *)
  let fn_info = Hashtbl.create 7 in
  let info fname =
    match Hashtbl.find_opt fn_info fname with
    | Some i -> i
    | None ->
        let lt = loops_of fname in
        let block_loop = Hashtbl.create 17 in
        List.iter
          (fun (lp : Loops.loop) ->
            Loops.Label_set.iter
              (fun b ->
                match Hashtbl.find_opt block_loop b with
                | Some (prev : Loops.loop) when prev.Loops.l_depth >= lp.Loops.l_depth
                  ->
                    ()
                | _ -> Hashtbl.replace block_loop b lp)
              lp.Loops.l_body)
          (Loops.loops lt);
        let profiles =
          List.map
            (fun (lp : Loops.loop) ->
              {
                lpf_func = fname;
                lpf_loop_id = lp.Loops.l_id;
                lpf_header = lp.Loops.l_header;
                lpf_invocations = 0;
                lpf_iterations = 0;
                lpf_instrs = 0;
              })
            (Loops.loops lt)
        in
        let i = (lt, block_loop, profiles, Hashtbl.create 7) in
        Hashtbl.replace fn_info fname i;
        i
  in
  let total = ref 0 in
  let last_block : (string, Ir.label) Hashtbl.t = Hashtbl.create 7 in
  let on_block ~fname l =
    let lt, _, profiles, _ = info fname in
    (match Loops.loop_of_header lt l with
    | Some id ->
        let lp = Loops.loop lt id in
        let p = List.nth profiles id in
        let from_outside =
          match Hashtbl.find_opt last_block fname with
          | Some prev -> not (Loops.contains lp prev)
          | None -> true
        in
        if from_outside then p.lpf_invocations <- p.lpf_invocations + 1
        else p.lpf_iterations <- p.lpf_iterations + 1
    | None -> ());
    Hashtbl.replace last_block fname l
  in
  let on_instr ~fname pos _ins =
    incr total;
    let _, block_loop, profiles, _ = info fname in
    (* attribute to every enclosing loop *)
    let rec up (lp : Loops.loop) =
      let p = List.nth profiles lp.Loops.l_id in
      p.lpf_instrs <- p.lpf_instrs + 1;
      match lp.Loops.l_parent with
      | Some pid ->
          let lt, _, _, _ = info fname in
          up (Loops.loop lt pid)
      | None -> ()
    in
    match Hashtbl.find_opt block_loop pos.Ir.ip_block with
    | Some lp -> up lp
    | None -> ()
  in
  let hooks =
    {
      Interp.on_mem = None;
      on_block = Some on_block;
      on_instr = Some on_instr;
    }
  in
  let res = Interp.run ~hooks prog train_mem in
  let loops =
    Hashtbl.fold (fun _ (_, _, ps, _) acc -> ps @ acc) fn_info []
  in
  { total_instrs = !total; loops; train_ret = res.Interp.ret }

let find t ~func ~loop_id =
  List.find_opt
    (fun p -> p.lpf_func = func && p.lpf_loop_id = loop_id)
    t.loops
