open Helix_ir
open Helix_analysis

(** Sequential-segment construction: number the shared-data classes and,
    under a conservative splitting policy, merge them ("different
    sequential segments always access different shared data", so distinct
    segments may run concurrently; HCCv1/v2 merge everything). *)

type t = {
  seg_id : int;
  seg_annots : Ir.mem_annot list;
  seg_positions : Ir.ipos list;
}

val effect_touches : Alias.tier -> Alias.effect_ -> Ir.mem_annot list -> bool

val mem_positions :
  Alias.tier -> Depend.loop_deps -> Ir.mem_annot list -> Ir.ipos list

val build :
  max_segments:int -> opaque:bool ->
  (Ir.mem_annot list * Ir.ipos list) list -> t list
(** [opaque] (an unknown call in the loop) forces a single segment. *)

val mean_size : t list -> float
