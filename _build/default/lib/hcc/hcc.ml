open Helix_ir
open Helix_analysis

(* The HCC compiler driver.

   [compile] runs the full pipeline on a program:

     1. clean-up (dead-code elimination);
     2. loop discovery per function;
     3. profiling on a training input (all versions measure; only v3's
        selection uses the measurements, mirroring the paper's training
        run with SPEC training inputs);
     4. per-loop parallelization (analysis + codegen) for every canonical
        loop, under the version's feature set;
     5. loop selection with the version's cost model;
     6. packaging of the result for the runtime. *)

type compiled = {
  cp_prog : Ir.program;            (* includes generated body functions *)
  cp_layout : Memory.Layout.t;
  cp_config : Hcc_config.t;
  cp_selected : Select.candidate list;
  cp_candidates : Select.candidate list;
  cp_profile : Profiler.t;
  cp_coverage : float;
}

(* Loop analyses, cached per function and shared across the pipeline so
   loop ids are consistent. *)
let make_loops_of (prog : Ir.program) : string -> Loops.t =
  let cache = Hashtbl.create 7 in
  fun fname ->
    match Hashtbl.find_opt cache fname with
    | Some lt -> lt
    | None ->
        let f = Ir.find_func prog fname in
        let lt = Loops.compute (Cfg.of_func f) in
        Hashtbl.replace cache fname lt;
        lt

let compile (config : Hcc_config.t) (prog : Ir.program)
    (layout : Memory.Layout.t) ~(train_mem : Memory.t) : compiled =
  Verify.check_program prog;
  Hashtbl.iter (fun _ f -> ignore (Transform.dead_code_elim f)) prog.Ir.p_funcs;
  (* snapshot function names now: codegen adds body functions *)
  let fnames =
    Hashtbl.fold (fun n _ acc -> n :: acc) prog.Ir.p_funcs []
    |> List.sort compare
  in
  let loops_of = make_loops_of prog in
  let profile = Profiler.run prog loops_of train_mem in
  let input =
    { Codegen.cg_prog = prog; cg_layout = layout; cg_config = config }
  in
  let next_id = ref 0 in
  let candidates =
    List.concat_map
      (fun fname ->
        let f = Ir.find_func prog fname in
        let lt = loops_of fname in
        let cfg = Cfg.of_func f in
        List.filter_map
          (fun (lp : Loops.loop) ->
            let loop_id = !next_id in
            incr next_id;
            match Codegen.compile_loop input f cfg lp ~loop_id with
            | None -> None
            | Some pl ->
                let prof =
                  Profiler.find profile ~func:fname ~loop_id:lp.Loops.l_id
                in
                (* every HCC version profiles loops on the training input
                   (HELIX always did); what distinguishes HCCv3 is the
                   ring-cache cost model used to interpret the numbers *)
                let facts =
                  match prof with
                  | Some p -> Perf_model.facts_of_profile p pl
                  | None -> Perf_model.facts_static ~depth:lp.Loops.l_depth pl
                in
                let est =
                  Perf_model.estimate ~n_cores:config.Hcc_config.target_cores
                    ~sync_latency:config.Hcc_config.sync_latency
                    ~decoupled:config.Hcc_config.profile_loop_selection facts
                in
                Some
                  {
                    Select.cd_loop = pl;
                    cd_depth = lp.Loops.l_depth;
                    cd_profile = prof;
                    cd_estimate = est;
                  })
          (Loops.loops lt))
      fnames
  in
  let selected = Select.choose candidates loops_of in
  let coverage = Select.coverage selected profile in
  {
    cp_prog = prog;
    cp_layout = layout;
    cp_config = config;
    cp_selected = selected;
    cp_candidates = candidates;
    cp_profile = profile;
    cp_coverage = coverage;
  }

let selected_loops c = List.map (fun s -> s.Select.cd_loop) c.cp_selected

(* Lookup: is (func, header) a selected parallel loop? *)
let find_parallel_loop c ~func ~header =
  List.find_opt
    (fun s ->
      s.Select.cd_loop.Parallel_loop.pl_func = func
      && s.Select.cd_loop.Parallel_loop.pl_header = header)
    c.cp_selected
  |> Option.map (fun s -> s.Select.cd_loop)
