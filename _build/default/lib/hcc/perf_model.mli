(** Loop-selection cost models: the classic DOACROSS steady-state bound
    under either the conventional (HCCv1/v2) or the decoupled (HCCv3)
    synchronization cost. *)

type estimate = {
  e_speedup : float;
  e_benefit : float;      (** estimated cycles saved program-wide *)
  e_seq_portion : float;  (** fraction of an iteration inside segments *)
}

type loop_facts = {
  lf_iter_instrs : float;
  lf_iterations : float;
  lf_invocations : float;
  lf_segments : int;
  lf_segment_instrs : float;
  lf_body_static : int;
  lf_loop_wide : bool;
}

val cpi : float

val estimate :
  n_cores:int -> sync_latency:int -> decoupled:bool -> loop_facts -> estimate

val facts_of_profile :
  Profiler.loop_profile -> Parallel_loop.t -> loop_facts

val facts_static : depth:int -> Parallel_loop.t -> loop_facts
(** Fallback when no profile is available. *)
