lib/hcc/hcc_config.mli: Alias Helix_analysis
