lib/hcc/select.ml: Helix_analysis List Loops Parallel_loop Perf_model Profiler
