lib/hcc/hcc_config.ml: Alias Helix_analysis
