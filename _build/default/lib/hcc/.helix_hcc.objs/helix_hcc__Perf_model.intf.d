lib/hcc/perf_model.mli: Parallel_loop Profiler
