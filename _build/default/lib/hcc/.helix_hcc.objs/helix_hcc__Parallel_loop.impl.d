lib/hcc/parallel_loop.ml: Helix_ir Ir List
