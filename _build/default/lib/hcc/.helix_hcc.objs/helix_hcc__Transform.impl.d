lib/hcc/transform.ml: Defuse Hashtbl Helix_analysis Helix_ir Ir List Loops
