lib/hcc/select.mli: Helix_analysis Loops Parallel_loop Perf_model Profiler
