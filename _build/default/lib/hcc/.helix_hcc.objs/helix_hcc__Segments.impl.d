lib/hcc/segments.ml: Alias Depend Helix_analysis Helix_ir Ir List
