lib/hcc/profiler.ml: Hashtbl Helix_analysis Helix_ir Interp Ir List Loops Memory
