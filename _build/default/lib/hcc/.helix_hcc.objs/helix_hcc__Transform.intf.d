lib/hcc/transform.mli: Hashtbl Helix_analysis Helix_ir Ir Loops
