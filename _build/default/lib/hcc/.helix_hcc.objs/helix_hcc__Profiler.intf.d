lib/hcc/profiler.mli: Helix_analysis Helix_ir Ir Loops Memory
