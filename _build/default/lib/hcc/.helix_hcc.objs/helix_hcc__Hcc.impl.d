lib/hcc/hcc.ml: Cfg Codegen Hashtbl Hcc_config Helix_analysis Helix_ir Ir List Loops Memory Option Parallel_loop Perf_model Profiler Select Transform Verify
