lib/hcc/segments.mli: Alias Depend Helix_analysis Helix_ir Ir
