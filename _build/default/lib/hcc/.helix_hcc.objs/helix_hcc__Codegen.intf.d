lib/hcc/codegen.mli: Cfg Hcc_config Helix_analysis Helix_ir Ir Memory Parallel_loop
