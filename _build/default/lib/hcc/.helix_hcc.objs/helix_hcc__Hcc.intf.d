lib/hcc/hcc.mli: Hcc_config Helix_analysis Helix_ir Ir Loops Memory Parallel_loop Profiler Select
