lib/hcc/perf_model.ml: Float List Parallel_loop Profiler
