open Helix_ir
open Helix_analysis

(** Loop profiler: interpret the program on a training input and
    attribute retired instructions, invocations and iterations to every
    natural loop.  All HCC versions profile; HCCv3's cost model
    additionally assumes ring-cache latencies. *)

type loop_profile = {
  lpf_func : string;
  lpf_loop_id : int;
  lpf_header : Ir.label;
  mutable lpf_invocations : int;
  mutable lpf_iterations : int;
  mutable lpf_instrs : int;
}

type t = {
  total_instrs : int;
  loops : loop_profile list;
  train_ret : int option;
}

val iterations_per_invocation : loop_profile -> float
val instrs_per_iteration : loop_profile -> float

val run : Ir.program -> (string -> Loops.t) -> Memory.t -> t
val find : t -> func:string -> loop_id:int -> loop_profile option
