open Helix_ir
open Helix_analysis

(** The HCC compiler driver: clean-up, loop discovery, training-input
    profiling, per-loop parallelization under the version's feature set,
    and loop selection. *)

type compiled = {
  cp_prog : Ir.program;        (** includes the generated body functions *)
  cp_layout : Memory.Layout.t; (** extended with compiler scratch regions *)
  cp_config : Hcc_config.t;
  cp_selected : Select.candidate list;
  cp_candidates : Select.candidate list;
  cp_profile : Profiler.t;
  cp_coverage : float;         (** dynamic coverage of the selected loops *)
}

val make_loops_of : Ir.program -> string -> Loops.t
(** Per-function loop analysis, cached so ids stay consistent. *)

val compile :
  Hcc_config.t -> Ir.program -> Memory.Layout.t -> train_mem:Memory.t ->
  compiled
(** Compile [prog] in place: generated per-iteration body functions are
    added to the program and scratch cells to the layout.  [train_mem] is
    the training input the profiler consumes. *)

val selected_loops : compiled -> Parallel_loop.t list

val find_parallel_loop :
  compiled -> func:string -> header:Ir.label -> Parallel_loop.t option
(** Is [(func, header)] a selected parallel loop?  The executor's
    trigger. *)
