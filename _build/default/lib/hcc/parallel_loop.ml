open Helix_ir

(* Metadata describing one compiled parallel loop: everything the runtime
   needs to execute its iterations on the cores of the simulated machine
   and to reconstruct sequential state when the loop finishes. *)

(* Closed-form recomputation of an induction variable.  At the start of
   iteration [i] the register holds:
     Linear:     r0  (+/-)  i * step
     Quadratic:  r0  (+/-) (i * s0  (+/-) step * (i*(i-1)/2 + phase*i))
   where r0 and s0 are the entry values of the IV and of its (linear)
   step register, and [phase] is 1 when the step register updates before
   the IV inside the body. *)
type iv_form =
  | Linear of { step : Ir.operand; sign : int }
  | Quadratic of {
      step_reg : Ir.reg;       (* the linear IV feeding this one *)
      step : Ir.operand;       (* that IV's own invariant step *)
      sign : int;              (* outer update: +1 for Add, -1 for Sub *)
      inner_sign : int;        (* step register's update sign *)
      phase : int;             (* 0 or 1 *)
    }

type iv_info = {
  ivi_reg : Ir.reg;
  ivi_form : iv_form;
  ivi_live_out : bool;
}

(* A reduction privatized into one partial cell per core. *)
type reduction = {
  rd_reg : Ir.reg;
  rd_op : Ir.binop;            (* Add | Sub | Mul | Min | Max *)
  rd_base : int;               (* n_cores words of partials *)
  rd_identity : int;
  rd_live_out : bool;
}

(* A variable set in the loop whose last-written value must survive
   (categories iii and iv): one value cell and one iteration-stamp cell
   per core; stamp 0 means "never set", otherwise iteration+1. *)
type lastval = {
  lv_reg : Ir.reg;
  lv_val_base : int;
  lv_iter_base : int;
  lv_live_out : bool;
}

(* An unpredictable register demoted to a shared memory cell accessed
   inside a sequential segment. *)
type shared_reg = {
  sr_reg : Ir.reg;
  sr_addr : int;
  sr_segment : int;
  sr_live_out : bool;
}

(* Trip-count recipe for counted loops: continue while
   [iv cmp bound] holds, where iv starts at the entry value of [civ] and
   advances by [csign]*[cstep] each iteration. *)
type counted = {
  civ : Ir.reg;
  cstep : Ir.operand;
  csign : int;
  cbound : Ir.operand;
  ccmp : Ir.binop;
}

type kind =
  | Counted of counted
  | Conditional  (* trip unknown: iteration starts are gated serially *)

type segment_info = {
  si_id : int;
  si_annots : Ir.mem_annot list;
  si_placement : placement;
  si_footprint : int;
      (* static instructions under the bracket (body size for loop-wide):
         the sequential-segment length of the TLP study *)
}

(* Where the wait/signal bracket of a segment lives, in terms of the
   original loop's blocks.  [Tight]: an in-block bracket in each
   [bracket] block plus an adjacent wait;signal pair at the start of each
   [empty] block (the Figure-5 "path that does not access the shared
   data" case); every latch-bound path crosses exactly one of them.
   [Loop_wide]: the conservative fallback bracketing the whole body. *)
and placement =
  | Tight of { bracket : Ir.label list; empty : Ir.label list }
  | Loop_wide

type t = {
  pl_id : int;
  pl_func : string;              (* function containing the loop *)
  pl_header : Ir.label;          (* loop header in the original function *)
  pl_exit : Ir.label;            (* block where core 0 resumes *)
  pl_body_fn : string;           (* generated per-iteration function *)
  pl_iter_reg : Ir.reg;          (* param 0 of the body function *)
  pl_params : Ir.reg list;       (* params 1..: live-in registers *)
  pl_kind : kind;
  pl_segments : segment_info list;
  pl_ivs : iv_info list;
  pl_reductions : reduction list;
  pl_lastvals : lastval list;
  pl_shared_regs : shared_reg list;
  pl_scratch : (int * int) list; (* (base, size) regions to clear at exit *)
  pl_n_cores : int;
  (* static accounting *)
  pl_body_static_instrs : int;   (* original loop body size *)
  pl_added_static_instrs : int;  (* recompute + demotion + sync overhead *)
  pl_mean_segment_size : float;
  pl_carried_reg_count : int;    (* registers carried across iterations *)
  pl_mem_class_count : int;      (* shared-memory alias classes *)
}

let identity_of_op = function
  | Ir.Add | Ir.Sub -> 0
  | Ir.Mul -> 1
  | Ir.Min -> max_int
  | Ir.Max -> min_int
  | _ -> 0

(* Combine entry value [r0] with per-core partials. *)
let combine_reduction (rd : reduction) r0 partials =
  match rd.rd_op with
  | Ir.Add -> List.fold_left ( + ) r0 partials
  | Ir.Sub -> r0 - List.fold_left ( + ) 0 partials
  | Ir.Mul -> List.fold_left ( * ) r0 partials
  | Ir.Min -> List.fold_left min r0 partials
  | Ir.Max -> List.fold_left max r0 partials
  | _ -> r0

(* Value of an IV at the start of iteration [i] given entry values. *)
let iv_value_at (info : iv_info) ~r0 ~s0 ~step_value i =
  match info.ivi_form with
  | Linear { sign; _ } -> r0 + (sign * i * step_value)
  | Quadratic { sign; inner_sign; phase; _ } ->
      let tri = (i * (i - 1) / 2) + (phase * i) in
      r0 + (sign * ((i * s0) + (inner_sign * step_value * tri)))
