(** Owner-node hashing: every address permanently maps to one ring node,
    its serialization point for L1 interactions (Section 5.2).  All words
    of a conventional cache line share an owner. *)

val line_words : int

val node_of : n_nodes:int -> int -> int
val forward_distance : n_nodes:int -> src:int -> dst:int -> int
val undirected_distance : n_nodes:int -> src:int -> dst:int -> int
