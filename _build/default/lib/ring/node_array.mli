(** Per-node cache array: set-associative, LRU, one-word lines by default
    (Section 5.1 — no false sharing; a configurable line size exists for
    the ablation that demonstrates why one word is a correctness
    requirement).  An unbounded variant backs the "unlimited resources"
    configurations. *)

type t

val create : ?line_words:int -> size_words:int -> assoc:int -> unit -> t
(** [size_words = max_int] selects the unbounded variant. *)

val lookup : t -> int -> int option
val insert : t -> int -> int -> (int * int array) option
(** Returns the evicted line [(line_addr, values)] if a valid line was
    displaced. *)

val invalidate : t -> int -> unit
val clear : t -> unit
val hits : t -> int
val misses : t -> int
val hit_rate : t -> float
