(* Messages circulating on the ring backbone.

   Every message carries its origin node (circulation stops after a full
   lap) and a global injection sequence number.  Links deliver messages in
   order, which -- together with the compiler-guaranteed unidirectional
   data flow -- gives the "signals move in lockstep with forwarded data"
   property of Section 5.1. *)

type payload =
  | Data of { addr : int; value : int }
  | Sig of { seg : int; barrier : int }
      (* [barrier]: acceptance sequence number of the last data message the
         origin injected before this signal.  A node may not apply or
         forward the signal until it has applied that data -- this is the
         hardware's "signals move in lockstep with forwarded data"
         guarantee (Section 5.1), keeping a shared location unreadable
         before its value arrives even though data and signals travel on
         dedicated wires. *)

type t = {
  payload : payload;
  origin : int;  (* injecting node *)
  seq : int;     (* global injection order *)
}

let is_data m = match m.payload with Data _ -> true | Sig _ -> false
let is_sig m = match m.payload with Sig _ -> true | Data _ -> false

let pp ppf m =
  match m.payload with
  | Data { addr; value } ->
      Format.fprintf ppf "data(a=%d,v=%d,from=%d,#%d)" addr value m.origin m.seq
  | Sig { seg; barrier } ->
      Format.fprintf ppf "sig(seg=%d,b=%d,from=%d,#%d)" seg barrier m.origin
        m.seq
