(* Per-node cache array.

   Set-associative with LRU replacement and a one-word line (Section 5.1:
   "the line size of this cache array is kept at one machine word",
   guaranteeing no false sharing).  A configurable multi-word line is also
   supported for the false-sharing ablation bench.  An unbounded variant
   backs the "unlimited resources" configurations of Figure 11d. *)

type entry = {
  mutable tag : int;      (* line address *)
  mutable values : int array; (* one slot per word in the line *)
  mutable valid : bool;
  mutable lru : int;
}

type t =
  | Bounded of {
      sets : entry array array;
      n_sets : int;
      line_words : int;
      mutable clock : int;
      mutable hits : int;
      mutable misses : int;
      mutable evictions : int;
    }
  | Unbounded of {
      tbl : (int, int) Hashtbl.t;
      mutable hits : int;
      mutable misses : int;
    }

let create ?(line_words = 1) ~size_words ~assoc () =
  if size_words = max_int then
    Unbounded { tbl = Hashtbl.create 1024; hits = 0; misses = 0 }
  else
    let n_sets = max 1 (size_words / (assoc * line_words)) in
    Bounded
      {
        sets =
          Array.init n_sets (fun _ ->
              Array.init assoc (fun _ ->
                  {
                    tag = -1;
                    values = Array.make line_words 0;
                    valid = false;
                    lru = 0;
                  }));
        n_sets;
        line_words;
        clock = 0;
        hits = 0;
        misses = 0;
        evictions = 0;
      }

(* [lookup t addr] returns the cached value if present. *)
let lookup t addr =
  match t with
  | Unbounded u -> begin
      match Hashtbl.find_opt u.tbl addr with
      | Some v ->
          u.hits <- u.hits + 1;
          Some v
      | None ->
          u.misses <- u.misses + 1;
          None
    end
  | Bounded b ->
      let tag = addr / b.line_words in
      let set = b.sets.(tag mod b.n_sets) in
      let found = ref None in
      Array.iter (fun e -> if e.valid && e.tag = tag then found := Some e) set;
      (match !found with
      | Some e ->
          b.hits <- b.hits + 1;
          b.clock <- b.clock + 1;
          e.lru <- b.clock;
          Some e.values.(addr mod b.line_words)
      | None ->
          b.misses <- b.misses + 1;
          None)

(* [insert t addr value] writes a word, allocating its line; returns the
   evicted line [(line_addr, values)] if a valid line was displaced. *)
let insert t addr value =
  match t with
  | Unbounded u ->
      Hashtbl.replace u.tbl addr value;
      None
  | Bounded b ->
      let tag = addr / b.line_words in
      let set = b.sets.(tag mod b.n_sets) in
      let found = ref None in
      Array.iter (fun e -> if e.valid && e.tag = tag then found := Some e) set;
      b.clock <- b.clock + 1;
      (match !found with
      | Some e ->
          e.values.(addr mod b.line_words) <- value;
          e.lru <- b.clock;
          None
      | None ->
          let victim = ref set.(0) in
          Array.iter
            (fun e ->
              if not e.valid then victim := e
              else if !victim.valid && e.lru < !victim.lru then victim := e)
            set;
          let v = !victim in
          let evicted =
            if v.valid then begin
              b.evictions <- b.evictions + 1;
              Some (v.tag * b.line_words, Array.copy v.values)
            end
            else None
          in
          v.tag <- tag;
          Array.fill v.values 0 (Array.length v.values) 0;
          v.values.(addr mod b.line_words) <- value;
          v.valid <- true;
          v.lru <- b.clock;
          evicted)

let invalidate t addr =
  match t with
  | Unbounded u -> Hashtbl.remove u.tbl addr
  | Bounded b ->
      let tag = addr / b.line_words in
      Array.iter
        (fun e -> if e.valid && e.tag = tag then e.valid <- false)
        b.sets.(tag mod b.n_sets)

let clear t =
  match t with
  | Unbounded u -> Hashtbl.reset u.tbl
  | Bounded b ->
      Array.iter (fun set -> Array.iter (fun e -> e.valid <- false) set) b.sets

let hits t = match t with Unbounded u -> u.hits | Bounded b -> b.hits
let misses t = match t with Unbounded u -> u.misses | Bounded b -> b.misses

let hit_rate t =
  let h = hits t and m = misses t in
  if h + m = 0 then 1.0 else float_of_int h /. float_of_int (h + m)
