lib/ring/msg.ml: Format
