lib/ring/node_array.ml: Array Hashtbl
