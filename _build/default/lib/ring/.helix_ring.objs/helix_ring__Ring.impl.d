lib/ring/ring.ml: Array Buffer Format Hashtbl List Msg Node_array Owner Printf Queue Signal_buffer
