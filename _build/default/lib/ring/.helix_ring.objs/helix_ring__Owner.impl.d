lib/ring/owner.ml:
