lib/ring/ring.mli:
