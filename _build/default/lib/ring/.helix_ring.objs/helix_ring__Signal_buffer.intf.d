lib/ring/signal_buffer.mli:
