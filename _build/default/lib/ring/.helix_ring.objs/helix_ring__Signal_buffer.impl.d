lib/ring/signal_buffer.ml: Hashtbl Printf
