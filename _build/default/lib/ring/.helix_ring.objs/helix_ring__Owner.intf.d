lib/ring/owner.mli:
