lib/ring/node_array.mli:
