(* Owner-node hashing.

   Every memory address is permanently mapped to a unique ring node (its
   serialization point for L1 interactions, Section 5.2).  As in the
   paper, a simple bit mask over the line address is used, and all words
   of a conventional cache line share an owner so the ring never splits a
   line across the coherence protocol. *)

let line_words = 8 (* 64-byte lines of 8-byte words *)

let node_of ~n_nodes addr =
  if n_nodes <= 1 then 0
  else begin
    let line = addr / line_words in
    if n_nodes land (n_nodes - 1) = 0 then line land (n_nodes - 1)
    else line mod n_nodes
  end

(* Distance in hops travelling forward (unidirectional ring). *)
let forward_distance ~n_nodes ~src ~dst = (dst - src + n_nodes) mod n_nodes

(* Undirected distance, as used by the Figure 4b histogram. *)
let undirected_distance ~n_nodes ~src ~dst =
  let d = forward_distance ~n_nodes ~src ~dst in
  min d (n_nodes - d)
