open Helix_ir

(* Tiered may-alias analysis.

   Reproduces the precision ladder of Figure 2: a base VLLPA-style
   allocation-site analysis, extended with (i) flow sensitivity, (ii)
   path-based location naming, (iii) data-type incompatibility, and (iv)
   standard-library call semantics.  Each memory access in the IR carries a
   static [Ir.mem_annot] recording exactly the information each tier can
   recover; workload generators keep annotations sound by construction
   (dynamically aliasing accesses never carry distinguishing annotations),
   which the integration tests re-check against interpreter traces.

   A tier answers [may_alias a b]: 'false' is a proof of independence. *)

type tier = {
  name : string;
  flow_sensitive : bool;
  path_based : bool;
  type_based : bool;
  libcall_sem : bool;
}

let vllpa =
  { name = "VLLPA"; flow_sensitive = false; path_based = false;
    type_based = false; libcall_sem = false }

let vllpa_flow = { vllpa with name = "+flow sensitive"; flow_sensitive = true }

let vllpa_path = { vllpa_flow with name = "+path based"; path_based = true }

let vllpa_type = { vllpa_path with name = "+data type"; type_based = true }

let vllpa_lib = { vllpa_type with name = "+lib calls"; libcall_sem = true }

(* The ladder in presentation order, least to most precise. *)
let ladder = [ vllpa; vllpa_flow; vllpa_path; vllpa_type; vllpa_lib ]

let best = vllpa_lib

(* May the two annotated accesses touch the same word?
   Unknown sites ([site < 0]) conservatively alias everything. *)
let may_alias (t : tier) (a : Ir.mem_annot) (b : Ir.mem_annot) : bool =
  let open Ir in
  if a.site < 0 || b.site < 0 then true
  else if a.site <> b.site then false
  else if t.flow_sensitive && a.flow >= 0 && b.flow >= 0 && a.flow <> b.flow
  then false
  else if t.path_based && a.path <> "" && b.path <> "" && a.path <> b.path
  then false
  else if t.type_based && a.ty <> "" && b.ty <> "" && a.ty <> b.ty then false
  else true

(* Cross-iteration variant: under a flow-sensitive tier, two affine
   accesses to the same site with equal offsets touch a different address
   on every iteration (the analysis tracks the induction value), so they
   cannot conflict across iterations even though they may refer to the
   same location within one. *)
let may_alias_carried (t : tier) (a : Ir.mem_annot) (b : Ir.mem_annot) : bool
    =
  may_alias t a b
  && not
       (t.flow_sensitive
       && a.Ir.site >= 0
       && a.Ir.site = b.Ir.site
       &&
       match (a.Ir.affine, b.Ir.affine) with
       | Some x, Some y -> x = y
       | _ -> false)

(* Partial order on precision: [t1 <= t2] iff every independence proof of
   t1 is also provable by t2 (t2 at least as precise). *)
let leq t1 t2 =
  (not t1.flow_sensitive || t2.flow_sensitive)
  && (not t1.path_based || t2.path_based)
  && (not t1.type_based || t2.type_based)
  && (not t1.libcall_sem || t2.libcall_sem)

(* -- abstract memory effects of instructions ------------------------- *)

(* What an instruction may read and write, as annotation lists.  Library
   calls are opaque (touch everything) unless the tier models libcall
   semantics, in which case pure calls vanish and read-only calls become
   reads of their argument buffers (whose annotations the call site
   provides via [lib_annots]). *)

type effect_ = {
  e_reads : Ir.mem_annot list;
  e_writes : Ir.mem_annot list;
  e_opaque : bool; (* may touch anything (unknown call) *)
}

let no_effect = { e_reads = []; e_writes = []; e_opaque = false }

let effect_of_instr (t : tier) ?(lib_annots : Ir.mem_annot list = [])
    (ins : Ir.instr) : effect_ =
  match ins with
  | Ir.Load (_, ad) -> { no_effect with e_reads = [ ad.Ir.annot ] }
  | Ir.Store (ad, _) -> { no_effect with e_writes = [ ad.Ir.annot ] }
  | Ir.Libcall (_, lc, _) -> begin
      (* pure math intrinsics (abs, hash, sqrt, ...) are known side-effect
         free to every tier, like compiler builtins; the "+lib calls" tier
         adds semantics for the memory-touching calls *)
      match Ir.libcall_effect lc with
      | Ir.Lib_pure -> no_effect
      | Ir.Lib_private_state | Ir.Lib_reads ->
          if not t.libcall_sem then { no_effect with e_opaque = true }
          else begin
            match Ir.libcall_effect lc with
            | Ir.Lib_pure | Ir.Lib_private_state -> no_effect
            | Ir.Lib_reads -> { no_effect with e_reads = lib_annots }
          end
    end
  | Ir.Call _ -> { no_effect with e_opaque = true }
  | Ir.Binop _ | Ir.Unop _ | Ir.Mov _ | Ir.Wait _ | Ir.Signal _ | Ir.Flush
  | Ir.Nop ->
      no_effect

(* Do two effects conflict (at least one write to a common location)?
   [alias] selects the same-iteration or cross-iteration alias notion. *)
let effects_conflict_with alias (a : effect_) (b : effect_) : bool =
  let touches e = e.e_opaque || e.e_reads <> [] || e.e_writes <> [] in
  let writes e = e.e_opaque || e.e_writes <> [] in
  if not (touches a && touches b && (writes a || writes b)) then false
  else if a.e_opaque || b.e_opaque then true
  else
    let any_pair xs ys =
      List.exists (fun x -> List.exists (fun y -> alias x y) ys) xs
    in
    any_pair a.e_writes b.e_writes
    || any_pair a.e_writes b.e_reads
    || any_pair a.e_reads b.e_writes

let effects_conflict (t : tier) = effects_conflict_with (may_alias t)

let effects_conflict_carried (t : tier) =
  effects_conflict_with (may_alias_carried t)
