open Helix_ir

(** Loop-carried data-dependence analysis.

    Static: under an alias tier, every pair of conflicting accesses in a
    loop body is a carried edge (the compiler "must conservatively assume
    dependences exist between all iterations").  Dynamic: a collector
    that consumes interpreter hooks and records which edges are actual.
    Figure 2's accuracy = |static and actual| / |static|. *)

module Pos_set : Set.S with type elt = Ir.ipos

module Edge : sig
  type t = Ir.ipos * Ir.ipos
  val compare : t -> t -> int
end

module Edge_set : Set.S with type elt = Edge.t

val norm_edge : Ir.ipos -> Ir.ipos -> Edge.t

type mem_node = { mn_pos : Ir.ipos; mn_effect : Alias.effect_ }

type loop_deps = {
  ld_nodes : mem_node list;
  ld_edges : Edge_set.t;          (** loop-carried dependence edges *)
  ld_shared : Ir.mem_annot list;  (** annotations involved in them *)
}

val func_summary : Alias.tier -> Ir.program -> string -> Alias.effect_
(** Transitive read/write summary of a function (recursion degrades to
    opaque). *)

val loop_mem_nodes :
  Alias.tier -> Ir.program -> Ir.func -> Loops.loop -> mem_node list

val compute : Alias.tier -> Ir.program -> Ir.func -> Loops.loop -> loop_deps

val shared_classes :
  Alias.tier -> Ir.mem_annot list -> Ir.mem_annot list list
(** Alias classes of the shared annotations: HCCv3 builds one sequential
    segment per class. *)

(** Dynamic ground truth for one loop, driven from interpreter hooks. *)
module Dynamic : sig
  type t

  val create : unit -> t

  val begin_iteration : t -> unit
  val new_invocation : t -> unit
  (** Conflicts across invocations are not loop-carried: resets address
      state. *)

  val finish : t -> unit
  val access : t -> Interp.access_kind -> pos:Ir.ipos -> int -> unit
  val actual_edges : t -> Edge_set.t
end

val accuracy : static_edges:Edge_set.t -> actual:Edge_set.t -> float
