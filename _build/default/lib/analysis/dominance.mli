open Helix_ir

(** Dominators via the Cooper-Harvey-Kennedy iterative algorithm. *)

type t

val compute : Cfg.t -> t

val idom : t -> Ir.label -> Ir.label option
(** Immediate dominator; the entry maps to itself. *)

val dominates : t -> Ir.label -> Ir.label -> bool
val strictly_dominates : t -> Ir.label -> Ir.label -> bool
val dom_children : t -> Ir.label -> Ir.label list

val frontiers : t -> Ir.label -> Ir.label list
(** Dominance frontiers (Cooper et al.). *)
