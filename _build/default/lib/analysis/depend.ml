open Helix_ir

(* Data-dependence analysis for loops.

   Static side: under a given alias tier, build the set of loop-carried
   memory dependence edges between instructions of a loop body.  Following
   the paper, the compiler "must conservatively assume dependences exist
   between all iterations" -- any pair of conflicting accesses in the body
   yields a carried edge (plus self edges for single accesses that both
   read and write a shared location across iterations).

   Dynamic side: a profiler that consumes interpreter hooks and records
   which dependence pairs are *actual* (realized by at least one pair of
   distinct iterations at runtime).  Figure 2's accuracy metric is
   |static edges that are actual| / |static edges|. *)

module Pos = struct
  type t = Ir.ipos
  let compare = compare
end

module Pos_set = Set.Make (Pos)

module Edge = struct
  type t = Ir.ipos * Ir.ipos (* normalized: fst <= snd *)
  let compare = compare
end

module Edge_set = Set.Make (Edge)

let norm_edge a b : Edge.t = if compare a b <= 0 then (a, b) else (b, a)

type mem_node = {
  mn_pos : Ir.ipos;
  mn_effect : Alias.effect_;
}

type loop_deps = {
  ld_nodes : mem_node list;
  ld_edges : Edge_set.t;          (* loop-carried dependence edges *)
  ld_shared : Ir.mem_annot list;  (* annots involved in carried edges *)
}

(* ------------------------------------------------------------------ *)
(* Function memory-effect summaries                                    *)
(* ------------------------------------------------------------------ *)

(* Transitive read/write annotation summary of a function, used when a loop
   body contains calls.  Recursion (absent from our workloads, but handled)
   degrades to an opaque summary. *)
let func_summary (tier : Alias.tier) (prog : Ir.program) :
    string -> Alias.effect_ =
  let cache : (string, Alias.effect_) Hashtbl.t = Hashtbl.create 7 in
  let in_progress = Hashtbl.create 7 in
  let union a b =
    {
      Alias.e_reads = a.Alias.e_reads @ b.Alias.e_reads;
      Alias.e_writes = a.Alias.e_writes @ b.Alias.e_writes;
      Alias.e_opaque = a.Alias.e_opaque || b.Alias.e_opaque;
    }
  in
  let rec summary name =
    match Hashtbl.find_opt cache name with
    | Some e -> e
    | None ->
        if Hashtbl.mem in_progress name then
          { Alias.no_effect with Alias.e_opaque = true }
        else begin
          Hashtbl.replace in_progress name ();
          let f = Ir.find_func prog name in
          let acc = ref Alias.no_effect in
          Ir.iter_instrs f (fun _ ins ->
              let e =
                match ins with
                | Ir.Call (_, callee, _) -> summary callee
                | _ -> Alias.effect_of_instr tier ins
              in
              acc := union !acc e);
          Hashtbl.remove in_progress name;
          Hashtbl.replace cache name !acc;
          !acc
        end
  in
  summary

(* ------------------------------------------------------------------ *)
(* Static loop-carried dependences                                     *)
(* ------------------------------------------------------------------ *)

let loop_mem_nodes (tier : Alias.tier) (prog : Ir.program) (f : Ir.func)
    (lp : Loops.loop) : mem_node list =
  let summarize = func_summary tier prog in
  Ir.fold_instrs f [] (fun acc pos ins ->
      if not (Loops.contains lp pos.Ir.ip_block) then acc
      else
        let eff =
          match ins with
          | Ir.Call (_, callee, _) -> summarize callee
          | _ -> Alias.effect_of_instr tier ins
        in
        if
          eff.Alias.e_opaque
          || eff.Alias.e_reads <> []
          || eff.Alias.e_writes <> []
        then { mn_pos = pos; mn_effect = eff } :: acc
        else acc)
  |> List.rev

let writes_shared (e : Alias.effect_) = e.Alias.e_opaque || e.Alias.e_writes <> []

let compute (tier : Alias.tier) (prog : Ir.program) (f : Ir.func)
    (lp : Loops.loop) : loop_deps =
  let nodes = loop_mem_nodes tier prog f lp in
  let edges = ref Edge_set.empty in
  let shared = ref [] in
  let arr = Array.of_list nodes in
  let n = Array.length arr in
  let add_shared (a : Alias.effect_) (b : Alias.effect_) =
    (* remember annotations participating in the conflict *)
    let annots e = e.Alias.e_reads @ e.Alias.e_writes in
    shared := annots a @ annots b @ !shared
  in
  for i = 0 to n - 1 do
    (* self-conflict: a node that both reads and writes a location carries
       a dependence from each iteration to later ones *)
    let a = arr.(i) in
    if
      writes_shared a.mn_effect
      && Alias.effects_conflict_carried tier a.mn_effect a.mn_effect
    then begin
      edges := Edge_set.add (norm_edge a.mn_pos a.mn_pos) !edges;
      add_shared a.mn_effect a.mn_effect
    end;
    for j = i + 1 to n - 1 do
      let b = arr.(j) in
      if Alias.effects_conflict_carried tier a.mn_effect b.mn_effect then begin
        edges := Edge_set.add (norm_edge a.mn_pos b.mn_pos) !edges;
        add_shared a.mn_effect b.mn_effect
      end
    done
  done;
  (* deduplicate shared annots by full annotation value, dropping unknowns *)
  let dedup =
    List.sort_uniq compare
      (List.filter (fun (a : Ir.mem_annot) -> a.Ir.site >= 0) !shared)
  in
  { ld_nodes = nodes; ld_edges = !edges; ld_shared = dedup }

(* ------------------------------------------------------------------ *)
(* Shared-location classes                                             *)
(* ------------------------------------------------------------------ *)

(* Partition the shared annotations into alias classes: the transitive
   closure of [may_alias] under the tier.  HCCv3 builds one sequential
   segment per class ("different sequential segments always access
   different shared data"), so distinct classes may proceed in parallel. *)
let shared_classes (tier : Alias.tier) (annots : Ir.mem_annot list) :
    Ir.mem_annot list list =
  let annots = List.sort_uniq compare annots in
  let n = List.length annots in
  let arr = Array.of_list annots in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Alias.may_alias tier arr.(i) arr.(j) then union i j
    done
  done;
  let groups = Hashtbl.create 7 in
  for i = 0 to n - 1 do
    let r = find i in
    Hashtbl.replace groups r
      (arr.(i) :: (try Hashtbl.find groups r with Not_found -> []))
  done;
  Hashtbl.fold (fun _ g acc -> List.sort compare g :: acc) groups []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Dynamic ground truth                                                *)
(* ------------------------------------------------------------------ *)

module Dynamic = struct
  (* Collector of actual loop-carried dependences for one loop.  The
     caller drives [begin_iteration] from an interpreter block hook on the
     loop header and routes memory hooks to [access]. *)
  type t = {
    mutable iter : int;
    mutable active : bool;
    last_write : (int, Ir.ipos * int) Hashtbl.t;    (* addr -> writer *)
    readers : (int, (Ir.ipos * int) list) Hashtbl.t; (* since last write *)
    mutable actual : Edge_set.t;
    mutable intra_seen : Edge_set.t; (* same-iteration conflicts, kept for stats *)
  }

  let create () =
    {
      iter = -1;
      active = false;
      last_write = Hashtbl.create 256;
      readers = Hashtbl.create 256;
      actual = Edge_set.empty;
      intra_seen = Edge_set.empty;
    }

  let begin_iteration t =
    t.iter <- t.iter + 1;
    t.active <- true

  (* A new invocation of the loop: conflicts across invocations are not
     loop-carried dependences, so the address state resets. *)
  let new_invocation t =
    Hashtbl.reset t.last_write;
    Hashtbl.reset t.readers;
    t.iter <- t.iter + 1;
    t.active <- true

  let finish t = t.active <- false

  let access t (kind : Interp.access_kind) ~(pos : Ir.ipos) (addr : int) =
    if t.active then begin
      match kind with
      | Interp.Read -> begin
          (match Hashtbl.find_opt t.last_write addr with
          | Some (wpos, wi) ->
              let e = norm_edge wpos pos in
              if wi < t.iter then t.actual <- Edge_set.add e t.actual
              else t.intra_seen <- Edge_set.add e t.intra_seen
          | None -> ());
          let rs = try Hashtbl.find t.readers addr with Not_found -> [] in
          if not (List.exists (fun (p, _) -> p = pos) rs) then
            Hashtbl.replace t.readers addr ((pos, t.iter) :: rs)
        end
      | Interp.Write ->
          (match Hashtbl.find_opt t.last_write addr with
          | Some (wpos, wi) ->
              let e = norm_edge wpos pos in
              if wi < t.iter then t.actual <- Edge_set.add e t.actual
              else t.intra_seen <- Edge_set.add e t.intra_seen
          | None -> ());
          List.iter
            (fun (rpos, ri) ->
              let e = norm_edge rpos pos in
              if ri < t.iter then t.actual <- Edge_set.add e t.actual
              else t.intra_seen <- Edge_set.add e t.intra_seen)
            (try Hashtbl.find t.readers addr with Not_found -> []);
          Hashtbl.replace t.last_write addr (pos, t.iter);
          Hashtbl.remove t.readers addr
    end

  let actual_edges t = t.actual
end

(* Accuracy of a static edge set against the dynamic ground truth:
   fraction of identified dependences that are actual (Figure 2). *)
let accuracy ~(static_edges : Edge_set.t) ~(actual : Edge_set.t) : float =
  let n = Edge_set.cardinal static_edges in
  if n = 0 then 1.0
  else
    let hits = Edge_set.cardinal (Edge_set.inter static_edges actual) in
    float_of_int hits /. float_of_int n
