open Helix_ir

(** Def-use positions per virtual register (the IR is not SSA: registers
    may have several definitions). *)

type t

val compute : Ir.func -> t
val defs_of : t -> Ir.reg -> Ir.ipos list
val uses_of : t -> Ir.reg -> Ir.ipos list
val term_uses_of : t -> Ir.reg -> Ir.label list
val num_defs : t -> Ir.reg -> int
val unique_def : t -> Ir.reg -> Ir.ipos option
val all_regs : t -> Ir.reg list
