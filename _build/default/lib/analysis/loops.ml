open Helix_ir

(* Natural-loop discovery and the loop nesting graph.

   A natural loop is identified by a back edge [latch -> header] where the
   header dominates the latch.  Loops sharing a header are merged.  The
   loop nesting graph (paper Section 4: HCCv3 "uses a loop nesting graph,
   annotated with the profiling results, to choose the most promising
   loops") is derived from body containment. *)

module Label_set = Set.Make (Int)

type loop = {
  l_id : int;
  l_header : Ir.label;
  l_body : Label_set.t;          (* includes header *)
  l_latches : Ir.label list;     (* sources of back edges *)
  l_exits : (Ir.label * Ir.label) list; (* (from-in-loop, to-outside) *)
  mutable l_parent : int option; (* enclosing loop id *)
  mutable l_children : int list;
  l_depth : int;                 (* 1 = outermost *)
}

type t = {
  cfg : Cfg.t;
  loops : loop array;            (* indexed by l_id *)
  header_of : (Ir.label, int) Hashtbl.t; (* header label -> loop id *)
}

let loops t = Array.to_list t.loops
let loop t id = t.loops.(id)
let num_loops t = Array.length t.loops
let loop_of_header t h = Hashtbl.find_opt t.header_of h

(* Innermost loop containing block [l], if any. *)
let innermost_containing t l =
  Array.to_list t.loops
  |> List.filter (fun lp -> Label_set.mem l lp.l_body)
  |> List.fold_left
       (fun best lp ->
         match best with
         | None -> Some lp
         | Some b -> if lp.l_depth > b.l_depth then Some lp else best)
       None

let compute (cfg : Cfg.t) : t =
  let dom = Dominance.compute cfg in
  (* collect back edges grouped by header *)
  let back_edges = Hashtbl.create 7 in
  Array.iter
    (fun l ->
      List.iter
        (fun s ->
          if Dominance.dominates dom s l then begin
            let cur = try Hashtbl.find back_edges s with Not_found -> [] in
            Hashtbl.replace back_edges s (l :: cur)
          end)
        (Cfg.successors cfg l))
    (Cfg.reverse_postorder cfg);
  (* natural loop body: header + nodes reaching a latch without passing
     through the header *)
  let body_of header latches =
    let body = ref (Label_set.singleton header) in
    let rec visit l =
      if not (Label_set.mem l !body) then begin
        body := Label_set.add l !body;
        List.iter visit
          (List.filter (Cfg.is_reachable cfg) (Cfg.predecessors cfg l))
      end
    in
    List.iter (fun latch -> if latch <> header then visit latch) latches;
    !body
  in
  let headers =
    Hashtbl.fold (fun h _ acc -> h :: acc) back_edges [] |> List.sort compare
  in
  let protoloops =
    List.map
      (fun h ->
        let latches = Hashtbl.find back_edges h in
        let body = body_of h latches in
        let exits =
          Label_set.fold
            (fun l acc ->
              List.fold_left
                (fun acc s ->
                  if Label_set.mem s body then acc else (l, s) :: acc)
                acc (Cfg.successors cfg l))
            body []
        in
        (h, latches, body, exits))
      headers
  in
  (* nesting: loop A is inside loop B iff A.body strictly-subset B.body,
     or equal bodies are impossible since headers differ *)
  let n = List.length protoloops in
  let arr = Array.of_list protoloops in
  let parent = Array.make n None in
  for i = 0 to n - 1 do
    let _, _, bi, _ = arr.(i) in
    let best = ref None in
    for j = 0 to n - 1 do
      if i <> j then begin
        let _, _, bj, _ = arr.(j) in
        if Label_set.subset bi bj && not (Label_set.equal bi bj) then
          match !best with
          | None -> best := Some j
          | Some k ->
              let _, _, bk, _ = arr.(k) in
              if Label_set.subset bj bk then best := Some j
      end
    done;
    parent.(i) <- !best
  done;
  let rec depth i =
    match parent.(i) with None -> 1 | Some p -> 1 + depth p
  in
  let loops =
    Array.mapi
      (fun i (h, latches, body, exits) ->
        {
          l_id = i;
          l_header = h;
          l_body = body;
          l_latches = latches;
          l_exits = exits;
          l_parent = parent.(i);
          l_children = [];
          l_depth = depth i;
        })
      arr
  in
  Array.iteri
    (fun i lp ->
      match lp.l_parent with
      | Some p -> loops.(p).l_children <- i :: loops.(p).l_children
      | None -> ())
    loops;
  let header_of = Hashtbl.create 7 in
  Array.iteri (fun i lp -> Hashtbl.replace header_of lp.l_header i) loops;
  { cfg; loops; header_of }

let innermost_loops t =
  Array.to_list t.loops |> List.filter (fun l -> l.l_children = [])

let contains lp label = Label_set.mem label lp.l_body

(* Positions of all instructions inside the loop body, in layout order. *)
let instr_positions (f : Ir.func) lp =
  Ir.fold_instrs f [] (fun acc pos _ ->
      if Label_set.mem pos.Ir.ip_block lp.l_body then pos :: acc else acc)
  |> List.rev

(* Registers defined by instructions inside the loop. *)
let defined_regs (f : Ir.func) lp =
  Ir.fold_instrs f Label_set.empty (fun acc pos ins ->
      if Label_set.mem pos.Ir.ip_block lp.l_body then
        List.fold_left (fun s r -> Label_set.add r s) acc (Ir.defs_of_instr ins)
      else acc)
