open Helix_ir

(** Register liveness as a backward dataflow problem. *)

module Int_set = Dataflow.Int_set

type t = {
  live_in : Ir.label -> Int_set.t;
  live_out : Ir.label -> Int_set.t;
}

val block_gen_kill : Ir.func -> Ir.label -> Int_set.t * Int_set.t
(** Forward scan: gen = upward-exposed uses, kill = defined registers. *)

val compute : Cfg.t -> t

val live_after_loop : t -> Loops.loop -> Ir.reg -> bool
(** Live at the entry of any loop-exit target. *)

val live_at_header : t -> Loops.loop -> Ir.reg -> bool
