open Helix_ir

(* Dominator analysis using the Cooper-Harvey-Kennedy iterative algorithm
   over the reverse postorder of the CFG.  Produces the immediate-dominator
   map, dominance queries, and dominance frontiers. *)

type t = {
  cfg : Cfg.t;
  idom : (Ir.label, Ir.label) Hashtbl.t; (* entry maps to itself *)
}

let compute (cfg : Cfg.t) : t =
  let rpo = Cfg.reverse_postorder cfg in
  let index l =
    match Cfg.rpo_index cfg l with
    | Some i -> i
    | None -> invalid_arg "Dominance: unreachable block"
  in
  let n = Array.length rpo in
  let idom = Array.make n (-1) in
  let entry_i = 0 in
  idom.(entry_i) <- entry_i;
  let rec intersect i j =
    if i = j then i
    else if i > j then intersect idom.(i) j
    else intersect i idom.(j)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let l = rpo.(i) in
      let preds =
        Cfg.predecessors cfg l
        |> List.filter (Cfg.is_reachable cfg)
        |> List.map index
        |> List.filter (fun p -> idom.(p) >= 0)
      in
      match preds with
      | [] -> ()
      | p :: ps ->
          let new_idom = List.fold_left intersect p ps in
          if idom.(i) <> new_idom then begin
            idom.(i) <- new_idom;
            changed := true
          end
    done
  done;
  let tbl = Hashtbl.create n in
  Array.iteri (fun i l -> if idom.(i) >= 0 then Hashtbl.replace tbl l rpo.(idom.(i))) rpo;
  { cfg; idom = tbl }

let idom t l = Hashtbl.find_opt t.idom l

(* [dominates t a b]: does [a] dominate [b]?  Every block dominates
   itself; the entry dominates every reachable block. *)
let dominates t a b =
  let rec up l =
    if l = a then true
    else
      match idom t l with
      | Some p when p <> l -> up p
      | _ -> false
  in
  Cfg.is_reachable t.cfg a && Cfg.is_reachable t.cfg b && up b

let strictly_dominates t a b = a <> b && dominates t a b

(* Children in the dominator tree. *)
let dom_children t l =
  Hashtbl.fold
    (fun b p acc -> if p = l && b <> l then b :: acc else acc)
    t.idom []

(* Dominance frontier (per Cooper et al.); unused by the parallelizer
   itself but exercised by tests and available for SSA-style transforms. *)
let frontiers t =
  let df = Hashtbl.create 17 in
  let addf l b =
    let cur = try Hashtbl.find df l with Not_found -> [] in
    if not (List.mem b cur) then Hashtbl.replace df l (b :: cur)
  in
  Array.iter
    (fun b ->
      let preds =
        Cfg.predecessors t.cfg b |> List.filter (Cfg.is_reachable t.cfg)
      in
      if List.length preds >= 2 then
        List.iter
          (fun p ->
            let rec runner l =
              match idom t b with
              | Some ib when l <> ib && l <> b ->
                  addf l b;
                  (match idom t l with
                  | Some pl when pl <> l -> runner pl
                  | _ -> ())
              | _ -> ()
            in
            runner p)
          preds)
    (Cfg.reverse_postorder t.cfg);
  fun l -> try Hashtbl.find df l with Not_found -> []
