open Helix_ir

(* Predictable-variable classification (paper Section 2.2, Figure 3).

   For every register carried across loop iterations we decide whether the
   cross-iteration communication can be removed because the value is
   predictable, falling into one of the paper's four categories:

   (i)   induction variables with polynomial update of degree <= 2;
   (ii)  accumulative, maximum and minimum variables (reductions);
   (iii) variables set but not used until after the loop;
   (iv)  variables set in every iteration (the previous value is dead).

   Anything else genuinely needs core-to-core register communication; the
   HCC compilers turn those registers into shared memory locations. *)

type category =
  | Induction       (* (i) *)
  | Reduction       (* (ii) *)
  | Dead_in_loop    (* (iii) set, not used until after the loop *)
  | Set_every_iter  (* (iv) redefined on every path before any use *)
  | Unpredictable   (* must be communicated *)

type classified = {
  c_reg : Ir.reg;
  c_category : category;
  c_iv : Induction.iv option; (* for Induction/Reduction *)
}

let category_name = function
  | Induction -> "induction"
  | Reduction -> "reduction"
  | Dead_in_loop -> "dead-in-loop"
  | Set_every_iter -> "set-every-iteration"
  | Unpredictable -> "unpredictable"

(* Registers carried around the back edge of [lp]: defined inside the loop
   and live at the loop header (so a use in some iteration may observe a
   def from a previous one). *)
let carried_regs (f : Ir.func) (live : Liveness.t) (lp : Loops.loop) =
  let defined = Loops.defined_regs f lp in
  Loops.Label_set.elements defined
  |> List.filter (fun r ->
         Dataflow.Int_set.mem r (live.Liveness.live_in lp.Loops.l_header))

(* Does the definition of [r] in block [bdef] dominate all latches, with
   every in-loop use of [r] appearing after the def (i.e. the def is
   unconditional and upstream of uses)?  That is the "set in every
   iteration before any use" test, approximated via dominance. *)
let set_every_iteration (_f : Ir.func) (dom : Dominance.t) (du : Defuse.t)
    (lp : Loops.loop) r =
  let in_loop pos = Loops.contains lp pos.Ir.ip_block in
  match List.filter in_loop (Defuse.defs_of du r) with
  | [] -> false
  | defs ->
      let def_blocks = List.map (fun p -> p.Ir.ip_block) defs in
      (* some def dominates every latch: the register is written on every
         iteration *)
      let dominating =
        List.filter
          (fun db ->
            List.for_all (fun latch -> Dominance.dominates dom db latch)
              lp.Loops.l_latches)
          def_blocks
      in
      (match dominating with
      | [] -> false
      | db :: _ ->
          (* every in-loop use must be dominated by the def block, so no
             use can observe the previous iteration's value *)
          let uses = List.filter in_loop (Defuse.uses_of du r) in
          let term_uses =
            Defuse.term_uses_of du r |> List.filter (Loops.contains lp)
          in
          List.for_all
            (fun u ->
              Dominance.dominates dom db u.Ir.ip_block
              && (u.Ir.ip_block <> db
                 || (* same block: def index must precede use index *)
                 List.exists
                   (fun d ->
                     d.Ir.ip_block = db && d.Ir.ip_index < u.Ir.ip_index)
                   defs))
            uses
          && List.for_all (fun l -> Dominance.dominates dom db l) term_uses)

let classify ?(poly2 = true) ?(recognize_reductions = true)
    ?(recognize_dead = true) ?(recognize_set_every = true) (f : Ir.func)
    (cfg : Cfg.t) (lp : Loops.loop) : classified list =
  let du = Defuse.compute f in
  let live = Liveness.compute cfg in
  let dom = Dominance.compute cfg in
  let ivs = Induction.analyze ~poly2 f du lp in
  let carried = carried_regs f live lp in
  (* a reduction is only valid when the accumulator's sole in-loop reader
     is its own update (otherwise intermediate values are observed and the
     dependence must be communicated) *)
  let valid_reduction r =
    match Induction.update_sites f du lp r with
    | None -> false
    | Some us ->
        let in_loop pos = Loops.contains lp pos.Ir.ip_block in
        List.filter in_loop (Defuse.uses_of du r)
        |> List.for_all (fun u -> u = us.Induction.us_binop)
        && not
             (Defuse.term_uses_of du r |> List.exists (Loops.contains lp))
  in
  List.map
    (fun r ->
      match Induction.find ivs r with
      | Some iv when Induction.recomputable iv ->
          { c_reg = r; c_category = Induction; c_iv = Some iv }
      | Some iv
        when recognize_reductions && Induction.reducible iv
             && valid_reduction r ->
          { c_reg = r; c_category = Reduction; c_iv = Some iv }
      | _ ->
          let in_loop_uses =
            List.filter
              (fun p -> Loops.contains lp p.Ir.ip_block)
              (Defuse.uses_of du r)
          and in_loop_term_uses =
            Defuse.term_uses_of du r |> List.filter (Loops.contains lp)
          in
          if recognize_dead && in_loop_uses = [] && in_loop_term_uses = []
          then { c_reg = r; c_category = Dead_in_loop; c_iv = None }
          else if recognize_set_every && set_every_iteration f dom du lp r
          then { c_reg = r; c_category = Set_every_iter; c_iv = None }
          else { c_reg = r; c_category = Unpredictable; c_iv = None })
    carried

let unpredictable_regs cls =
  List.filter_map
    (fun c ->
      match c.c_category with Unpredictable -> Some c.c_reg | _ -> None)
    cls

let predictable_fraction cls =
  match cls with
  | [] -> 1.0
  | _ ->
      let p =
        List.length
          (List.filter (fun c -> c.c_category <> Unpredictable) cls)
      in
      float_of_int p /. float_of_int (List.length cls)
