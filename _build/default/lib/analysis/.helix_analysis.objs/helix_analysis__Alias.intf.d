lib/analysis/alias.mli: Helix_ir Ir
