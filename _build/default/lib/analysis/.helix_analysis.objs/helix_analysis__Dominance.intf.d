lib/analysis/dominance.mli: Cfg Helix_ir Ir
