lib/analysis/induction.ml: Defuse Helix_ir Ir List Loops
