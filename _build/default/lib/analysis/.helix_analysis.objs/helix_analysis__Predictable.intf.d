lib/analysis/predictable.mli: Cfg Defuse Dominance Helix_ir Induction Ir Liveness Loops
