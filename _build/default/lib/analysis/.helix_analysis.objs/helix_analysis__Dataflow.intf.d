lib/analysis/dataflow.mli: Cfg Helix_ir Ir Set
