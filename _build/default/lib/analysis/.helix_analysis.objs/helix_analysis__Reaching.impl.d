lib/analysis/reaching.ml: Array Cfg Dataflow Hashtbl Helix_ir Ir List Loops
