lib/analysis/depend.mli: Alias Helix_ir Interp Ir Loops Set
