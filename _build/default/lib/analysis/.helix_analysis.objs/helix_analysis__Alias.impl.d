lib/analysis/alias.ml: Helix_ir Ir List
