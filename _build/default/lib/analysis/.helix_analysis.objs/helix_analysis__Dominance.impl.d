lib/analysis/dominance.ml: Array Cfg Hashtbl Helix_ir Ir List
