lib/analysis/dataflow.ml: Array Cfg Hashtbl Helix_ir Int Ir List Set
