lib/analysis/predictable.ml: Cfg Dataflow Defuse Dominance Helix_ir Induction Ir List Liveness Loops
