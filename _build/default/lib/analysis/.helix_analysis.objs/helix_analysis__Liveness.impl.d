lib/analysis/liveness.ml: Cfg Dataflow Hashtbl Helix_ir Ir List Loops
