lib/analysis/depend.ml: Alias Array Hashtbl Helix_ir Interp Ir List Loops Set
