lib/analysis/loops.ml: Array Cfg Dominance Hashtbl Helix_ir Int Ir List Set
