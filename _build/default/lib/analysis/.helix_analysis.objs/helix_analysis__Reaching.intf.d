lib/analysis/reaching.mli: Cfg Dataflow Hashtbl Helix_ir Ir Loops
