lib/analysis/induction.mli: Defuse Helix_ir Ir Loops
