lib/analysis/loops.mli: Cfg Helix_ir Ir Set
