lib/analysis/defuse.mli: Helix_ir Ir
