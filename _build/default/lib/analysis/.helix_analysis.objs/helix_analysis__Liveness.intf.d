lib/analysis/liveness.mli: Cfg Dataflow Helix_ir Ir Loops
