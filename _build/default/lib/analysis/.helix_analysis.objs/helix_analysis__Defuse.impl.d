lib/analysis/defuse.ml: Hashtbl Helix_ir Ir List
