open Helix_ir

(* Def-use information per virtual register: positions of every definition
   and every use.  The IR is not SSA, so a register may have several defs;
   the parallelizer's register analyses (induction, predictability) reason
   about the def multiset directly. *)

type t = {
  defs : (Ir.reg, Ir.ipos list) Hashtbl.t;
  uses : (Ir.reg, Ir.ipos list) Hashtbl.t;
  term_uses : (Ir.reg, Ir.label list) Hashtbl.t; (* uses in terminators *)
}

let compute (f : Ir.func) : t =
  let defs = Hashtbl.create 64
  and uses = Hashtbl.create 64
  and term_uses = Hashtbl.create 16 in
  let push tbl k v =
    let cur = try Hashtbl.find tbl k with Not_found -> [] in
    Hashtbl.replace tbl k (v :: cur)
  in
  Ir.iter_instrs f (fun pos ins ->
      List.iter (fun r -> push defs r pos) (Ir.defs_of_instr ins);
      List.iter (fun r -> push uses r pos) (Ir.uses_of_instr ins));
  List.iter
    (fun l ->
      let b = Ir.block_of_func f l in
      List.iter (fun r -> push term_uses r l) (Ir.uses_of_term b.Ir.b_term))
    f.Ir.f_order;
  { defs; uses; term_uses }

let defs_of t r = try Hashtbl.find t.defs r with Not_found -> []
let uses_of t r = try Hashtbl.find t.uses r with Not_found -> []
let term_uses_of t r = try Hashtbl.find t.term_uses r with Not_found -> []

let num_defs t r = List.length (defs_of t r)

(* The single definition of [r], or [None] if zero or several. *)
let unique_def t r = match defs_of t r with [ d ] -> Some d | _ -> None

let all_regs t =
  let s = Hashtbl.create 64 in
  Hashtbl.iter (fun r _ -> Hashtbl.replace s r ()) t.defs;
  Hashtbl.iter (fun r _ -> Hashtbl.replace s r ()) t.uses;
  Hashtbl.iter (fun r _ -> Hashtbl.replace s r ()) t.term_uses;
  Hashtbl.fold (fun r () acc -> r :: acc) s [] |> List.sort compare
