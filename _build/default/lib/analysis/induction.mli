open Helix_ir

(** Induction-variable recognition for a loop, over the canonical update
    idiom [tmp = op r, x; ...; mov r, tmp]. *)

type kind =
  | Basic of Ir.operand       (** r +/-= invariant step (degree 1) *)
  | Polynomial2 of Ir.reg     (** r +/-= s where s is a Basic IV *)
  | Accumulator               (** r +/-= loop-variant value *)
  | Product                   (** r *= value *)
  | MinMax                    (** r = min/max (r, value) *)

type iv = { iv_reg : Ir.reg; iv_kind : kind; iv_op : Ir.binop }

val invariant : Ir.func -> Loops.loop -> Ir.operand -> bool
(** Immediate, or register never defined inside the loop. *)

val loop_instrs : Ir.func -> Loops.loop -> (Ir.ipos * Ir.instr) list

(** The two sites of a single-update register: the arithmetic instruction
    and the committing mov (equal for the direct [r = op r, x] form). *)
type update_sites = {
  us_binop : Ir.ipos;
  us_mov : Ir.ipos;
  us_op : Ir.binop;
  us_other : Ir.operand;
}

val update_sites :
  Ir.func -> Defuse.t -> Loops.loop -> Ir.reg -> update_sites option

val single_update :
  Ir.func -> Defuse.t -> Loops.loop -> Ir.reg ->
  (Ir.binop * Ir.operand) option

val analyze : ?poly2:bool -> Ir.func -> Defuse.t -> Loops.loop -> iv list
(** [~poly2:false] restricts to linear IVs (HCCv1's analysis). *)

val find : iv list -> Ir.reg -> iv option

val recomputable : iv -> bool
(** Closed function of the iteration index: Basic or Polynomial2. *)

val reducible : iv -> bool
(** Removable by privatizing per-core partials. *)
