open Helix_ir

(* Register liveness, as a backward dataflow problem over the generic
   engine.  Facts are sets of live registers at block boundaries. *)

module Int_set = Dataflow.Int_set

type t = {
  live_in : Ir.label -> Int_set.t;
  live_out : Ir.label -> Int_set.t;
}

let block_gen_kill (f : Ir.func) l =
  let b = Ir.block_of_func f l in
  (* Forward walk: gen = upward-exposed uses (used before any def in this
     block), kill = all defined registers. *)
  let gen = ref Int_set.empty and kill = ref Int_set.empty in
  let use r = if not (Int_set.mem r !kill) then gen := Int_set.add r !gen in
  List.iter
    (fun ins ->
      List.iter use (Ir.uses_of_instr ins);
      List.iter (fun r -> kill := Int_set.add r !kill)
        (Ir.defs_of_instr ins))
    b.Ir.b_instrs;
  List.iter use (Ir.uses_of_term b.Ir.b_term);
  (!gen, !kill)

let compute (cfg : Cfg.t) : t =
  let f = cfg.Cfg.func in
  let cache = Hashtbl.create 17 in
  let gen_kill l =
    match Hashtbl.find_opt cache l with
    | Some gk -> gk
    | None ->
        let gk = block_gen_kill f l in
        Hashtbl.replace cache l gk;
        gk
  in
  let sol =
    Dataflow.set_problem ~direction:Dataflow.Backward
      ~entry_fact:Int_set.empty ~gen_kill cfg
  in
  { live_in = sol.Dataflow.fact_in; live_out = sol.Dataflow.fact_out }

(* Is [r] live at the entry of any exit target of loop [lp]?  Used by the
   "set but not used until after the loop" predictable-variable class. *)
let live_after_loop t (lp : Loops.loop) r =
  List.exists (fun (_, out_block) -> Int_set.mem r (t.live_in out_block))
    lp.Loops.l_exits

(* Is [r] live around the back edge (i.e. carried from one iteration to the
   next)?  True when r is live at the loop header entry and defined inside
   the loop. *)
let live_at_header t (lp : Loops.loop) r = Int_set.mem r (t.live_in lp.Loops.l_header)
