open Helix_ir

(** Reaching definitions over dense definition-site ids. *)

module Int_set = Dataflow.Int_set

type def_site = { d_id : int; d_reg : Ir.reg; d_pos : Ir.ipos }

type t = {
  sites : def_site array;
  site_of_pos : (Ir.ipos, int list) Hashtbl.t;
  reach_in : Ir.label -> Int_set.t;
  reach_out : Ir.label -> Int_set.t;
}

val compute : Cfg.t -> t
val site : t -> int -> def_site
val ids_at_pos : t -> Ir.ipos -> int list

val carried_defs : t -> Loops.loop -> Ir.reg -> int list
(** In-loop definitions of [r] reaching the loop header along the back
    edge: values carried between iterations. *)
