open Helix_ir

(* Induction-variable recognition for a single loop.

   The builder-generated (and HCC-normalized) update idiom for a register
   [r] updated once per iteration is

       s = binop op, r, step      (or binop op, step, r for commutative op)
       ...
       mov r, s

   where both instructions execute inside the loop.  We classify:

   - [Basic]     r += c with loop-invariant step (degree-1 polynomial);
   - [Polynomial2] r += s where the step register is itself a Basic IV of
                 the same loop (degree-2 polynomial), matching the paper's
                 "update function is a polynomial up to the second order";
   - [Accumulator] r op= x with op in {Add,Sub} and loop-variant x;
   - [Product]   r *= x;
   - [MinMax]    r = min/max (r, x).

   HCCv1 only recognizes [Basic] (linear IVs); HCCv2/v3 recognize the
   full lattice (paper Section 2.1). *)

type kind =
  | Basic of Ir.operand            (* invariant step *)
  | Polynomial2 of Ir.reg          (* step register, itself a basic IV *)
  | Accumulator
  | Product
  | MinMax

type iv = { iv_reg : Ir.reg; iv_kind : kind; iv_op : Ir.binop }

(* Is operand [o] invariant in loop [lp]: an immediate, or a register with
   no definition inside the loop? *)
let invariant (f : Ir.func) (lp : Loops.loop) (o : Ir.operand) =
  match o with
  | Ir.Imm _ -> true
  | Ir.Reg r ->
      not
        (Ir.fold_instrs f false (fun acc pos ins ->
             acc
             || (Loops.contains lp pos.Ir.ip_block
                && List.mem r (Ir.defs_of_instr ins))))

(* All (pos, instr) pairs inside the loop. *)
let loop_instrs (f : Ir.func) (lp : Loops.loop) =
  Ir.fold_instrs f [] (fun acc pos ins ->
      if Loops.contains lp pos.Ir.ip_block then (pos, ins) :: acc else acc)
  |> List.rev

(* The update sites of a single-update register: the arithmetic
   instruction and the committing mov (equal when the update is a direct
   [r = op r, x]). *)
type update_sites = {
  us_binop : Ir.ipos;
  us_mov : Ir.ipos;
  us_op : Ir.binop;
  us_other : Ir.operand;
}

let update_sites (f : Ir.func) (du : Defuse.t) (lp : Loops.loop) r :
    update_sites option =
  let in_loop pos = Loops.contains lp pos.Ir.ip_block in
  match List.filter in_loop (Defuse.defs_of du r) with
  | [ dpos ] -> begin
      match Ir.instr_at f dpos with
      | Ir.Mov (_, Ir.Reg s) -> begin
          match Defuse.defs_of du s with
          | [ spos ] when in_loop spos -> begin
              match Ir.instr_at f spos with
              | Ir.Binop (_, op, Ir.Reg r', other) when r' = r ->
                  Some
                    { us_binop = spos; us_mov = dpos; us_op = op;
                      us_other = other }
              | Ir.Binop (_, op, other, Ir.Reg r') when r' = r ->
                  Some
                    { us_binop = spos; us_mov = dpos; us_op = op;
                      us_other = other }
              | _ -> None
            end
          | _ -> None
        end
      | Ir.Binop (_, op, Ir.Reg r', other) when r' = r ->
          Some { us_binop = dpos; us_mov = dpos; us_op = op; us_other = other }
      | Ir.Binop (_, op, other, Ir.Reg r') when r' = r ->
          Some { us_binop = dpos; us_mov = dpos; us_op = op; us_other = other }
      | _ -> None
    end
  | _ -> None

(* Try to see register [r] as "updated exactly once per iteration via the
   mov idiom"; returns the update [(op, other-operand)] on success. *)
let single_update (f : Ir.func) (du : Defuse.t) (lp : Loops.loop) r =
  let in_loop pos = Loops.contains lp pos.Ir.ip_block in
  let loop_defs = List.filter in_loop (Defuse.defs_of du r) in
  match loop_defs with
  | [ dpos ] -> begin
      match Ir.instr_at f dpos with
      | Ir.Mov (_, Ir.Reg s) -> begin
          (* the temp s must be defined once, inside the loop, as a binop
             reading r *)
          match Defuse.defs_of du s with
          | [ spos ] when in_loop spos -> begin
              match Ir.instr_at f spos with
              | Ir.Binop (_, op, Ir.Reg r', other) when r' = r ->
                  Some (op, other)
              | Ir.Binop (_, op, other, Ir.Reg r')
                when r' = r
                     && List.mem op
                          [ Ir.Add; Ir.Mul; Ir.And; Ir.Or; Ir.Xor; Ir.Min;
                            Ir.Max ] ->
                  Some (op, other)
              | _ -> None
            end
          | _ -> None
        end
      | Ir.Binop (_, op, Ir.Reg r', other) when r' = r -> Some (op, other)
      | _ -> None
    end
  | _ -> None

(* [analyze ~poly2 f du lp] classifies every register carried around the
   back edge that matches the single-update idiom.  [poly2=false] restricts
   to linear IVs (HCCv1's analysis). *)
let analyze ?(poly2 = true) (f : Ir.func) (du : Defuse.t) (lp : Loops.loop) :
    iv list =
  let candidates =
    Loops.defined_regs f lp |> Loops.Label_set.elements
  in
  let basics =
    List.filter_map
      (fun r ->
        match single_update f du lp r with
        | Some ((Ir.Add | Ir.Sub) as op, step) when invariant f lp step ->
            Some { iv_reg = r; iv_kind = Basic step; iv_op = op }
        | _ -> None)
      candidates
  in
  let is_basic r = List.exists (fun iv -> iv.iv_reg = r) basics in
  let others =
    List.filter_map
      (fun r ->
        if is_basic r then None
        else
          match single_update f du lp r with
          | Some ((Ir.Add | Ir.Sub) as op, Ir.Reg s)
            when poly2 && is_basic s ->
              Some { iv_reg = r; iv_kind = Polynomial2 s; iv_op = op }
          | Some ((Ir.Add | Ir.Sub) as op, _) when poly2 ->
              Some { iv_reg = r; iv_kind = Accumulator; iv_op = op }
          | Some (Ir.Mul, _) when poly2 ->
              Some { iv_reg = r; iv_kind = Product; iv_op = Ir.Mul }
          | Some ((Ir.Min | Ir.Max) as op, _) when poly2 ->
              Some { iv_reg = r; iv_kind = MinMax; iv_op = op }
          | _ -> None)
      candidates
  in
  basics @ others

let find ivs r = List.find_opt (fun iv -> iv.iv_reg = r) ivs

(* A register the compiler can recompute locally on each core: basic or
   second-order polynomial IV (value is a closed function of the iteration
   index and loop-invariant state). *)
let recomputable iv =
  match iv.iv_kind with
  | Basic _ | Polynomial2 _ -> true
  | Accumulator | Product | MinMax -> false

(* A register whose cross-iteration dependence is removable by reduction
   (each core accumulates privately; partial results combine at loop end). *)
let reducible iv =
  match iv.iv_kind with
  | Accumulator | Product | MinMax -> true
  | Basic _ | Polynomial2 _ -> false
