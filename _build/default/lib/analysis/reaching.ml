open Helix_ir

(* Reaching definitions.  Each definition site gets a dense id; facts are
   sets of definition ids reaching a block boundary.  Used to decide
   whether a use inside a loop can see a definition from a previous
   iteration (a loop-carried register dependence). *)

module Int_set = Dataflow.Int_set

type def_site = { d_id : int; d_reg : Ir.reg; d_pos : Ir.ipos }

type t = {
  sites : def_site array;
  site_of_pos : (Ir.ipos, int list) Hashtbl.t; (* instr position -> def ids *)
  reach_in : Ir.label -> Int_set.t;
  reach_out : Ir.label -> Int_set.t;
}

let compute (cfg : Cfg.t) : t =
  let f = cfg.Cfg.func in
  let sites = ref [] and n = ref 0 in
  let site_of_pos = Hashtbl.create 64 in
  let by_reg = Hashtbl.create 64 in
  Ir.iter_instrs f (fun pos ins ->
      List.iter
        (fun r ->
          let id = !n in
          incr n;
          sites := { d_id = id; d_reg = r; d_pos = pos } :: !sites;
          Hashtbl.replace site_of_pos pos
            (id :: (try Hashtbl.find site_of_pos pos with Not_found -> []));
          Hashtbl.replace by_reg r
            (id :: (try Hashtbl.find by_reg r with Not_found -> [])))
        (Ir.defs_of_instr ins));
  let sites = Array.of_list (List.rev !sites) in
  let defs_of_reg r = try Hashtbl.find by_reg r with Not_found -> [] in
  let gen_kill l =
    let b = Ir.block_of_func f l in
    let gen = ref Int_set.empty and kill = ref Int_set.empty in
    List.iteri
      (fun i ins ->
        let pos = { Ir.ip_block = l; Ir.ip_index = i } in
        List.iter
          (fun r ->
            (* later defs kill earlier gens of the same register *)
            List.iter
              (fun id ->
                kill := Int_set.add id !kill;
                gen := Int_set.remove id !gen)
              (defs_of_reg r);
            List.iter
              (fun id -> gen := Int_set.add id !gen)
              (try Hashtbl.find site_of_pos pos with Not_found -> []))
          (Ir.defs_of_instr ins))
      b.Ir.b_instrs;
    (!gen, !kill)
  in
  let sol =
    Dataflow.set_problem ~direction:Dataflow.Forward ~entry_fact:Int_set.empty
      ~gen_kill cfg
  in
  {
    sites;
    site_of_pos;
    reach_in = sol.Dataflow.fact_in;
    reach_out = sol.Dataflow.fact_out;
  }

let site t id = t.sites.(id)

let ids_at_pos t pos =
  try Hashtbl.find t.site_of_pos pos with Not_found -> []

(* Definition ids of register [r] inside loop [lp] that reach the loop
   header along the back edge -- i.e. values carried between iterations. *)
let carried_defs t (lp : Loops.loop) r =
  Int_set.elements (t.reach_in lp.Loops.l_header)
  |> List.filter (fun id ->
         let s = t.sites.(id) in
         s.d_reg = r && Loops.contains lp s.d_pos.Ir.ip_block)
