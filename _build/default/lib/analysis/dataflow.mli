open Helix_ir

(** Generic iterative dataflow over a [Cfg.t]: clients provide a bounded
    join semilattice and a transfer function; the engine iterates to
    fixpoint in (reverse) postorder. *)

type direction = Forward | Backward

type 'fact problem = {
  direction : direction;
  init : Ir.label -> 'fact;
  entry_fact : 'fact;
  join : 'fact -> 'fact -> 'fact;
  equal : 'fact -> 'fact -> bool;
  transfer : Ir.label -> 'fact -> 'fact;
}

type 'fact solution = {
  fact_in : Ir.label -> 'fact;
  fact_out : Ir.label -> 'fact;
  iterations : int;
}

val solve : Cfg.t -> 'fact problem -> 'fact solution

module Int_set : Set.S with type elt = int

val set_problem :
  direction:direction ->
  entry_fact:Int_set.t ->
  gen_kill:(Ir.label -> Int_set.t * Int_set.t) ->
  Cfg.t -> Int_set.t solution
(** The common gen/kill bit-set instance. *)
