open Helix_ir

(** Natural-loop discovery and the loop nesting graph HCCv3 uses for loop
    selection (Section 4). *)

module Label_set : Set.S with type elt = int

type loop = {
  l_id : int;
  l_header : Ir.label;
  l_body : Label_set.t;                 (** includes the header *)
  l_latches : Ir.label list;            (** back-edge sources *)
  l_exits : (Ir.label * Ir.label) list; (** (inside, outside) edges *)
  mutable l_parent : int option;
  mutable l_children : int list;
  l_depth : int;                        (** 1 = outermost *)
}

type t

val compute : Cfg.t -> t

val loops : t -> loop list
val loop : t -> int -> loop
val num_loops : t -> int
val loop_of_header : t -> Ir.label -> int option
val innermost_containing : t -> Ir.label -> loop option
val innermost_loops : t -> loop list
val contains : loop -> Ir.label -> bool

val instr_positions : Ir.func -> loop -> Ir.ipos list
(** All instruction positions inside the loop body, in layout order. *)

val defined_regs : Ir.func -> loop -> Label_set.t
(** Registers defined by instructions inside the loop. *)
