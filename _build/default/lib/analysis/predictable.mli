open Helix_ir

(** Predictable-variable classification (Section 2.2, Figure 3): decides,
    for every register carried across loop iterations, whether its
    cross-iteration communication can be removed. *)

type category =
  | Induction       (** polynomial update of degree <= 2: recompute *)
  | Reduction       (** accumulative / max / min: privatize partials *)
  | Dead_in_loop    (** set, not used until after the loop *)
  | Set_every_iter  (** redefined on every path before any use *)
  | Unpredictable   (** must be communicated (demoted to a shared cell) *)

type classified = {
  c_reg : Ir.reg;
  c_category : category;
  c_iv : Induction.iv option;
}

val category_name : category -> string

val carried_regs : Ir.func -> Liveness.t -> Loops.loop -> Ir.reg list
(** Registers defined in the loop and live at its header. *)

val set_every_iteration :
  Ir.func -> Dominance.t -> Defuse.t -> Loops.loop -> Ir.reg -> bool

val classify :
  ?poly2:bool ->
  ?recognize_reductions:bool ->
  ?recognize_dead:bool ->
  ?recognize_set_every:bool ->
  Ir.func -> Cfg.t -> Loops.loop -> classified list
(** Classify the carried registers.  The flags correspond to the HCC
    version feature tiers: HCCv1 passes [~poly2:false] and disables the
    other recognizers.  Reductions are validated: an accumulator read by
    anything other than its own update is unpredictable. *)

val unpredictable_regs : classified list -> Ir.reg list
val predictable_fraction : classified list -> float
