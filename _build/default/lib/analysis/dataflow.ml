open Helix_ir

(* Generic iterative dataflow framework over a [Cfg.t].

   Clients provide a bounded join semilattice of facts per block boundary
   and a transfer function; the engine runs a worklist to fixpoint.  Both
   forward and backward problems are supported.  Facts are compared with a
   client-supplied [equal]; termination relies on the usual monotone
   framework assumptions, which the property tests exercise. *)

type direction = Forward | Backward

type 'fact problem = {
  direction : direction;
  init : Ir.label -> 'fact;      (* initial OUT (fwd) / IN (bwd) per block *)
  entry_fact : 'fact;            (* boundary fact at entry (fwd) / exits (bwd) *)
  join : 'fact -> 'fact -> 'fact;
  equal : 'fact -> 'fact -> bool;
  transfer : Ir.label -> 'fact -> 'fact;
}

type 'fact solution = {
  fact_in : Ir.label -> 'fact;   (* fact at block entry *)
  fact_out : Ir.label -> 'fact;  (* fact at block exit *)
  iterations : int;              (* worklist pops until fixpoint *)
}

let solve (cfg : Cfg.t) (p : 'fact problem) : 'fact solution =
  let blocks = Cfg.reachable_blocks cfg in
  let n = List.length blocks in
  let fact = Hashtbl.create (2 * n) in
  (* [fact] stores the post-transfer fact of each block: OUT for forward,
     IN for backward. *)
  List.iter (fun l -> Hashtbl.replace fact l (p.init l)) blocks;
  let inputs l =
    match p.direction with
    | Forward -> Cfg.predecessors cfg l
    | Backward -> Cfg.successors cfg l
  in
  let boundary l =
    match p.direction with
    | Forward -> l = Cfg.entry cfg
    | Backward -> Cfg.successors cfg l = []
  in
  let gather l =
    let base = if boundary l then Some p.entry_fact else None in
    let from_nbrs =
      List.filter_map (fun nb -> Hashtbl.find_opt fact nb) (inputs l)
    in
    match (base, from_nbrs) with
    | Some b, fs -> List.fold_left p.join b fs
    | None, f :: fs -> List.fold_left p.join f fs
    | None, [] -> p.init l
  in
  let order =
    (* reverse postorder for forward problems; its reverse for backward *)
    let rpo = Array.to_list (Cfg.reverse_postorder cfg) in
    match p.direction with Forward -> rpo | Backward -> List.rev rpo
  in
  let changed = ref true in
  let iterations = ref 0 in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        incr iterations;
        let input = gather l in
        let output = p.transfer l input in
        let old = Hashtbl.find fact l in
        if not (p.equal old output) then begin
          Hashtbl.replace fact l output;
          changed := true
        end)
      order
  done;
  let post l =
    match Hashtbl.find_opt fact l with Some f -> f | None -> p.init l
  in
  let pre l = gather l in
  let fact_in, fact_out =
    match p.direction with
    | Forward -> (pre, post)
    | Backward -> (post, pre)
  in
  { fact_in; fact_out; iterations = !iterations }

(* -- common fact domains -------------------------------------------- *)

module Int_set = Set.Make (Int)

let set_problem ~direction ~entry_fact ~gen_kill (cfg : Cfg.t) =
  let transfer l fact =
    let gen, kill = gen_kill l in
    Int_set.union gen (Int_set.diff fact kill)
  in
  solve cfg
    {
      direction;
      init = (fun _ -> Int_set.empty);
      entry_fact;
      join = Int_set.union;
      equal = Int_set.equal;
      transfer;
    }
