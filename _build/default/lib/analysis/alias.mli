open Helix_ir

(** Tiered may-alias analysis, reproducing the precision ladder of
    Figure 2: VLLPA-style allocation-site points-to, extended with flow
    sensitivity, path-based naming, data-type incompatibility and
    standard-library call semantics.  A tier answers [may_alias a b];
    [false] is a proof of independence. *)

type tier = {
  name : string;
  flow_sensitive : bool;
  path_based : bool;
  type_based : bool;
  libcall_sem : bool;
}

val vllpa : tier
val vllpa_flow : tier
val vllpa_path : tier
val vllpa_type : tier
val vllpa_lib : tier

val ladder : tier list
(** The five tiers in presentation order, least precise first. *)

val best : tier
(** The most precise tier ([vllpa_lib]): what HCCv2/v3 use. *)

val may_alias : tier -> Ir.mem_annot -> Ir.mem_annot -> bool
(** Same-iteration aliasing. *)

val may_alias_carried : tier -> Ir.mem_annot -> Ir.mem_annot -> bool
(** Cross-iteration aliasing: a flow-sensitive tier additionally proves
    that two affine accesses to the same site with equal offsets touch a
    different address on every iteration. *)

val leq : tier -> tier -> bool
(** [leq t1 t2]: every independence [t1] proves, [t2] proves too. *)

(** Abstract memory effect of an instruction. *)
type effect_ = {
  e_reads : Ir.mem_annot list;
  e_writes : Ir.mem_annot list;
  e_opaque : bool;  (** may touch anything (unknown call) *)
}

val no_effect : effect_

val effect_of_instr :
  tier -> ?lib_annots:Ir.mem_annot list -> Ir.instr -> effect_
(** Pure math intrinsics are transparent at every tier; memory-touching
    library calls are opaque below the "+lib calls" tier. *)

val effects_conflict : tier -> effect_ -> effect_ -> bool
val effects_conflict_carried : tier -> effect_ -> effect_ -> bool
