open Helix_ir
open Helix_analysis
open Helix_hcc
open Helix_workloads

(* Figure 2: accuracy of the data-dependence analysis for the small hot
   loops, per precision tier.  Accuracy = |identified dependences that are
   actual at runtime| / |identified dependences|, measured over the loops
   HELIX-RC selects in the CINT models.  The paper reports 48% for base
   VLLPA rising to 81% with all four extensions. *)

type tier_point = { tier_name : string; accuracy : float }

(* Ground truth: run the reference interpreter, attributing accesses to
   the innermost selected loop and its ancestors, with iteration counting
   driven by header visits. *)
let ground_truth (c : Hcc.compiled) (mem : Memory.t)
    (selected : Parallel_loop.t list) :
    (string * Ir.label, Depend.Edge_set.t) Hashtbl.t =
  let prog = c.Hcc.cp_prog in
  (* per function: the selected loops and their collectors *)
  let by_func : (string, (Loops.loop * Depend.Dynamic.t) list) Hashtbl.t =
    Hashtbl.create 7
  in
  let loops_cache = Hashtbl.create 7 in
  let loops_of fname =
    match Hashtbl.find_opt loops_cache fname with
    | Some l -> l
    | None ->
        let l = Loops.compute (Cfg.of_func (Ir.find_func prog fname)) in
        Hashtbl.replace loops_cache fname l;
        l
  in
  List.iter
    (fun (pl : Parallel_loop.t) ->
      let lt = loops_of pl.Parallel_loop.pl_func in
      match Loops.loop_of_header lt pl.Parallel_loop.pl_header with
      | Some id ->
          let lp = Loops.loop lt id in
          let cur =
            try Hashtbl.find by_func pl.Parallel_loop.pl_func
            with Not_found -> []
          in
          Hashtbl.replace by_func pl.Parallel_loop.pl_func
            ((lp, Depend.Dynamic.create ()) :: cur)
      | None -> ())
    selected;
  let last_block : (string, Ir.label) Hashtbl.t = Hashtbl.create 7 in
  let on_block ~fname l =
    (match Hashtbl.find_opt by_func fname with
    | None -> ()
    | Some ls ->
        List.iter
          (fun ((lp : Loops.loop), dyn) ->
            if lp.Loops.l_header = l then begin
              let from_outside =
                match Hashtbl.find_opt last_block fname with
                | Some prev -> not (Loops.contains lp prev)
                | None -> true
              in
              if from_outside then Depend.Dynamic.new_invocation dyn
              else Depend.Dynamic.begin_iteration dyn
            end
            else if not (Loops.contains lp l) then Depend.Dynamic.finish dyn)
          ls);
    Hashtbl.replace last_block fname l
  in
  let on_mem ~fname ~pos kind addr _v =
    match Hashtbl.find_opt by_func fname with
    | None -> ()
    | Some ls ->
        List.iter
          (fun ((lp : Loops.loop), dyn) ->
            if Loops.contains lp pos.Ir.ip_block then
              Depend.Dynamic.access dyn kind ~pos addr)
          ls
  in
  let hooks =
    { Interp.on_mem = Some on_mem; on_block = Some on_block; on_instr = None }
  in
  ignore (Interp.run ~hooks prog mem);
  let out = Hashtbl.create 7 in
  Hashtbl.iter
    (fun fname ls ->
      List.iter
        (fun ((lp : Loops.loop), dyn) ->
          Hashtbl.replace out
            (fname, lp.Loops.l_header)
            (Depend.Dynamic.actual_edges dyn))
        ls)
    by_func;
  out

let run ?(workloads = Registry.integer) () : tier_point list =
  let per_tier = Hashtbl.create 7 in
  List.iter
    (fun wl ->
      let c = Exp_common.compiled wl Exp_common.V3 in
      let selected = Hcc.selected_loops c in
      let truth = ground_truth c (Exp_common.ref_mem wl) selected in
      let loops_cache = Hashtbl.create 7 in
      List.iter
        (fun (pl : Parallel_loop.t) ->
          let fname = pl.Parallel_loop.pl_func in
          let f = Ir.find_func c.Hcc.cp_prog fname in
          let lt =
            match Hashtbl.find_opt loops_cache fname with
            | Some l -> l
            | None ->
                let l = Loops.compute (Cfg.of_func f) in
                Hashtbl.replace loops_cache fname l;
                l
          in
          match Loops.loop_of_header lt pl.Parallel_loop.pl_header with
          | None -> ()
          | Some id ->
              let lp = Loops.loop lt id in
              let actual =
                try Hashtbl.find truth (fname, pl.Parallel_loop.pl_header)
                with Not_found -> Depend.Edge_set.empty
              in
              List.iter
                (fun tier ->
                  let deps = Depend.compute tier c.Hcc.cp_prog f lp in
                  let static = deps.Depend.ld_edges in
                  let hits =
                    Depend.Edge_set.cardinal
                      (Depend.Edge_set.inter static actual)
                  in
                  let n = Depend.Edge_set.cardinal static in
                  let sh, sn =
                    try Hashtbl.find per_tier tier.Alias.name
                    with Not_found -> (0, 0)
                  in
                  Hashtbl.replace per_tier tier.Alias.name
                    (sh + hits, sn + n))
                Alias.ladder)
        selected)
    workloads;
  List.map
    (fun tier ->
      let hits, n =
        try Hashtbl.find per_tier tier.Alias.name with Not_found -> (0, 0)
      in
      {
        tier_name = tier.Alias.name;
        accuracy = (if n = 0 then 1.0 else float_of_int hits /. float_of_int n);
      })
    Alias.ladder

let report (points : tier_point list) : Report.t =
  Report.make
    ~title:"Figure 2: dependence-analysis accuracy for small hot loops"
    ~header:[ "analysis"; "accuracy" ]
    (List.map (fun p -> [ p.tier_name; Report.pct p.accuracy ]) points)
    ~notes:[ "paper: 48% (VLLPA) rising monotonically to 81% (+lib calls)" ]
