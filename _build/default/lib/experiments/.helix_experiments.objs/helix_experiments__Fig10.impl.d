lib/experiments/fig10.ml: Exp_common Helix_core Helix_machine Helix_workloads List Mach_config Registry Report Workload
