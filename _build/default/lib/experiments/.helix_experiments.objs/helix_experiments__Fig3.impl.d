lib/experiments/fig3.ml: Exp_common Hcc Helix_hcc Helix_workloads List Parallel_loop Registry Report
