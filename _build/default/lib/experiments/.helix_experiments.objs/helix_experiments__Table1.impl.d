lib/experiments/table1.ml: Exp_common Hcc Helix_hcc Helix_workloads List Registry Report Workload
