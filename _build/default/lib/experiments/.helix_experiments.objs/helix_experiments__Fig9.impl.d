lib/experiments/fig9.ml: Array Exp_common Helix_core Helix_machine Helix_workloads List Registry Report Stats Workload
