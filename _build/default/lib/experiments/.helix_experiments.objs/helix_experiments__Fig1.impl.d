lib/experiments/fig1.ml: Exp_common Helix_workloads List Registry Report Workload
