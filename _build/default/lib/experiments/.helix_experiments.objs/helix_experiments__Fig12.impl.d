lib/experiments/fig12.ml: Executor Exp_common Helix Helix_core Helix_workloads List Overhead Registry Report Workload
