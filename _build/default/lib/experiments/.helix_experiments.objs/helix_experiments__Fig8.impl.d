lib/experiments/fig8.ml: Executor Exp_common Helix_core Helix_machine Helix_workloads List Registry Report Workload
