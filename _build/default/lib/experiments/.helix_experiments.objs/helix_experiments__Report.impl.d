lib/experiments/report.ml: Array Buffer List Printf String
