lib/experiments/ablations.ml: Executor Exp_common Fun Hcc Hcc_config Helix Helix_core Helix_hcc Helix_ring Helix_workloads List Option Registry Report Ring Workload
