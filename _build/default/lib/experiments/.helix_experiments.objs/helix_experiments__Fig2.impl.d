lib/experiments/fig2.ml: Alias Cfg Depend Exp_common Hashtbl Hcc Helix_analysis Helix_hcc Helix_ir Helix_workloads Interp Ir List Loops Memory Parallel_loop Registry Report
