lib/experiments/fig11.ml: Executor Exp_common Helix_core Helix_machine Helix_ring Helix_workloads List Mach_config Printf Registry Report Ring Workload
