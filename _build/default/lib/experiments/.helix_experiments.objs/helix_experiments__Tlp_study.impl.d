lib/experiments/tlp_study.ml: Exp_common Float Hcc Helix_hcc Helix_workloads List Parallel_loop Registry Report Select
