lib/experiments/exp_common.ml: Executor Hashtbl Hcc Hcc_config Helix Helix_core Helix_hcc Helix_ir Helix_machine Helix_workloads Mach_config Memory Printf Workload
