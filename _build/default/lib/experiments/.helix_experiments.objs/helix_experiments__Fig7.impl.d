lib/experiments/fig7.ml: Exp_common Helix_workloads List Registry Report Workload
