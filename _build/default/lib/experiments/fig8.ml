open Helix_core
open Helix_workloads

(* Figure 8: breakdown of the benefits of decoupling communication from
   computation, on CINT.  From the HCCv2 conventional baseline we
   progressively decouple register communication, synchronization, and
   memory communication, up to full HELIX-RC. *)

type mode = { label : string; short : string; comm : Executor.comm_mode }

let modes =
  [
    { label = "decoupled reg. communication"; short = "reg";
      comm = { Executor.reg_via_ring = true; mem_via_ring = false;
               sync_via_ring = false } };
    { label = "decoupled reg. comm. and synch."; short = "reg+sync";
      comm = { Executor.reg_via_ring = true; mem_via_ring = false;
               sync_via_ring = true } };
    { label = "decoupled reg. and memory comm."; short = "reg+mem";
      comm = { Executor.reg_via_ring = true; mem_via_ring = true;
               sync_via_ring = false } };
    { label = "HELIX-RC (decoupled all communication)"; short = "all";
      comm = Executor.fully_decoupled };
  ]

type row = { name : string; v2 : float; by_mode : float list }

let run ?(workloads = Registry.integer) () : row list =
  List.map
    (fun wl ->
      let v2 =
        Exp_common.speedup_of wl (Exp_common.run_conventional wl Exp_common.V2)
      in
      let by_mode =
        List.map
          (fun m ->
            let cfg = Executor.default_config ~ring:true ~comm:m.comm
                Helix_machine.Mach_config.default in
            Exp_common.speedup_of wl
              (Exp_common.parallel ~tag:("fig8:" ^ m.label) wl Exp_common.V3
                 cfg))
          modes
      in
      { name = wl.Workload.name; v2; by_mode })
    workloads

let report (rows : row list) : Report.t =
  let geo sel = Exp_common.geomean (List.map sel rows) in
  Report.make
    ~title:"Figure 8: benefits of decoupling (CINT, 16 cores)"
    ~header:("benchmark" :: "HCCv2" :: List.map (fun m -> m.short) modes)
    (List.map
       (fun r ->
         r.name :: Report.xf r.v2 :: List.map Report.xf r.by_mode)
       rows
    @ [
        ("INT Geomean" :: Report.xf (geo (fun r -> r.v2))
        :: List.mapi
             (fun i _ -> Report.xf (geo (fun r -> List.nth r.by_mode i)))
             modes);
      ])
    ~notes:
      [
        "paper: register decoupling alone adds little; most of the gain \
         needs decoupled synchronization plus memory communication";
      ]
