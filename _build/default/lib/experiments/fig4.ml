open Helix_ir
open Helix_analysis
open Helix_hcc
open Helix_machine
open Helix_core
open Helix_workloads

(* Figure 4: why small hot loops need fast proactive communication.
   (a) cumulative distribution of per-iteration execution time of the
       selected loops on one in-order core, against measured coherence
       round-trip latencies of commodity parts;
   (b) distribution of producer-to-first-consumer hop distances on the
       16-node ring;
   (c) number of consumer cores per shared value. *)

type result = {
  iter_cdf : (int * float) list;     (* (cycles, fraction <= cycles) *)
  dist_hist : float array;           (* index 1..6 = hops, 6 = "6+" *)
  consumers_hist : float array;
  measured : (string * int) list;
}

(* Per-iteration instruction counts of the selected loops, converted to
   cycles with the measured sequential CPI. *)
let iteration_lengths (wl : Workload.t) : float list =
  let c = Exp_common.compiled wl Exp_common.V3 in
  let prog = c.Hcc.cp_prog in
  let seq = Exp_common.sequential wl in
  let cpi =
    float_of_int seq.Executor.r_cycles
    /. float_of_int (max 1 seq.Executor.r_retired)
  in
  (* interpret with per-loop iteration instruction counting *)
  let selected = Hcc.selected_loops c in
  let by_func = Hashtbl.create 7 in
  List.iter
    (fun (pl : Parallel_loop.t) ->
      let f = Ir.find_func prog pl.Parallel_loop.pl_func in
      let lt = Loops.compute (Cfg.of_func f) in
      match Loops.loop_of_header lt pl.Parallel_loop.pl_header with
      | Some id ->
          let lp = Loops.loop lt id in
          let cur =
            try Hashtbl.find by_func pl.Parallel_loop.pl_func
            with Not_found -> []
          in
          Hashtbl.replace by_func pl.Parallel_loop.pl_func
            ((lp, ref 0 (* current iter count *), ref []) :: cur)
      | None -> ())
    selected;
  let on_block ~fname l =
    match Hashtbl.find_opt by_func fname with
    | None -> ()
    | Some ls ->
        List.iter
          (fun ((lp : Loops.loop), cur, lens) ->
            if lp.Loops.l_header = l then begin
              if !cur > 0 then lens := !cur :: !lens;
              cur := 0
            end
            else if not (Loops.contains lp l) then begin
              if !cur > 0 then lens := !cur :: !lens;
              cur := 0
            end)
          ls
  in
  let on_instr ~fname pos _ =
    match Hashtbl.find_opt by_func fname with
    | None -> ()
    | Some ls ->
        List.iter
          (fun ((lp : Loops.loop), cur, _) ->
            if Loops.contains lp pos.Ir.ip_block then incr cur)
          ls
  in
  let hooks =
    { Interp.on_mem = None; on_block = Some on_block; on_instr = Some on_instr }
  in
  ignore (Interp.run ~hooks prog (Exp_common.ref_mem wl));
  Hashtbl.fold
    (fun _ ls acc ->
      List.fold_left
        (fun acc (_, _, lens) ->
          List.rev_map (fun n -> float_of_int n *. cpi) !lens @ acc)
        acc ls)
    by_func []

let run ?(workloads = Registry.integer) () : result =
  let lengths = List.concat_map iteration_lengths workloads in
  let sorted = List.sort compare lengths in
  let n = List.length sorted in
  let cdf_at x =
    let below = List.length (List.filter (fun l -> l <= float_of_int x) sorted) in
    if n = 0 then 0.0 else float_of_int below /. float_of_int n
  in
  let points = [ 10; 25; 50; 75; 110; 160; 260 ] in
  (* sharing distributions from a full HELIX-RC run *)
  let dist = Array.make 7 0 and cons = Array.make 7 0 in
  List.iter
    (fun wl ->
      let r = Exp_common.run_helix wl Exp_common.V3 in
      Array.iteri (fun i v -> dist.(i) <- dist.(i) + v)
        r.Executor.r_ring_dist_hist;
      Array.iteri (fun i v -> cons.(i) <- cons.(i) + v)
        r.Executor.r_ring_consumers_hist)
    workloads;
  let normalize a =
    let total = Array.fold_left ( + ) 0 a in
    Array.map
      (fun v -> if total = 0 then 0.0 else float_of_int v /. float_of_int total)
      a
  in
  {
    iter_cdf = List.map (fun x -> (x, cdf_at x)) points;
    dist_hist = normalize dist;
    consumers_hist = normalize cons;
    measured = Mach_config.measured_c2c_latencies;
  }

let report (r : result) : Report.t =
  let rows =
    List.map
      (fun (x, f) ->
        [ Printf.sprintf "<= %d cycles" x; Report.pct f; "" ])
      r.iter_cdf
    @ List.map
        (fun (name, lat) ->
          [ Printf.sprintf "%s coherence" name; ""; string_of_int lat ])
        r.measured
    @ List.concat
        (List.map
           (fun i ->
             [
               [ Printf.sprintf "hop distance %d%s" i
                   (if i = 6 then "+" else "");
                 Report.pct r.dist_hist.(i); "" ];
               [ Printf.sprintf "consumers %d%s" i
                   (if i = 6 then "+" else "");
                 Report.pct r.consumers_hist.(i); "" ];
             ])
           [ 1; 2; 3; 4; 5; 6 ])
  in
  Report.make
    ~title:
      "Figure 4: iteration-length CDF (a), sharing distance (b) and \
       consumers per value (c)"
    ~header:[ "quantity"; "fraction"; "cycles" ]
    rows
    ~notes:
      [
        "paper: >50% of iterations finish within 25 cycles; only 15% of \
         transfers are adjacent-core; 86% of values have multiple consumers";
      ]
