open Helix_machine
open Helix_workloads

(* Figure 10: sensitivity to core type.  HELIX-RC speedups on 2-way
   in-order, 2-way out-of-order and 4-way out-of-order cores; plus
   sequential execution time of each core type normalized to the 4-way
   OoO core (lower graph). *)

type row = {
  name : string;
  io2 : float;                 (* speedup on 2-way in-order *)
  ooo2 : float;
  ooo4 : float;
  seq_ratio_io2 : float;       (* sequential time / 4-way OoO seq time *)
  seq_ratio_ooo2 : float;
}

let machines =
  [
    ("io2", Mach_config.atom_core);
    ("ooo2", Mach_config.ooo2_core);
    ("ooo4", Mach_config.ooo4_core);
  ]

let run ?(workloads = Registry.integer) () : row list =
  List.map
    (fun wl ->
      let results =
        List.map
          (fun (tag, core) ->
            let mach = Mach_config.with_core_kind Mach_config.default core in
            let seq = Exp_common.sequential ~mach wl in
            let par =
              Exp_common.parallel ~tag:("fig10:" ^ tag) wl Exp_common.V3
                (Exp_common.helix_cfg ~mach ())
            in
            (tag, seq, Helix_core.Helix.speedup ~seq ~par))
          machines
      in
      let get tag = List.find (fun (t, _, _) -> t = tag) results in
      let _, seq_io2, su_io2 = get "io2" in
      let _, seq_ooo2, su_ooo2 = get "ooo2" in
      let _, seq_ooo4, su_ooo4 = get "ooo4" in
      let norm (s : Helix_core.Executor.result) =
        float_of_int s.Helix_core.Executor.r_cycles
        /. float_of_int (max 1 seq_ooo4.Helix_core.Executor.r_cycles)
      in
      {
        name = wl.Workload.name;
        io2 = su_io2;
        ooo2 = su_ooo2;
        ooo4 = su_ooo4;
        seq_ratio_io2 = norm seq_io2;
        seq_ratio_ooo2 = norm seq_ooo2;
      })
    workloads

let report (rows : row list) : Report.t =
  let geo sel = Exp_common.geomean (List.map sel rows) in
  Report.make ~title:"Figure 10: speedup vs core complexity (CINT)"
    ~header:
      [ "benchmark"; "2w IO"; "2w OoO"; "4w OoO"; "seq IO/OoO4"; "seq OoO2/OoO4" ]
    (List.map
       (fun r ->
         [
           r.name;
           Report.xf r.io2;
           Report.xf r.ooo2;
           Report.xf r.ooo4;
           Report.f2 r.seq_ratio_io2;
           Report.f2 r.seq_ratio_ooo2;
         ])
       rows
    @ [
        [ "INT Geomean"; Report.xf (geo (fun r -> r.io2));
          Report.xf (geo (fun r -> r.ooo2));
          Report.xf (geo (fun r -> r.ooo4)); ""; "" ];
      ])
    ~notes:
      [
        "paper: OoO cores extract ILP (4-way ~1.9x faster sequentially) \
         yet HELIX-RC still speeds up most benchmarks (geomean ~3.8x on \
         16 OoO cores)";
      ]
