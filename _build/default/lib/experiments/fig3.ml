open Helix_hcc
open Helix_workloads

(* Figure 3: predictability of variables removes most register
   communication.  For the loops HELIX-RC selects we compare the naive
   communication set (every carried register plus every shared-memory
   alias class) with what remains after re-computation (only the
   unpredictable registers the compiler demoted to shared cells, plus the
   same memory classes).  The paper reports ~15% remaining, almost all of
   it memory-mediated. *)

type result = {
  naive_reg : int;
  naive_mem : int;
  remaining_reg : int;  (* demoted (unpredictable) registers *)
  remaining_mem : int;
}

let run ?(workloads = Registry.integer) () : result =
  List.fold_left
    (fun acc wl ->
      let c = Exp_common.compiled wl Exp_common.V3 in
      List.fold_left
        (fun acc (pl : Parallel_loop.t) ->
          {
            naive_reg = acc.naive_reg + pl.Parallel_loop.pl_carried_reg_count;
            naive_mem = acc.naive_mem + pl.Parallel_loop.pl_mem_class_count;
            remaining_reg =
              acc.remaining_reg
              + List.length pl.Parallel_loop.pl_shared_regs;
            remaining_mem =
              acc.remaining_mem + pl.Parallel_loop.pl_mem_class_count;
          })
        acc (Hcc.selected_loops c))
    { naive_reg = 0; naive_mem = 0; remaining_reg = 0; remaining_mem = 0 }
    workloads

let report (r : result) : Report.t =
  let naive = r.naive_reg + r.naive_mem in
  let remaining = r.remaining_reg + r.remaining_mem in
  let frac x = if naive = 0 then 0.0 else float_of_int x /. float_of_int naive in
  Report.make
    ~title:
      "Figure 3: communication remaining after re-computing predictable \
       variables"
    ~header:[ "quantity"; "count"; "fraction of naive" ]
    [
      [ "naive: registers"; string_of_int r.naive_reg;
        Report.pct (frac r.naive_reg) ];
      [ "naive: memory classes"; string_of_int r.naive_mem;
        Report.pct (frac r.naive_mem) ];
      [ "remaining: registers"; string_of_int r.remaining_reg;
        Report.pct (frac r.remaining_reg) ];
      [ "remaining: memory classes"; string_of_int r.remaining_mem;
        Report.pct (frac r.remaining_mem) ];
      [ "remaining: total"; string_of_int remaining; Report.pct (frac remaining) ];
    ]
    ~notes:
      [ "paper: ~15% of naive communication remains, mostly memory" ]
