open Helix_hcc
open Helix_workloads

(* Section 6.2 TLP study: on an abstract machine with no communication
   cost executing one instruction per cycle, aggressive splitting raises
   the number of concurrently executable instructions from 6.4 to 14.2
   while the average sequential-segment size drops from 8.5 to 3.2
   instructions.

   We compute both metrics from compile-time segment structure over the
   HELIX-RC-selected loops: with per-iteration body size B and largest
   segment footprint S, at most min(N, B/S) iterations can overlap on the
   abstract machine. *)

type point = {
  splitting : string;
  mean_segment_size : float;
  tlp : float;
}

(* Evaluate the SAME loops (those HELIX-RC selects) under a version's
   splitting policy, via that version's compilation of each loop. *)
let analyze version ?(workloads = Registry.integer) () =
  let seg_sizes = ref [] in
  let tlps = ref [] in
  List.iter
    (fun wl ->
      let v3 = Exp_common.compiled wl Exp_common.V3 in
      let chosen =
        List.map
          (fun (pl : Parallel_loop.t) ->
            (pl.Parallel_loop.pl_func, pl.Parallel_loop.pl_header))
          (Hcc.selected_loops v3)
      in
      let c = Exp_common.compiled wl version in
      List.iter
        (fun (pl : Parallel_loop.t) ->
          let nsegs = List.length pl.Parallel_loop.pl_segments in
          if nsegs > 0 then begin
            let footprints =
              List.map
                (fun si -> float_of_int si.Parallel_loop.si_footprint)
                pl.Parallel_loop.pl_segments
            in
            let mean_fp =
              List.fold_left ( +. ) 0.0 footprints
              /. float_of_int (List.length footprints)
            in
            let max_fp = List.fold_left Float.max 1.0 footprints in
            seg_sizes := mean_fp :: !seg_sizes;
            let b = float_of_int (max 1 pl.Parallel_loop.pl_body_static_instrs) in
            tlps := Float.min 16.0 (b /. max_fp) :: !tlps
          end
          else begin
            (* no segments: fully parallel *)
            tlps := 16.0 :: !tlps
          end)
        (List.filter
           (fun (cand : Select.candidate) ->
             List.mem
               ( cand.Select.cd_loop.Parallel_loop.pl_func,
                 cand.Select.cd_loop.Parallel_loop.pl_header )
               chosen)
           c.Hcc.cp_candidates
        |> List.map (fun cand -> cand.Select.cd_loop)))
    workloads;
  let mean l =
    match l with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  (mean !seg_sizes, mean !tlps)

let run ?workloads () : point list =
  let conservative_segs, conservative_tlp =
    analyze Exp_common.V2 ?workloads ()
  in
  let aggressive_segs, aggressive_tlp = analyze Exp_common.V3 ?workloads () in
  [
    { splitting = "conservative (HCCv2, merged segments)";
      mean_segment_size = conservative_segs; tlp = conservative_tlp };
    { splitting = "aggressive (HCCv3, one per shared class)";
      mean_segment_size = aggressive_segs; tlp = aggressive_tlp };
  ]

let report (points : point list) : Report.t =
  Report.make ~title:"Section 6.2: TLP vs segment splitting (abstract machine)"
    ~header:[ "splitting"; "mean segment size"; "TLP" ]
    (List.map
       (fun p ->
         [ p.splitting; Report.f1 p.mean_segment_size; Report.f1 p.tlp ])
       points)
    ~notes:
      [ "paper: segments shrink 8.5 -> 3.2 instructions; TLP rises 6.4 -> 14.2" ]
