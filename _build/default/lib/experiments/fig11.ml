open Helix_machine
open Helix_ring
open Helix_core
open Helix_workloads

(* Figure 11: sensitivity to core count and ring-cache parameters,
   sweeping one knob at a time from the default configuration
   (16 cores, 1-cycle links, 1-word data / 5-signal bandwidth, 1KB
   8-way node arrays). *)

type series = { sw_label : string; sw_speedups : (string * float) list }
(* one series per parameter value: (benchmark, speedup) list *)

let run_sweep ?(workloads = Registry.integer) ~label
    (points : (string * (unit -> Executor.config)) list) : series list =
  List.map
    (fun (pname, mk_cfg) ->
      {
        sw_label = Printf.sprintf "%s=%s" label pname;
        sw_speedups =
          List.map
            (fun wl ->
              let cfg = mk_cfg () in
              let r =
                Exp_common.parallel
                  ~tag:(Printf.sprintf "fig11:%s:%s" label pname)
                  wl Exp_common.V3 cfg
              in
              (wl.Workload.name, Exp_common.speedup_of wl r))
            workloads;
      })
    points

let with_ring_cfg f () =
  let mach = Mach_config.default in
  let rc = Ring.default_config ~n_nodes:mach.Mach_config.n_cores in
  let cfg = Exp_common.helix_cfg ~mach () in
  { cfg with Executor.ring_cfg = Some (f rc) }

(* (a) core count *)
let core_count ?workloads () =
  run_sweep ?workloads ~label:"cores"
    (List.map
       (fun n ->
         ( string_of_int n,
           fun () ->
             Exp_common.helix_cfg ~mach:(Mach_config.with_cores Mach_config.default n) () ))
       [ 2; 4; 8; 16 ])

(* (b) adjacent-node link latency *)
let link_latency ?workloads () =
  run_sweep ?workloads ~label:"link"
    (List.map
       (fun l ->
         (string_of_int l, with_ring_cfg (fun rc -> { rc with Ring.link_latency = l })))
       [ 1; 4; 8; 16; 32 ])

(* (c) signal bandwidth.

   Note a genuine finding of this reproduction: with threshold-counted
   signals, the steady-state signal rate per link is bounded by
   (segments per iteration) / (iteration interval), which stays well
   under one signal per cycle for every calibrated workload -- so even
   1-wide signal wires never saturate and the sweep is flat, unlike the
   paper's Figure 11c.  The paper's degradation implies burstier signal
   traffic than the counting protocol generates. *)
let signal_bandwidth ?workloads () =
  run_sweep ?workloads ~label:"sigbw"
    (List.map
       (fun (name, bw) ->
         (name, with_ring_cfg (fun rc -> { rc with Ring.signal_bandwidth = bw })))
       [ ("1", 1); ("2", 2); ("4", 4); ("unbounded", max_int) ])

(* (d) per-node memory size (words; 8-byte words) *)
let node_memory ?workloads () =
  run_sweep ?workloads ~label:"nodemem"
    (List.map
       (fun (name, words) ->
         (name, with_ring_cfg (fun rc -> { rc with Ring.array_size_words = words })))
       [ ("256B", 32); ("1KB", 128); ("32KB", 4096); ("unbounded", max_int) ])

let report ~title (ss : series list) : Report.t =
  let names =
    match ss with
    | s :: _ -> List.map fst s.sw_speedups
    | [] -> []
  in
  Report.make ~title
    ~header:("config" :: names @ [ "geomean" ])
    (List.map
       (fun s ->
         s.sw_label
         :: List.map (fun (_, v) -> Report.xf v) s.sw_speedups
         @ [ Report.xf (Exp_common.geomean (List.map snd s.sw_speedups)) ])
       ss)
