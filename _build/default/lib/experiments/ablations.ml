open Helix_core
open Helix_ring
open Helix_hcc
open Helix_workloads

(* Ablations of the design decisions DESIGN.md calls out, beyond the
   paper's own sensitivity study:

   - HCCv3's unnecessary-wait elimination (signal-only non-accessing
     paths, Figure 5c) switched off;
   - flush policy: write-back-keep-copies (ours/paper) vs
     invalidate-everything;
   - signal-wire injection: leftover-bandwidth (greedy) vs the strict
     forward-priority rule of the single-word data wires. *)

type row = { ab_name : string; ab_speedups : (string * float) list }

let default_workloads () =
  [ Registry.find "164.gzip"; Registry.find "175.vpr";
    Registry.find "197.parser" ]

let with_ring f =
  let base = Exp_common.helix_cfg () in
  { base with
    Executor.ring_cfg = Some (f (Ring.default_config ~n_nodes:16)) }

let measure ?version ~tag wl cfg =
  let version = Option.value version ~default:Exp_common.V3 in
  Exp_common.speedup_of wl
    (Exp_common.parallel ~cache:false ~tag wl version cfg)

let run ?(workloads = default_workloads ()) () : row list =
  let speedups f = List.map (fun wl -> (wl.Workload.name, f wl)) workloads in
  [
    { ab_name = "HELIX-RC (default)";
      ab_speedups =
        speedups (fun wl -> measure ~tag:"abl:default" wl (with_ring Fun.id)) };
    { ab_name = "no wait elimination";
      ab_speedups =
        speedups (fun wl ->
            (* compile a v3 variant that keeps waits on empty arms *)
            let s = wl.Workload.build () in
            let cfg =
              { (Hcc_config.v3 ()) with Hcc_config.eliminate_waits = false }
            in
            let compiled =
              Hcc.compile cfg s.Workload.prog s.Workload.layout
                ~train_mem:(s.Workload.init Workload.Train)
            in
            let seq = Exp_common.sequential wl in
            let par =
              Executor.run ~compiled (with_ring Fun.id) compiled.Hcc.cp_prog
                (s.Workload.init Workload.Ref)
            in
            Helix.speedup ~seq ~par) };
    { ab_name = "flush invalidates all copies";
      ab_speedups =
        speedups (fun wl ->
            measure ~tag:"abl:flushinv" wl
              (with_ring (fun rc -> { rc with Ring.flush_invalidates = true }))) };
    { ab_name = "strict signal injection";
      ab_speedups =
        speedups (fun wl ->
            measure ~tag:"abl:strictsig" wl
              (with_ring (fun rc ->
                   { rc with Ring.greedy_sig_inject = false }))) };
  ]

let report (rows : row list) : Report.t =
  let names =
    match rows with
    | r :: _ -> List.map fst r.ab_speedups
    | [] -> []
  in
  Report.make ~title:"Ablations: design decisions beyond the paper's sweeps"
    ~header:("configuration" :: names)
    (List.map
       (fun r -> r.ab_name :: List.map (fun (_, v) -> Report.xf v) r.ab_speedups)
       rows)
    ~notes:
      [
        "wait elimination mainly helps loops with conditional segments \
         (Fig. 5); keep-warm flushing mainly helps frequently re-invoked \
         small loops";
      ]
