lib/core/helix.mli: Executor Hcc Hcc_config Helix_hcc Helix_ir Helix_machine Ir Mach_config Memory
