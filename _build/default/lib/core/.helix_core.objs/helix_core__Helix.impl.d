lib/core/helix.ml: Executor Float Hcc Hcc_config Helix_hcc Helix_ir Helix_machine Interp Ir List Mach_config Memory Printf
