lib/core/overhead.mli: Executor Format
