lib/core/context.ml: Array Hashtbl Helix_ir Helix_machine Interp Ir List Memory Option Uop
