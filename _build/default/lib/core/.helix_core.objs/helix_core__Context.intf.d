lib/core/context.mli: Helix_ir Helix_machine Ir Memory Uop
