lib/core/executor.mli: Hcc Helix_hcc Helix_ir Helix_machine Helix_ring Ir Mach_config Memory Ring Stats
