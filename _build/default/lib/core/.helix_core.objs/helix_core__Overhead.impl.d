lib/core/overhead.ml: Array Executor Float Format Helix_machine List Stats
