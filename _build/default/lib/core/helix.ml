open Helix_ir
open Helix_machine
open Helix_hcc

(* Top-level HELIX-RC API: compile a program with a chosen compiler
   version, simulate it sequentially and in parallel on a configurable
   machine, check results against the reference interpreter, and compute
   speedups.  This is the entry point examples and experiments use. *)

type golden = {
  g_ret : int option;
  g_mem : Memory.t;
  g_dyn_instrs : int;
}

(* Reference semantics on a given initial memory (consumed). *)
let golden_run (prog : Ir.program) (mem : Memory.t) : golden =
  let r = Interp.run prog mem in
  { g_ret = r.Interp.ret; g_mem = mem;
    g_dyn_instrs = r.Interp.stats.Interp.dyn_instrs }

(* Compile with an HCC version; [train_mem] is the training input the
   profiler runs on (it is consumed). *)
let compile (config : Hcc_config.t) (prog : Ir.program)
    (layout : Memory.Layout.t) ~(train_mem : Memory.t) : Hcc.compiled =
  Hcc.compile config prog layout ~train_mem

(* Sequential baseline: the unmodified program on one core of the same
   machine, no ring, no triggers. *)
let run_sequential (mach : Mach_config.t) (prog : Ir.program)
    (mem : Memory.t) : Executor.result =
  let cfg =
    Executor.default_config ~ring:false ~comm:Executor.fully_coupled
      (Mach_config.with_cores mach 1)
  in
  Executor.run cfg prog mem

(* Parallel run of a compiled program. *)
let run_parallel ?(exec_cfg : Executor.config option)
    (compiled : Hcc.compiled) (mem : Memory.t) : Executor.result =
  let cfg =
    match exec_cfg with
    | Some c -> c
    | None ->
        Executor.default_config
          (Mach_config.with_cores Mach_config.default
             compiled.Hcc.cp_config.Hcc_config.target_cores)
  in
  Executor.run ~compiled cfg compiled.Hcc.cp_prog mem

(* The correctness oracle: a simulated run must reproduce the reference
   memory image and return value exactly. *)
type verdict = { ok : bool; detail : string }

let verify (g : golden) (r : Executor.result) : verdict =
  if r.Executor.r_ret <> g.g_ret then
    {
      ok = false;
      detail =
        Printf.sprintf "return value mismatch: golden %s, simulated %s"
          (match g.g_ret with Some v -> string_of_int v | None -> "none")
          (match r.Executor.r_ret with
          | Some v -> string_of_int v
          | None -> "none");
    }
  else if not (Memory.equal g.g_mem r.Executor.r_mem) then
    { ok = false; detail = "memory image mismatch" }
  else { ok = true; detail = "exact match" }

let speedup ~(seq : Executor.result) ~(par : Executor.result) : float =
  if par.Executor.r_cycles = 0 then 0.0
  else
    float_of_int seq.Executor.r_cycles /. float_of_int par.Executor.r_cycles

let geomean xs =
  match xs with
  | [] -> 0.0
  | _ ->
      exp
        (List.fold_left (fun acc x -> acc +. log (Float.max 1e-9 x)) 0.0 xs
        /. float_of_int (List.length xs))
