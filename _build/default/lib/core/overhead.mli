(** Overhead taxonomy (Figure 12): attribute every core-cycle of a
    parallel run that does not contribute to ideal speedup. *)

type t = {
  ov_additional_instrs : float;
  ov_wait_signal : float;
  ov_memory : float;
  ov_iteration_imbalance : float;
  ov_low_trip_count : float;
  ov_communication : float;
  ov_dependence_waiting : float;
}

val categories : t -> (string * float) list

val analyze : n_cores:int -> seq_retired:int -> Executor.result -> t
(** Fractions of total core-cycles.  Idle cycles split between low trip
    count (invocations with fewer iterations than core slots) and
    imbalance; serial-phase idling folds into imbalance. *)

val pp : Format.formatter -> t -> unit
