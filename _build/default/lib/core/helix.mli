open Helix_ir
open Helix_machine
open Helix_hcc

(** Top-level HELIX-RC API: compile, simulate, verify, compare. *)

type golden = {
  g_ret : int option;
  g_mem : Memory.t;
  g_dyn_instrs : int;
}

val golden_run : Ir.program -> Memory.t -> golden
(** Reference semantics on the given memory (consumed in place). *)

val compile :
  Hcc_config.t -> Ir.program -> Memory.Layout.t -> train_mem:Memory.t ->
  Hcc.compiled

val run_sequential :
  Mach_config.t -> Ir.program -> Memory.t -> Executor.result
(** The unmodified program on one core of the machine's core type. *)

val run_parallel :
  ?exec_cfg:Executor.config -> Hcc.compiled -> Memory.t -> Executor.result
(** Default configuration: 16-core ring-cache machine, fully decoupled. *)

type verdict = { ok : bool; detail : string }

val verify : golden -> Executor.result -> verdict
(** The oracle: a simulated run must reproduce the reference return value
    and memory image exactly. *)

val speedup : seq:Executor.result -> par:Executor.result -> float
val geomean : float list -> float
