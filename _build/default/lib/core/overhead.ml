open Helix_machine

(* Overhead taxonomy (Figure 12, following Burger et al.'s methodology):
   every cycle across all cores of the parallel run that does not
   contribute to ideal speedup is attributed to one category. *)

type t = {
  ov_additional_instrs : float;
  ov_wait_signal : float;
  ov_memory : float;
  ov_iteration_imbalance : float;
  ov_low_trip_count : float;
  ov_communication : float;
  ov_dependence_waiting : float;
}

let categories t =
  [
    ("Additional Instructions", t.ov_additional_instrs);
    ("Wait/Signal Instructions", t.ov_wait_signal);
    ("Memory", t.ov_memory);
    ("Iteration Imbalance", t.ov_iteration_imbalance);
    ("Low Trip Count", t.ov_low_trip_count);
    ("Communication", t.ov_communication);
    ("Dependence Waiting", t.ov_dependence_waiting);
  ]

(* [analyze ~n_cores ~seq_retired par] produces the taxonomy of the
   parallel run [par], normalized so the categories sum to the fraction
   of total core-cycles lost versus ideal (retired-work) cycles. *)
let analyze ~(n_cores : int) ~(seq_retired : int) (par : Executor.result) : t =
  let sum f =
    Array.fold_left (fun acc s -> acc + f s) 0 par.Executor.r_core_stats
  in
  let total = float_of_int (max 1 (sum (fun s -> s.Stats.cycles))) in
  let busy = sum (fun s -> Stats.get s Stats.Busy) in
  let sync = sum (fun s -> Stats.get s Stats.Sync_instr) in
  let dep = sum (fun s -> Stats.get s Stats.Dep_wait) in
  let comm = sum (fun s -> Stats.get s Stats.Communication) in
  let mem = sum (fun s -> Stats.get s Stats.Mem_stall) in
  let pipe = sum (fun s -> Stats.get s Stats.Pipeline) in
  let idle = sum (fun s -> Stats.get s Stats.Idle) in
  (* idling of the other cores while core 0 runs serial code is neither
     low trip count nor imbalance of a parallel loop; with >98% coverage
     it is small, and we fold it into imbalance *)
  let serial_idle =
    min idle (par.Executor.r_serial_cycles * max 0 (n_cores - 1))
  in
  let par_idle = idle - serial_idle in
  let retired = max 1 par.Executor.r_retired in
  let retired_sync =
    Array.fold_left
      (fun acc s -> acc + s.Stats.retired_sync)
      0 par.Executor.r_core_stats
  in
  (* cycles spent executing instructions the sequential code does not
     execute (recomputation, demotion loads/stores, wait/signal); the
     wait/signal share is split out by its retired-instruction fraction *)
  let extra_frac =
    Float.max 0.0
      (float_of_int (retired - seq_retired) /. float_of_int retired)
  in
  let sync_frac =
    Float.min extra_frac (float_of_int retired_sync /. float_of_int retired)
  in
  let exec_cycles = float_of_int (busy + pipe) in
  let additional = (extra_frac -. sync_frac) *. exec_cycles in
  let wait_signal_cycles =
    (sync_frac *. exec_cycles) +. float_of_int sync
  in
  (* split idle cycles between low-trip-count and imbalance using the
     per-invocation records; serial-phase idling on the other cores joins
     the imbalance bucket *)
  let low_trip_weight, par_idle_weight =
    List.fold_left
      (fun (lt, tot) inv ->
        let trip = max 0 inv.Executor.inv_trip in
        let laps = max 1 ((trip + n_cores - 1) / n_cores) in
        let slots = laps * n_cores in
        let lack = slots - trip in
        ( lt + inv.Executor.inv_cycles * lack / max 1 slots,
          tot + inv.Executor.inv_cycles ))
      (0, 0) par.Executor.r_invocations
  in
  let low_trip_frac =
    if par_idle_weight = 0 then 0.0
    else
      Float.min 1.0
        (float_of_int low_trip_weight /. float_of_int par_idle_weight)
  in
  let low_trip = float_of_int par_idle *. low_trip_frac in
  let imbalance = float_of_int idle -. low_trip in
  let norm x = x /. total in
  {
    ov_additional_instrs = norm additional;
    ov_wait_signal = norm wait_signal_cycles;
    ov_memory = norm (float_of_int mem);
    ov_iteration_imbalance = norm imbalance;
    ov_low_trip_count = norm low_trip;
    ov_communication = norm (float_of_int comm);
    ov_dependence_waiting = norm (float_of_int dep);
  }

let pp ppf t =
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%s: %.1f%%@." name (100.0 *. v))
    (categories t)
