(* Machine configuration records for the simulated multicore.

   Defaults follow the paper's experimental setup (Section 6.1): Atom-like
   2-way in-order cores, per-core 32KB 8-way L1, shared 8MB 16-bank L2,
   DRAM behind it, and an optimistic 10-cycle cache-to-cache transfer
   latency for the conventional machine.  Word = 8 bytes. *)

type core_kind = In_order | Out_of_order

type core_config = {
  kind : core_kind;
  width : int;            (* issue width *)
  window : int;           (* OoO instruction window; ignored in-order *)
  alu_latency : int;
  mul_latency : int;
  div_latency : int;
  branch_penalty : int;   (* mispredict front-end redirect *)
}

type cache_config = {
  size_words : int;
  assoc : int;
  line_words : int;
  hit_latency : int;
}

type mem_config = {
  l1 : cache_config;
  l2 : cache_config;
  l2_banks : int;
  l2_latency : int;        (* access latency once at L2 *)
  dram_latency : int;
  dram_banks : int;
  c2c_latency : int;       (* cache-to-cache transfer (coherence) latency *)
}

type t = {
  n_cores : int;
  core : core_config;
  mem : mem_config;
}

let atom_core =
  {
    kind = In_order;
    width = 2;
    window = 1;
    alu_latency = 1;
    mul_latency = 3;
    div_latency = 20;
    branch_penalty = 7;
  }

let ooo2_core =
  {
    kind = Out_of_order;
    width = 2;
    window = 32;
    alu_latency = 1;
    mul_latency = 3;
    div_latency = 20;
    branch_penalty = 12;
  }

let ooo4_core = { ooo2_core with width = 4; window = 64 }

(* 32KB / 8B words = 4096 words, 8-way; 64B lines = 8 words. *)
let default_l1 = { size_words = 4096; assoc = 8; line_words = 8; hit_latency = 3 }

(* 8MB / 8B = 1M words, 16-way. *)
let default_l2 =
  { size_words = 1_048_576; assoc = 16; line_words = 8; hit_latency = 12 }

let default_mem =
  {
    l1 = default_l1;
    l2 = default_l2;
    l2_banks = 16;
    l2_latency = 12;
    dram_latency = 120;
    dram_banks = 8;
    c2c_latency = 10; (* paper's optimistic conventional-coherence latency *)
  }

let default = { n_cores = 16; core = atom_core; mem = default_mem }

(* Measured round-trip core-to-core latencies from the paper's testbed
   (Section 6.1), used by Figure 4a. *)
let measured_c2c_latencies =
  [ ("Ivy Bridge", 75); ("Sandy Bridge", 95); ("Nehalem", 110) ]

let with_cores t n = { t with n_cores = n }
let with_core_kind t core = { t with core }
let with_c2c t lat = { t with mem = { t.mem with c2c_latency = lat } }
