lib/machine/uop.ml: Format Printf
