lib/machine/cache.mli: Mach_config
