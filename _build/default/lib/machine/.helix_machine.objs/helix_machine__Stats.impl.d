lib/machine/stats.ml: Format Hashtbl List
