lib/machine/hierarchy.ml: Array Cache Dram Hashtbl Mach_config
