lib/machine/stats.mli: Format Hashtbl
