lib/machine/dram.ml: Array
