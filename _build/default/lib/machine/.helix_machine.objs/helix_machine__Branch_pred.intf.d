lib/machine/branch_pred.mli:
