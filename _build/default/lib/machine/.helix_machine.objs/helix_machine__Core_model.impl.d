lib/machine/core_model.ml: Mach_config Stats Uop
