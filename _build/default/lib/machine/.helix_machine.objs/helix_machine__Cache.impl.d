lib/machine/cache.ml: Array Mach_config
