lib/machine/branch_pred.ml: Array
