lib/machine/core.mli: Core_model Mach_config Stats
