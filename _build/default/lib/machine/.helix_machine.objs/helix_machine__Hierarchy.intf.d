lib/machine/hierarchy.mli: Mach_config
