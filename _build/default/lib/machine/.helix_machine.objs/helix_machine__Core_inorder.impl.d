lib/machine/core_inorder.ml: Branch_pred Core_model Format Hashtbl List Mach_config Printf Stats String Sys Uop
