lib/machine/dram.mli:
