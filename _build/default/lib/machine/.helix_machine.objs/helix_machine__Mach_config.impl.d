lib/machine/mach_config.ml:
