lib/machine/core_ooo.ml: Branch_pred Core_model Format Hashtbl List Mach_config Printf Stats String Uop
