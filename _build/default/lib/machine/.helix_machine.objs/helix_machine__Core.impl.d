lib/machine/core.ml: Core_inorder Core_model Core_ooo Mach_config
