(* Two-bit saturating-counter branch predictor, indexed by static branch
   id.  Enough fidelity to charge realistic front-end redirect penalties
   on hard-to-predict branches in irregular code. *)

type t = {
  table : int array; (* 0..3 saturating counters, init weakly taken *)
  mutable lookups : int;
  mutable mispredicts : int;
}

let create ?(bits = 10) () =
  { table = Array.make (1 lsl bits) 2; lookups = 0; mispredicts = 0 }

(* [predict_update t ~static_id ~taken] returns whether the branch was
   mispredicted, updating the counter. *)
let predict_update t ~static_id ~taken =
  let i = static_id land (Array.length t.table - 1) in
  let c = t.table.(i) in
  let predicted_taken = c >= 2 in
  t.lookups <- t.lookups + 1;
  let mis = predicted_taken <> taken in
  if mis then t.mispredicts <- t.mispredicts + 1;
  t.table.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
  mis

let mispredict_rate t =
  if t.lookups = 0 then 0.0
  else float_of_int t.mispredicts /. float_of_int t.lookups
