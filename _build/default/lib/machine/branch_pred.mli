(** Two-bit saturating-counter branch predictor indexed by static branch
    id. *)

type t

val create : ?bits:int -> unit -> t

val predict_update : t -> static_id:int -> taken:bool -> bool
(** Whether the branch was mispredicted; updates the counter. *)

val mispredict_rate : t -> float
