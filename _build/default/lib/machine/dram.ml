(* Banked DRAM timing model (DRAMSim2 stand-in).

   Each bank serializes requests: a request arriving at cycle [c] to a busy
   bank queues behind the in-flight one.  Row-buffer locality is modelled
   with a last-row hit discount.  The model returns the completion latency
   for a request; it keeps no request data. *)

type bank = {
  mutable busy_until : int;
  mutable open_row : int;
}

type t = {
  cfg_latency : int;       (* closed-row access latency *)
  row_hit_latency : int;   (* open-row access latency *)
  banks : bank array;
  row_words : int;
  mutable requests : int;
  mutable row_hits : int;
}

let create ~latency ~banks =
  {
    cfg_latency = latency;
    row_hit_latency = max 1 (latency / 3);
    banks = Array.init (max 1 banks) (fun _ -> { busy_until = 0; open_row = -1 });
    row_words = 1024; (* 8KB rows of 8-byte words *)
    requests = 0;
    row_hits = 0;
  }

(* [access t ~cycle addr] returns the total latency (queueing included)
   of a DRAM access issued at [cycle]. *)
let access t ~cycle addr =
  t.requests <- t.requests + 1;
  let row = addr / t.row_words in
  let bank = t.banks.(row mod Array.length t.banks) in
  let service =
    if bank.open_row = row then begin
      t.row_hits <- t.row_hits + 1;
      t.row_hit_latency
    end
    else t.cfg_latency
  in
  let start = max cycle bank.busy_until in
  let finish = start + service in
  bank.busy_until <- finish;
  bank.open_row <- row;
  finish - cycle

let row_hit_rate t =
  if t.requests = 0 then 0.0
  else float_of_int t.row_hits /. float_of_int t.requests
