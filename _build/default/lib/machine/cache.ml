(* Set-associative cache timing model with LRU replacement.

   The model tracks tags only: data always lives in the functional memory;
   the cache answers "hit or miss" and evictions.  Addresses are in words;
   the line size groups adjacent words. *)

type line = {
  mutable tag : int;     (* line address (addr / line_words) *)
  mutable valid : bool;
  mutable dirty : bool;
  mutable lru : int;     (* larger = more recently used *)
}

type t = {
  cfg : Mach_config.cache_config;
  sets : line array array; (* [set].[way] *)
  n_sets : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create (cfg : Mach_config.cache_config) =
  let n_sets = max 1 (cfg.size_words / (cfg.assoc * cfg.line_words)) in
  {
    cfg;
    sets =
      Array.init n_sets (fun _ ->
          Array.init cfg.assoc (fun _ ->
              { tag = -1; valid = false; dirty = false; lru = 0 }));
    n_sets;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let line_of t addr = addr / t.cfg.line_words
let set_of t laddr = laddr mod t.n_sets

type outcome =
  | Hit
  | Miss of { evicted_dirty_line : int option } (* line address written back *)

(* Access a word; allocate on miss. *)
let access t ~(write : bool) (addr : int) : outcome =
  t.clock <- t.clock + 1;
  let laddr = line_of t addr in
  let set = t.sets.(set_of t laddr) in
  let found = ref None in
  Array.iter
    (fun l -> if l.valid && l.tag = laddr then found := Some l)
    set;
  match !found with
  | Some l ->
      t.hits <- t.hits + 1;
      l.lru <- t.clock;
      if write then l.dirty <- true;
      Hit
  | None ->
      t.misses <- t.misses + 1;
      (* choose victim: invalid first, else LRU *)
      let victim = ref set.(0) in
      Array.iter
        (fun l ->
          if not l.valid then victim := l
          else if !victim.valid && l.lru < !victim.lru then victim := l)
        set;
      let v = !victim in
      let evicted =
        if v.valid && v.dirty then Some v.tag else None
      in
      if v.valid then t.evictions <- t.evictions + 1;
      v.tag <- laddr;
      v.valid <- true;
      v.dirty <- write;
      v.lru <- t.clock;
      Miss { evicted_dirty_line = evicted }

(* Probe without side effects. *)
let contains t addr =
  let laddr = line_of t addr in
  Array.exists
    (fun l -> l.valid && l.tag = laddr)
    t.sets.(set_of t laddr)

let invalidate t addr =
  let laddr = line_of t addr in
  Array.iter
    (fun l -> if l.valid && l.tag = laddr then l.valid <- false)
    t.sets.(set_of t laddr)

let flush_all t =
  Array.iter (fun set -> Array.iter (fun l -> l.valid <- false) set) t.sets

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 1.0 else float_of_int t.hits /. float_of_int total
