(** Core-model dispatcher: the in-order or out-of-order timing engine,
    chosen by configuration. *)

type t

val create : Mach_config.core_config -> Core_model.supply -> t

val tick : t -> int -> unit
(** Advance the core one clock cycle. *)

val quiescent : t -> bool
(** Nothing in flight and the supply currently yields no work. *)

val stats : t -> Stats.t
val describe : t -> string
