(** Banked DRAM timing model (DRAMSim2 stand-in): per-bank serialization
    with an open-row discount. *)

type t

val create : latency:int -> banks:int -> t

val access : t -> cycle:int -> int -> int
(** Total latency (queueing included) of a request issued at [cycle]. *)

val row_hit_rate : t -> float
