(* Micro-operations: the interface between the runtime's eager functional
   execution and the core timing models.

   The runtime executes IR eagerly (registers and private memory are
   core-local, so early evaluation is safe) and emits one uop per retired
   instruction.  Shared-world operations (sequential-segment memory
   accesses, wait/signal, flush) cannot execute eagerly -- their semantics
   depend on the cycle at which they execute -- so they are emitted as
   [Shared] uops carrying the request; the core model performs them at
   their timed issue point through the executor's shared callback, and the
   optional [sink] receives the loaded value so the runtime can resume. *)

type shared_op =
  | S_load of int            (* word address *)
  | S_store of int * int     (* word address, value *)
  | S_wait of int            (* sequential segment id *)
  | S_signal of int
  | S_flush

type shared_outcome =
  | Sh_done of { latency : int; value : int }
  | Sh_retry   (* condition not met this cycle; poll again *)

type kind =
  | Alu of int               (* execution latency *)
  | Branch of { taken : bool; static_id : int }
  | Load_priv of int         (* private (non-segment) load, eager value *)
  | Store_priv of int
  | Shared of shared_op

type t = {
  kind : kind;
  srcs : int list;           (* source register tokens *)
  dst : int option;          (* destination register token *)
  sink : (int -> unit) option; (* receives a shared load's value *)
  mutable meta : int;
      (* runtime tag: the executor stamps each worker uop with the local
         iteration index it belongs to, so shared-op semantics (wait
         thresholds) stay correct even when an out-of-order window still
         holds a previous iteration's tail after the eager context has
         started the next one *)
}

let mk ?(srcs = []) ?dst ?sink kind = { kind; srcs; dst; sink; meta = 0 }

let is_shared u = match u.kind with Shared _ -> true | _ -> false

let is_sync u =
  match u.kind with
  | Shared (S_wait _ | S_signal _ | S_flush) -> true
  | _ -> false

let pp ppf u =
  let k =
    match u.kind with
    | Alu l -> Printf.sprintf "alu/%d" l
    | Branch { taken; _ } -> if taken then "br.t" else "br.nt"
    | Load_priv a -> Printf.sprintf "ld[%d]" a
    | Store_priv a -> Printf.sprintf "st[%d]" a
    | Shared (S_load a) -> Printf.sprintf "ld.sh[%d]" a
    | Shared (S_store (a, _)) -> Printf.sprintf "st.sh[%d]" a
    | Shared (S_wait s) -> Printf.sprintf "wait %d" s
    | Shared (S_signal s) -> Printf.sprintf "signal %d" s
    | Shared S_flush -> "flush"
  in
  Format.fprintf ppf "%s" k
