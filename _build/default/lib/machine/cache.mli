(** Set-associative cache timing model with LRU replacement.  Tracks tags
    only: data lives in the functional memory; the model answers hit or
    miss plus dirty evictions. *)

type t

type outcome =
  | Hit
  | Miss of { evicted_dirty_line : int option }
      (** line address needing write-back, if a dirty victim was chosen *)

val create : Mach_config.cache_config -> t
val access : t -> write:bool -> int -> outcome
val contains : t -> int -> bool
val invalidate : t -> int -> unit
val flush_all : t -> unit
val hit_rate : t -> float
