(* Calibration driver: run every registered workload through HCCv1/v2/v3
   and print coverage, speedup, oracle verdict and overhead mix, next to
   the paper's reference numbers. *)

open Helix_ir
open Helix_hcc
open Helix_core
open Helix_machine
open Helix_workloads

let run_one (wl : Workload.t) =
  Fmt.pr "@.=== %s (paper: %.1fx, cov v3 %.0f%% v2 %.0f%% v1 %.0f%%, %s) ===@."
    wl.Workload.name wl.Workload.paper.Workload.p_speedup
    (100. *. wl.Workload.paper.Workload.p_coverage_v3)
    (100. *. wl.Workload.paper.Workload.p_coverage_v2)
    (100. *. wl.Workload.paper.Workload.p_coverage_v1)
    wl.Workload.paper.Workload.p_dominant;
  (* golden + sequential baseline *)
  let s = wl.Workload.build () in
  Verify.check_program s.Workload.prog;
  let g = Helix.golden_run s.Workload.prog (s.Workload.init Workload.Ref) in
  let s2 = wl.Workload.build () in
  let seq =
    Helix.run_sequential Mach_config.default s2.Workload.prog
      (s2.Workload.init Workload.Ref)
  in
  let seq_ok = (Helix.verify g seq).Helix.ok in
  Fmt.pr "golden dyn=%d seq cycles=%d (oracle %s)@." g.Helix.g_dyn_instrs
    seq.Executor.r_cycles
    (if seq_ok then "OK" else "FAIL");
  List.iter
    (fun (vname, cfg, exec_ring, comm) ->
      let sp = wl.Workload.build () in
      let compiled =
        Helix.compile cfg sp.Workload.prog sp.Workload.layout
          ~train_mem:(sp.Workload.init Workload.Train)
      in
      let exec_cfg =
        Executor.default_config ~ring:exec_ring ~comm Mach_config.default
      in
      let par =
        Helix.run_parallel ~exec_cfg compiled (sp.Workload.init Workload.Ref)
      in
      let ok = (Helix.verify g par).Helix.ok in
      let su = Helix.speedup ~seq ~par in
      let ov =
        Overhead.analyze ~n_cores:16 ~seq_retired:seq.Executor.r_retired par
      in
      let dominant =
        List.fold_left
          (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
          ("-", 0.0) (Overhead.categories ov)
      in
      Fmt.pr
        "%-6s cov=%5.1f%% sel=%d/%d speedup=%5.2fx cycles=%8d oracle=%s \
         dominant=%s(%.0f%%) maxsig=%d@."
        vname
        (100. *. compiled.Hcc.cp_coverage)
        (List.length compiled.Hcc.cp_selected)
        (List.length compiled.Hcc.cp_candidates)
        su par.Executor.r_cycles
        (if ok then "OK" else "FAIL")
        (fst dominant)
        (100. *. snd dominant)
        par.Executor.r_max_outstanding_signals;
      if Sys.getenv_opt "CALIBRATE_VERBOSE" <> None then begin
        let per_loop = Hashtbl.create 7 in
        List.iter
          (fun (inv : Executor.invocation_record) ->
            let c, k, tmin, tmax =
              try Hashtbl.find per_loop inv.Executor.inv_loop
              with Not_found -> (0, 0, max_int, 0)
            in
            Hashtbl.replace per_loop inv.Executor.inv_loop
              ( c + inv.Executor.inv_cycles,
                k + 1,
                min tmin inv.Executor.inv_trip,
                max tmax inv.Executor.inv_trip ))
          par.Executor.r_invocations;
        Fmt.pr "    serial=%d cycles, parallel=%d cycles@."
          par.Executor.r_serial_cycles par.Executor.r_parallel_cycles;
        Hashtbl.iter
          (fun loop (cycles, invocs, tmin, tmax) ->
            Fmt.pr "    loop%d: %d cycles over %d invocations (trip %d..%d)@."
              loop cycles invocs tmin tmax)
          per_loop
      end;
      if Sys.getenv_opt "CALIBRATE_VERBOSE" <> None then
        List.iter
          (fun (c : Select.candidate) ->
            let pl = c.Select.cd_loop in
            let selected =
              List.exists
                (fun (s : Select.candidate) -> s.Select.cd_loop == pl)
                compiled.Hcc.cp_selected
            in
            Fmt.pr
              "    loop%d hdr=L%d depth=%d segs=%d est=%.2f benefit=%.0f \
               iters=%s %s@."
              pl.Parallel_loop.pl_id pl.Parallel_loop.pl_header
              c.Select.cd_depth
              (List.length pl.Parallel_loop.pl_segments)
              c.Select.cd_estimate.Perf_model.e_speedup
              c.Select.cd_estimate.Perf_model.e_benefit
              (match c.Select.cd_profile with
              | Some p ->
                  Printf.sprintf "%d/%d"
                    p.Profiler.lpf_iterations p.Profiler.lpf_invocations
              | None -> "-")
              (if selected then "SELECTED" else ""))
          compiled.Hcc.cp_candidates)
    [
      ("HCCv1", Hcc_config.v1 (), false, Executor.fully_coupled);
      ("HCCv2", Hcc_config.v2 (), false, Executor.fully_coupled);
      ("HELIX", Hcc_config.v3 (), true, Executor.fully_decoupled);
    ]

let () =
  let which = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  List.iter
    (fun wl ->
      match which with
      | Some name when name <> wl.Workload.name -> ()
      | _ -> run_one wl)
    Registry.all
