bin/calibrate.mli:
