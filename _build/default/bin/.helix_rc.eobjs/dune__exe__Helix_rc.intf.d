bin/helix_rc.mli:
