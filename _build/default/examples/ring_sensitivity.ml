(* Exploring ring-cache design points on one benchmark.

     dune exec examples/ring_sensitivity.exe

   Sweeps the knobs of Section 6.3 on the 164.gzip model -- link latency,
   signal bandwidth, node memory -- plus one knob the paper fixes by
   design: the one-word node-array line.  The ablation demonstrates WHY
   the paper fixes it: with multi-word lines a node-array fill would need
   data for the whole line, and without extra fill machinery neighbouring
   words alias stale values -- the end-to-end oracle catches the
   violation ("it ensures there will be no false data sharing",
   Section 5.1). *)

open Helix_ring
open Helix_core
open Helix_workloads
open Helix_experiments

let wl = Registry.find "164.gzip"

let run_with cfg_f =
  let base = Exp_common.helix_cfg () in
  let rc = Ring.default_config ~n_nodes:16 in
  let cfg = { base with Executor.ring_cfg = Some (cfg_f rc) } in
  let r = Exp_common.parallel ~cache:false ~tag:"sens" wl Exp_common.V3 cfg in
  (Exp_common.speedup_of wl r, Exp_common.verified wl r)

let show label (speedup, ok) =
  Fmt.pr "  %-28s %5.2fx %s@." label speedup (if ok then "" else "ORACLE FAIL")

let () =
  Fmt.pr "ring-cache sensitivity on %s@." wl.Workload.name;
  Fmt.pr "link latency:@.";
  List.iter
    (fun l ->
      show (Fmt.str "%d cycle(s)/hop" l)
        (run_with (fun rc -> { rc with Ring.link_latency = l })))
    [ 1; 4; 16 ];
  Fmt.pr "signal bandwidth:@.";
  List.iter
    (fun (name, bw) ->
      show name (run_with (fun rc -> { rc with Ring.signal_bandwidth = bw })))
    [ ("1 signal/cycle", 1); ("5 signals/cycle", 5); ("unbounded", max_int) ];
  Fmt.pr "node memory:@.";
  List.iter
    (fun (name, words) ->
      show name
        (run_with (fun rc -> { rc with Ring.array_size_words = words })))
    [ ("256B", 32); ("1KB", 128); ("unbounded", max_int) ];
  Fmt.pr "node-array line size (the paper's one-word choice is a@.";
  Fmt.pr "correctness requirement, not a tuning knob -- expect the@.";
  Fmt.pr "oracle to fail for multi-word lines):@.";
  List.iter
    (fun w ->
      show
        (Fmt.str "%d word(s)/line" w)
        (run_with (fun rc -> { rc with Ring.array_line_words = w })))
    [ 1; 4; 8 ]
