(* Defining a workload of your own and pushing it through the full
   evaluation pipeline (all three compiler versions).

     dune exec examples/custom_workload.exe

   The workload models a toy spell-checker: a word stream probes a
   dictionary and bumps per-word counts (shared structure, like
   197.parser), then a scoring pass accumulates n-gram statistics
   (reduction-friendly, like the phases every HCC version handles). *)

open Helix_ir
open Helix_hcc
open Helix_core
open Helix_machine
open Helix_workloads

let spellcheck : Workload.t =
  let build () : Workload.spec =
    let layout = Memory.Layout.create () in
    let params = Workload.param_region layout in
    let words = Memory.Layout.alloc layout "words" 4096 in
    let counts = Memory.Layout.alloc layout "counts" 256 in
    let an_w = Workload.an_of words ~path:"w[]" ~ty:"int" ~affine:0 () in
    let an_c = Workload.an_of counts ~path:"count[]" ~ty:"int" () in
    let b = Builder.create "main" in
    let n = Workload.load_param b params 0 in
    let score = Builder.mov b (Ir.Imm 0) in
    (* probe & count *)
    let _ =
      Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg n) (fun i ->
          let w =
            Builder.load b ~offset:(Ir.Reg i) ~an:an_w
              (Ir.Imm words.Memory.Layout.base)
          in
          let h = Builder.libcall b Ir.Lc_hash [ Ir.Reg w ] in
          let k = Builder.band b (Ir.Reg h) (Ir.Imm 255) in
          let slot =
            Builder.add b (Ir.Imm counts.Memory.Layout.base) (Ir.Reg k)
          in
          let c = Builder.load b ~an:an_c (Ir.Reg slot) in
          let c1 = Builder.add b (Ir.Reg c) (Ir.Imm 1) in
          Builder.store b ~an:an_c (Ir.Reg slot) (Ir.Reg c1))
    in
    (* n-gram scoring: beefy iterations, pure reduction *)
    let m = Builder.shr b (Ir.Reg n) (Ir.Imm 2) in
    let _ =
      Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Reg m) (fun j ->
          let acc = Builder.mov b (Ir.Imm 0) in
          let _ =
            Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 32)
              (fun k ->
                let a0 = Builder.add b (Ir.Reg j) (Ir.Reg k) in
                let a = Builder.band b (Ir.Reg a0) (Ir.Imm 4095) in
                let w =
                  Builder.load b ~offset:(Ir.Reg a) ~an:an_w
                    (Ir.Imm words.Memory.Layout.base)
                in
                let d = Builder.mul b (Ir.Reg w) (Ir.Reg k) in
                let acc' = Builder.add b (Ir.Reg acc) (Ir.Reg d) in
                Builder.mov_to b acc (Ir.Reg acc'))
          in
          let s = Builder.add b (Ir.Reg score) (Ir.Reg acc) in
          Builder.mov_to b score (Ir.Reg s))
    in
    Builder.ret b (Some (Ir.Reg score));
    let prog = Ir.create_program () in
    Ir.add_func prog (Builder.func b);
    let init variant =
      let mem = Memory.create () in
      let n = match variant with Workload.Train -> 256 | Workload.Ref -> 1500 in
      Memory.store mem params.Memory.Layout.base n;
      let rng = Workload.mk_rng 0xcafe in
      Workload.fill mem words.Memory.Layout.base 4096 (fun _ -> rng 5000);
      mem
    in
    { Workload.prog; layout; init }
  in
  {
    Workload.name = "spellcheck";
    kind = Workload.Int;
    phases = 2;
    build;
    paper =
      { Workload.p_speedup = 0.0; p_coverage_v3 = 0.0; p_coverage_v2 = 0.0;
        p_coverage_v1 = 0.0; p_dominant = "n/a" };
  }

let () =
  let s = spellcheck.Workload.build () in
  let golden =
    Helix.golden_run s.Workload.prog (s.Workload.init Workload.Ref)
  in
  let s2 = spellcheck.Workload.build () in
  let seq =
    Helix.run_sequential Mach_config.default s2.Workload.prog
      (s2.Workload.init Workload.Ref)
  in
  Fmt.pr "spellcheck: golden %a, sequential %d cycles@."
    Fmt.(option int) golden.Helix.g_ret seq.Executor.r_cycles;
  List.iter
    (fun (vname, cfg, ring, comm) ->
      let sp = spellcheck.Workload.build () in
      let compiled =
        Hcc.compile cfg sp.Workload.prog sp.Workload.layout
          ~train_mem:(sp.Workload.init Workload.Train)
      in
      let exec_cfg = Executor.default_config ~ring ~comm Mach_config.default in
      let par =
        Executor.run ~compiled exec_cfg compiled.Hcc.cp_prog
          (sp.Workload.init Workload.Ref)
      in
      Fmt.pr "%-8s coverage %5.1f%%  speedup %5.2fx  oracle %s@." vname
        (100.0 *. compiled.Hcc.cp_coverage)
        (Helix.speedup ~seq ~par)
        (if (Helix.verify golden par).Helix.ok then "OK" else "FAIL"))
    [
      ("HCCv1", Hcc_config.v1 (), false, Executor.fully_coupled);
      ("HCCv2", Hcc_config.v2 (), false, Executor.fully_coupled);
      ("HELIX-RC", Hcc_config.v3 (), true, Executor.fully_decoupled);
    ]
