examples/ring_sensitivity.ml: Executor Exp_common Fmt Helix_core Helix_experiments Helix_ring Helix_workloads List Registry Ring Workload
