examples/quickstart.mli:
