examples/custom_workload.ml: Builder Executor Fmt Hcc Hcc_config Helix Helix_core Helix_hcc Helix_ir Helix_machine Helix_workloads Ir List Mach_config Memory Workload
