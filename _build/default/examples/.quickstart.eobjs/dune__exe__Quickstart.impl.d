examples/quickstart.ml: Builder Executor Fmt Hcc Hcc_config Helix Helix_core Helix_hcc Helix_ir Helix_machine Ir List Mach_config Memory Parallel_loop
