examples/ring_sensitivity.mli:
