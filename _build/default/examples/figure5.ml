(* The paper's Figure 5 example, end to end.

     dune exec examples/figure5.exe

   A small hot loop (from 175.vpr, responsible for 55% of its runtime)
   has two paths: one updates a shared variable (a = a + 1), the other
   does not.  The compiler cannot predict the path, so it synchronizes
   every iteration.  This example shows:
   - the generated parallel body with its wait/signal bracket and the
     signal-only empty arm (HCCv3's unnecessary-wait elimination);
   - the coupled (conventional) vs decoupled (ring cache) execution
     times, reproducing the figure's message. *)

open Helix_ir
open Helix_hcc
open Helix_core
open Helix_machine

let build () =
  let layout = Memory.Layout.create () in
  let a_cell = Memory.Layout.alloc layout "a" 8 in
  let work = Memory.Layout.alloc layout "work" 2048 in
  let an_a = Ir.annot ~path:"a" ~ty:"int" a_cell.Memory.Layout.site in
  let an_w = Ir.annot ~path:"w[]" ~ty:"int" ~affine:0 work.Memory.Layout.site in
  let b = Builder.create "main" in
  let _ =
    Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 2048) (fun i ->
        let h = Builder.libcall b Ir.Lc_hash [ Ir.Reg i ] in
        let v = Builder.band b (Ir.Reg h) (Ir.Imm 255) in
        Builder.store b ~offset:(Ir.Reg i) ~an:an_w
          (Ir.Imm work.Memory.Layout.base) (Ir.Reg v))
  in
  let _ =
    Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 2048) (fun i ->
        (* parallel code: per-element work *)
        let w =
          Builder.load b ~offset:(Ir.Reg i) ~an:an_w
            (Ir.Imm work.Memory.Layout.base)
        in
        let x0 = Builder.mul b (Ir.Reg w) (Ir.Imm 3) in
        let x1 = Builder.libcall b Ir.Lc_hash [ Ir.Reg x0 ] in
        let x2 = Builder.band b (Ir.Reg x1) (Ir.Imm 15) in
        (* sequential segment on one path only: if cond then a = a + 1 *)
        let cond = Builder.eq b (Ir.Reg x2) (Ir.Imm 0) in
        Builder.if_then b (Ir.Reg cond) (fun () ->
            let a =
              Builder.load b ~an:an_a (Ir.Imm a_cell.Memory.Layout.base)
            in
            let a1 = Builder.add b (Ir.Reg a) (Ir.Imm 1) in
            Builder.store b ~an:an_a (Ir.Imm a_cell.Memory.Layout.base)
              (Ir.Reg a1)))
  in
  let a = Builder.load b ~an:an_a (Ir.Imm a_cell.Memory.Layout.base) in
  Builder.ret b (Some (Ir.Reg a));
  let prog = Ir.create_program () in
  Ir.add_func prog (Builder.func b);
  (prog, layout)

let () =
  let gprog, _ = build () in
  let golden = Helix.golden_run gprog (Memory.create ()) in
  let sprog, _ = build () in
  let seq = Helix.run_sequential Mach_config.default sprog (Memory.create ()) in
  let prog, layout = build () in
  let compiled =
    Helix.compile (Hcc_config.v3 ()) prog layout ~train_mem:(Memory.create ())
  in
  (* show the generated body of the Figure-5 loop *)
  let pl =
    List.find
      (fun (pl : Parallel_loop.t) -> pl.Parallel_loop.pl_segments <> [])
      (Hcc.selected_loops compiled)
  in
  Fmt.pr "--- generated parallel body (note the signal-only empty arm) ---@.";
  Fmt.pr "%a@." Pretty.pp_func
    (Ir.find_func compiled.Hcc.cp_prog pl.Parallel_loop.pl_body_fn);
  (* decoupled: full HELIX-RC *)
  let decoupled = Helix.run_parallel compiled (Memory.create ()) in
  (* coupled: same code, conventional machine (as in Figure 5b / 9) *)
  let coupled_cfg =
    Executor.default_config ~ring:false ~comm:Executor.fully_coupled
      Mach_config.default
  in
  let coupled =
    Executor.run ~compiled coupled_cfg compiled.Hcc.cp_prog (Memory.create ())
  in
  Fmt.pr "sequential execution:           %7d cycles@." seq.Executor.r_cycles;
  Fmt.pr "coupled (conventional machine): %7d cycles (%.2fx)@."
    coupled.Executor.r_cycles
    (Helix.speedup ~seq ~par:coupled);
  Fmt.pr "decoupled (ring cache):         %7d cycles (%.2fx)@."
    decoupled.Executor.r_cycles
    (Helix.speedup ~seq ~par:decoupled);
  Fmt.pr "oracle: coupled %s, decoupled %s@."
    (if (Helix.verify golden coupled).Helix.ok then "OK" else "FAIL")
    (if (Helix.verify golden decoupled).Helix.ok then "OK" else "FAIL")
