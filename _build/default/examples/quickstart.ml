(* Quickstart: build a small irregular program, compile it with HCCv3 and
   run it on the simulated 16-core ring-cache machine.

     dune exec examples/quickstart.exe

   The program sharpens an "image" (array transform, independent
   iterations) and builds a brightness histogram (a genuinely shared
   structure) -- the minimal mix of DOALL parallelism and loop-carried
   memory dependences HELIX-RC is designed for. *)

open Helix_ir
open Helix_hcc
open Helix_core
open Helix_machine

let build () =
  let layout = Memory.Layout.create () in
  let image = Memory.Layout.alloc layout "image" 4096 in
  let hist = Memory.Layout.alloc layout "hist" 32 in
  let an_img = Ir.annot ~path:"image[]" ~ty:"px" ~affine:0 image.Memory.Layout.site in
  let an_hist = Ir.annot ~path:"hist[]" ~ty:"int" hist.Memory.Layout.site in
  let b = Builder.create "main" in
  (* synthesize the input image *)
  let _ =
    Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 4096) (fun i ->
        let h = Builder.libcall b Ir.Lc_hash [ Ir.Reg i ] in
        let px = Builder.band b (Ir.Reg h) (Ir.Imm 255) in
        Builder.store b ~offset:(Ir.Reg i) ~an:an_img
          (Ir.Imm image.Memory.Layout.base) (Ir.Reg px))
  in
  (* the hot loop: sharpen each pixel and count its brightness bucket *)
  let total = Builder.mov b (Ir.Imm 0) in
  let _ =
    Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 4096) (fun i ->
        let px =
          Builder.load b ~offset:(Ir.Reg i) ~an:an_img
            (Ir.Imm image.Memory.Layout.base)
        in
        let sharp0 = Builder.mul b (Ir.Reg px) (Ir.Imm 3) in
        let sharp = Builder.band b (Ir.Reg sharp0) (Ir.Imm 255) in
        Builder.store b ~offset:(Ir.Reg i) ~an:an_img
          (Ir.Imm image.Memory.Layout.base) (Ir.Reg sharp);
        (* shared histogram: a loop-carried memory dependence *)
        let bucket = Builder.shr b (Ir.Reg sharp) (Ir.Imm 3) in
        let slot =
          Builder.add b (Ir.Imm hist.Memory.Layout.base) (Ir.Reg bucket)
        in
        let c = Builder.load b ~an:an_hist (Ir.Reg slot) in
        let c1 = Builder.add b (Ir.Reg c) (Ir.Imm 1) in
        Builder.store b ~an:an_hist (Ir.Reg slot) (Ir.Reg c1);
        let t = Builder.add b (Ir.Reg total) (Ir.Reg sharp) in
        Builder.mov_to b total (Ir.Reg t))
  in
  Builder.ret b (Some (Ir.Reg total));
  let prog = Ir.create_program () in
  Ir.add_func prog (Builder.func b);
  (prog, layout)

let () =
  (* 1. reference semantics *)
  let gprog, _ = build () in
  let golden = Helix.golden_run gprog (Memory.create ()) in
  Fmt.pr "reference result: %a (%d instructions)@."
    Fmt.(option int)
    golden.Helix.g_ret golden.Helix.g_dyn_instrs;
  (* 2. sequential baseline on one Atom-like core *)
  let sprog, _ = build () in
  let seq = Helix.run_sequential Mach_config.default sprog (Memory.create ()) in
  Fmt.pr "sequential: %d cycles@." seq.Executor.r_cycles;
  (* 3. compile with HCCv3 *)
  let prog, layout = build () in
  let compiled =
    Helix.compile (Hcc_config.v3 ()) prog layout ~train_mem:(Memory.create ())
  in
  Fmt.pr "HCCv3 selected %d loops, coverage %.1f%%@."
    (List.length compiled.Hcc.cp_selected)
    (100.0 *. compiled.Hcc.cp_coverage);
  List.iter
    (fun (pl : Parallel_loop.t) ->
      Fmt.pr "  loop %d: %d sequential segments, %d shared registers@."
        pl.Parallel_loop.pl_id
        (List.length pl.Parallel_loop.pl_segments)
        (List.length pl.Parallel_loop.pl_shared_regs))
    (Hcc.selected_loops compiled);
  (* 4. run on the 16-core ring-cache machine *)
  let par = Helix.run_parallel compiled (Memory.create ()) in
  let verdict = Helix.verify golden par in
  Fmt.pr "HELIX-RC: %d cycles, speedup %.2fx, oracle %s@."
    par.Executor.r_cycles
    (Helix.speedup ~seq ~par)
    (if verdict.Helix.ok then "OK" else "FAIL: " ^ verdict.Helix.detail)
