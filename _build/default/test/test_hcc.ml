open Helix_ir
open Helix_analysis
open Helix_hcc

(* Tests for the HCC compiler: canonicalization, transforms, segment
   construction and placement, code generation, the cost model, loop
   selection and the full compile pipeline. *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let an ?(flow = -1) ?(path = "") ?(ty = "") ?affine site =
  Ir.annot ~flow ~path ~ty ?affine site

(* Build a program from a main body, with a layout for cells. *)
let mk_prog build =
  let layout = Memory.Layout.create () in
  let b = Builder.create "main" in
  let ret = build b layout in
  Builder.ret b (Some ret);
  let p = Ir.create_program () in
  Ir.add_func p (Builder.func b);
  (p, layout)

(* Compile the outermost loop of main with the given config; None if the
   loop was not parallelizable. *)
let compile_main_loop ?(config = Hcc_config.v3 ()) (p, layout) =
  let f = Ir.main_func p in
  let cfg = Cfg.of_func f in
  let lt = Loops.compute cfg in
  let lp = List.find (fun l -> l.Loops.l_depth = 1) (Loops.loops lt) in
  Codegen.compile_loop
    { Codegen.cg_prog = p; cg_layout = layout; cg_config = config }
    f cfg lp ~loop_id:0

(* a simple shared-cell loop: cell += i *)
let cell_loop () =
  mk_prog (fun b layout ->
      let cell = Memory.Layout.alloc layout "cell" 8 in
      let an_c = an ~path:"cell" cell.Memory.Layout.site in
      let _ =
        Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 12) (fun i ->
            let v = Builder.load b ~an:an_c (Ir.Imm cell.Memory.Layout.base) in
            let v1 = Builder.add b (Ir.Reg v) (Ir.Reg i) in
            Builder.store b ~an:an_c (Ir.Imm cell.Memory.Layout.base)
              (Ir.Reg v1))
      in
      Ir.Imm 0)

(* ---- canonicalization & transforms ---------------------------------- *)

let transform_tests =
  [
    tc "builder loop is canonical" (fun () ->
        let p, _ = cell_loop () in
        let f = Ir.main_func p in
        let lt = Loops.compute (Cfg.of_func f) in
        let lp = List.hd (Loops.loops lt) in
        Alcotest.(check bool) "canonical" true
          (Transform.canonicalize f lp <> None));
    tc "two-latch loop is rejected" (fun () ->
        let b = Builder.create "main" in
        let i = Builder.fresh b in
        Builder.mov_to b i (Ir.Imm 0);
        let header = Builder.fresh_label b in
        let body_l = Builder.fresh_label b in
        let la = Builder.fresh_label b in
        let lb = Builder.fresh_label b in
        let exit_l = Builder.fresh_label b in
        Builder.jmp b header;
        Builder.switch_to b header;
        let c = Builder.lt b (Ir.Reg i) (Ir.Imm 5) in
        Builder.br b (Ir.Reg c) body_l exit_l;
        Builder.switch_to b body_l;
        let i' = Builder.add b (Ir.Reg i) (Ir.Imm 1) in
        Builder.mov_to b i (Ir.Reg i');
        let par = Builder.band b (Ir.Reg i) (Ir.Imm 1) in
        Builder.br b (Ir.Reg par) la lb;
        Builder.switch_to b la;
        Builder.jmp b header;
        Builder.switch_to b lb;
        Builder.jmp b header;
        Builder.switch_to b exit_l;
        Builder.ret b None;
        let f = Builder.func b in
        let lt = Loops.compute (Cfg.of_func f) in
        let lp = List.hd (Loops.loops lt) in
        Alcotest.(check bool) "rejected" true
          (Transform.canonicalize f lp = None));
    tc "dead code elimination removes unused arithmetic" (fun () ->
        let b = Builder.create "main" in
        let live = Builder.mov b (Ir.Imm 1) in
        let _dead = Builder.mul b (Ir.Reg live) (Ir.Imm 7) in
        Builder.ret b (Some (Ir.Reg live));
        let f = Builder.func b in
        let removed = Transform.dead_code_elim f in
        check Alcotest.int "one removed" 1 removed);
    tc "dead code elimination keeps stores" (fun () ->
        let b = Builder.create "main" in
        Builder.store b ~an:(an 1) (Ir.Imm 100) (Ir.Imm 5);
        Builder.ret b None;
        let f = Builder.func b in
        check Alcotest.int "nothing removed" 0 (Transform.dead_code_elim f));
  ]

(* ---- segments -------------------------------------------------------- *)

let pos b i = { Ir.ip_block = b; ip_index = i }

let segment_tests =
  [
    tc "merging down to max_segments" (fun () ->
        let classes =
          [ ([ an 1 ], [ pos 1 0 ]); ([ an 2 ], [ pos 1 1 ]);
            ([ an 3 ], [ pos 1 2 ]) ]
        in
        check Alcotest.int "unlimited" 3
          (List.length (Segments.build ~max_segments:max_int ~opaque:false classes));
        check Alcotest.int "merged to one" 1
          (List.length (Segments.build ~max_segments:1 ~opaque:false classes));
        check Alcotest.int "merged to two" 2
          (List.length (Segments.build ~max_segments:2 ~opaque:false classes)));
    tc "opaque forces a single segment" (fun () ->
        let classes = [ ([ an 1 ], [ pos 1 0 ]); ([ an 2 ], [ pos 1 1 ]) ] in
        check Alcotest.int "one" 1
          (List.length (Segments.build ~max_segments:max_int ~opaque:true classes)));
    tc "merged segment unions positions" (fun () ->
        let classes = [ ([ an 1 ], [ pos 1 0 ]); ([ an 2 ], [ pos 2 0 ]) ] in
        match Segments.build ~max_segments:1 ~opaque:false classes with
        | [ s ] -> check Alcotest.int "positions" 2 (List.length s.Segments.seg_positions)
        | _ -> Alcotest.fail "expected one segment");
  ]

(* ---- codegen ----------------------------------------------------------- *)

let codegen_tests =
  [
    tc "cell loop: counted kind, one segment, tight placement" (fun () ->
        match compile_main_loop (cell_loop ()) with
        | None -> Alcotest.fail "should compile"
        | Some pl ->
            (match pl.Parallel_loop.pl_kind with
            | Parallel_loop.Counted c ->
                Alcotest.(check bool) "cmp lt" true (c.Parallel_loop.ccmp = Ir.Lt)
            | Parallel_loop.Conditional -> Alcotest.fail "expected counted");
            check Alcotest.int "segments" 1
              (List.length pl.Parallel_loop.pl_segments);
            match (List.hd pl.Parallel_loop.pl_segments).Parallel_loop.si_placement with
            | Parallel_loop.Tight { bracket = [ _ ]; empty = [] } -> ()
            | _ -> Alcotest.fail "expected single tight bracket");
    tc "body function is well-formed and registered" (fun () ->
        let (p, _) as inp = cell_loop () in
        match compile_main_loop inp with
        | None -> Alcotest.fail "should compile"
        | Some pl ->
            let bf = Ir.find_func p pl.Parallel_loop.pl_body_fn in
            Verify.check_func bf;
            Alcotest.(check bool) "has wait" true
              (Ir.fold_instrs bf false (fun acc _ ins ->
                   acc || match ins with Ir.Wait _ -> true | _ -> false));
            Alcotest.(check bool) "has signal" true
              (Ir.fold_instrs bf false (fun acc _ ins ->
                   acc || match ins with Ir.Signal _ -> true | _ -> false)));
    tc "reduction privatized into partial cells" (fun () ->
        let inp =
          mk_prog (fun b _layout ->
              let acc = Builder.mov b (Ir.Imm 0) in
              let _ =
                Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 9)
                  (fun i ->
                    let hv = Builder.libcall b Ir.Lc_hash [ Ir.Reg i ] in
                    let a = Builder.add b (Ir.Reg acc) (Ir.Reg hv) in
                    Builder.mov_to b acc (Ir.Reg a))
              in
              Ir.Reg acc)
        in
        match compile_main_loop inp with
        | None -> Alcotest.fail "should compile"
        | Some pl ->
            check Alcotest.int "one reduction" 1
              (List.length pl.Parallel_loop.pl_reductions);
            check Alcotest.int "no segments" 0
              (List.length pl.Parallel_loop.pl_segments);
            let rd = List.hd pl.Parallel_loop.pl_reductions in
            Alcotest.(check bool) "live out" true rd.Parallel_loop.rd_live_out);
    tc "unpredictable register demoted to a shared cell" (fun () ->
        let inp =
          mk_prog (fun b _layout ->
              let u = Builder.mov b (Ir.Imm 3) in
              let _ =
                Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 9)
                  (fun _ ->
                    let h = Builder.libcall b Ir.Lc_hash [ Ir.Reg u ] in
                    Builder.mov_to b u (Ir.Reg h))
              in
              Ir.Reg u)
        in
        match compile_main_loop inp with
        | None -> Alcotest.fail "should compile"
        | Some pl ->
            check Alcotest.int "one shared reg" 1
              (List.length pl.Parallel_loop.pl_shared_regs);
            Alcotest.(check bool) "scratch covers it" true
              (pl.Parallel_loop.pl_scratch <> []));
    tc "diamond placement with signal-only empty arm (v3)" (fun () ->
        let inp =
          mk_prog (fun b layout ->
              let cell = Memory.Layout.alloc layout "cell" 8 in
              let an_c = an ~path:"cell" cell.Memory.Layout.site in
              let _ =
                Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 16)
                  (fun i ->
                    let cond = Builder.band b (Ir.Reg i) (Ir.Imm 3) in
                    let is0 = Builder.eq b (Ir.Reg cond) (Ir.Imm 0) in
                    Builder.if_then b (Ir.Reg is0) (fun () ->
                        let v =
                          Builder.load b ~an:an_c
                            (Ir.Imm cell.Memory.Layout.base)
                        in
                        let v1 = Builder.add b (Ir.Reg v) (Ir.Imm 1) in
                        Builder.store b ~an:an_c
                          (Ir.Imm cell.Memory.Layout.base) (Ir.Reg v1)))
              in
              Ir.Imm 0)
        in
        let p, _ = inp in
        match compile_main_loop inp with
        | None -> Alcotest.fail "should compile"
        | Some pl -> (
            match
              (List.hd pl.Parallel_loop.pl_segments).Parallel_loop.si_placement
            with
            | Parallel_loop.Tight { bracket = [ _ ]; empty = [ arm ] } ->
                (* under v3 the empty arm signals without waiting *)
                let bf = Ir.find_func p pl.Parallel_loop.pl_body_fn in
                let waits_in_empty = ref 0 and signals_in_empty = ref 0 in
                ignore arm;
                Ir.iter_instrs bf (fun _ ins ->
                    match ins with
                    | Ir.Wait _ -> incr waits_in_empty
                    | Ir.Signal _ -> incr signals_in_empty
                    | _ -> ());
                (* one wait (access arm) and two signals (both arms) *)
                check Alcotest.int "waits" 1 !waits_in_empty;
                check Alcotest.int "signals" 2 !signals_in_empty
            | _ -> Alcotest.fail "expected diamond placement"));
    tc "v2 keeps the wait on the empty arm" (fun () ->
        let inp =
          mk_prog (fun b layout ->
              let cell = Memory.Layout.alloc layout "cell" 8 in
              let an_c = an ~path:"cell" cell.Memory.Layout.site in
              let _ =
                Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 16)
                  (fun i ->
                    let cond = Builder.band b (Ir.Reg i) (Ir.Imm 3) in
                    let is0 = Builder.eq b (Ir.Reg cond) (Ir.Imm 0) in
                    Builder.if_then b (Ir.Reg is0) (fun () ->
                        let v =
                          Builder.load b ~an:an_c
                            (Ir.Imm cell.Memory.Layout.base)
                        in
                        let v1 = Builder.add b (Ir.Reg v) (Ir.Imm 1) in
                        Builder.store b ~an:an_c
                          (Ir.Imm cell.Memory.Layout.base) (Ir.Reg v1)))
              in
              Ir.Imm 0)
        in
        let p, _ = inp in
        match compile_main_loop ~config:(Hcc_config.v2 ()) inp with
        | None -> Alcotest.fail "should compile"
        | Some pl ->
            let bf = Ir.find_func p pl.Parallel_loop.pl_body_fn in
            let waits = ref 0 in
            Ir.iter_instrs bf (fun _ ins ->
                match ins with Ir.Wait _ -> incr waits | _ -> ());
            check Alcotest.int "two waits" 2 !waits);
    tc "v1 merges all classes into one segment" (fun () ->
        let inp =
          mk_prog (fun b layout ->
              let c1 = Memory.Layout.alloc layout "c1" 8 in
              let c2 = Memory.Layout.alloc layout "c2" 8 in
              let a1 = an ~path:"c1" c1.Memory.Layout.site in
              let a2 = an ~path:"c2" c2.Memory.Layout.site in
              let _ =
                Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 8)
                  (fun i ->
                    let v = Builder.load b ~an:a1 (Ir.Imm c1.Memory.Layout.base) in
                    let v1 = Builder.add b (Ir.Reg v) (Ir.Reg i) in
                    Builder.store b ~an:a1 (Ir.Imm c1.Memory.Layout.base) (Ir.Reg v1);
                    let w = Builder.load b ~an:a2 (Ir.Imm c2.Memory.Layout.base) in
                    let w1 = Builder.bxor b (Ir.Reg w) (Ir.Reg i) in
                    Builder.store b ~an:a2 (Ir.Imm c2.Memory.Layout.base) (Ir.Reg w1))
              in
              Ir.Imm 0)
        in
        (match compile_main_loop ~config:(Hcc_config.v1 ()) inp with
        | Some pl ->
            check Alcotest.int "v1: one segment" 1
              (List.length pl.Parallel_loop.pl_segments)
        | None -> Alcotest.fail "v1 should compile");
        let inp2 =
          mk_prog (fun b layout ->
              let c1 = Memory.Layout.alloc layout "c1" 8 in
              let c2 = Memory.Layout.alloc layout "c2" 8 in
              let a1 = an ~path:"c1" c1.Memory.Layout.site in
              let a2 = an ~path:"c2" c2.Memory.Layout.site in
              let _ =
                Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 8)
                  (fun i ->
                    let v = Builder.load b ~an:a1 (Ir.Imm c1.Memory.Layout.base) in
                    let v1 = Builder.add b (Ir.Reg v) (Ir.Reg i) in
                    Builder.store b ~an:a1 (Ir.Imm c1.Memory.Layout.base) (Ir.Reg v1);
                    let w = Builder.load b ~an:a2 (Ir.Imm c2.Memory.Layout.base) in
                    let w1 = Builder.bxor b (Ir.Reg w) (Ir.Reg i) in
                    Builder.store b ~an:a2 (Ir.Imm c2.Memory.Layout.base) (Ir.Reg w1))
              in
              Ir.Imm 0)
        in
        match compile_main_loop inp2 with
        | Some pl ->
            check Alcotest.int "v3: two segments" 2
              (List.length pl.Parallel_loop.pl_segments)
        | None -> Alcotest.fail "v3 should compile");
    tc "segment access in the header bails out" (fun () ->
        (* a while-style loop whose condition loads shared memory *)
        let inp =
          mk_prog (fun b layout ->
              let cell = Memory.Layout.alloc layout "cell" 8 in
              let an_c = an ~path:"cell" cell.Memory.Layout.site in
              Builder.store b ~an:an_c (Ir.Imm cell.Memory.Layout.base)
                (Ir.Imm 10);
              let _ =
                Builder.while_loop b
                  (fun () ->
                    let v =
                      Builder.load b ~an:an_c (Ir.Imm cell.Memory.Layout.base)
                    in
                    Builder.gt b (Ir.Reg v) (Ir.Imm 0))
                  (fun () ->
                    let v =
                      Builder.load b ~an:an_c (Ir.Imm cell.Memory.Layout.base)
                    in
                    let v1 = Builder.sub b (Ir.Reg v) (Ir.Imm 1) in
                    Builder.store b ~an:an_c (Ir.Imm cell.Memory.Layout.base)
                      (Ir.Reg v1))
              in
              Ir.Imm 0)
        in
        Alcotest.(check bool) "not parallelized" true
          (compile_main_loop inp = None));
    tc "added instruction accounting is positive" (fun () ->
        match compile_main_loop (cell_loop ()) with
        | Some pl ->
            Alcotest.(check bool) "added > 0" true
              (pl.Parallel_loop.pl_added_static_instrs > 0)
        | None -> Alcotest.fail "should compile");
  ]

(* ---- perf model & selection ---------------------------------------------- *)

let model_tests =
  [
    tc "decoupling beats conventional for segment-bearing loops" (fun () ->
        let lf =
          {
            Perf_model.lf_iter_instrs = 30.0;
            lf_iterations = 1000.0;
            lf_invocations = 10.0;
            lf_segments = 1;
            lf_segment_instrs = 4.0;
            lf_body_static = 30;
            lf_loop_wide = false;
          }
        in
        let conv =
          Perf_model.estimate ~n_cores:16 ~sync_latency:30 ~decoupled:false lf
        in
        let dec =
          Perf_model.estimate ~n_cores:16 ~sync_latency:10 ~decoupled:true lf
        in
        Alcotest.(check bool) "decoupled faster" true
          (dec.Perf_model.e_speedup > conv.Perf_model.e_speedup));
    tc "loop-wide segments kill the estimate" (fun () ->
        let lf =
          {
            Perf_model.lf_iter_instrs = 30.0;
            lf_iterations = 1000.0;
            lf_invocations = 10.0;
            lf_segments = 1;
            lf_segment_instrs = 4.0;
            lf_body_static = 30;
            lf_loop_wide = true;
          }
        in
        let e =
          Perf_model.estimate ~n_cores:16 ~sync_latency:10 ~decoupled:true lf
        in
        Alcotest.(check bool) "near 1x" true (e.Perf_model.e_speedup < 1.2));
    tc "DOALL estimate approaches the core count" (fun () ->
        let lf =
          {
            Perf_model.lf_iter_instrs = 200.0;
            lf_iterations = 10000.0;
            lf_invocations = 1.0;
            lf_segments = 0;
            lf_segment_instrs = 0.0;
            lf_body_static = 200;
            lf_loop_wide = false;
          }
        in
        let e =
          Perf_model.estimate ~n_cores:16 ~sync_latency:10 ~decoupled:true lf
        in
        Alcotest.(check bool) "near 16x" true (e.Perf_model.e_speedup > 12.0));
  ]

let () =
  Alcotest.run "hcc"
    [
      ("transform", transform_tests);
      ("segments", segment_tests);
      ("codegen", codegen_tests);
      ("perf-model", model_tests);
    ]
