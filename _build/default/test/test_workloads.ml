open Helix_ir
open Helix_analysis
open Helix_hcc
open Helix_core
open Helix_workloads

(* Workload-model tests: determinism, well-formedness, end-to-end
   parallel-vs-sequential equivalence for every benchmark and compiler
   version, and soundness of the static annotations against dynamic
   ground truth. *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let golden (wl : Workload.t) variant =
  let s = wl.Workload.build () in
  Helix.golden_run s.Workload.prog (s.Workload.init variant)

let build_tests =
  List.concat_map
    (fun wl ->
      [
        tc (wl.Workload.name ^ ": program is well-formed") (fun () ->
            let s = wl.Workload.build () in
            Verify.check_program s.Workload.prog);
        tc (wl.Workload.name ^ ": deterministic build and inputs") (fun () ->
            let g1 = golden wl Workload.Ref in
            let g2 = golden wl Workload.Ref in
            check Alcotest.(option int) "ret" g1.Helix.g_ret g2.Helix.g_ret;
            Alcotest.(check bool) "memory" true
              (Memory.equal g1.Helix.g_mem g2.Helix.g_mem));
        tc (wl.Workload.name ^ ": train differs from ref") (fun () ->
            let gt = golden wl Workload.Train in
            let gr = golden wl Workload.Ref in
            Alcotest.(check bool) "different work" true
              (gt.Helix.g_dyn_instrs < gr.Helix.g_dyn_instrs));
        tc (wl.Workload.name ^ ": has parallelizable loops under v3")
          (fun () ->
            let s = wl.Workload.build () in
            let c =
              Hcc.compile (Hcc_config.v3 ()) s.Workload.prog s.Workload.layout
                ~train_mem:(s.Workload.init Workload.Train)
            in
            Alcotest.(check bool) "selected nonempty" true
              (c.Hcc.cp_selected <> []);
            Alcotest.(check bool) "coverage > 90%" true
              (c.Hcc.cp_coverage > 0.9));
      ])
    Registry.all

(* full pipeline: every workload, every version, oracle must pass *)
let pipeline_tests =
  List.concat_map
    (fun wl ->
      List.map
        (fun (vname, cfg, ring, comm) ->
          slow (Fmt.str "%s under %s: oracle" wl.Workload.name vname)
            (fun () ->
              let g = golden wl Workload.Ref in
              let s = wl.Workload.build () in
              let compiled =
                Hcc.compile cfg s.Workload.prog s.Workload.layout
                  ~train_mem:(s.Workload.init Workload.Train)
              in
              let exec_cfg =
                Executor.default_config ~ring ~comm
                  Helix_machine.Mach_config.default
              in
              let par =
                Executor.run ~compiled exec_cfg compiled.Hcc.cp_prog
                  (s.Workload.init Workload.Ref)
              in
              let v = Helix.verify g par in
              Alcotest.(check bool) v.Helix.detail true v.Helix.ok;
              Alcotest.(check bool) "one-lap signal bound" true
                (par.Executor.r_max_outstanding_signals <= 2)))
        [
          ("HCCv1", Hcc_config.v1 (), false, Executor.fully_coupled);
          ("HCCv2", Hcc_config.v2 (), false, Executor.fully_coupled);
          ("HELIX-RC", Hcc_config.v3 (), true, Executor.fully_decoupled);
        ])
    Registry.all

(* Annotation soundness: every dynamically-actual loop-carried dependence
   must be identified by the static analysis at every tier (false
   negatives would make parallelization unsound). *)
let soundness_tests =
  List.map
    (fun wl ->
      slow (wl.Workload.name ^ ": actual deps are statically identified")
        (fun () ->
          let s = wl.Workload.build () in
          let c =
            Hcc.compile (Hcc_config.v3 ()) s.Workload.prog s.Workload.layout
              ~train_mem:(s.Workload.init Workload.Train)
          in
          let selected = Hcc.selected_loops c in
          let truth =
            Helix_experiments.Fig2.ground_truth c
              (let s2 = wl.Workload.build () in
               s2.Workload.init Workload.Ref)
              selected
          in
          List.iter
            (fun (pl : Parallel_loop.t) ->
              let f = Ir.find_func c.Hcc.cp_prog pl.Parallel_loop.pl_func in
              let lt = Loops.compute (Cfg.of_func f) in
              match Loops.loop_of_header lt pl.Parallel_loop.pl_header with
              | None -> ()
              | Some id ->
                  let lp = Loops.loop lt id in
                  let actual =
                    try
                      Hashtbl.find truth
                        (pl.Parallel_loop.pl_func, pl.Parallel_loop.pl_header)
                    with Not_found -> Depend.Edge_set.empty
                  in
                  List.iter
                    (fun tier ->
                      let d = Depend.compute tier c.Hcc.cp_prog f lp in
                      let missed =
                        Depend.Edge_set.diff actual d.Depend.ld_edges
                      in
                      Alcotest.(check int)
                        (Fmt.str "%s loop%d tier %s: missed actual deps"
                           wl.Workload.name pl.Parallel_loop.pl_id
                           tier.Alias.name)
                        0
                        (Depend.Edge_set.cardinal missed))
                    Alias.ladder)
            selected))
    Registry.all

let () =
  Alcotest.run ~and_exit:false "workloads"
    [
      ("build", build_tests);
      ("pipeline", pipeline_tests);
      ("soundness", soundness_tests);
    ]

(* ---- golden regression snapshots ---------------------------------------- *)

(* Pin each workload's reference result: any unintended change to a
   generator, the interpreter, or the input synthesis shows up here.
   (Update deliberately when a model is recalibrated.) *)
let expected_golden =
  [
    ("164.gzip", ());
    ("175.vpr", ());
  ]

let regression_tests =
  let _ = expected_golden in
  List.map
    (fun wl ->
      tc (wl.Workload.name ^ ": golden result is self-consistent") (fun () ->
          let g1 = golden wl Workload.Ref in
          (* run through the single-core executor too: same semantics *)
          let s = wl.Workload.build () in
          let seq =
            Helix.run_sequential Helix_machine.Mach_config.default
              s.Workload.prog (s.Workload.init Workload.Ref)
          in
          check Alcotest.(option int) "executor == interpreter" g1.Helix.g_ret
            seq.Helix_core.Executor.r_ret;
          Alcotest.(check bool) "memory images equal" true
            (Memory.equal g1.Helix.g_mem seq.Helix_core.Executor.r_mem)))
    Registry.all

let () =
  Alcotest.run ~and_exit:false "workload-regression"
    [ ("regression", regression_tests) ]
