open Helix_ir

(* Unit and property tests for the IR substrate: types, builder,
   verifier, memory, CFG and the reference interpreter. *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* Build a one-function program computing [body] and returning its
   result operand. *)
let prog_of build =
  let b = Builder.create "main" in
  let ret = build b in
  Builder.ret b (Some ret);
  let p = Ir.create_program () in
  Ir.add_func p (Builder.func b);
  p

let run_ret ?mem p =
  let mem = match mem with Some m -> m | None -> Memory.create () in
  match (Interp.run p mem).Interp.ret with
  | Some v -> v
  | None -> Alcotest.fail "no return value"

let eval_binop op a bv =
  let p =
    prog_of (fun b -> Ir.Reg (Builder.binop b op (Ir.Imm a) (Ir.Imm bv)))
  in
  run_ret p

(* ---- interpreter arithmetic ---------------------------------------- *)

let binop_cases =
  [
    (Ir.Add, 7, 5, 12); (Ir.Sub, 7, 5, 2); (Ir.Mul, 7, 5, 35);
    (Ir.Div, 17, 5, 3); (Ir.Rem, 17, 5, 2); (Ir.Div, 17, 0, 0);
    (Ir.Rem, 17, 0, 0); (Ir.And, 12, 10, 8); (Ir.Or, 12, 10, 14);
    (Ir.Xor, 12, 10, 6); (Ir.Shl, 3, 4, 48); (Ir.Shr, 48, 4, 3);
    (Ir.Shr, -8, 1, -4); (Ir.Eq, 4, 4, 1); (Ir.Eq, 4, 5, 0);
    (Ir.Ne, 4, 5, 1); (Ir.Lt, 3, 4, 1); (Ir.Le, 4, 4, 1);
    (Ir.Gt, 5, 4, 1); (Ir.Ge, 3, 4, 0); (Ir.Min, 3, 9, 3);
    (Ir.Max, 3, 9, 9);
  ]

let arithmetic_tests =
  List.map
    (fun (op, a, b, expect) ->
      tc
        (Fmt.str "binop %a %d %d = %d" Pretty.pp_binop op a b expect)
        (fun () -> check Alcotest.int "result" expect (eval_binop op a b)))
    binop_cases

let unop_tests =
  [
    tc "neg" (fun () ->
        check Alcotest.int "neg" (-5)
          (run_ret (prog_of (fun b -> Ir.Reg (Builder.neg b (Ir.Imm 5))))));
    tc "not" (fun () ->
        check Alcotest.int "not" (lnot 5)
          (run_ret (prog_of (fun b -> Ir.Reg (Builder.bnot b (Ir.Imm 5))))));
  ]

(* ---- library calls -------------------------------------------------- *)

let lib_tests =
  [
    tc "abs" (fun () ->
        check Alcotest.int "abs" 7
          (run_ret
             (prog_of (fun b ->
                  Ir.Reg (Builder.libcall b Ir.Lc_abs [ Ir.Imm (-7) ])))));
    tc "min/max" (fun () ->
        let p =
          prog_of (fun b ->
              let m = Builder.libcall b Ir.Lc_min [ Ir.Imm 3; Ir.Imm 8 ] in
              let x = Builder.libcall b Ir.Lc_max [ Ir.Reg m; Ir.Imm 5 ] in
              Ir.Reg x)
        in
        check Alcotest.int "max(min(3,8),5)" 5 (run_ret p));
    tc "log2 values" (fun () ->
        List.iter
          (fun (n, e) -> check Alcotest.int (Fmt.str "log2 %d" n) e (Interp.ilog2 n))
          [ (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (1023, 9); (1024, 10) ]);
    tc "isqrt exact" (fun () ->
        List.iter
          (fun n ->
            let s = Interp.isqrt n in
            Alcotest.(check bool)
              (Fmt.str "isqrt %d" n)
              true
              (s * s <= n && (s + 1) * (s + 1) > n))
          [ 0; 1; 2; 3; 4; 15; 16; 17; 99; 100; 10_000; 123_456 ]);
    tc "hash deterministic and spread" (fun () ->
        check Alcotest.int "same" (Interp.mix_hash 42) (Interp.mix_hash 42);
        Alcotest.(check bool)
          "different inputs differ" true
          (Interp.mix_hash 1 <> Interp.mix_hash 2));
    tc "rand deterministic per run" (fun () ->
        let p =
          prog_of (fun b ->
              let a = Builder.libcall b Ir.Lc_rand [] in
              let c = Builder.libcall b Ir.Lc_rand [] in
              let d = Builder.add b (Ir.Reg a) (Ir.Reg c) in
              Ir.Reg d)
        in
        check Alcotest.int "two runs equal" (run_ret p) (run_ret p));
    tc "strcmp equal and differing" (fun () ->
        let mem = Memory.create () in
        List.iteri (fun i v -> Memory.store mem (100 + i) v) [ 1; 2; 3 ];
        List.iteri (fun i v -> Memory.store mem (200 + i) v) [ 1; 2; 4 ];
        let p =
          prog_of (fun b ->
              Ir.Reg
                (Builder.libcall b Ir.Lc_strcmp
                   [ Ir.Imm 100; Ir.Imm 200; Ir.Imm 2 ]))
        in
        check Alcotest.int "prefix equal" 0 (run_ret ~mem p);
        let mem2 = Memory.create () in
        List.iteri (fun i v -> Memory.store mem2 (100 + i) v) [ 1; 2; 3 ];
        List.iteri (fun i v -> Memory.store mem2 (200 + i) v) [ 1; 2; 4 ];
        let p3 =
          prog_of (fun b ->
              Ir.Reg
                (Builder.libcall b Ir.Lc_strcmp
                   [ Ir.Imm 100; Ir.Imm 200; Ir.Imm 3 ]))
        in
        Alcotest.(check bool) "differs" true (run_ret ~mem:mem2 p3 < 0));
    tc "memchr found and missing" (fun () ->
        let mem = Memory.create () in
        List.iteri (fun i v -> Memory.store mem (300 + i) v) [ 9; 8; 7; 6 ];
        let find needle =
          let p =
            prog_of (fun b ->
                Ir.Reg
                  (Builder.libcall b Ir.Lc_memchr
                     [ Ir.Imm 300; Ir.Imm needle; Ir.Imm 4 ]))
          in
          run_ret ~mem:(Memory.copy mem) p
        in
        check Alcotest.int "found at 2" 2 (find 7);
        check Alcotest.int "missing" (-1) (find 42));
  ]

(* ---- builder control flow ------------------------------------------ *)

let control_tests =
  [
    tc "counted loop sums" (fun () ->
        let p =
          prog_of (fun b ->
              let sum = Builder.mov b (Ir.Imm 0) in
              let _ =
                Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 10)
                  (fun i ->
                    let s = Builder.add b (Ir.Reg sum) (Ir.Reg i) in
                    Builder.mov_to b sum (Ir.Reg s))
              in
              Ir.Reg sum)
        in
        check Alcotest.int "sum 0..9" 45 (run_ret p));
    tc "counted loop zero trips" (fun () ->
        let p =
          prog_of (fun b ->
              let sum = Builder.mov b (Ir.Imm 7) in
              let _ =
                Builder.counted_loop b ~from:(Ir.Imm 5) ~below:(Ir.Imm 5)
                  (fun _ -> Builder.mov_to b sum (Ir.Imm 0))
              in
              Ir.Reg sum)
        in
        check Alcotest.int "untouched" 7 (run_ret p));
    tc "nested loops" (fun () ->
        let p =
          prog_of (fun b ->
              let sum = Builder.mov b (Ir.Imm 0) in
              let _ =
                Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 4)
                  (fun _ ->
                    let _ =
                      Builder.counted_loop b ~from:(Ir.Imm 0)
                        ~below:(Ir.Imm 3) (fun _ ->
                          let s = Builder.add b (Ir.Reg sum) (Ir.Imm 1) in
                          Builder.mov_to b sum (Ir.Reg s))
                    in
                    ())
              in
              Ir.Reg sum)
        in
        check Alcotest.int "4*3" 12 (run_ret p));
    tc "while loop" (fun () ->
        let p =
          prog_of (fun b ->
              let x = Builder.mov b (Ir.Imm 100) in
              let _ =
                Builder.while_loop b
                  (fun () -> Builder.gt b (Ir.Reg x) (Ir.Imm 3))
                  (fun () ->
                    let h = Builder.shr b (Ir.Reg x) (Ir.Imm 1) in
                    Builder.mov_to b x (Ir.Reg h))
              in
              Ir.Reg x)
        in
        check Alcotest.int "halving" 3 (run_ret p));
    tc "if_ both arms" (fun () ->
        let branchy c =
          prog_of (fun b ->
              let r = Builder.mov b (Ir.Imm 0) in
              Builder.if_ b (Ir.Imm c)
                (fun () -> Builder.mov_to b r (Ir.Imm 1))
                (fun () -> Builder.mov_to b r (Ir.Imm 2));
              Ir.Reg r)
        in
        check Alcotest.int "then" 1 (run_ret (branchy 1));
        check Alcotest.int "else" 2 (run_ret (branchy 0)));
    tc "calls with args and return" (fun () ->
        let p = Ir.create_program () in
        let cb = Builder.create ~params:[ 0; 1 ] "addmul" in
        let s = Builder.add cb (Ir.Reg 0) (Ir.Reg 1) in
        let m = Builder.mul cb (Ir.Reg s) (Ir.Imm 2) in
        Builder.ret cb (Some (Ir.Reg m));
        Ir.add_func p (Builder.func cb);
        let mb = Builder.create "main" in
        let dst = Builder.fresh mb in
        Builder.call mb ~dst "addmul" [ Ir.Imm 3; Ir.Imm 4 ];
        Builder.ret mb (Some (Ir.Reg dst));
        Ir.add_func p (Builder.func mb);
        Verify.check_program p;
        check Alcotest.int "(3+4)*2" 14 (run_ret p));
    tc "fuel exhaustion raises" (fun () ->
        let p =
          prog_of (fun b ->
              let x = Builder.mov b (Ir.Imm 1) in
              let _ =
                Builder.while_loop b
                  (fun () -> Builder.gt b (Ir.Reg x) (Ir.Imm 0))
                  (fun () -> ())
              in
              Ir.Reg x)
        in
        Alcotest.check_raises "out of fuel" Interp.Out_of_fuel (fun () ->
            ignore (Interp.run ~fuel:1000 p (Memory.create ()))));
  ]

(* ---- memory and layout ---------------------------------------------- *)

let memory_tests =
  [
    tc "default zero" (fun () ->
        check Alcotest.int "uninit" 0 (Memory.load (Memory.create ()) 1234));
    tc "store load roundtrip" (fun () ->
        let m = Memory.create () in
        Memory.store m 10 42;
        check Alcotest.int "load" 42 (Memory.load m 10));
    tc "store zero erases binding" (fun () ->
        let m = Memory.create () in
        Memory.store m 10 42;
        Memory.store m 10 0;
        Alcotest.(check bool) "equal to empty" true
          (Memory.equal m (Memory.create ())));
    tc "hash insensitive to order" (fun () ->
        let m1 = Memory.create () and m2 = Memory.create () in
        Memory.store m1 1 10; Memory.store m1 2 20;
        Memory.store m2 2 20; Memory.store m2 1 10;
        check Alcotest.int "hash" (Memory.hash m1) (Memory.hash m2));
    tc "layout regions never overlap" (fun () ->
        let l = Memory.Layout.create () in
        let rs =
          List.map (fun i -> Memory.Layout.alloc l (Fmt.str "r%d" i) (i * 13 + 1))
            [ 0; 1; 2; 3; 4; 5; 6; 7 ]
        in
        List.iteri
          (fun i a ->
            List.iteri
              (fun j b ->
                if i < j then
                  Alcotest.(check bool)
                    "disjoint" true
                    (a.Memory.Layout.base + a.Memory.Layout.size
                     <= b.Memory.Layout.base
                    || b.Memory.Layout.base + b.Memory.Layout.size
                       <= a.Memory.Layout.base))
              rs)
          rs);
    tc "site_of_addr" (fun () ->
        let l = Memory.Layout.create () in
        let a = Memory.Layout.alloc l "a" 10 in
        let b = Memory.Layout.alloc l "b" 10 in
        check Alcotest.int "a" a.Memory.Layout.site
          (Memory.Layout.site_of_addr l (a.Memory.Layout.base + 3));
        check Alcotest.int "b" b.Memory.Layout.site
          (Memory.Layout.site_of_addr l b.Memory.Layout.base);
        check Alcotest.int "none" (-1) (Memory.Layout.site_of_addr l 1));
  ]

(* ---- verifier -------------------------------------------------------- *)

let verify_tests =
  [
    tc "rejects branch to missing block" (fun () ->
        let b = Builder.create "main" in
        Builder.jmp b 99;
        Alcotest.(check bool) "ill-formed" false
          (Verify.is_well_formed_func (Builder.func b)));
    tc "rejects undefined register use" (fun () ->
        let b = Builder.create "main" in
        let f = Builder.func b in
        let blk = Ir.block_of_func f 0 in
        blk.Ir.b_instrs <- [ Ir.Mov (0, Ir.Reg 55) ];
        f.Ir.f_next_reg <- 56;
        Alcotest.(check bool) "ill-formed" false (Verify.is_well_formed_func f));
    tc "rejects unknown callee" (fun () ->
        let p =
          prog_of (fun b ->
              Builder.call b "nowhere" [];
              Ir.Imm 0)
        in
        Alcotest.(check bool) "ill-formed" false (Verify.is_well_formed p));
    tc "accepts builder output" (fun () ->
        let p =
          prog_of (fun b ->
              let s = Builder.mov b (Ir.Imm 0) in
              let _ =
                Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 3)
                  (fun i -> Builder.mov_to b s (Ir.Reg i))
              in
              Ir.Reg s)
        in
        Alcotest.(check bool) "well-formed" true (Verify.is_well_formed p));
  ]

(* ---- CFG -------------------------------------------------------------- *)

let cfg_tests =
  [
    tc "succ/pred duality" (fun () ->
        let p =
          prog_of (fun b ->
              let r = Builder.mov b (Ir.Imm 0) in
              let _ =
                Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 3)
                  (fun _ -> ())
              in
              Ir.Reg r)
        in
        let f = Ir.main_func p in
        let cfg = Cfg.of_func f in
        List.iter
          (fun l ->
            List.iter
              (fun s ->
                Alcotest.(check bool)
                  (Fmt.str "L%d in preds of L%d" l s)
                  true
                  (List.mem l (Cfg.predecessors cfg s)))
              (Cfg.successors cfg l))
          f.Ir.f_order);
    tc "rpo starts at entry, covers reachable" (fun () ->
        let p =
          prog_of (fun b ->
              let r = Builder.mov b (Ir.Imm 1) in
              Builder.if_then b (Ir.Reg r) (fun () -> ());
              Ir.Reg r)
        in
        let f = Ir.main_func p in
        let cfg = Cfg.of_func f in
        let rpo = Cfg.reverse_postorder cfg in
        check Alcotest.int "entry first" f.Ir.f_entry rpo.(0);
        Array.iter
          (fun l ->
            Alcotest.(check bool) "reachable" true (Cfg.is_reachable cfg l))
          rpo);
    tc "unreachable block excluded" (fun () ->
        let b = Builder.create "main" in
        Builder.ret b (Some (Ir.Imm 0));
        let dead = Builder.fresh_label b in
        Builder.switch_to b dead;
        Builder.ret b None;
        let f = Builder.func b in
        let cfg = Cfg.of_func f in
        Alcotest.(check bool) "dead excluded" false (Cfg.is_reachable cfg dead));
  ]

(* ---- property tests --------------------------------------------------- *)

(* Random arithmetic expression programs: interpreter against an OCaml
   evaluator built alongside. *)
let gen_expr_prog =
  let open QCheck.Gen in
  let ops = [ Ir.Add; Ir.Sub; Ir.Mul; Ir.And; Ir.Or; Ir.Xor; Ir.Min; Ir.Max ] in
  let rec build b depth =
    if depth = 0 then
      map (fun n -> ((fun _ -> Ir.Imm n), n)) (int_range (-100) 100)
    else
      let* (fa, va) = build b (depth - 1) in
      let* (fb, vb) = build b (depth - 1) in
      let* op = oneofl ops in
      return
        ( (fun bld ->
            let x = fa bld and y = fb bld in
            Ir.Reg (Builder.binop bld op x y)),
          Interp.eval_binop op va vb )
  in
  build () 4

let prop_interp_matches_eval =
  QCheck.Test.make ~name:"interpreter matches OCaml evaluation" ~count:200
    (QCheck.make gen_expr_prog)
    (fun (build, expected) ->
      let p = prog_of (fun b -> build b) in
      run_ret p = expected)

let prop_isqrt =
  QCheck.Test.make ~name:"isqrt is exact integer sqrt" ~count:500
    QCheck.(int_range 0 1_000_000)
    (fun n ->
      let s = Interp.isqrt n in
      s * s <= n && (s + 1) * (s + 1) > n)

let prop_memory_copy_equal =
  QCheck.Test.make ~name:"memory copy is equal, further stores diverge"
    ~count:100
    QCheck.(list (pair (int_range 0 1000) (int_range 1 100)))
    (fun bindings ->
      let m = Memory.create () in
      List.iter (fun (a, v) -> Memory.store m a v) bindings;
      let c = Memory.copy m in
      Memory.equal m c
      &&
      (Memory.store c 5000 1;
       not (Memory.equal m c)))

let prop_layout_site_lookup =
  QCheck.Test.make ~name:"layout site lookup agrees with region bounds"
    ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 8) (int_range 1 64))
    (fun sizes ->
      let l = Memory.Layout.create () in
      let regions =
        List.mapi (fun i n -> Memory.Layout.alloc l (Fmt.str "g%d" i) n) sizes
      in
      List.for_all
        (fun r ->
          Memory.Layout.site_of_addr l r.Memory.Layout.base
          = r.Memory.Layout.site)
        regions)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_interp_matches_eval; prop_isqrt; prop_memory_copy_equal;
      prop_layout_site_lookup;
    ]

(* ---- pretty printing ------------------------------------------------- *)

let pretty_tests =
  [
    tc "instructions print stably" (fun () ->
        let cases =
          [
            (Ir.Binop (3, Ir.Add, Ir.Reg 1, Ir.Imm 2), "r3 = add r1, 2");
            (Ir.Mov (4, Ir.Reg 1), "r4 = r1");
            (Ir.Wait 2, "wait 2");
            (Ir.Signal 0, "signal 0");
            (Ir.Libcall (5, Ir.Lc_hash, [ Ir.Imm 9 ]), "r5 = lib hash(9)");
          ]
        in
        List.iter
          (fun (ins, expect) ->
            check Alcotest.string expect expect (Pretty.instr_to_string ins))
          cases);
    tc "annotated address prints its facets" (fun () ->
        let an = Ir.annot ~flow:1 ~path:"a[]" ~ty:"int" ~affine:0 7 in
        let s =
          Pretty.instr_to_string
            (Ir.Load (1, { Ir.base = Ir.Imm 64; offset = Ir.Reg 2; annot = an }))
        in
        List.iter
          (fun needle ->
            Alcotest.(check bool)
              (Fmt.str "contains %s" needle)
              true
              (let re = Str.regexp_string needle in
               try ignore (Str.search_forward re s 0); true
               with Not_found -> false))
          [ "site7"; "a[]"; "int"; "load" ]);
    tc "function header prints params" (fun () ->
        let b = Builder.create ~params:[ 0; 1 ] "f" in
        Builder.ret b (Some (Ir.Reg 0));
        let s = Pretty.func_to_string (Builder.func b) in
        Alcotest.(check bool) "has name" true
          (String.length s > 0
          && (let re = Str.regexp_string "func f(" in
              try ignore (Str.search_forward re s 0); true
              with Not_found -> false)));
  ]

let () =
  Alcotest.run "ir"
    [
      ("arithmetic", arithmetic_tests @ unop_tests);
      ("libcalls", lib_tests);
      ("control-flow", control_tests);
      ("memory", memory_tests);
      ("verify", verify_tests);
      ("cfg", cfg_tests);
      ("pretty", pretty_tests);
      ("properties", props);
    ]
