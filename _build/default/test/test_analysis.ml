open Helix_ir
open Helix_analysis

(* Tests for the analysis layer: dominators, loops, dataflow, def-use,
   alias tiers, induction variables, predictable classification and the
   dependence analysis (static and dynamic). *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* hand-built CFG helper: blocks from an adjacency description *)
let func_of_edges ~entry (edges : (int * Ir.terminator) list) : Ir.func =
  let f = Ir.create_func "g" entry in
  f.Ir.f_next_label <- 1 + List.fold_left (fun a (l, _) -> max a l) 0 edges;
  f.Ir.f_next_reg <- 1;
  List.iter
    (fun (l, term) ->
      Ir.add_block f { Ir.b_label = l; b_instrs = []; b_term = term })
    edges;
  f

(* a diamond with a self-loop on one arm:
   0 -> 1 | 2; 1 -> 3; 2 -> 2 | 3; 3 -> ret *)
let diamond_loop () =
  func_of_edges ~entry:0
    [
      (0, Ir.Br (Ir.Imm 1, 1, 2));
      (1, Ir.Jmp 3);
      (2, Ir.Br (Ir.Imm 0, 2, 3));
      (3, Ir.Ret None);
    ]

(* canonical loop built with the builder; returns (func, sum_reg) *)
let sum_loop ?(from = 0) ?(below = 10) () =
  let b = Builder.create "main" in
  let sum = Builder.mov b (Ir.Imm 0) in
  let _ =
    Builder.counted_loop b ~from:(Ir.Imm from) ~below:(Ir.Imm below) (fun i ->
        let s = Builder.add b (Ir.Reg sum) (Ir.Reg i) in
        Builder.mov_to b sum (Ir.Reg s))
  in
  Builder.ret b (Some (Ir.Reg sum));
  (Builder.func b, sum)

(* ---- dominance -------------------------------------------------------- *)

(* Brute-force dominance: a dominates b iff removing a makes b
   unreachable from the entry. *)
let brute_dominates cfg a b =
  if a = b then true
  else begin
    let visited = Hashtbl.create 17 in
    let rec dfs l =
      if l <> a && not (Hashtbl.mem visited l) then begin
        Hashtbl.replace visited l ();
        List.iter dfs (Cfg.successors cfg l)
      end
    in
    let entry = Cfg.entry cfg in
    if entry = a then true
    else begin
      dfs entry;
      not (Hashtbl.mem visited b)
    end
  end

let dominance_tests =
  [
    tc "diamond: entry dominates all, arms dominate nothing" (fun () ->
        let f = diamond_loop () in
        let cfg = Cfg.of_func f in
        let dom = Dominance.compute cfg in
        List.iter
          (fun l ->
            Alcotest.(check bool) (Fmt.str "0 dom %d" l) true
              (Dominance.dominates dom 0 l))
          [ 0; 1; 2; 3 ];
        Alcotest.(check bool) "1 !dom 3" false (Dominance.dominates dom 1 3);
        Alcotest.(check bool) "2 !dom 3" false (Dominance.dominates dom 2 3));
    tc "dominance agrees with brute force on builder loops" (fun () ->
        let f, _ = sum_loop () in
        let cfg = Cfg.of_func f in
        let dom = Dominance.compute cfg in
        let blocks = Cfg.reachable_blocks cfg in
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                check Alcotest.bool
                  (Fmt.str "dom %d %d" a b)
                  (brute_dominates cfg a b)
                  (Dominance.dominates dom a b))
              blocks)
          blocks);
    tc "dominance agrees with brute force on diamond-loop" (fun () ->
        let f = diamond_loop () in
        let cfg = Cfg.of_func f in
        let dom = Dominance.compute cfg in
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                check Alcotest.bool
                  (Fmt.str "dom %d %d" a b)
                  (brute_dominates cfg a b)
                  (Dominance.dominates dom a b))
              [ 0; 1; 2; 3 ])
          [ 0; 1; 2; 3 ]);
    tc "idom of entry is entry" (fun () ->
        let f = diamond_loop () in
        let dom = Dominance.compute (Cfg.of_func f) in
        check Alcotest.(option int) "idom" (Some 0) (Dominance.idom dom 0));
  ]

(* ---- loops ------------------------------------------------------------ *)

let loops_tests =
  [
    tc "counted loop discovered with correct shape" (fun () ->
        let f, _ = sum_loop () in
        let lt = Loops.compute (Cfg.of_func f) in
        check Alcotest.int "one loop" 1 (Loops.num_loops lt);
        let lp = List.hd (Loops.loops lt) in
        check Alcotest.int "depth" 1 lp.Loops.l_depth;
        check Alcotest.int "one latch" 1 (List.length lp.Loops.l_latches);
        check Alcotest.int "one exit" 1 (List.length lp.Loops.l_exits));
    tc "nested loops have increasing depth" (fun () ->
        let b = Builder.create "main" in
        let _ =
          Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 3) (fun _ ->
              ignore
                (Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 3)
                   (fun _ -> ())))
        in
        Builder.ret b None;
        let lt = Loops.compute (Cfg.of_func (Builder.func b)) in
        check Alcotest.int "two loops" 2 (Loops.num_loops lt);
        let depths =
          List.sort compare
            (List.map (fun l -> l.Loops.l_depth) (Loops.loops lt))
        in
        check Alcotest.(list int) "depths" [ 1; 2 ] depths;
        check Alcotest.int "one innermost" 1
          (List.length (Loops.innermost_loops lt)));
    tc "self-loop detected" (fun () ->
        let f = diamond_loop () in
        let lt = Loops.compute (Cfg.of_func f) in
        check Alcotest.int "one loop" 1 (Loops.num_loops lt);
        let lp = List.hd (Loops.loops lt) in
        check Alcotest.int "header" 2 lp.Loops.l_header);
    tc "loop body closed under in-loop successors" (fun () ->
        let f, _ = sum_loop () in
        let cfg = Cfg.of_func f in
        let lt = Loops.compute cfg in
        let lp = List.hd (Loops.loops lt) in
        Loops.Label_set.iter
          (fun l ->
            List.iter
              (fun s ->
                let inside = Loops.contains lp s in
                let is_exit =
                  List.exists (fun (x, y) -> x = l && y = s) lp.Loops.l_exits
                in
                Alcotest.(check bool) "succ in loop or exit" true
                  (inside || is_exit))
              (Cfg.successors cfg l))
          lp.Loops.l_body);
    tc "innermost_containing picks deepest" (fun () ->
        let b = Builder.create "main" in
        let inner_header = ref (-1) in
        let _ =
          Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 3) (fun _ ->
              let h, _ =
                Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 3)
                  (fun _ -> ())
              in
              inner_header := h)
        in
        Builder.ret b None;
        let lt = Loops.compute (Cfg.of_func (Builder.func b)) in
        match Loops.innermost_containing lt !inner_header with
        | Some lp -> check Alcotest.int "depth 2" 2 lp.Loops.l_depth
        | None -> Alcotest.fail "inner loop not found");
  ]

(* ---- liveness / reaching / defuse -------------------------------------- *)

let dataflow_tests =
  [
    tc "liveness: loop accumulator live at header" (fun () ->
        let f, sum = sum_loop () in
        let cfg = Cfg.of_func f in
        let live = Liveness.compute cfg in
        let lt = Loops.compute cfg in
        let lp = List.hd (Loops.loops lt) in
        Alcotest.(check bool) "sum live" true
          (Dataflow.Int_set.mem sum (live.Liveness.live_in lp.Loops.l_header)));
    tc "liveness: dead temp not live at entry" (fun () ->
        let b = Builder.create "main" in
        let t = Builder.mov b (Ir.Imm 1) in
        let dead = Builder.add b (Ir.Reg t) (Ir.Imm 2) in
        Builder.ret b (Some (Ir.Reg t));
        let f = Builder.func b in
        let live = Liveness.compute (Cfg.of_func f) in
        Alcotest.(check bool) "dead temp" false
          (Dataflow.Int_set.mem dead (live.Liveness.live_in f.Ir.f_entry)));
    tc "reaching: carried def reaches header" (fun () ->
        let f, sum = sum_loop () in
        let cfg = Cfg.of_func f in
        let reach = Reaching.compute cfg in
        let lt = Loops.compute cfg in
        let lp = List.hd (Loops.loops lt) in
        Alcotest.(check bool) "sum's in-loop def carried" true
          (Reaching.carried_defs reach lp sum <> []));
    tc "defuse counts defs and uses" (fun () ->
        let f, sum = sum_loop () in
        let du = Defuse.compute f in
        check Alcotest.int "defs of sum" 2 (Defuse.num_defs du sum);
        Alcotest.(check bool) "sum used" true (Defuse.uses_of du sum <> []));
    tc "unique_def" (fun () ->
        let b = Builder.create "main" in
        let once = Builder.mov b (Ir.Imm 1) in
        let twice = Builder.mov b (Ir.Imm 2) in
        Builder.mov_to b twice (Ir.Imm 3);
        let r = Builder.add b (Ir.Reg once) (Ir.Reg twice) in
        Builder.ret b (Some (Ir.Reg r));
        let du = Defuse.compute (Builder.func b) in
        Alcotest.(check bool) "once unique" true
          (Defuse.unique_def du once <> None);
        Alcotest.(check bool) "twice not unique" true
          (Defuse.unique_def du twice = None));
  ]

(* ---- alias tiers -------------------------------------------------------- *)

let an ?(flow = -1) ?(path = "") ?(ty = "") ?affine site =
  Ir.annot ~flow ~path ~ty ?affine site

let alias_tests =
  [
    tc "different sites never alias" (fun () ->
        Alcotest.(check bool) "no alias" false
          (Alias.may_alias Alias.vllpa (an 1) (an 2)));
    tc "unknown site aliases everything" (fun () ->
        Alcotest.(check bool) "alias" true
          (Alias.may_alias Alias.best (an (-1)) (an ~path:"x" ~ty:"t" 3)));
    tc "flow ids separate only at flow tier" (fun () ->
        let a = an ~flow:1 1 and b = an ~flow:2 1 in
        Alcotest.(check bool) "vllpa aliases" true
          (Alias.may_alias Alias.vllpa a b);
        Alcotest.(check bool) "flow separates" false
          (Alias.may_alias Alias.vllpa_flow a b));
    tc "paths separate only at path tier" (fun () ->
        let a = an ~path:"n.next" 1 and b = an ~path:"n.data" 1 in
        Alcotest.(check bool) "flow aliases" true
          (Alias.may_alias Alias.vllpa_flow a b);
        Alcotest.(check bool) "path separates" false
          (Alias.may_alias Alias.vllpa_path a b));
    tc "types separate only at type tier" (fun () ->
        let a = an ~ty:"byte" 1 and b = an ~ty:"int" 1 in
        Alcotest.(check bool) "path aliases" true
          (Alias.may_alias Alias.vllpa_path a b);
        Alcotest.(check bool) "type separates" false
          (Alias.may_alias Alias.vllpa_type a b));
    tc "affine equal offsets: carried removed at flow tier" (fun () ->
        let a = an ~affine:0 1 in
        Alcotest.(check bool) "same-iteration alias" true
          (Alias.may_alias Alias.vllpa_flow a a);
        Alcotest.(check bool) "vllpa keeps carried" true
          (Alias.may_alias_carried Alias.vllpa a a);
        Alcotest.(check bool) "flow removes carried" false
          (Alias.may_alias_carried Alias.vllpa_flow a a));
    tc "affine distinct offsets stay carried" (fun () ->
        let a = an ~affine:0 1 and b = an ~affine:1 1 in
        Alcotest.(check bool) "carried kept" true
          (Alias.may_alias_carried Alias.best a b));
    tc "pure libcalls transparent at every tier" (fun () ->
        List.iter
          (fun tier ->
            let e =
              Alias.effect_of_instr tier (Ir.Libcall (0, Ir.Lc_hash, []))
            in
            Alcotest.(check bool) "no effect" false e.Alias.e_opaque)
          Alias.ladder);
    tc "memory libcalls opaque until lib tier" (fun () ->
        let e t = Alias.effect_of_instr t (Ir.Libcall (0, Ir.Lc_memchr, [])) in
        Alcotest.(check bool) "opaque at type tier" true
          (e Alias.vllpa_type).Alias.e_opaque;
        Alcotest.(check bool) "transparent at lib tier" false
          (e Alias.vllpa_lib).Alias.e_opaque);
    tc "tier partial order" (fun () ->
        Alcotest.(check bool) "vllpa <= best" true (Alias.leq Alias.vllpa Alias.best);
        Alcotest.(check bool) "best <= vllpa" false
          (Alias.leq Alias.best Alias.vllpa));
  ]

let gen_annot =
  QCheck.Gen.(
    int_range 0 3 >>= fun site ->
    int_range (-1) 2 >>= fun flow ->
    oneofl [ ""; "a"; "b" ] >>= fun path ->
    oneofl [ ""; "t1"; "t2" ] >>= fun ty ->
    oneofl [ None; Some 0; Some 1 ] >>= fun affine ->
    return (Ir.annot ~flow ~path ~ty ?affine site))

let prop_tier_monotone =
  QCheck.Test.make ~name:"more precise tiers only remove aliasing" ~count:500
    (QCheck.make QCheck.Gen.(pair gen_annot gen_annot))
    (fun (a, b) ->
      let imp p q = (not p) || q in
      let rec pairs = function
        | t1 :: (t2 :: _ as rest) ->
            imp (not (Alias.may_alias t1 a b)) (not (Alias.may_alias t2 a b))
            && pairs rest
        | _ -> true
      in
      pairs Alias.ladder)

let prop_carried_subset =
  QCheck.Test.make ~name:"carried aliasing implies same-iteration aliasing"
    ~count:500
    (QCheck.make QCheck.Gen.(pair gen_annot gen_annot))
    (fun (a, b) ->
      List.for_all
        (fun t ->
          (not (Alias.may_alias_carried t a b)) || Alias.may_alias t a b)
        Alias.ladder)

(* ---- induction & predictable ------------------------------------------- *)

(* loop with: basic IV, poly2 q (q += s after s += 2), accumulator sum,
   max m, and an unpredictable register u *)
let rich_loop () =
  let b = Builder.create "main" in
  let sum = Builder.mov b (Ir.Imm 0) in
  let m = Builder.mov b (Ir.Imm min_int) in
  let q = Builder.mov b (Ir.Imm 0) in
  let s = Builder.mov b (Ir.Imm 1) in
  let u = Builder.mov b (Ir.Imm 3) in
  let _ =
    Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 8) (fun i ->
        let s' = Builder.add b (Ir.Reg s) (Ir.Imm 2) in
        Builder.mov_to b s (Ir.Reg s');
        let q' = Builder.add b (Ir.Reg q) (Ir.Reg s) in
        Builder.mov_to b q (Ir.Reg q');
        let hv = Builder.libcall b Ir.Lc_hash [ Ir.Reg i ] in
        let hv7 = Builder.band b (Ir.Reg hv) (Ir.Imm 7) in
        let a = Builder.add b (Ir.Reg sum) (Ir.Reg hv7) in
        Builder.mov_to b sum (Ir.Reg a);
        let mx = Builder.imax b (Ir.Reg m) (Ir.Reg i) in
        Builder.mov_to b m (Ir.Reg mx);
        let h = Builder.libcall b Ir.Lc_hash [ Ir.Reg u ] in
        Builder.mov_to b u (Ir.Reg h))
  in
  let t0 = Builder.add b (Ir.Reg sum) (Ir.Reg m) in
  let t1 = Builder.add b (Ir.Reg t0) (Ir.Reg q) in
  let t2 = Builder.add b (Ir.Reg t1) (Ir.Reg u) in
  Builder.ret b (Some (Ir.Reg t2));
  (Builder.func b, sum, m, q, s, u)

let classify_of f =
  let cfg = Cfg.of_func f in
  let lt = Loops.compute cfg in
  let lp = List.find (fun l -> l.Loops.l_depth = 1) (Loops.loops lt) in
  (Predictable.classify f cfg lp, lp, cfg)

let category_of cls r =
  match List.find_opt (fun c -> c.Predictable.c_reg = r) cls with
  | Some c -> Predictable.category_name c.Predictable.c_category
  | None -> "absent"

let induction_tests =
  [
    tc "rich loop classification" (fun () ->
        let f, sum, m, q, s, u = rich_loop () in
        let cls, _, _ = classify_of f in
        check Alcotest.string "sum" "reduction" (category_of cls sum);
        check Alcotest.string "max" "reduction" (category_of cls m);
        check Alcotest.string "poly2" "induction" (category_of cls q);
        check Alcotest.string "step" "induction" (category_of cls s);
        check Alcotest.string "unpredictable" "unpredictable"
          (category_of cls u));
    tc "reduction invalidated by extra read" (fun () ->
        let b = Builder.create "main" in
        let acc = Builder.mov b (Ir.Imm 0) in
        let probe = Builder.mov b (Ir.Imm 0) in
        let _ =
          Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 5) (fun i ->
              let hv = Builder.libcall b Ir.Lc_hash [ Ir.Reg i ] in
              let a = Builder.add b (Ir.Reg acc) (Ir.Reg hv) in
              Builder.mov_to b acc (Ir.Reg a);
              let p = Builder.bxor b (Ir.Reg probe) (Ir.Reg acc) in
              Builder.mov_to b probe (Ir.Reg p))
        in
        let r = Builder.add b (Ir.Reg acc) (Ir.Reg probe) in
        Builder.ret b (Some (Ir.Reg r));
        let cls, _, _ = classify_of (Builder.func b) in
        check Alcotest.string "acc demoted" "unpredictable"
          (category_of cls acc));
    tc "subtraction accumulator is a reduction" (fun () ->
        let b = Builder.create "main" in
        let acc = Builder.mov b (Ir.Imm 100) in
        let _ =
          Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 5) (fun i ->
              let x = Builder.mul b (Ir.Reg i) (Ir.Imm 3) in
              let a = Builder.sub b (Ir.Reg acc) (Ir.Reg x) in
              Builder.mov_to b acc (Ir.Reg a))
        in
        Builder.ret b (Some (Ir.Reg acc));
        let cls, _, _ = classify_of (Builder.func b) in
        check Alcotest.string "sub acc" "reduction" (category_of cls acc));
    tc "HCCv1 (no poly2) sees only linear IVs" (fun () ->
        let f, _, _, q, s, _ = rich_loop () in
        let cfg = Cfg.of_func f in
        let lt = Loops.compute cfg in
        let lp = List.find (fun l -> l.Loops.l_depth = 1) (Loops.loops lt) in
        let cls = Predictable.classify ~poly2:false f cfg lp in
        check Alcotest.string "step still linear" "induction"
          (category_of cls s);
        Alcotest.(check bool) "poly2 not induction" true
          (category_of cls q <> "induction"));
    tc "invariant operand detection" (fun () ->
        let f, _, _, _, _, _ = rich_loop () in
        let lt = Loops.compute (Cfg.of_func f) in
        let lp = List.find (fun l -> l.Loops.l_depth = 1) (Loops.loops lt) in
        Alcotest.(check bool) "imm invariant" true
          (Induction.invariant f lp (Ir.Imm 3)));
    tc "update_sites finds the mov idiom" (fun () ->
        let f, sum, _, _, _, _ = rich_loop () in
        let du = Defuse.compute f in
        let lt = Loops.compute (Cfg.of_func f) in
        let lp = List.find (fun l -> l.Loops.l_depth = 1) (Loops.loops lt) in
        match Induction.update_sites f du lp sum with
        | Some us ->
            Alcotest.(check bool) "op is add" true
              (us.Induction.us_op = Ir.Add)
        | None -> Alcotest.fail "expected update sites");
  ]

(* ---- dependence analysis ------------------------------------------------ *)

let dep_loop ~affine () =
  (* store a[i] (optionally affine) + read-modify-write of cell c *)
  let b = Builder.create "main" in
  let an_a = an ?affine:(if affine then Some 0 else None) ~path:"a[]" 1 in
  let an_c = an ~path:"c" 2 in
  let _ =
    Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 6) (fun i ->
        Builder.store b ~offset:(Ir.Reg i) ~an:an_a (Ir.Imm 100) (Ir.Reg i);
        let v = Builder.load b ~an:an_c (Ir.Imm 500) in
        let v1 = Builder.add b (Ir.Reg v) (Ir.Imm 1) in
        Builder.store b ~an:an_c (Ir.Imm 500) (Ir.Reg v1))
  in
  Builder.ret b (Some (Ir.Imm 0));
  let p = Ir.create_program () in
  Ir.add_func p (Builder.func b);
  p

let deps_of tier p =
  let f = Ir.main_func p in
  let lt = Loops.compute (Cfg.of_func f) in
  let lp = List.hd (Loops.loops lt) in
  Depend.compute tier p f lp

let depend_tests =
  [
    tc "flow tier removes affine self-dependence" (fun () ->
        let p = dep_loop ~affine:true () in
        let d_base = deps_of Alias.vllpa p in
        let d_flow = deps_of Alias.vllpa_flow p in
        check Alcotest.int "vllpa edges" 3
          (Depend.Edge_set.cardinal d_base.Depend.ld_edges);
        check Alcotest.int "flow edges" 2
          (Depend.Edge_set.cardinal d_flow.Depend.ld_edges));
    tc "cell conflict survives every tier" (fun () ->
        let p = dep_loop ~affine:true () in
        List.iter
          (fun tier ->
            let d = deps_of tier p in
            Alcotest.(check bool) "has edges" true
              (not (Depend.Edge_set.is_empty d.Depend.ld_edges)))
          Alias.ladder);
    tc "shared classes separate disjoint sites" (fun () ->
        let p = dep_loop ~affine:false () in
        let d = deps_of Alias.best p in
        let classes = Depend.shared_classes Alias.best d.Depend.ld_shared in
        check Alcotest.int "two classes" 2 (List.length classes));
    tc "call summaries create edges" (fun () ->
        let p = Ir.create_program () in
        let hb = Builder.create "helper" in
        Builder.store hb ~an:(an 9) (Ir.Imm 900) (Ir.Imm 1);
        Builder.ret hb None;
        Ir.add_func p (Builder.func hb);
        let b = Builder.create "main" in
        let _ =
          Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 3) (fun _ ->
              Builder.call b "helper" [])
        in
        Builder.ret b None;
        Ir.add_func p (Builder.func b);
        let d = deps_of Alias.best p in
        Alcotest.(check bool) "call summary produces edges" true
          (not (Depend.Edge_set.is_empty d.Depend.ld_edges)));
    tc "dynamic collector: RAW across iterations" (fun () ->
        let dyn = Depend.Dynamic.create () in
        let pos1 = { Ir.ip_block = 1; ip_index = 0 } in
        let pos2 = { Ir.ip_block = 1; ip_index = 1 } in
        Depend.Dynamic.new_invocation dyn;
        Depend.Dynamic.access dyn Interp.Write ~pos:pos1 100;
        Depend.Dynamic.begin_iteration dyn;
        Depend.Dynamic.access dyn Interp.Read ~pos:pos2 100;
        check Alcotest.int "one actual edge" 1
          (Depend.Edge_set.cardinal (Depend.Dynamic.actual_edges dyn)));
    tc "dynamic collector: same-iteration conflict is not carried" (fun () ->
        let dyn = Depend.Dynamic.create () in
        let pos1 = { Ir.ip_block = 1; ip_index = 0 } in
        let pos2 = { Ir.ip_block = 1; ip_index = 1 } in
        Depend.Dynamic.new_invocation dyn;
        Depend.Dynamic.access dyn Interp.Write ~pos:pos1 100;
        Depend.Dynamic.access dyn Interp.Read ~pos:pos2 100;
        check Alcotest.int "no carried edge" 0
          (Depend.Edge_set.cardinal (Depend.Dynamic.actual_edges dyn)));
    tc "dynamic collector: invocation reset forgets writers" (fun () ->
        let dyn = Depend.Dynamic.create () in
        let pos = { Ir.ip_block = 1; ip_index = 0 } in
        Depend.Dynamic.new_invocation dyn;
        Depend.Dynamic.access dyn Interp.Write ~pos 100;
        Depend.Dynamic.new_invocation dyn;
        Depend.Dynamic.access dyn Interp.Write ~pos 100;
        check Alcotest.int "no cross-invocation edge" 0
          (Depend.Edge_set.cardinal (Depend.Dynamic.actual_edges dyn)));
    tc "dynamic collector: WAR across iterations" (fun () ->
        let dyn = Depend.Dynamic.create () in
        let pr = { Ir.ip_block = 1; ip_index = 0 } in
        let pw = { Ir.ip_block = 1; ip_index = 1 } in
        Depend.Dynamic.new_invocation dyn;
        Depend.Dynamic.access dyn Interp.Read ~pos:pr 7;
        Depend.Dynamic.begin_iteration dyn;
        Depend.Dynamic.access dyn Interp.Write ~pos:pw 7;
        check Alcotest.int "WAR edge" 1
          (Depend.Edge_set.cardinal (Depend.Dynamic.actual_edges dyn)));
    tc "accuracy helper" (fun () ->
        let e1 =
          Depend.norm_edge
            { Ir.ip_block = 1; ip_index = 0 }
            { Ir.ip_block = 1; ip_index = 1 }
        in
        let e2 =
          Depend.norm_edge
            { Ir.ip_block = 2; ip_index = 0 }
            { Ir.ip_block = 2; ip_index = 1 }
        in
        let static = Depend.Edge_set.of_list [ e1; e2 ] in
        let actual = Depend.Edge_set.singleton e1 in
        check (Alcotest.float 0.001) "half" 0.5
          (Depend.accuracy ~static_edges:static ~actual));
  ]

(* ---- dataflow engine and frontiers -------------------------------------- *)

let engine_tests =
  [
    tc "dominance frontier of a diamond join" (fun () ->
        (* 0 -> 1|2, both -> 3: DF(1) = DF(2) = {3} *)
        let f =
          func_of_edges ~entry:0
            [
              (0, Ir.Br (Ir.Imm 1, 1, 2));
              (1, Ir.Jmp 3);
              (2, Ir.Jmp 3);
              (3, Ir.Ret None);
            ]
        in
        let dom = Dominance.compute (Cfg.of_func f) in
        let df = Dominance.frontiers dom in
        check Alcotest.(list int) "DF(1)" [ 3 ] (df 1);
        check Alcotest.(list int) "DF(2)" [ 3 ] (df 2);
        check Alcotest.(list int) "DF(3) empty" [] (df 3));
    tc "forward set problem reaches a fixpoint" (fun () ->
        let f, _ = sum_loop () in
        let cfg = Cfg.of_func f in
        (* trivial gen/kill: every block generates its own label id *)
        let sol =
          Dataflow.set_problem ~direction:Dataflow.Forward
            ~entry_fact:Dataflow.Int_set.empty
            ~gen_kill:(fun l ->
              (Dataflow.Int_set.singleton l, Dataflow.Int_set.empty))
            cfg
        in
        (* at every block, the fact includes all predecessors' labels *)
        List.iter
          (fun l ->
            List.iter
              (fun p ->
                Alcotest.(check bool)
                  (Fmt.str "L%d flows into L%d" p l)
                  true
                  (Dataflow.Int_set.mem p (sol.Dataflow.fact_in l)))
              (Cfg.predecessors cfg l))
          (Cfg.reachable_blocks cfg));
    tc "backward problem mirrors successors" (fun () ->
        let f, _ = sum_loop () in
        let cfg = Cfg.of_func f in
        let sol =
          Dataflow.set_problem ~direction:Dataflow.Backward
            ~entry_fact:Dataflow.Int_set.empty
            ~gen_kill:(fun l ->
              (Dataflow.Int_set.singleton l, Dataflow.Int_set.empty))
            cfg
        in
        List.iter
          (fun l ->
            List.iter
              (fun s ->
                Alcotest.(check bool)
                  (Fmt.str "L%d flows back into L%d" s l)
                  true
                  (Dataflow.Int_set.mem s (sol.Dataflow.fact_out l)))
              (Cfg.successors cfg l))
          (Cfg.reachable_blocks cfg));
  ]

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_tier_monotone; prop_carried_subset ]

let () =
  Alcotest.run "analysis"
    [
      ("dominance", dominance_tests);
      ("loops", loops_tests);
      ("dataflow", dataflow_tests);
      ("alias", alias_tests);
      ("induction", induction_tests);
      ("depend", depend_tests);
      ("engine", engine_tests);
      ("properties", props);
    ]
