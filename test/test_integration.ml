open Helix_experiments

(* Smoke tests over the experiment harness: each figure runs on a reduced
   workload set and exhibits the paper's qualitative shape. *)

let tc name f = Alcotest.test_case name `Slow f
let quick = [ Helix_workloads.Registry.find "164.gzip";
              Helix_workloads.Registry.find "175.vpr" ]

let tests =
  [
    tc "fig1: v2 does not regress v1" (fun () ->
        let rows = Fig1.run ~workloads:quick () in
        List.iter
          (fun r ->
            Alcotest.(check bool)
              (r.Fig1.name ^ " v2 >= v1 - eps") true
              (r.Fig1.v2 >= r.Fig1.v1 -. 0.3))
          rows);
    tc "fig2: accuracy ladder is monotone and ends high" (fun () ->
        let pts = Fig2.run ~workloads:Helix_workloads.Registry.integer () in
        let accs = List.map (fun p -> p.Fig2.accuracy) pts in
        let rec mono = function
          | a :: (b :: _ as rest) -> a <= b +. 0.02 && mono rest
          | _ -> true
        in
        Alcotest.(check bool) "monotone" true (mono accs);
        Alcotest.(check bool) "best tier >= 80%" true
          (List.nth accs (List.length accs - 1) >= 0.8);
        Alcotest.(check bool) "base tier well below best" true
          (List.hd accs < List.nth accs (List.length accs - 1) -. 0.1));
    tc "fig3: most register communication removed" (fun () ->
        let r = Fig3.run () in
        Alcotest.(check bool) "some registers carried" true (r.Fig3.naive_reg > 0);
        Alcotest.(check bool) "most removed" true
          (r.Fig3.remaining_reg * 4 <= r.Fig3.naive_reg);
        Alcotest.(check bool) "memory dominates the remainder" true
          (r.Fig3.remaining_mem >= r.Fig3.remaining_reg));
    tc "fig7: HELIX-RC beats HCCv2 on gzip and vpr" (fun () ->
        let rows = Fig7.run ~workloads:quick () in
        List.iter
          (fun r ->
            Alcotest.(check bool) (r.Fig7.name ^ " verified") true
              r.Fig7.helix_verified;
            Alcotest.(check bool) (r.Fig7.name ^ " helix > v2") true
              (r.Fig7.helix > r.Fig7.v2);
            Alcotest.(check bool) (r.Fig7.name ^ " helix > 2x") true
              (r.Fig7.helix > 2.0))
          rows);
    tc "fig8: full decoupling dominates partial modes" (fun () ->
        let rows = Fig8.run ~workloads:quick () in
        List.iter
          (fun r ->
            let all = List.nth r.Fig8.by_mode 3 in
            List.iteri
              (fun i v ->
                if i < 3 then
                  Alcotest.(check bool)
                    (Fmt.str "%s mode %d <= all" r.Fig8.name i)
                    true (v <= all +. 0.5))
              r.Fig8.by_mode)
          rows);
    tc "fig9: v3 code struggles on conventional, thrives on ring" (fun () ->
        (* gzip and parser have the densest segments; vpr's v3 code is
           mostly compute and shows little conventional contrast *)
        let rows =
          Fig9.run
            ~workloads:
              [ Helix_workloads.Registry.find "164.gzip";
                Helix_workloads.Registry.find "197.parser" ]
            ()
        in
        List.iter
          (fun r ->
            Alcotest.(check bool)
              (r.Fig9.name ^ " conventional much slower than ring") true
              (r.Fig9.conventional.Fig9.total_pct
               > r.Fig9.ring.Fig9.total_pct *. 1.5);
            Alcotest.(check bool) (r.Fig9.name ^ " ring < 100%") true
              (r.Fig9.ring.Fig9.total_pct < 1.0))
          rows);
    tc "fig11a: speedup grows with core count" (fun () ->
        let series = Fig11.core_count ~workloads:quick () in
        let geo s =
          Exp_common.geomean (List.map snd s.Fig11.sw_speedups)
        in
        let xs = List.map geo series in
        let rec mono = function
          | a :: (b :: _ as rest) -> a <= b +. 0.2 && mono rest
          | _ -> true
        in
        Alcotest.(check bool) "monotone in cores" true (mono xs));
    tc "fig11b: longer links are never faster" (fun () ->
        let series = Fig11.link_latency ~workloads:quick () in
        let geo s = Exp_common.geomean (List.map snd s.Fig11.sw_speedups) in
        let xs = List.map geo series in
        Alcotest.(check bool) "1-cycle beats 32-cycle" true
          (List.hd xs > List.nth xs (List.length xs - 1)));
    tc "fig12: taxonomy is sane" (fun () ->
        let rows = Fig12.run ~workloads:quick () in
        List.iter
          (fun r ->
            Alcotest.(check bool) (r.Fig12.name ^ " speedup > 1") true
              (r.Fig12.speedup > 1.0))
          rows);
    tc "tlp: aggressive splitting shrinks segments" (fun () ->
        match Tlp_study.run () with
        | [ cons; aggr ] ->
            Alcotest.(check bool) "segments shrink" true
              (aggr.Tlp_study.mean_segment_size
               < cons.Tlp_study.mean_segment_size);
            Alcotest.(check bool) "TLP does not drop" true
              (aggr.Tlp_study.tlp >= cons.Tlp_study.tlp -. 0.2)
        | _ -> Alcotest.fail "expected two points");
    tc "table1: v3 coverage dominates" (fun () ->
        let rows = Table1.run ~workloads:quick () in
        List.iter
          (fun r ->
            Alcotest.(check bool) (r.Table1.name ^ " v3 >= v2") true
              (r.Table1.cov_v3 >= r.Table1.cov_v2 -. 0.01))
          rows);
    tc "fault injection: jitter seeds preserve architectural state" (fun () ->
        (* the acceptance bar for the fault-injection layer: under at
           least three deterministic perturbation seeds every integer
           workload must produce the bit-identical return value and
           final memory image of the unperturbed run, with the
           differential oracle and sanitizer enabled and silent *)
        List.iter
          (fun wl ->
            let name = wl.Helix_workloads.Workload.name in
            let base = Exp_common.run_helix wl Exp_common.V3 in
            Alcotest.(check bool) (name ^ " baseline verified") true
              (Exp_common.verified wl base);
            List.iter
              (fun seed ->
                let cfg =
                  Exp_common.helix_cfg
                    ~robust:Helix_core.Executor.checked ~jitter_seed:seed ()
                in
                let r =
                  Exp_common.parallel ~cache:false
                    ~tag:(Fmt.str "jitter%d" seed) wl Exp_common.V3 cfg
                in
                Alcotest.(check (option int))
                  (Fmt.str "%s seed %d: return value" name seed)
                  base.Helix_core.Executor.r_ret
                  r.Helix_core.Executor.r_ret;
                Alcotest.(check bool)
                  (Fmt.str "%s seed %d: memory image bit-identical" name seed)
                  true
                  (Helix_ir.Memory.equal base.Helix_core.Executor.r_mem
                     r.Helix_core.Executor.r_mem);
                Alcotest.(check int)
                  (Fmt.str "%s seed %d: oracle+sanitizer silent" name seed)
                  0 r.Helix_core.Executor.r_violations;
                Alcotest.(check int)
                  (Fmt.str "%s seed %d: no fallbacks" name seed)
                  0 r.Helix_core.Executor.r_fallbacks)
              [ 5; 77; 90125 ])
          Helix_workloads.Registry.integer);
  ]

(* quick, simulation-free checks of the report renderer *)
let report_tests =
  let tq name f = Alcotest.test_case name `Quick f in
  [
    tq "report renders aligned columns" (fun () ->
        let r =
          Report.make ~title:"t" ~header:[ "a"; "bb" ]
            [ [ "xxx"; "1" ]; [ "y"; "22" ] ]
            ~notes:[ "n" ]
        in
        let s = Report.render r in
        Alcotest.(check bool) "has title" true
          (String.length s > 0 && String.sub s 0 4 = "== t");
        (* all data rows share a width *)
        let lines =
          String.split_on_char '\n' s
          |> List.filter (fun l -> String.length l > 0)
        in
        match lines with
        | _title :: header :: sep :: row1 :: _ ->
            Alcotest.(check int) "separator width" (String.length header)
              (String.length sep);
            Alcotest.(check int) "row width" (String.length header)
              (String.length row1)
        | _ -> Alcotest.fail "unexpected layout");
    tq "formatters" (fun () ->
        Alcotest.(check string) "pct" "12.5%" (Report.pct 0.125);
        Alcotest.(check string) "xf" "2.50x" (Report.xf 2.5);
        Alcotest.(check string) "f1" "1.2" (Report.f1 1.23));
  ]

let () =
  Alcotest.run "integration"
    [ ("report", report_tests); ("experiments", tests) ]
