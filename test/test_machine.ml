open Helix_machine

(* Tests for the machine substrate: caches, DRAM, the memory hierarchy,
   branch prediction, and the two core timing models driven by synthetic
   uop streams. *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ---- cache ------------------------------------------------------------- *)

let small_cache () =
  Cache.create
    { Mach_config.size_words = 64; assoc = 2; line_words = 4; hit_latency = 2 }

let cache_tests =
  [
    tc "miss then hit" (fun () ->
        let c = small_cache () in
        (match Cache.access c ~write:false 10 with
        | Cache.Miss _ -> ()
        | Cache.Hit -> Alcotest.fail "expected miss");
        (match Cache.access c ~write:false 10 with
        | Cache.Hit -> ()
        | Cache.Miss _ -> Alcotest.fail "expected hit"));
    tc "same line hits" (fun () ->
        let c = small_cache () in
        ignore (Cache.access c ~write:false 8);
        match Cache.access c ~write:false 11 with
        | Cache.Hit -> ()
        | Cache.Miss _ -> Alcotest.fail "line should cover words 8..11");
    tc "LRU evicts the older way" (fun () ->
        let c = small_cache () in
        let a1 = 0 and a2 = 8 * 4 and a3 = 2 * 8 * 4 in
        ignore (Cache.access c ~write:false a1);
        ignore (Cache.access c ~write:false a2);
        ignore (Cache.access c ~write:false a1);
        ignore (Cache.access c ~write:false a3);
        (match Cache.access c ~write:false a1 with
        | Cache.Hit -> ()
        | Cache.Miss _ -> Alcotest.fail "a1 should survive");
        match Cache.access c ~write:false a2 with
        | Cache.Miss _ -> ()
        | Cache.Hit -> Alcotest.fail "a2 should have been evicted");
    tc "dirty eviction reports the victim line" (fun () ->
        let c = small_cache () in
        let a1 = 0 and a2 = 8 * 4 and a3 = 2 * 8 * 4 in
        ignore (Cache.access c ~write:true a1);
        ignore (Cache.access c ~write:false a2);
        ignore (Cache.access c ~write:false a2);
        match Cache.access c ~write:false a3 with
        | Cache.Miss { evicted_dirty_line = Some l } ->
            check Alcotest.int "victim line" 0 l
        | _ -> Alcotest.fail "expected dirty eviction");
    tc "invalidate removes a line" (fun () ->
        let c = small_cache () in
        ignore (Cache.access c ~write:false 20);
        Cache.invalidate c 20;
        Alcotest.(check bool) "gone" false (Cache.contains c 20));
    tc "hit rate accounting" (fun () ->
        let c = small_cache () in
        ignore (Cache.access c ~write:false 0);
        ignore (Cache.access c ~write:false 0);
        ignore (Cache.access c ~write:false 0);
        ignore (Cache.access c ~write:false 0);
        check (Alcotest.float 0.01) "3/4" 0.75 (Cache.hit_rate c));
    tc "flush_all empties the cache" (fun () ->
        let c = small_cache () in
        ignore (Cache.access c ~write:true 0);
        Cache.flush_all c;
        Alcotest.(check bool) "empty" false (Cache.contains c 0));
  ]

(* ---- DRAM ---------------------------------------------------------------- *)

let dram_tests =
  [
    tc "row hit is cheaper" (fun () ->
        let d = Dram.create ~latency:100 ~banks:4 in
        let l1 = Dram.access d ~cycle:0 5 in
        let l2 = Dram.access d ~cycle:1000 6 in
        Alcotest.(check bool) "row hit faster" true (l2 < l1));
    tc "bank contention queues" (fun () ->
        let d = Dram.create ~latency:100 ~banks:1 in
        let l1 = Dram.access d ~cycle:0 0 in
        let l2 = Dram.access d ~cycle:1 (8 * 1024) in
        Alcotest.(check bool) "second queues behind first" true (l2 >= l1));
    tc "idle banks do not queue" (fun () ->
        let d = Dram.create ~latency:100 ~banks:4 in
        ignore (Dram.access d ~cycle:0 0);
        let l = Dram.access d ~cycle:10_000 0 in
        Alcotest.(check bool) "row hit, no queue" true (l <= 40));
  ]

(* ---- hierarchy ------------------------------------------------------------ *)

let hierarchy_tests =
  [
    tc "L1 hit after fill" (fun () ->
        let h = Hierarchy.create Mach_config.default in
        ignore
          (Hierarchy.access h ~core:0 ~cycle:0 ~write:false ~coherent:false 100);
        let l =
          Hierarchy.access h ~core:0 ~cycle:10 ~write:false ~coherent:false 100
        in
        check Alcotest.int "hit latency" 3 l);
    tc "remote dirty line pays cache-to-cache" (fun () ->
        let h = Hierarchy.create Mach_config.default in
        ignore
          (Hierarchy.access h ~core:0 ~cycle:0 ~write:true ~coherent:true 100);
        let l =
          Hierarchy.access h ~core:1 ~cycle:10 ~write:false ~coherent:true 100
        in
        Alcotest.(check bool) "c2c charged" true (l >= 10);
        check Alcotest.int "one transfer" 1 (Hierarchy.c2c_transfers h));
    tc "private accesses never pay coherence" (fun () ->
        let h = Hierarchy.create Mach_config.default in
        ignore
          (Hierarchy.access h ~core:0 ~cycle:0 ~write:true ~coherent:false 100);
        ignore
          (Hierarchy.access h ~core:1 ~cycle:10 ~write:false ~coherent:false 100);
        check Alcotest.int "no transfers" 0 (Hierarchy.c2c_transfers h));
  ]

(* ---- branch predictor ------------------------------------------------------ *)

let predictor_tests =
  [
    tc "always-taken converges" (fun () ->
        let p = Branch_pred.create () in
        for _ = 1 to 10 do
          ignore (Branch_pred.predict_update p ~static_id:7 ~taken:true)
        done;
        Alcotest.(check bool) "predicts taken" false
          (Branch_pred.predict_update p ~static_id:7 ~taken:true));
    tc "loop exit mispredicts once" (fun () ->
        let p = Branch_pred.create () in
        for _ = 1 to 10 do
          ignore (Branch_pred.predict_update p ~static_id:3 ~taken:true)
        done;
        Alcotest.(check bool) "exit mispredicted" true
          (Branch_pred.predict_update p ~static_id:3 ~taken:false));
    tc "mispredict rate bounded" (fun () ->
        let p = Branch_pred.create () in
        for i = 1 to 100 do
          ignore (Branch_pred.predict_update p ~static_id:1 ~taken:(i mod 7 <> 0))
        done;
        Alcotest.(check bool) "rate sane" true
          (Branch_pred.mispredict_rate p <= 0.5));
  ]

(* ---- core models ------------------------------------------------------------ *)

let run_core kind width uops =
  let remaining = ref uops in
  let supply =
    {
      Core_model.sup_next =
        (fun () ->
          match !remaining with
          | [] -> None
          | u :: tl ->
              remaining := tl;
              Some u);
      sup_mem = (fun ~cycle:_ ~write:_ ~addr:_ -> 3);
      sup_shared =
        (fun ~cycle:_ ~tag:_ op ->
          match op with
          | Uop.S_load _ -> Uop.Sh_done { latency = 3; value = 42 }
          | _ -> Uop.Sh_done { latency = 1; value = 0 });
      sup_settled = (fun () -> true);
    }
  in
  let cfg =
    match kind with
    | `In_order -> { Mach_config.atom_core with Mach_config.width }
    | `Ooo -> { Mach_config.ooo2_core with Mach_config.width }
  in
  let core = Core.create cfg supply in
  let cycles = ref 0 in
  while (not (Core.quiescent core)) && !cycles < 100_000 do
    Core.tick core !cycles;
    incr cycles
  done;
  (!cycles, Core.stats core)

let alu ?(srcs = []) ?dst lat = Uop.mk ~srcs ?dst (Uop.Alu lat)

let core_tests =
  [
    tc "in-order: dependent chain takes at least its latency" (fun () ->
        let uops =
          List.init 10 (fun i ->
              alu ~srcs:(if i = 0 then [] else [ i - 1 ]) ~dst:i 1)
        in
        let cycles, st = run_core `In_order 2 uops in
        Alcotest.(check bool) "chain >= 10" true (cycles >= 10);
        check Alcotest.int "retired" 10 st.Stats.retired);
    tc "in-order: independent uops dual-issue" (fun () ->
        let uops = List.init 20 (fun i -> alu ~dst:(100 + i) 1) in
        let cycles, _ = run_core `In_order 2 uops in
        Alcotest.(check bool) (Fmt.str "%d cycles for 20 indep" cycles) true
          (cycles <= 14));
    tc "in-order: width-1 is slower" (fun () ->
        let uops () = List.init 20 (fun i -> alu ~dst:(100 + i) 1) in
        let c2, _ = run_core `In_order 2 (uops ()) in
        let c1, _ = run_core `In_order 1 (uops ()) in
        Alcotest.(check bool) "narrow slower" true (c1 > c2));
    tc "out-of-order: independents overlap a long-latency op" (fun () ->
        let uops =
          alu ~dst:0 20 :: List.init 10 (fun i -> alu ~dst:(10 + i) 1)
        in
        let cycles, _ = run_core `Ooo 2 uops in
        Alcotest.(check bool) (Fmt.str "%d cycles" cycles) true (cycles <= 30));
    tc "in-order: stats buckets cover every cycle" (fun () ->
        let uops =
          List.init 30 (fun i ->
              if i mod 3 = 0 then Uop.mk ~dst:i (Uop.Load_priv (i * 8))
              else alu ~srcs:[ (i / 3) * 3 ] ~dst:i 1)
        in
        let _, st = run_core `In_order 2 uops in
        let total =
          List.fold_left (fun a b -> a + Stats.get st b) 0 Stats.all_buckets
        in
        check Alcotest.int "buckets sum to cycles" st.Stats.cycles total);
    tc "out-of-order: stats buckets cover every cycle" (fun () ->
        let uops = List.init 25 (fun i -> alu ~dst:i 2) in
        let _, st = run_core `Ooo 2 uops in
        let total =
          List.fold_left (fun a b -> a + Stats.get st b) 0 Stats.all_buckets
        in
        check Alcotest.int "buckets sum to cycles" st.Stats.cycles total);
    tc "shared load sink delivers the value (in-order)" (fun () ->
        let got = ref 0 in
        let u =
          {
            (Uop.mk ~dst:5 (Uop.Shared (Uop.S_load 77))) with
            Uop.sink = Some (fun v -> got := v);
          }
        in
        let _ = run_core `In_order 2 [ u ] in
        check Alcotest.int "sink value" 42 !got);
    tc "shared load sink delivers the value (out-of-order)" (fun () ->
        let got = ref 0 in
        let u =
          {
            (Uop.mk ~dst:5 (Uop.Shared (Uop.S_load 77))) with
            Uop.sink = Some (fun v -> got := v);
          }
        in
        let _ = run_core `Ooo 2 [ u ] in
        check Alcotest.int "sink value" 42 !got);
    tc "wait retry charges dependence-waiting" (fun () ->
        let calls = ref 0 in
        let remaining = ref [ Uop.mk (Uop.Shared (Uop.S_wait 0)) ] in
        let supply =
          {
            Core_model.sup_next =
              (fun () ->
                match !remaining with
                | [] -> None
                | u :: tl ->
                    remaining := tl;
                    Some u);
            sup_mem = (fun ~cycle:_ ~write:_ ~addr:_ -> 3);
            sup_shared =
              (fun ~cycle:_ ~tag:_ _ ->
                incr calls;
                if !calls < 50 then Uop.Sh_retry
                else Uop.Sh_done { latency = 1; value = 0 });
            sup_settled = (fun () -> true);
          }
        in
        let core = Core.create Mach_config.atom_core supply in
        let cycles = ref 0 in
        while (not (Core.quiescent core)) && !cycles < 1000 do
          Core.tick core !cycles;
          incr cycles
        done;
        let st = Core.stats core in
        Alcotest.(check bool) "dep-wait cycles recorded" true
          (Stats.get st Stats.Dep_wait >= 40));
    tc "ooo respects the window size" (fun () ->
        (* a window-1 core cannot overlap the long op *)
        let mk () = alu ~dst:0 20 :: List.init 5 (fun i -> alu ~dst:(1 + i) 1) in
        let narrow =
          { Mach_config.ooo2_core with Mach_config.window = 1 }
        in
        let supply l =
          let remaining = ref l in
          {
            Core_model.sup_next =
              (fun () ->
                match !remaining with
                | [] -> None
                | u :: tl ->
                    remaining := tl;
                    Some u);
            sup_mem = (fun ~cycle:_ ~write:_ ~addr:_ -> 3);
            sup_shared =
              (fun ~cycle:_ ~tag:_ _ -> Uop.Sh_done { latency = 1; value = 0 });
            sup_settled = (fun () -> true);
          }
        in
        let run cfg l =
          let core = Core.create cfg (supply l) in
          let cycles = ref 0 in
          while (not (Core.quiescent core)) && !cycles < 10_000 do
            Core.tick core !cycles;
            incr cycles
          done;
          !cycles
        in
        let c_narrow = run narrow (mk ()) in
        let c_wide = run Mach_config.ooo2_core (mk ()) in
        Alcotest.(check bool) "window-1 slower" true (c_narrow > c_wide));
  ]

(* ---- stats -------------------------------------------------------------------- *)

let stats_tests =
  [
    tc "merge sums counters" (fun () ->
        let a = Stats.create () and b = Stats.create () in
        Stats.charge a Stats.Busy;
        Stats.charge a Stats.Idle;
        Stats.charge b Stats.Busy;
        let m = Stats.merge [ a; b ] in
        check Alcotest.int "cycles" 3 m.Stats.cycles;
        check Alcotest.int "busy" 2 (Stats.get m Stats.Busy));
    tc "fraction" (fun () ->
        let s = Stats.create () in
        Stats.charge s Stats.Busy;
        Stats.charge s Stats.Idle;
        check (Alcotest.float 0.001) "half" 0.5 (Stats.fraction s Stats.Busy));
  ]

(* property: random uop streams retire completely on both cores *)
let gen_uops =
  QCheck.Gen.(
    list_size (int_range 1 60)
      (int_range 0 9 >>= fun k ->
       int_range 0 15 >>= fun r ->
       return
         (match k with
         | 0 | 1 | 2 | 3 -> alu ~dst:r 1
         | 4 -> alu ~srcs:[ r ] ~dst:((r + 1) land 15) 3
         | 5 -> Uop.mk ~dst:r (Uop.Load_priv (r * 8))
         | 6 -> Uop.mk (Uop.Store_priv (r * 8))
         | 7 -> Uop.mk (Uop.Branch { taken = r land 1 = 1; static_id = r })
         | _ -> alu ~dst:r 2)))

let prop_all_retire kind name =
  QCheck.Test.make ~name ~count:60 (QCheck.make gen_uops) (fun uops ->
      let cycles, st = run_core kind 2 uops in
      cycles < 100_000 && st.Stats.retired = List.length uops)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_all_retire `In_order "in-order retires every random stream";
      prop_all_retire `Ooo "out-of-order retires every random stream";
    ]

let () =
  Alcotest.run "machine"
    [
      ("cache", cache_tests);
      ("dram", dram_tests);
      ("hierarchy", hierarchy_tests);
      ("predictor", predictor_tests);
      ("cores", core_tests);
      ("stats", stats_tests);
      ("properties", props);
    ]
