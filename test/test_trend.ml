(* Unit tests for the pure core of the CI perf-regression gate
   (Trend): engine-throughput comparison, figure shape tracking, and
   the missing-baseline / vanished-artifact paths of compare_all. *)

open Helix_experiments

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let n_failures fs = List.length (Trend.failures fs)

let has_fail_containing fs needle =
  let contains hay =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.exists
    (fun (f : Trend.finding) -> f.Trend.severity = `Fail && contains f.Trend.message)
    (Trend.failures fs)

let engine_json ?(legacy = 1000.0) ?(event = 2000.0) ?(heap = 3000.0) () =
  Printf.sprintf
    {|{"legacy":{"cycles_per_sec":%f},"event":{"cycles_per_sec":%f},"heap":{"cycles_per_sec":%f}}|}
    legacy event heap

let engine_tests =
  [
    tc "steady throughput passes" (fun () ->
        let fs =
          Trend.compare_engine ~old_json:(engine_json ())
            ~new_json:(engine_json ()) ()
        in
        check Alcotest.int "no failures" 0 (n_failures fs));
    tc "a drop beyond the threshold fails" (fun () ->
        let fs =
          Trend.compare_engine ~old_json:(engine_json ())
            ~new_json:(engine_json ~heap:2000.0 ()) ()
        in
        Alcotest.(check bool) "heap regression flagged" true
          (has_fail_containing fs "heap engine regressed"));
    tc "a drop within the threshold passes" (fun () ->
        let fs =
          Trend.compare_engine ~old_json:(engine_json ())
            ~new_json:(engine_json ~heap:2800.0 ()) ()
        in
        check Alcotest.int "no failures" 0 (n_failures fs));
    tc "custom threshold is honoured" (fun () ->
        let fs =
          Trend.compare_engine ~threshold:0.5 ~old_json:(engine_json ())
            ~new_json:(engine_json ~heap:1600.0 ()) ()
        in
        check Alcotest.int "47% drop under a 50% threshold" 0 (n_failures fs));
    tc "an engine with no baseline is a note, not a failure" (fun () ->
        let old_json = {|{"legacy":{"cycles_per_sec":1000.0}}|} in
        let fs =
          Trend.compare_engine ~old_json ~new_json:(engine_json ()) ()
        in
        check Alcotest.int "no failures" 0 (n_failures fs));
    tc "an engine that disappeared is a failure" (fun () ->
        let new_json = {|{"legacy":{"cycles_per_sec":1000.0}}|} in
        let fs =
          Trend.compare_engine ~old_json:(engine_json ()) ~new_json ()
        in
        Alcotest.(check bool) "disappearance flagged" true
          (has_fail_containing fs "disappeared"));
    tc "unreadable engine json is a failure" (fun () ->
        let fs =
          Trend.compare_engine ~old_json:"not json"
            ~new_json:(engine_json ()) ()
        in
        Alcotest.(check bool) "unreadable flagged" true
          (has_fail_containing fs "unreadable"));
  ]

let figure_tests =
  [
    tc "value drift with the same shape passes" (fun () ->
        let fs =
          Trend.compare_figure ~name:"fig1.json"
            ~old_json:{|{"rows":[{"wl":"mcf","speedup":3.1}]}|}
            ~new_json:{|{"rows":[{"wl":"mcf","speedup":9.9}]}|} ()
        in
        check Alcotest.int "no failures" 0 (n_failures fs));
    tc "key order is shape-insensitive" (fun () ->
        let fs =
          Trend.compare_figure ~name:"fig1.json"
            ~old_json:{|{"a":1,"b":2}|} ~new_json:{|{"b":5,"a":6}|} ()
        in
        check Alcotest.int "no failures" 0 (n_failures fs));
    tc "a lost row changes the shape and fails" (fun () ->
        let fs =
          Trend.compare_figure ~name:"fig1.json"
            ~old_json:{|{"rows":[1,2,3]}|} ~new_json:{|{"rows":[1,2]}|} ()
        in
        Alcotest.(check bool) "shape change flagged" true
          (has_fail_containing fs "shape changed"));
    tc "a gained column changes the shape and fails" (fun () ->
        let fs =
          Trend.compare_figure ~name:"fig2.json"
            ~old_json:{|{"rows":[{"wl":"mcf"}]}|}
            ~new_json:{|{"rows":[{"wl":"mcf","extra":1}]}|} ()
        in
        Alcotest.(check bool) "shape change flagged" true
          (has_fail_containing fs "shape changed"));
    tc "a type change (number -> string) fails" (fun () ->
        let fs =
          Trend.compare_figure ~name:"fig3.json" ~old_json:{|{"v":1}|}
            ~new_json:{|{"v":"one"}|} ()
        in
        Alcotest.(check bool) "type change flagged" true
          (has_fail_containing fs "shape changed"));
    tc "int vs float is the same shape" (fun () ->
        let fs =
          Trend.compare_figure ~name:"fig4.json" ~old_json:{|{"v":1}|}
            ~new_json:{|{"v":1.5}|} ()
        in
        check Alcotest.int "no failures" 0 (n_failures fs));
    tc "unreadable figure json is a failure" (fun () ->
        let fs =
          Trend.compare_figure ~name:"fig5.json" ~old_json:{|{"v":1}|}
            ~new_json:"{" ()
        in
        Alcotest.(check bool) "unreadable flagged" true
          (has_fail_containing fs "unreadable"));
  ]

let all_tests =
  [
    tc "first run ever: no baselines anywhere, nothing fails" (fun () ->
        let fs =
          Trend.compare_all ~engine_old:None
            ~engine_new:(Some (engine_json ()))
            ~figures:[ ("fig1.json", (None, Some {|{"v":1}|})) ]
            ()
        in
        check Alcotest.int "no failures" 0 (n_failures fs));
    tc "current run without BENCH_engine.json fails" (fun () ->
        let fs =
          Trend.compare_all ~engine_old:(Some (engine_json ()))
            ~engine_new:None ~figures:[] ()
        in
        Alcotest.(check bool) "missing artifact flagged" true
          (has_fail_containing fs "no BENCH_engine.json"));
    tc "a figure table that vanished fails" (fun () ->
        let fs =
          Trend.compare_all ~engine_old:None ~engine_new:None
            ~figures:[ ("fig7.json", (Some {|{"v":1}|}, None)) ]
            ()
        in
        Alcotest.(check bool) "vanished table flagged" true
          (has_fail_containing fs "missing from current run"));
    tc "figure present on neither side is silent" (fun () ->
        let fs =
          Trend.compare_all ~engine_old:None ~engine_new:None
            ~figures:[ ("fig8.json", (None, None)) ]
            ()
        in
        check Alcotest.int "no failures" 0 (n_failures fs);
        (* only the engine-side note remains; the absent figure is silent *)
        check Alcotest.int "one note" 1 (List.length fs));
    tc "mixed sweep: one regression among healthy figures" (fun () ->
        let fs =
          Trend.compare_all ~engine_old:(Some (engine_json ()))
            ~engine_new:(Some (engine_json ~event:500.0 ()))
            ~figures:
              [
                ("fig1.json", (Some {|{"v":1}|}, Some {|{"v":2}|}));
                ("fig2.json", (None, Some {|{"v":3}|}));
              ]
            ()
        in
        check Alcotest.int "exactly one failure" 1 (n_failures fs);
        Alcotest.(check bool) "it is the event engine" true
          (has_fail_containing fs "event engine regressed"));
  ]

let () =
  Alcotest.run "trend"
    [
      ("engine-throughput", engine_tests);
      ("figure-shape", figure_tests);
      ("compare-all", all_tests);
    ]
