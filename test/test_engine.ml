open Helix_machine
open Helix_core
open Helix_workloads

(* Differential test: the event and heap engines must be bit-identical
   to the legacy per-cycle engine on every registry workload, in every
   communication mode, with and without ring fault-injection jitter.
   "Bit-identical" means: return value, total and per-core cycle
   accounting, retirement counts, the final memory image, invocation
   records and every exported metric except the engine's own
   ["engine.*"] counters. *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

module Engine = Helix_engine.Engine

(* One compile per workload (the compiled program is immutable and
   engine-independent). *)
let compiled_cache : (string, Helix_hcc.Hcc.compiled) Hashtbl.t =
  Hashtbl.create 16

let compiled (wl : Workload.t) =
  match Hashtbl.find_opt compiled_cache wl.Workload.name with
  | Some c -> c
  | None ->
      let s = wl.Workload.build () in
      let c =
        Helix_hcc.Hcc.compile
          (Helix_hcc.Hcc_config.v3 ~target_cores:16 ())
          s.Workload.prog s.Workload.layout
          ~train_mem:(s.Workload.init Workload.Train)
      in
      Hashtbl.replace compiled_cache wl.Workload.name c;
      c

let run_with ~engine ~(cfg : Executor.config) (wl : Workload.t) =
  let s = wl.Workload.build () in
  let c = compiled wl in
  Executor.run ~compiled:c
    { cfg with Executor.engine }
    c.Helix_hcc.Hcc.cp_prog
    (s.Workload.init Workload.Ref)

let value_eq (a : Helix_obs.Metrics.value) (b : Helix_obs.Metrics.value) =
  Stdlib.compare a b = 0

let engine_metric name = String.length name >= 7 && String.sub name 0 7 = "engine."

let check_metrics_equal (ml : Helix_obs.Metrics.t) (me : Helix_obs.Metrics.t)
    =
  let names m =
    List.filter (fun n -> not (engine_metric n)) (Helix_obs.Metrics.names m)
  in
  check (Alcotest.list Alcotest.string) "metric names" (names ml) (names me);
  List.iter
    (fun n ->
      let vl = Helix_obs.Metrics.find ml n in
      let ve = Helix_obs.Metrics.find me n in
      match (vl, ve) with
      | Some a, Some b ->
          if not (value_eq a b) then
            Alcotest.failf "metric %s differs between engines" n
      | _ -> Alcotest.failf "metric %s missing" n)
    (names ml)

let check_identical (l : Executor.result) (e : Executor.result) =
  check Alcotest.int "r_cycles" l.Executor.r_cycles e.Executor.r_cycles;
  check (Alcotest.option Alcotest.int) "r_ret" l.Executor.r_ret
    e.Executor.r_ret;
  check Alcotest.int "r_retired" l.Executor.r_retired e.Executor.r_retired;
  check Alcotest.int "r_serial_cycles" l.Executor.r_serial_cycles
    e.Executor.r_serial_cycles;
  check Alcotest.int "r_parallel_cycles" l.Executor.r_parallel_cycles
    e.Executor.r_parallel_cycles;
  check Alcotest.int "invocations"
    (List.length l.Executor.r_invocations)
    (List.length e.Executor.r_invocations);
  List.iter2
    (fun (a : Executor.invocation_record) (b : Executor.invocation_record) ->
      check Alcotest.int "inv_loop" a.Executor.inv_loop b.Executor.inv_loop;
      check Alcotest.int "inv_trip" a.Executor.inv_trip b.Executor.inv_trip;
      check Alcotest.int "inv_cycles" a.Executor.inv_cycles
        b.Executor.inv_cycles)
    l.Executor.r_invocations e.Executor.r_invocations;
  Array.iteri
    (fun i (sl : Stats.t) ->
      let se = e.Executor.r_core_stats.(i) in
      check Alcotest.int
        (Printf.sprintf "core %d cycles" i)
        sl.Stats.cycles se.Stats.cycles;
      check Alcotest.int
        (Printf.sprintf "core %d retired" i)
        sl.Stats.retired se.Stats.retired;
      List.iter
        (fun b ->
          check Alcotest.int
            (Printf.sprintf "core %d bucket %s" i (Stats.bucket_name b))
            (Stats.get sl b) (Stats.get se b))
        Stats.all_buckets)
    l.Executor.r_core_stats;
  check Alcotest.bool "memory image" true
    (Helix_ir.Memory.equal l.Executor.r_mem e.Executor.r_mem);
  check_metrics_equal l.Executor.r_metrics e.Executor.r_metrics

(* [check_identical] plus: the fast side really ran the engine kind the
   test asked for (0 = legacy, 1 = event, 2 = heap). *)
let check_identical_kind ~kind (l : Executor.result) (e : Executor.result) =
  check_identical l e;
  match Helix_obs.Metrics.find_int e.Executor.r_metrics "engine.kind" with
  | Some k -> check Alcotest.int "engine kind ran" kind k
  | None -> Alcotest.fail "engine.kind metric missing"

let jitter_cfg seed =
  let cfg =
    Executor.default_config ~ring:true ~comm:Executor.fully_decoupled
      Mach_config.default
  in
  {
    cfg with
    Executor.ring_cfg =
      Option.map
        (fun rc ->
          {
            rc with
            Helix_ring.Ring.perturb = Some (Helix_ring.Ring.perturbed ~seed ());
          })
        cfg.Executor.ring_cfg;
  }

let configs =
  [
    ( "helix",
      Executor.default_config ~ring:true ~comm:Executor.fully_decoupled
        Mach_config.default );
    ( "conventional",
      Executor.default_config ~ring:false ~comm:Executor.fully_coupled
        Mach_config.default );
    ("jitter1", jitter_cfg 1);
    ("jitter42", jitter_cfg 42);
  ]

let differential_tests =
  List.concat_map
    (fun (wl : Workload.t) ->
      List.map
        (fun (cfg_name, cfg) ->
          tc
            (Printf.sprintf "%s / %s" wl.Workload.name cfg_name)
            (fun () ->
              let l = run_with ~engine:Engine.Legacy ~cfg wl in
              let e = run_with ~engine:Engine.Event ~cfg wl in
              let h = run_with ~engine:Engine.Heap ~cfg wl in
              check_identical_kind ~kind:1 l e;
              check_identical_kind ~kind:2 l h))
        configs)
    Registry.all

(* Out-of-order cores exercise a different next-event computation. *)
let ooo_tests =
  List.concat_map
    (fun core ->
      List.map
        (fun wl_name ->
          let wl =
            List.find (fun w -> w.Workload.name = wl_name) Registry.all
          in
          tc
            (Printf.sprintf "%s / ooo width %d" wl_name
               core.Mach_config.width)
            (fun () ->
              let mach = { Mach_config.default with Mach_config.core } in
              let cfg =
                Executor.default_config ~ring:true
                  ~comm:Executor.fully_decoupled mach
              in
              let l = run_with ~engine:Engine.Legacy ~cfg wl in
              let e = run_with ~engine:Engine.Event ~cfg wl in
              let h = run_with ~engine:Engine.Heap ~cfg wl in
              check_identical_kind ~kind:1 l e;
              check_identical_kind ~kind:2 l h))
        [ "164.gzip"; "197.parser" ])
    [ Mach_config.ooo2_core; Mach_config.ooo4_core ]

(* ---- fuel and watchdog under fast-forward --------------------------- *)

(* A fast-forward window must never jump over the fuel boundary or the
   watchdog trigger: both engines must die at the same cycle with the
   same full report (the report embeds the cycle, the phase counters and
   the complete ring snapshot, so string equality is a strong check). *)

let stuck_of ~engine ~(cfg : Executor.config) wl =
  match run_with ~engine ~cfg wl with
  | _ -> Alcotest.fail "expected a Stuck run"
  | exception Executor.Stuck (reason, report) -> (reason, report)

let gzip () = List.find (fun w -> w.Workload.name = "164.gzip") Registry.all

let fuel_test =
  tc "fuel exhaustion fires at the same cycle" (fun () ->
      let cfg =
        {
          (Executor.default_config ~ring:true ~comm:Executor.fully_decoupled
             Mach_config.default)
          with
          Executor.fuel = 10_000;
        }
      in
      let rl, sl = stuck_of ~engine:Engine.Legacy ~cfg (gzip ()) in
      let re, se = stuck_of ~engine:Engine.Event ~cfg (gzip ()) in
      let rh, sh = stuck_of ~engine:Engine.Heap ~cfg (gzip ()) in
      check Alcotest.string "reason"
        (Executor.stuck_reason_name rl)
        (Executor.stuck_reason_name re);
      check Alcotest.string "reason (heap)"
        (Executor.stuck_reason_name rl)
        (Executor.stuck_reason_name rh);
      check Alcotest.string "reason is fuel"
        (Executor.stuck_reason_name Executor.Fuel)
        (Executor.stuck_reason_name rl);
      check Alcotest.string "identical stuck report" sl se;
      check Alcotest.string "identical stuck report (heap)" sl sh)

let watchdog_test =
  tc "watchdog wedges at the same cycle" (fun () ->
      (* a watchdog shorter than a long ring round-trip stall trips
         during a healthy run: both engines must observe the identical
         wedge *)
      let cfg =
        {
          (Executor.default_config ~ring:true ~comm:Executor.fully_decoupled
             Mach_config.default)
          with
          Executor.watchdog_cycles = 40;
        }
      in
      let rl, sl = stuck_of ~engine:Engine.Legacy ~cfg (gzip ()) in
      let re, se = stuck_of ~engine:Engine.Event ~cfg (gzip ()) in
      let rh, sh = stuck_of ~engine:Engine.Heap ~cfg (gzip ()) in
      check Alcotest.string "reason"
        (Executor.stuck_reason_name rl)
        (Executor.stuck_reason_name re);
      check Alcotest.string "reason (heap)"
        (Executor.stuck_reason_name rl)
        (Executor.stuck_reason_name rh);
      check Alcotest.string "reason is deadlock"
        (Executor.stuck_reason_name Executor.Deadlock)
        (Executor.stuck_reason_name rl);
      check Alcotest.string "identical stuck report" sl se;
      check Alcotest.string "identical stuck report (heap)" sl sh)

(* ---- synthetic components: the engine protocol in isolation ---------- *)

(* Scripted components with exact wake-up promises, run under all three
   engine kinds.  The observable is a log of (component, cycle) firings:
   it must be identical whether the engine ticks every cycle (legacy),
   rescans (event) or trusts cached promises in the heap. *)

(* Fires exactly at the cycles in [fires] (sorted), promising the next
   one. *)
let pulse ~name ~(log : Buffer.t) fires =
  let remaining = ref fires in
  {
    Engine.cp_name = name;
    cp_tick =
      (fun ~cycle ->
        match !remaining with
        | c :: rest when c = cycle ->
            Buffer.add_string log (Printf.sprintf "%s@%d;" name cycle);
            remaining := rest
        | _ -> ());
    cp_next_event =
      (fun ~now ->
        match !remaining with [] -> None | c :: _ -> Some (max c now));
    cp_skip = (fun ~now:_ ~cycles:_ -> ());
    (* after a firing the component was active (hot), so the engine
       re-polls it anyway; promises otherwise only move later *)
    cp_changed = (fun () -> false);
  }

let run_pulses ?(horizon = 400) kind schedules =
  let clock = ref 0 in
  let eng = Engine.create ~kind ~clock () in
  let log = Buffer.create 256 in
  List.iteri
    (fun i fires ->
      ignore (Engine.register eng (pulse ~name:(string_of_int i) ~log fires)))
    schedules;
  while !clock < horizon do
    Engine.step eng
  done;
  (Buffer.contents log, Engine.skipped_cycles eng)

let synthetic_tests =
  [
    tc "pulse schedules fire identically under all engines" (fun () ->
        let schedules = [ [ 0; 7; 14; 200 ]; [ 3; 50; 51; 120 ]; [ 44 ] ] in
        let ll, ls = run_pulses Engine.Legacy schedules in
        let el, es = run_pulses Engine.Event schedules in
        let hl, hs = run_pulses Engine.Heap schedules in
        check Alcotest.string "event log" ll el;
        check Alcotest.string "heap log" ll hl;
        check Alcotest.int "legacy never skips" 0 ls;
        check Alcotest.bool "event skipped" true (es > 0);
        check Alcotest.bool "heap skipped" true (hs > 0));
    tc "a promise that moves later never loses its firing" (fun () ->
        (* the component promises 100 early on, then (without ever being
           active, and without signalling cp_changed) revises to 150:
           the heap's cached entry at 100 is stale.  A stale entry may
           clamp a window -- cost, never correctness -- and the firing
           at 150 must still happen in every engine. *)
        let run kind =
          let clock = ref 0 in
          let eng = Engine.create ~kind ~clock () in
          let log = Buffer.create 64 in
          let fired = ref false in
          ignore
            (Engine.register eng
               {
                 Engine.cp_name = "shifty";
                 cp_tick =
                   (fun ~cycle ->
                     if cycle = 150 && not !fired then begin
                       Buffer.add_string log "shifty@150;";
                       fired := true
                     end);
                 cp_next_event =
                   (fun ~now ->
                     if !fired then None
                     else if now < 60 then Some 100
                     else Some 150);
                 cp_skip = (fun ~now:_ ~cycles:_ -> ());
                 cp_changed = (fun () -> false);
               });
          ignore (Engine.register eng (pulse ~name:"beat" ~log [ 10; 300 ]));
          while !clock < 350 do
            Engine.step eng
          done;
          Buffer.contents log
        in
        let ll = run Engine.Legacy in
        check Alcotest.string "event log" ll (run Engine.Event);
        check Alcotest.string "heap log" ll (run Engine.Heap));
    tc "Engine.wake reschedules a reactive component" (fun () ->
        (* S is purely reactive (promise None, cp_changed false): the
           heap engine would never re-poll it on its own.  W fires at 40
           and pokes S for cycle 45 through Engine.wake -- exactly the
           executor's ring-injection path.  S must fire at 45 under
           every engine. *)
        let run kind =
          let clock = ref 0 in
          let eng = Engine.create ~kind ~clock () in
          let log = Buffer.create 64 in
          let poked = ref None in
          let s_id =
            Engine.register eng
              {
                Engine.cp_name = "S";
                cp_tick =
                  (fun ~cycle ->
                    match !poked with
                    | Some c when c = cycle ->
                        Buffer.add_string log
                          (Printf.sprintf "S@%d;" cycle);
                        poked := None
                    | _ -> ());
                cp_next_event =
                  (fun ~now ->
                    match !poked with
                    | Some c -> Some (max c now)
                    | None -> None);
                cp_skip = (fun ~now:_ ~cycles:_ -> ());
                cp_changed = (fun () -> false);
              }
          in
          let w_fires = ref [ 40 ] in
          ignore
            (Engine.register eng
               {
                 Engine.cp_name = "W";
                 cp_tick =
                   (fun ~cycle ->
                     match !w_fires with
                     | c :: rest when c = cycle ->
                         Buffer.add_string log
                           (Printf.sprintf "W@%d;" cycle);
                         poked := Some 45;
                         Engine.wake eng ~id:s_id ~at:45;
                         w_fires := rest
                     | _ -> ());
                 cp_next_event =
                   (fun ~now ->
                     match !w_fires with
                     | [] -> None
                     | c :: _ -> Some (max c now));
                 cp_skip = (fun ~now:_ ~cycles:_ -> ());
                 cp_changed = (fun () -> false);
               });
          ignore (Engine.register eng (pulse ~name:"beat" ~log [ 200 ]));
          while !clock < 250 do
            Engine.step eng
          done;
          Buffer.contents log
        in
        let ll = run Engine.Legacy in
        check Alcotest.bool "S fired" true
          (String.length ll > 0
          && String.index_opt ll 'S' <> None);
        check Alcotest.string "event log" ll (run Engine.Event);
        check Alcotest.string "heap log" ll (run Engine.Heap));
  ]

(* Randomized pulse schedules: the same identity as above over arbitrary
   firing patterns, including duplicate-free but overlapping schedules
   across components. *)
let prop_pulse_differential =
  QCheck.Test.make ~name:"random pulse schedules are engine-invariant"
    ~count:60
    QCheck.(
      triple
        (list_of_size (Gen.int_range 0 20) (int_range 0 300))
        (list_of_size (Gen.int_range 0 20) (int_range 0 300))
        (list_of_size (Gen.int_range 0 20) (int_range 0 300)))
    (fun (a, b, c) ->
      let schedules = List.map (List.sort_uniq compare) [ a; b; c ] in
      let ll, _ = run_pulses ~horizon:310 Engine.Legacy schedules in
      let el, _ = run_pulses ~horizon:310 Engine.Event schedules in
      let hl, _ = run_pulses ~horizon:310 Engine.Heap schedules in
      ll = el && ll = hl)

(* ---- the wake heap --------------------------------------------------- *)

module Wake_heap = Helix_engine.Wake_heap

let drain h =
  let rec go acc =
    match Wake_heap.peek h with
    | None -> List.rev acc
    | Some (c, i) ->
        Wake_heap.drop h;
        go ((c, i) :: acc)
  in
  go []

let prop_heap_sorted =
  QCheck.Test.make ~name:"wake-heap drains in cycle order" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 0 200)
        (pair (int_range 0 10_000) (int_range 0 31)))
    (fun entries ->
      let h = Wake_heap.create () in
      List.iter (fun (c, i) -> Wake_heap.push h ~cycle:c ~id:i) entries;
      let out = drain h in
      let cycles = List.map fst out in
      List.length out = List.length entries
      && cycles = List.sort compare cycles)

let prop_heap_model =
  (* interleaved push/drop against a sorted-list model: peek always
     agrees on the minimum cycle *)
  QCheck.Test.make ~name:"wake-heap matches a sorted-list model" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 0 120)
        (option (pair (int_range 0 10_000) (int_range 0 31))))
    (fun ops ->
      let h = Wake_heap.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          (match op with
          | Some (c, i) ->
              Wake_heap.push h ~cycle:c ~id:i;
              model := List.merge compare [ (c, i) ] !model
          | None -> (
              Wake_heap.drop h;
              match !model with [] -> () | _ :: rest -> model := rest));
          match (Wake_heap.peek h, !model) with
          | None, [] -> true
          | Some (c, _), (mc, _) :: _ -> c = mc
          | _ -> false)
        ops)

let heap_unit_tests =
  [
    tc "push/peek/drop basics" (fun () ->
        let h = Wake_heap.create () in
        check Alcotest.bool "empty" true (Wake_heap.peek h = None);
        Wake_heap.push h ~cycle:30 ~id:2;
        Wake_heap.push h ~cycle:10 ~id:1;
        Wake_heap.push h ~cycle:20 ~id:3;
        check Alcotest.(option (pair int int)) "min" (Some (10, 1))
          (Wake_heap.peek h);
        Wake_heap.drop h;
        check Alcotest.(option (pair int int)) "next" (Some (20, 3))
          (Wake_heap.peek h);
        check Alcotest.int "pushes counted" 3 (Wake_heap.pushes h));
    tc "duplicate cycles and ids are kept" (fun () ->
        let h = Wake_heap.create () in
        Wake_heap.push h ~cycle:5 ~id:0;
        Wake_heap.push h ~cycle:5 ~id:0;
        Wake_heap.push h ~cycle:5 ~id:1;
        check Alcotest.int "size" 3 (Wake_heap.size h));
    QCheck_alcotest.to_alcotest prop_heap_sorted;
    QCheck_alcotest.to_alcotest prop_heap_model;
  ]

(* ---- the domain pool -------------------------------------------------- *)

let pool_tests =
  [
    tc "Pool.map preserves order" (fun () ->
        Helix_experiments.Exp_common.Pool.set_jobs 2;
        Fun.protect
          ~finally:(fun () -> Helix_experiments.Exp_common.Pool.set_jobs 1)
          (fun () ->
            let xs = List.init 100 Fun.id in
            let ys = Helix_experiments.Exp_common.Pool.map (fun x -> x * x) xs in
            check (Alcotest.list Alcotest.int) "squares"
              (List.map (fun x -> x * x) xs)
              ys));
    tc "Pool.map re-raises worker exceptions" (fun () ->
        Helix_experiments.Exp_common.Pool.set_jobs 2;
        Fun.protect
          ~finally:(fun () -> Helix_experiments.Exp_common.Pool.set_jobs 1)
          (fun () ->
            match
              Helix_experiments.Exp_common.Pool.map
                (fun x -> if x = 13 then failwith "boom" else x)
                (List.init 20 Fun.id)
            with
            | _ -> Alcotest.fail "expected Failure"
            | exception Failure m -> check Alcotest.string "message" "boom" m));
    tc "Pool.map with jobs=1 is plain map" (fun () ->
        let xs = List.init 10 Fun.id in
        check (Alcotest.list Alcotest.int) "identity" xs
          (Helix_experiments.Exp_common.Pool.map Fun.id xs));
    tc "precompile warms the memo caches" (fun () ->
        let module E = Helix_experiments.Exp_common in
        E.Pool.set_jobs 2;
        Fun.protect
          ~finally:(fun () -> E.Pool.set_jobs 1)
          (fun () ->
            let wl = Registry.find "164.gzip" in
            E.precompile ~versions:[ E.V3 ] [ wl ];
            (* subsequent lookups must be cache hits: physically the
               same result/compiled values precompile stored *)
            check Alcotest.bool "sequential cached" true
              (E.sequential wl == E.sequential wl);
            check Alcotest.bool "compiled cached" true
              (E.compiled ~cores:16 wl E.V3 == E.compiled ~cores:16 wl E.V3)));
  ]

let () =
  Alcotest.run "engine"
    [
      ("differential", differential_tests);
      ("ooo-differential", ooo_tests);
      ("stuck-boundaries", [ fuel_test; watchdog_test ]);
      ( "synthetic",
        synthetic_tests
        @ [ QCheck_alcotest.to_alcotest prop_pulse_differential ] );
      ("wake-heap", heap_unit_tests);
      ("pool", pool_tests);
    ]
