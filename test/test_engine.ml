open Helix_machine
open Helix_core
open Helix_workloads

(* Differential test: the event engine must be bit-identical to the
   legacy per-cycle engine on every registry workload, in every
   communication mode, with and without ring fault-injection jitter.
   "Bit-identical" means: return value, total and per-core cycle
   accounting, retirement counts, the final memory image, invocation
   records and every exported metric except the engine's own
   ["engine.*"] counters. *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

module Engine = Helix_engine.Engine

(* One compile per workload (the compiled program is immutable and
   engine-independent). *)
let compiled_cache : (string, Helix_hcc.Hcc.compiled) Hashtbl.t =
  Hashtbl.create 16

let compiled (wl : Workload.t) =
  match Hashtbl.find_opt compiled_cache wl.Workload.name with
  | Some c -> c
  | None ->
      let s = wl.Workload.build () in
      let c =
        Helix_hcc.Hcc.compile
          (Helix_hcc.Hcc_config.v3 ~target_cores:16 ())
          s.Workload.prog s.Workload.layout
          ~train_mem:(s.Workload.init Workload.Train)
      in
      Hashtbl.replace compiled_cache wl.Workload.name c;
      c

let run_with ~engine ~(cfg : Executor.config) (wl : Workload.t) =
  let s = wl.Workload.build () in
  let c = compiled wl in
  Executor.run ~compiled:c
    { cfg with Executor.engine }
    c.Helix_hcc.Hcc.cp_prog
    (s.Workload.init Workload.Ref)

let value_eq (a : Helix_obs.Metrics.value) (b : Helix_obs.Metrics.value) =
  Stdlib.compare a b = 0

let engine_metric name = String.length name >= 7 && String.sub name 0 7 = "engine."

let check_metrics_equal (ml : Helix_obs.Metrics.t) (me : Helix_obs.Metrics.t)
    =
  let names m =
    List.filter (fun n -> not (engine_metric n)) (Helix_obs.Metrics.names m)
  in
  check (Alcotest.list Alcotest.string) "metric names" (names ml) (names me);
  List.iter
    (fun n ->
      let vl = Helix_obs.Metrics.find ml n in
      let ve = Helix_obs.Metrics.find me n in
      match (vl, ve) with
      | Some a, Some b ->
          if not (value_eq a b) then
            Alcotest.failf "metric %s differs between engines" n
      | _ -> Alcotest.failf "metric %s missing" n)
    (names ml)

let check_identical (l : Executor.result) (e : Executor.result) =
  check Alcotest.int "r_cycles" l.Executor.r_cycles e.Executor.r_cycles;
  check (Alcotest.option Alcotest.int) "r_ret" l.Executor.r_ret
    e.Executor.r_ret;
  check Alcotest.int "r_retired" l.Executor.r_retired e.Executor.r_retired;
  check Alcotest.int "r_serial_cycles" l.Executor.r_serial_cycles
    e.Executor.r_serial_cycles;
  check Alcotest.int "r_parallel_cycles" l.Executor.r_parallel_cycles
    e.Executor.r_parallel_cycles;
  check Alcotest.int "invocations"
    (List.length l.Executor.r_invocations)
    (List.length e.Executor.r_invocations);
  List.iter2
    (fun (a : Executor.invocation_record) (b : Executor.invocation_record) ->
      check Alcotest.int "inv_loop" a.Executor.inv_loop b.Executor.inv_loop;
      check Alcotest.int "inv_trip" a.Executor.inv_trip b.Executor.inv_trip;
      check Alcotest.int "inv_cycles" a.Executor.inv_cycles
        b.Executor.inv_cycles)
    l.Executor.r_invocations e.Executor.r_invocations;
  Array.iteri
    (fun i (sl : Stats.t) ->
      let se = e.Executor.r_core_stats.(i) in
      check Alcotest.int
        (Printf.sprintf "core %d cycles" i)
        sl.Stats.cycles se.Stats.cycles;
      check Alcotest.int
        (Printf.sprintf "core %d retired" i)
        sl.Stats.retired se.Stats.retired;
      List.iter
        (fun b ->
          check Alcotest.int
            (Printf.sprintf "core %d bucket %s" i (Stats.bucket_name b))
            (Stats.get sl b) (Stats.get se b))
        Stats.all_buckets)
    l.Executor.r_core_stats;
  check Alcotest.bool "memory image" true
    (Helix_ir.Memory.equal l.Executor.r_mem e.Executor.r_mem);
  check_metrics_equal l.Executor.r_metrics e.Executor.r_metrics;
  (* and the event engine did actually fast-forward somewhere *)
  match Helix_obs.Metrics.find_int e.Executor.r_metrics "engine.kind" with
  | Some k -> check Alcotest.int "event engine ran" 1 k
  | None -> Alcotest.fail "engine.kind metric missing"

let jitter_cfg seed =
  let cfg =
    Executor.default_config ~ring:true ~comm:Executor.fully_decoupled
      Mach_config.default
  in
  {
    cfg with
    Executor.ring_cfg =
      Option.map
        (fun rc ->
          {
            rc with
            Helix_ring.Ring.perturb = Some (Helix_ring.Ring.perturbed ~seed ());
          })
        cfg.Executor.ring_cfg;
  }

let configs =
  [
    ( "helix",
      Executor.default_config ~ring:true ~comm:Executor.fully_decoupled
        Mach_config.default );
    ( "conventional",
      Executor.default_config ~ring:false ~comm:Executor.fully_coupled
        Mach_config.default );
    ("jitter1", jitter_cfg 1);
    ("jitter42", jitter_cfg 42);
  ]

let differential_tests =
  List.concat_map
    (fun (wl : Workload.t) ->
      List.map
        (fun (cfg_name, cfg) ->
          tc
            (Printf.sprintf "%s / %s" wl.Workload.name cfg_name)
            (fun () ->
              let l = run_with ~engine:Engine.Legacy ~cfg wl in
              let e = run_with ~engine:Engine.Event ~cfg wl in
              check_identical l e))
        configs)
    Registry.all

(* Out-of-order cores exercise a different next-event computation. *)
let ooo_tests =
  List.concat_map
    (fun core ->
      List.map
        (fun wl_name ->
          let wl =
            List.find (fun w -> w.Workload.name = wl_name) Registry.all
          in
          tc
            (Printf.sprintf "%s / ooo width %d" wl_name
               core.Mach_config.width)
            (fun () ->
              let mach = { Mach_config.default with Mach_config.core } in
              let cfg =
                Executor.default_config ~ring:true
                  ~comm:Executor.fully_decoupled mach
              in
              let l = run_with ~engine:Engine.Legacy ~cfg wl in
              let e = run_with ~engine:Engine.Event ~cfg wl in
              check_identical l e))
        [ "164.gzip"; "197.parser" ])
    [ Mach_config.ooo2_core; Mach_config.ooo4_core ]

(* ---- fuel and watchdog under fast-forward --------------------------- *)

(* A fast-forward window must never jump over the fuel boundary or the
   watchdog trigger: both engines must die at the same cycle with the
   same full report (the report embeds the cycle, the phase counters and
   the complete ring snapshot, so string equality is a strong check). *)

let stuck_of ~engine ~(cfg : Executor.config) wl =
  match run_with ~engine ~cfg wl with
  | _ -> Alcotest.fail "expected a Stuck run"
  | exception Executor.Stuck (reason, report) -> (reason, report)

let gzip () = List.find (fun w -> w.Workload.name = "164.gzip") Registry.all

let fuel_test =
  tc "fuel exhaustion fires at the same cycle" (fun () ->
      let cfg =
        {
          (Executor.default_config ~ring:true ~comm:Executor.fully_decoupled
             Mach_config.default)
          with
          Executor.fuel = 10_000;
        }
      in
      let rl, sl = stuck_of ~engine:Engine.Legacy ~cfg (gzip ()) in
      let re, se = stuck_of ~engine:Engine.Event ~cfg (gzip ()) in
      check Alcotest.string "reason"
        (Executor.stuck_reason_name rl)
        (Executor.stuck_reason_name re);
      check Alcotest.string "reason is fuel"
        (Executor.stuck_reason_name Executor.Fuel)
        (Executor.stuck_reason_name rl);
      check Alcotest.string "identical stuck report" sl se)

let watchdog_test =
  tc "watchdog wedges at the same cycle" (fun () ->
      (* a watchdog shorter than a long ring round-trip stall trips
         during a healthy run: both engines must observe the identical
         wedge *)
      let cfg =
        {
          (Executor.default_config ~ring:true ~comm:Executor.fully_decoupled
             Mach_config.default)
          with
          Executor.watchdog_cycles = 40;
        }
      in
      let rl, sl = stuck_of ~engine:Engine.Legacy ~cfg (gzip ()) in
      let re, se = stuck_of ~engine:Engine.Event ~cfg (gzip ()) in
      check Alcotest.string "reason"
        (Executor.stuck_reason_name rl)
        (Executor.stuck_reason_name re);
      check Alcotest.string "reason is deadlock"
        (Executor.stuck_reason_name Executor.Deadlock)
        (Executor.stuck_reason_name rl);
      check Alcotest.string "identical stuck report" sl se)

(* ---- the domain pool -------------------------------------------------- *)

let pool_tests =
  [
    tc "Pool.map preserves order" (fun () ->
        Helix_experiments.Exp_common.Pool.set_jobs 2;
        Fun.protect
          ~finally:(fun () -> Helix_experiments.Exp_common.Pool.set_jobs 1)
          (fun () ->
            let xs = List.init 100 Fun.id in
            let ys = Helix_experiments.Exp_common.Pool.map (fun x -> x * x) xs in
            check (Alcotest.list Alcotest.int) "squares"
              (List.map (fun x -> x * x) xs)
              ys));
    tc "Pool.map re-raises worker exceptions" (fun () ->
        Helix_experiments.Exp_common.Pool.set_jobs 2;
        Fun.protect
          ~finally:(fun () -> Helix_experiments.Exp_common.Pool.set_jobs 1)
          (fun () ->
            match
              Helix_experiments.Exp_common.Pool.map
                (fun x -> if x = 13 then failwith "boom" else x)
                (List.init 20 Fun.id)
            with
            | _ -> Alcotest.fail "expected Failure"
            | exception Failure m -> check Alcotest.string "message" "boom" m));
    tc "Pool.map with jobs=1 is plain map" (fun () ->
        let xs = List.init 10 Fun.id in
        check (Alcotest.list Alcotest.int) "identity" xs
          (Helix_experiments.Exp_common.Pool.map Fun.id xs));
  ]

let () =
  Alcotest.run "engine"
    [
      ("differential", differential_tests);
      ("ooo-differential", ooo_tests);
      ("stuck-boundaries", [ fuel_test; watchdog_test ]);
      ("pool", pool_tests);
    ]
