open Helix_ir
open Helix_machine
open Helix_hcc
open Helix_core

(* End-to-end runtime tests: the cycle-stepped executor against the
   reference interpreter, across loop shapes, machine configurations and
   communication modes; protocol fault injection; invariants. *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let an ?(flow = -1) ?(path = "") ?(ty = "") ?affine site =
  Ir.annot ~flow ~path ~ty ?affine site

type scenario = {
  prog : unit -> Ir.program * Memory.Layout.t;
  name : string;
}

let mk name build = { name; prog = (fun () ->
    let layout = Memory.Layout.create () in
    let b = Builder.create "main" in
    let ret = build b layout in
    Builder.ret b (Some ret);
    let p = Ir.create_program () in
    Ir.add_func p (Builder.func b);
    (p, layout)) }

(* ---- scenario corpus -------------------------------------------------- *)

(* shared histogram + reduction + affine output *)
let s_hist =
  mk "histogram" (fun b layout ->
      let data = Memory.Layout.alloc layout "data" 512 in
      let hist = Memory.Layout.alloc layout "hist" 16 in
      let out = Memory.Layout.alloc layout "out" 512 in
      let an_d = an ~path:"d[]" ~affine:0 data.Memory.Layout.site in
      let an_h = an ~path:"h[]" hist.Memory.Layout.site in
      let an_o = an ~path:"o[]" ~affine:0 out.Memory.Layout.site in
      (* init *)
      let _ =
        Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 400) (fun i ->
            let h = Builder.libcall b Ir.Lc_hash [ Ir.Reg i ] in
            let v = Builder.band b (Ir.Reg h) (Ir.Imm 255) in
            Builder.store b ~offset:(Ir.Reg i) ~an:an_d
              (Ir.Imm data.Memory.Layout.base) (Ir.Reg v))
      in
      let sum = Builder.mov b (Ir.Imm 0) in
      let _ =
        Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 400) (fun i ->
            let d =
              Builder.load b ~offset:(Ir.Reg i) ~an:an_d
                (Ir.Imm data.Memory.Layout.base)
            in
            let k = Builder.band b (Ir.Reg d) (Ir.Imm 15) in
            let slot = Builder.add b (Ir.Imm hist.Memory.Layout.base) (Ir.Reg k) in
            let hv = Builder.load b ~an:an_h (Ir.Reg slot) in
            let hv1 = Builder.add b (Ir.Reg hv) (Ir.Imm 1) in
            Builder.store b ~an:an_h (Ir.Reg slot) (Ir.Reg hv1);
            Builder.store b ~offset:(Ir.Reg i) ~an:an_o
              (Ir.Imm out.Memory.Layout.base) (Ir.Reg d);
            let s = Builder.add b (Ir.Reg sum) (Ir.Reg d) in
            Builder.mov_to b sum (Ir.Reg s))
      in
      Ir.Reg sum)

(* quadratic IV with live-out, plus min/max/product reductions *)
let s_quadratic =
  mk "quadratic" (fun b _layout ->
      let q = Builder.mov b (Ir.Imm 5) in
      let st = Builder.mov b (Ir.Imm 3) in
      let mn = Builder.mov b (Ir.Imm max_int) in
      let mx = Builder.mov b (Ir.Imm min_int) in
      let pr = Builder.mov b (Ir.Imm 1) in
      let _ =
        Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 37) (fun i ->
            let st' = Builder.add b (Ir.Reg st) (Ir.Imm 2) in
            Builder.mov_to b st (Ir.Reg st');
            let q' = Builder.add b (Ir.Reg q) (Ir.Reg st) in
            Builder.mov_to b q (Ir.Reg q');
            let hv = Builder.libcall b Ir.Lc_hash [ Ir.Reg i ] in
            let hv' = Builder.band b (Ir.Reg hv) (Ir.Imm 63) in
            let m1 = Builder.imin b (Ir.Reg mn) (Ir.Reg hv') in
            Builder.mov_to b mn (Ir.Reg m1);
            let m2 = Builder.imax b (Ir.Reg mx) (Ir.Reg hv') in
            Builder.mov_to b mx (Ir.Reg m2);
            let p0 = Builder.band b (Ir.Reg hv') (Ir.Imm 3) in
            let p1 = Builder.add b (Ir.Reg p0) (Ir.Imm 1) in
            let p2 = Builder.mul b (Ir.Reg pr) (Ir.Reg p1) in
            let p3 = Builder.band b (Ir.Reg p2) (Ir.Imm 0xffff) in
            (* masking breaks the pure product idiom; use plain product *)
            ignore p3;
            Builder.mov_to b pr (Ir.Reg p2))
      in
      let t0 = Builder.add b (Ir.Reg q) (Ir.Reg mn) in
      let t1 = Builder.add b (Ir.Reg t0) (Ir.Reg mx) in
      let t2 = Builder.band b (Ir.Reg pr) (Ir.Imm 1023) in
      let t3 = Builder.add b (Ir.Reg t1) (Ir.Reg t2) in
      Ir.Reg t3)

(* conditionally-set last-value variable *)
let s_lastval =
  mk "lastval" (fun b _layout ->
      let seen = Builder.mov b (Ir.Imm (-1)) in
      let _ =
        Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm 50) (fun i ->
            let h = Builder.libcall b Ir.Lc_hash [ Ir.Reg i ] in
            let bit = Builder.band b (Ir.Reg h) (Ir.Imm 7) in
            let is0 = Builder.eq b (Ir.Reg bit) (Ir.Imm 0) in
            Builder.if_then b (Ir.Reg is0) (fun () ->
                Builder.mov_to b seen (Ir.Reg i)))
      in
      Ir.Reg seen)

(* data-dependent exit: conditional (gated) parallel loop *)
let s_conditional =
  mk "conditional" (fun b layout ->
      let cell = Memory.Layout.alloc layout "budget" 8 in
      let an_c = an ~path:"budget" cell.Memory.Layout.site in
      Builder.store b ~an:an_c (Ir.Imm cell.Memory.Layout.base) (Ir.Imm 37);
      let spent = Builder.mov b (Ir.Imm 0) in
      let _ =
        Builder.while_loop b
          (fun () -> Builder.lt b (Ir.Reg spent) (Ir.Reg spent) |> fun _ ->
            (* condition on a register chain the compiler cannot count:
               spent < limit where limit derives from a hash *)
            let lim = Builder.libcall b Ir.Lc_hash [ Ir.Reg spent ] in
            let lim7 = Builder.band b (Ir.Reg lim) (Ir.Imm 127) in
            let c = Builder.ne b (Ir.Reg lim7) (Ir.Imm 3) in
            let stop = Builder.gt b (Ir.Reg spent) (Ir.Imm 40) in
            let notstop = Builder.eq b (Ir.Reg stop) (Ir.Imm 0) in
            Builder.band b (Ir.Reg c) (Ir.Reg notstop))
          (fun () ->
            let s = Builder.add b (Ir.Reg spent) (Ir.Imm 1) in
            Builder.mov_to b spent (Ir.Reg s))
      in
      Ir.Reg spent)

(* trip-count edge cases *)
let s_trip n =
  mk (Fmt.str "trip%d" n) (fun b layout ->
      let cell = Memory.Layout.alloc layout "c" 8 in
      let an_c = an ~path:"c" cell.Memory.Layout.site in
      let _ =
        Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm n) (fun i ->
            let v = Builder.load b ~an:an_c (Ir.Imm cell.Memory.Layout.base) in
            let v1 = Builder.add b (Ir.Reg v) (Ir.Reg i) in
            Builder.store b ~an:an_c (Ir.Imm cell.Memory.Layout.base)
              (Ir.Reg v1))
      in
      let v = Builder.load b ~an:an_c (Ir.Imm cell.Memory.Layout.base) in
      Ir.Reg v)

(* downward-counting loop *)
let s_downward =
  mk "downward" (fun b _layout ->
      let i = Builder.fresh b in
      Builder.mov_to b i (Ir.Imm 40);
      let acc = Builder.mov b (Ir.Imm 0) in
      let header = Builder.fresh_label b in
      let body_l = Builder.fresh_label b in
      let exit_l = Builder.fresh_label b in
      Builder.jmp b header;
      Builder.switch_to b header;
      let c = Builder.gt b (Ir.Reg i) (Ir.Imm 0) in
      Builder.br b (Ir.Reg c) body_l exit_l;
      Builder.switch_to b body_l;
      let h = Builder.libcall b Ir.Lc_hash [ Ir.Reg i ] in
      let h7 = Builder.band b (Ir.Reg h) (Ir.Imm 7) in
      let a = Builder.add b (Ir.Reg acc) (Ir.Reg h7) in
      Builder.mov_to b acc (Ir.Reg a);
      let i' = Builder.sub b (Ir.Reg i) (Ir.Imm 1) in
      Builder.mov_to b i (Ir.Reg i');
      Builder.jmp b header;
      Builder.switch_to b exit_l;
      Ir.Reg acc)

let scenarios =
  [ s_hist; s_quadratic; s_lastval; s_conditional; s_trip 0; s_trip 1;
    s_trip 7; s_trip 16; s_trip 33; s_downward ]

(* ---- equivalence harness ----------------------------------------------- *)

let compile_v3 (p, layout) =
  Hcc.compile (Hcc_config.v3 ()) p layout ~train_mem:(Memory.create ())

let run_scenario ?(exec_cfg = Executor.default_config Mach_config.default)
    (s : scenario) =
  let gp, _ = s.prog () in
  let g = Helix.golden_run gp (Memory.create ()) in
  let cp, layout = s.prog () in
  let compiled = Hcc.compile (Hcc_config.v3 ()) cp layout
      ~train_mem:(Memory.create ()) in
  let par = Executor.run ~compiled exec_cfg compiled.Hcc.cp_prog (Memory.create ()) in
  (g, compiled, par)

let equivalence_tests =
  List.map
    (fun s ->
      tc (Fmt.str "parallel == sequential: %s" s.name) (fun () ->
          let g, _, par = run_scenario s in
          let v = Helix.verify g par in
          Alcotest.(check bool) v.Helix.detail true v.Helix.ok))
    scenarios

let comm_mode_tests =
  List.concat_map
    (fun (mode_name, ring, comm) ->
      List.map
        (fun s ->
          tc (Fmt.str "%s mode: %s" mode_name s.name) (fun () ->
              let cfg =
                Executor.default_config ~ring ~comm Mach_config.default
              in
              let g, _, par = run_scenario ~exec_cfg:cfg s in
              let v = Helix.verify g par in
              Alcotest.(check bool) v.Helix.detail true v.Helix.ok))
        [ s_hist; s_quadratic; s_trip 7 ])
    [
      ("conventional", false, Executor.fully_coupled);
      ("sync-only", true,
       { Executor.reg_via_ring = false; mem_via_ring = false;
         sync_via_ring = true });
      ("mem-only", true,
       { Executor.reg_via_ring = false; mem_via_ring = true;
         sync_via_ring = false });
    ]

let machine_tests =
  List.concat_map
    (fun (mname, core) ->
      List.map
        (fun s ->
          tc (Fmt.str "%s: %s" mname s.name) (fun () ->
              let mach = Mach_config.with_core_kind Mach_config.default core in
              let g, _, par =
                run_scenario ~exec_cfg:(Executor.default_config mach) s
              in
              let v = Helix.verify g par in
              Alcotest.(check bool) v.Helix.detail true v.Helix.ok))
        [ s_hist; s_quadratic ])
    [ ("ooo2", Mach_config.ooo2_core); ("ooo4", Mach_config.ooo4_core) ]

let core_count_tests =
  List.map
    (fun n ->
      tc (Fmt.str "histogram on %d cores" n) (fun () ->
          let gp, _ = s_hist.prog () in
          let g = Helix.golden_run gp (Memory.create ()) in
          let cp, layout = s_hist.prog () in
          let compiled =
            Hcc.compile (Hcc_config.v3 ~target_cores:n ()) cp layout
              ~train_mem:(Memory.create ())
          in
          let cfg =
            Executor.default_config (Mach_config.with_cores Mach_config.default n)
          in
          let par =
            Executor.run ~compiled cfg compiled.Hcc.cp_prog (Memory.create ())
          in
          let v = Helix.verify g par in
          Alcotest.(check bool) v.Helix.detail true v.Helix.ok))
    [ 1; 2; 3; 5; 8; 16 ]

(* ---- invariants ----------------------------------------------------------- *)

let invariant_tests =
  [
    tc "speedup: parallel histogram beats sequential" (fun () ->
        let sp, _ = s_hist.prog () in
        let seq = Helix.run_sequential Mach_config.default sp (Memory.create ()) in
        let _, _, par = run_scenario s_hist in
        let su = Helix.speedup ~seq ~par in
        Alcotest.(check bool) (Fmt.str "speedup %.2f > 1.5" su) true
          (su > 1.5));
    tc "one-lap bound: at most 2 outstanding signals" (fun () ->
        List.iter
          (fun s ->
            let _, _, par = run_scenario s in
            Alcotest.(check bool)
              (Fmt.str "%s: max outstanding %d" s.name
                 par.Executor.r_max_outstanding_signals)
              true
              (par.Executor.r_max_outstanding_signals <= 2))
          scenarios);
    tc "overhead fractions bounded" (fun () ->
        let sp, _ = s_hist.prog () in
        let seq = Helix.run_sequential Mach_config.default sp (Memory.create ()) in
        let _, _, par = run_scenario s_hist in
        let ov =
          Overhead.analyze ~n_cores:16 ~seq_retired:seq.Executor.r_retired par
        in
        List.iter
          (fun (nm, v) ->
            Alcotest.(check bool) (nm ^ " in [0,1]") true (v >= 0.0 && v <= 1.0))
          (Overhead.categories ov);
        let total =
          List.fold_left (fun a (_, v) -> a +. v) 0.0 (Overhead.categories ov)
        in
        Alcotest.(check bool) "sum <= 1" true (total <= 1.0 +. 1e-9));
    tc "invocation records match loop activity" (fun () ->
        let _, compiled, par = run_scenario s_hist in
        Alcotest.(check bool) "some invocations" true
          (List.length par.Executor.r_invocations
           >= List.length compiled.Hcc.cp_selected));
  ]

(* ---- fault injection --------------------------------------------------------- *)

(* Remove every Wait from the generated body functions: the oracle must
   catch the resulting protocol violation (stale reads). *)
let strip_waits (compiled : Hcc.compiled) =
  List.iter
    (fun (pl : Parallel_loop.t) ->
      let bf = Ir.find_func compiled.Hcc.cp_prog pl.Parallel_loop.pl_body_fn in
      List.iter
        (fun l ->
          let blk = Ir.block_of_func bf l in
          blk.Ir.b_instrs <-
            List.filter
              (fun ins -> match ins with Ir.Wait _ -> false | _ -> true)
              blk.Ir.b_instrs)
        bf.Ir.f_order)
    (Hcc.selected_loops compiled)

let fault_tests =
  [
    tc "removing waits is caught by the oracle" (fun () ->
        let gp, _ = s_hist.prog () in
        let g = Helix.golden_run gp (Memory.create ()) in
        let cp, layout = s_hist.prog () in
        let compiled = compile_v3 (cp, layout) in
        strip_waits compiled;
        let par =
          Executor.run ~compiled
            (Executor.default_config Mach_config.default)
            compiled.Hcc.cp_prog (Memory.create ())
        in
        Alcotest.(check bool) "protocol violation detected" false
          (Helix.verify g par).Helix.ok);
  ]

(* ---- robustness: oracle, sanitizer, fallback --------------------------- *)

(* Remove every Signal: consumers wait forever, wedging the parallel
   phase (the watchdog-triggered fallback path). *)
let strip_signals (compiled : Hcc.compiled) =
  List.iter
    (fun (pl : Parallel_loop.t) ->
      let bf = Ir.find_func compiled.Hcc.cp_prog pl.Parallel_loop.pl_body_fn in
      List.iter
        (fun l ->
          let blk = Ir.block_of_func bf l in
          blk.Ir.b_instrs <-
            List.filter
              (fun ins -> match ins with Ir.Signal _ -> false | _ -> true)
              blk.Ir.b_instrs)
        bf.Ir.f_order)
    (Hcc.selected_loops compiled)

(* Duplicate every Signal: thresholds are met one iteration early
   (stale reads) and un-consumed signals accumulate past the paper's
   past/future bound of 2. *)
let double_signals (compiled : Hcc.compiled) =
  List.iter
    (fun (pl : Parallel_loop.t) ->
      let bf = Ir.find_func compiled.Hcc.cp_prog pl.Parallel_loop.pl_body_fn in
      List.iter
        (fun l ->
          let blk = Ir.block_of_func bf l in
          blk.Ir.b_instrs <-
            List.concat_map
              (fun ins ->
                match ins with
                | Ir.Signal _ -> [ ins; ins ]
                | _ -> [ ins ])
              blk.Ir.b_instrs)
        bf.Ir.f_order)
    (Hcc.selected_loops compiled)

(* Run a deliberately mutilated compile of [s] under [robust] and return
   (golden, result, trace). *)
let run_mutilated ?(watchdog = max_int) ?engine ~robust ~mutate s =
  let tr = Helix_obs.Trace.create () in
  let gp, _ = s.prog () in
  let g = Helix.golden_run gp (Memory.create ()) in
  let cp, layout = s.prog () in
  let compiled = compile_v3 (cp, layout) in
  mutate compiled;
  let cfg =
    {
      (Executor.default_config ~trace:tr ~robust ?engine Mach_config.default)
      with
      Executor.watchdog_cycles = watchdog;
    }
  in
  let par = Executor.run ~compiled cfg compiled.Hcc.cp_prog (Memory.create ()) in
  (g, par, tr)

let event_kinds tr =
  List.map (fun e -> e.Helix_obs.Trace.ev_kind) (Helix_obs.Trace.events tr)

let has_violation_kind tr k =
  List.exists
    (fun e ->
      e.Helix_obs.Trace.ev_kind = "violation"
      && List.assoc_opt "vkind" e.Helix_obs.Trace.ev_fields
         = Some (Helix_obs.Json.String k))
    (Helix_obs.Trace.events tr)

let check_incident_visible ~name (par : Executor.result) tr =
  Alcotest.(check bool) (name ^ ": at least one violation recorded") true
    (par.Executor.r_violations >= 1);
  Alcotest.(check bool) (name ^ ": at least one fallback") true
    (par.Executor.r_fallbacks >= 1);
  (match Helix_obs.Metrics.find_int par.Executor.r_metrics "exec.fallbacks" with
  | Some n ->
      Alcotest.(check bool) (name ^ ": exec.fallbacks metric >= 1") true (n >= 1)
  | None -> Alcotest.fail "exec.fallbacks metric missing");
  let kinds = event_kinds tr in
  Alcotest.(check bool) (name ^ ": fallback event traced") true
    (List.mem "fallback" kinds)

let robustness_tests =
  [
    tc "clean scenarios: oracle and sanitizer report zero incidents" (fun () ->
        List.iter
          (fun s ->
            let g, _, par =
              run_scenario
                ~exec_cfg:
                  (Executor.default_config ~robust:Executor.checked
                     Mach_config.default)
                s
            in
            let v = Helix.verify g par in
            Alcotest.(check bool) (s.name ^ ": " ^ v.Helix.detail) true
              v.Helix.ok;
            check Alcotest.int (s.name ^ ": violations") 0
              par.Executor.r_violations;
            check Alcotest.int (s.name ^ ": fallbacks") 0
              par.Executor.r_fallbacks)
          scenarios);
    tc "stripped waits: sanitizer violation degrades to sequential" (fun () ->
        let g, par, tr =
          run_mutilated ~robust:Executor.checked ~mutate:strip_waits s_hist
        in
        let v = Helix.verify g par in
        Alcotest.(check bool) ("fallback repairs the run: " ^ v.Helix.detail)
          true v.Helix.ok;
        check_incident_visible ~name:"stripped waits" par tr;
        Alcotest.(check bool) "violation event traced" true
          (List.mem "violation" (event_kinds tr)));
    tc "stripped signals: wedged invocation degrades to sequential" (fun () ->
        let g, par, tr =
          run_mutilated ~watchdog:20_000 ~robust:Executor.checked
            ~mutate:strip_signals s_hist
        in
        let v = Helix.verify g par in
        Alcotest.(check bool) ("fallback repairs the wedge: " ^ v.Helix.detail)
          true v.Helix.ok;
        Alcotest.(check bool) "at least one fallback" true
          (par.Executor.r_fallbacks >= 1);
        Alcotest.(check bool) "fallback event traced" true
          (List.mem "fallback" (event_kinds tr)));
    tc "doubled signals break the outstanding-signal bound" (fun () ->
        let g, par, tr =
          run_mutilated ~robust:Executor.checked ~mutate:double_signals s_hist
        in
        let v = Helix.verify g par in
        Alcotest.(check bool) ("fallback repairs the run: " ^ v.Helix.detail)
          true v.Helix.ok;
        check_incident_visible ~name:"doubled signals" par tr;
        Alcotest.(check bool) "signal_bound violation traced" true
          (has_violation_kind tr "signal_bound"));
    tc "strict mode raises Stuck Violation" (fun () ->
        let robust =
          { Executor.checked with Executor.strict = true; fallback = false }
        in
        match run_mutilated ~robust ~mutate:strip_waits s_hist with
        | exception Executor.Stuck (Executor.Violation, _) -> ()
        | exception Executor.Stuck (r, _) ->
            Alcotest.fail
              ("wrong stuck reason: " ^ Executor.stuck_reason_name r)
        | _ -> Alcotest.fail "expected Stuck Violation under --strict");
    tc "timing jitter preserves architectural results" (fun () ->
        List.iter
          (fun s ->
            List.iter
              (fun seed ->
                let cfg =
                  let c =
                    Executor.default_config ~robust:Executor.checked
                      Mach_config.default
                  in
                  {
                    c with
                    Executor.ring_cfg =
                      Option.map
                        (fun rc ->
                          {
                            rc with
                            Helix_ring.Ring.perturb =
                              Some (Helix_ring.Ring.perturbed ~seed ());
                          })
                        c.Executor.ring_cfg;
                  }
                in
                let g, _, par = run_scenario ~exec_cfg:cfg s in
                let v = Helix.verify g par in
                Alcotest.(check bool)
                  (Fmt.str "%s seed %d: %s" s.name seed v.Helix.detail)
                  true v.Helix.ok;
                check Alcotest.int
                  (Fmt.str "%s seed %d: no violations" s.name seed)
                  0 par.Executor.r_violations)
              [ 11; 202; 3003 ])
          [ s_hist; s_quadratic; s_conditional ]);
  ]

(* ---- robustness under the event-driven engines -------------------------- *)

(* The PR-2 fallback machinery was written against the legacy
   cycle-stepped loop; these pin it under the heap engine specifically
   (watchdog wedges and sanitizer rollbacks must survive idle-cycle
   skipping and serial-phase interpret-ahead) and assert engine parity. *)
let engine_fallback_tests =
  [
    tc "stripped waits: sanitizer fallback repairs under the heap engine"
      (fun () ->
        let g, par, tr =
          run_mutilated ~engine:Helix_engine.Engine.Heap
            ~robust:Executor.checked ~mutate:strip_waits s_hist
        in
        let v = Helix.verify g par in
        Alcotest.(check bool) ("repaired: " ^ v.Helix.detail) true v.Helix.ok;
        check_incident_visible ~name:"heap stripped waits" par tr);
    tc "stripped signals: watchdog wedge falls back under the heap engine"
      (fun () ->
        let g, par, tr =
          run_mutilated ~watchdog:20_000 ~engine:Helix_engine.Engine.Heap
            ~robust:Executor.checked ~mutate:strip_signals s_hist
        in
        let v = Helix.verify g par in
        Alcotest.(check bool) ("repaired: " ^ v.Helix.detail) true v.Helix.ok;
        Alcotest.(check bool) "at least one fallback" true
          (par.Executor.r_fallbacks >= 1);
        Alcotest.(check bool) "fallback event traced" true
          (List.mem "fallback" (event_kinds tr)));
    tc "fallback runs are bit-identical across the three engines" (fun () ->
        let runs =
          List.map
            (fun engine ->
              let _, par, _ =
                run_mutilated ~engine ~robust:Executor.checked
                  ~mutate:strip_waits s_hist
              in
              (par.Executor.r_cycles, par.Executor.r_retired,
               par.Executor.r_fallbacks))
            [ Helix_engine.Engine.Legacy; Helix_engine.Engine.Event;
              Helix_engine.Engine.Heap ]
        in
        match runs with
        | x :: rest ->
            List.iter
              (fun y ->
                Alcotest.(check bool) "engine parity on the fallback path"
                  true (x = y))
              rest
        | [] -> assert false);
  ]

(* ---- lossy-ring faults and fail-stop recovery --------------------------- *)

let all_engines =
  [ Helix_engine.Engine.Legacy; Helix_engine.Engine.Event;
    Helix_engine.Engine.Heap ]

(* Run scenario [s] with fault plan [plan] wired into the ring config. *)
let run_faulty ?(robust = Executor.no_robustness) ?engine
    ?(watchdog = 200_000) ~plan s =
  let tr = Helix_obs.Trace.create () in
  let gp, _ = s.prog () in
  let g = Helix.golden_run gp (Memory.create ()) in
  let cp, layout = s.prog () in
  let compiled = compile_v3 (cp, layout) in
  let cfg =
    let c =
      Executor.default_config ~trace:tr ~robust ?engine Mach_config.default
    in
    {
      c with
      Executor.watchdog_cycles = watchdog;
      ring_cfg =
        Option.map
          (fun rc -> { rc with Helix_ring.Ring.faults = Some plan })
          c.Executor.ring_cfg;
    }
  in
  let par =
    Executor.run ~compiled cfg compiled.Hcc.cp_prog (Memory.create ())
  in
  (g, par, tr)

let metric par k =
  Option.value ~default:0
    (Helix_obs.Metrics.find_int par.Executor.r_metrics k)

(* A cycle guaranteed to be inside a parallel invocation, from a clean
   traced run: just after the first loop_enter. *)
let mid_invocation_cycle s =
  let _, _, tr = run_faulty ~plan:(Helix_ring.Ring.faulty ~seed:0 ()) s in
  let enter =
    List.find
      (fun e -> e.Helix_obs.Trace.ev_kind = "loop_enter")
      (Helix_obs.Trace.events tr)
  in
  enter.Helix_obs.Trace.ev_cycle + 40

let fault_recovery_tests =
  [
    tc "message faults recover in-protocol: no fallback, correct result"
      (fun () ->
        List.iter
          (fun engine ->
            let plan =
              Helix_ring.Ring.faulty ~drop:60 ~dup:40 ~reorder:40 ~corrupt:40
                ~seed:71 ()
            in
            let g, par, _ =
              run_faulty ~robust:Executor.checked ~engine ~plan s_hist
            in
            let v = Helix.verify g par in
            Alcotest.(check bool) ("verified: " ^ v.Helix.detail) true
              v.Helix.ok;
            check Alcotest.int "no violations" 0 par.Executor.r_violations;
            check Alcotest.int "no fallbacks" 0 par.Executor.r_fallbacks;
            Alcotest.(check bool) "faults actually injected" true
              (metric par "ring.faults_injected" > 0);
            Alcotest.(check bool) "retransmissions happened" true
              (metric par "ring.retransmits" > 0))
          all_engines);
    tc "the same fault schedule is bit-identical on every engine" (fun () ->
        let plan =
          Helix_ring.Ring.faulty ~drop:50 ~dup:30 ~reorder:30 ~corrupt:30
            ~seed:5 ()
        in
        let runs =
          List.map
            (fun engine ->
              let _, par, _ = run_faulty ~engine ~plan s_hist in
              (par.Executor.r_cycles, par.Executor.r_retired,
               metric par "ring.faults_injected",
               metric par "ring.retransmits"))
            all_engines
        in
        match runs with
        | x :: rest ->
            List.iter
              (fun y ->
                Alcotest.(check bool) "faulty-run engine parity" true (x = y))
              rest
        | [] -> assert false);
    tc "a zero-rate plan changes nothing: same cycles as no plan at all"
      (fun () ->
        let _, _, base = run_scenario s_hist in
        let _, par, _ =
          run_faulty ~plan:(Helix_ring.Ring.faulty ~seed:123 ()) s_hist
        in
        check Alcotest.int "same cycle count" base.Executor.r_cycles
          par.Executor.r_cycles;
        check Alcotest.int "no faults" 0 (metric par "ring.faults_injected");
        check Alcotest.int "no retransmits" 0 (metric par "ring.retransmits"));
    tc "serial-phase fail-stop: survivors adopt the lanes, no fallback"
      (fun () ->
        (* no robustness machinery at all: correctness must come from the
           reknit itself (lane adoption keeps the compiled [iter mod n]
           privatization slots single-owner) *)
        List.iter
          (fun engine ->
            let plan =
              Helix_ring.Ring.faulty ~fail_stop:(3, 2) ~seed:1 ()
            in
            let g, par, tr = run_faulty ~engine ~plan s_hist in
            let v = Helix.verify g par in
            Alcotest.(check bool)
              ("verified over 15 survivors: " ^ v.Helix.detail)
              true v.Helix.ok;
            check Alcotest.int "no fallbacks" 0 par.Executor.r_fallbacks;
            check Alcotest.int "one reknit" 1 (metric par "ring.reknits");
            check Alcotest.int "one dead core" 1 (metric par "exec.dead_cores");
            Alcotest.(check bool) "reknit event traced" true
              (List.mem "reknit" (event_kinds tr)))
          all_engines);
    tc "serial-phase fail-stop verifies on every scenario" (fun () ->
        List.iter
          (fun s ->
            let plan =
              Helix_ring.Ring.faulty ~fail_stop:(5, 2) ~seed:2 ()
            in
            let g, par, _ = run_faulty ~plan s in
            let v = Helix.verify g par in
            Alcotest.(check bool) (s.name ^ ": " ^ v.Helix.detail) true
              v.Helix.ok;
            check Alcotest.int (s.name ^ ": no fallbacks") 0
              par.Executor.r_fallbacks)
          scenarios);
    tc "mid-invocation fail-stop rolls back to the checkpoint" (fun () ->
        let at = mid_invocation_cycle s_hist in
        let plan = Helix_ring.Ring.faulty ~fail_stop:(2, at) ~seed:3 () in
        let g, par, tr =
          run_faulty ~robust:Executor.checked ~plan s_hist
        in
        let v = Helix.verify g par in
        Alcotest.(check bool) ("verified: " ^ v.Helix.detail) true v.Helix.ok;
        Alcotest.(check bool) "fell back at least once" true
          (par.Executor.r_fallbacks >= 1);
        check Alcotest.int "one reknit" 1 (metric par "ring.reknits");
        Alcotest.(check bool) "fail_stop fallback traced" true
          (List.exists
             (fun e ->
               e.Helix_obs.Trace.ev_kind = "fallback"
               && List.assoc_opt "reason" e.Helix_obs.Trace.ev_fields
                  = Some (Helix_obs.Json.String "fail_stop"))
             (Helix_obs.Trace.events tr)));
    tc "mid-invocation fail-stop without fallback is Stuck Faulted" (fun () ->
        let at = mid_invocation_cycle s_hist in
        let plan = Helix_ring.Ring.faulty ~fail_stop:(2, at) ~seed:4 () in
        match run_faulty ~plan s_hist with
        | exception Executor.Stuck (Executor.Faulted, report) ->
            Alcotest.(check bool) "report names the dead core" true
              (String.length report > 0)
        | _ -> Alcotest.fail "expected Stuck Faulted without a checkpoint");
    tc "core 0 fail-stop is always fatal" (fun () ->
        let plan = Helix_ring.Ring.faulty ~fail_stop:(0, 2) ~seed:5 () in
        match run_faulty ~robust:Executor.checked ~plan s_hist with
        | exception Executor.Stuck (Executor.Faulted, _) -> ()
        | exception Executor.Stuck (r, _) ->
            Alcotest.fail
              ("wrong stuck reason: " ^ Executor.stuck_reason_name r)
        | _ -> Alcotest.fail "expected Stuck Faulted for core 0");
  ]

(* ---- dependence sanitizer unit tests ------------------------------------ *)

let depcheck_tests =
  let open Depcheck in
  [
    tc "unguarded cross-core write/write conflicts" (fun () ->
        let d = create () in
        record d ~core:0 ~iter:0 ~seg:None ~addr:100 ~write:true;
        record d ~core:1 ~iter:1 ~seg:None ~addr:100 ~write:true;
        Alcotest.(check bool) "flagged" true (violations d >= 1);
        match sample_violations d with
        | v :: _ ->
            check Alcotest.int "address" 100 v.v_addr;
            Alcotest.(check bool) "describes itself" true
              (String.length (describe_violation v) > 0)
        | [] -> Alcotest.fail "no sample recorded");
    tc "same-segment cross-core accesses are ordered" (fun () ->
        let d = create () in
        record d ~core:0 ~iter:0 ~seg:(Some 3) ~addr:100 ~write:true;
        record d ~core:1 ~iter:1 ~seg:(Some 3) ~addr:100 ~write:true;
        check Alcotest.int "no violation" 0 (violations d));
    tc "different segments on different cores conflict" (fun () ->
        let d = create () in
        record d ~core:0 ~iter:0 ~seg:(Some 3) ~addr:100 ~write:true;
        record d ~core:1 ~iter:1 ~seg:(Some 4) ~addr:100 ~write:true;
        Alcotest.(check bool) "flagged" true (violations d >= 1));
    tc "read/read never conflicts" (fun () ->
        let d = create () in
        record d ~core:0 ~iter:0 ~seg:None ~addr:100 ~write:false;
        record d ~core:1 ~iter:1 ~seg:None ~addr:100 ~write:false;
        check Alcotest.int "no violation" 0 (violations d));
    tc "same-core accesses are ordered by program order" (fun () ->
        let d = create () in
        record d ~core:2 ~iter:0 ~seg:None ~addr:100 ~write:true;
        record d ~core:2 ~iter:1 ~seg:(Some 1) ~addr:100 ~write:true;
        check Alcotest.int "no violation" 0 (violations d));
    tc "unguarded read against a remote write conflicts" (fun () ->
        let d = create () in
        record d ~core:0 ~iter:0 ~seg:(Some 3) ~addr:64 ~write:true;
        record d ~core:5 ~iter:2 ~seg:None ~addr:64 ~write:false;
        Alcotest.(check bool) "flagged" true (violations d >= 1));
    tc "reset clears violations and accesses" (fun () ->
        let d = create () in
        record d ~core:0 ~iter:0 ~seg:None ~addr:100 ~write:true;
        record d ~core:1 ~iter:1 ~seg:None ~addr:100 ~write:true;
        reset d;
        check Alcotest.int "cleared" 0 (violations d);
        record d ~core:1 ~iter:1 ~seg:None ~addr:100 ~write:true;
        check Alcotest.int "fresh epoch, single access" 0 (violations d));
  ]

(* ---- context engine --------------------------------------------------------- *)

(* The eager context must agree with the interpreter on private-only
   programs: pull every uop and compare the final return value. *)
let drain_context prog =
  let mem = Memory.create () in
  let ctx = Context.create prog mem ~core_id:0 in
  Context.start ctx prog.Ir.p_main [];
  let steps = ref 0 in
  let rec go () =
    incr steps;
    if !steps > 2_000_000 then Alcotest.fail "context did not terminate";
    match Context.next_uop ctx with
    | Some _ -> go ()
    | None -> (
        match Context.status ctx with
        | Context.Finished rv -> (rv, mem)
        | _ -> Alcotest.fail "context stuck")
  in
  go ()

let context_tests =
  [
    tc "context matches interpreter on scenarios" (fun () ->
        List.iter
          (fun s ->
            let p1, _ = s.prog () in
            let g = Helix.golden_run p1 (Memory.create ()) in
            let p2, _ = s.prog () in
            let rv, mem = drain_context p2 in
            check
              Alcotest.(option int)
              (s.name ^ " return") g.Helix.g_ret rv;
            Alcotest.(check bool) (s.name ^ " memory") true
              (Memory.equal g.Helix.g_mem mem))
          scenarios);
    tc "wait_depth counts wait/signal" (fun () ->
        let b = Builder.create "main" in
        Builder.wait b 0;
        Builder.wait b 1;
        Builder.signal b 1;
        Builder.ret b None;
        let p = Ir.create_program () in
        Ir.add_func p (Builder.func b);
        let ctx = Context.create p (Memory.create ()) ~core_id:0 in
        Context.start ctx "main" [];
        (* pull wait 0 *)
        ignore (Context.next_uop ctx);
        check Alcotest.int "depth 1" 1 (Context.wait_depth ctx);
        ignore (Context.next_uop ctx);
        check Alcotest.int "depth 2" 2 (Context.wait_depth ctx);
        ignore (Context.next_uop ctx);
        check Alcotest.int "depth 1 again" 1 (Context.wait_depth ctx));
  ]

let () =
  Alcotest.run ~and_exit:false "runtime"
    [
      ("equivalence", equivalence_tests);
      ("comm-modes", comm_mode_tests);
      ("machines", machine_tests);
      ("core-counts", core_count_tests);
      ("invariants", invariant_tests);
      ("fault-injection", fault_tests);
      ("robustness", robustness_tests);
      ("engine-fallback", engine_fallback_tests);
      ("fault-recovery", fault_recovery_tests);
      ("depcheck", depcheck_tests);
      ("context", context_tests);
    ]

(* ---- randomized pipeline property ------------------------------------- *)

(* Generate random canonical loops mixing the five carried-dependence
   flavours (induction, reduction, last-value, demoted register, shared
   memory cell, affine array) and check parallel == sequential for each.
   This is the strongest oracle in the suite: any unsound analysis,
   mis-placed bracket or runtime race shows up as a memory or return
   mismatch. *)

type feature =
  | F_reduction of Ir.binop
  | F_shared_cell
  | F_lastval
  | F_demoted
  | F_affine_store
  | F_poly2

let gen_features =
  QCheck.Gen.(
    list_size (int_range 1 5)
      (oneofl
         [ F_reduction Ir.Add; F_reduction Ir.Max; F_reduction Ir.Mul;
           F_shared_cell; F_lastval; F_demoted; F_affine_store; F_poly2 ]))

let build_random (trip, features) () =
  let layout = Memory.Layout.create () in
  let b = Builder.create "main" in
  let cell_regions =
    List.mapi
      (fun k _ -> Memory.Layout.alloc layout (Fmt.str "cell%d" k) 8)
      features
  in
  let arr = Memory.Layout.alloc layout "arr" 256 in
  let outs = ref [] in
  let carried =
    List.map
      (fun f ->
        match f with
        | F_reduction Ir.Mul -> (f, Builder.mov b (Ir.Imm 1))
        | F_reduction Ir.Max -> (f, Builder.mov b (Ir.Imm min_int))
        | F_lastval -> (f, Builder.mov b (Ir.Imm (-7)))
        | F_poly2 ->
            let s = Builder.mov b (Ir.Imm 1) in
            ignore s;
            (f, Builder.mov b (Ir.Imm 0))
        | _ -> (f, Builder.mov b (Ir.Imm 0)))
      features
  in
  (* poly2 needs its own step register *)
  let steps =
    List.map
      (fun (f, _) ->
        match f with F_poly2 -> Some (Builder.mov b (Ir.Imm 2)) | _ -> None)
      carried
  in
  let _ =
    Builder.counted_loop b ~from:(Ir.Imm 0) ~below:(Ir.Imm trip) (fun i ->
        List.iteri
          (fun k ((f, r) : feature * Ir.reg) ->
            let region = List.nth cell_regions k in
            let an_c =
              Ir.annot ~path:(Fmt.str "c%d" k) region.Memory.Layout.site
            in
            let base = Ir.Imm region.Memory.Layout.base in
            match f with
            | F_reduction op ->
                let h = Builder.libcall b Ir.Lc_hash [ Ir.Reg i ] in
                let x0 = Builder.band b (Ir.Reg h) (Ir.Imm 7) in
                let x = Builder.add b (Ir.Reg x0) (Ir.Imm 1) in
                let nv = Builder.binop b op (Ir.Reg r) (Ir.Reg x) in
                Builder.mov_to b r (Ir.Reg nv)
            | F_shared_cell ->
                let v = Builder.load b ~an:an_c base in
                let v1 = Builder.add b (Ir.Reg v) (Ir.Reg i) in
                Builder.store b ~an:an_c base (Ir.Reg v1)
            | F_lastval ->
                let h = Builder.libcall b Ir.Lc_hash [ Ir.Reg i ] in
                let c = Builder.band b (Ir.Reg h) (Ir.Imm 3) in
                let is0 = Builder.eq b (Ir.Reg c) (Ir.Imm 0) in
                Builder.if_then b (Ir.Reg is0) (fun () ->
                    Builder.mov_to b r (Ir.Reg i))
            | F_demoted ->
                (* r mixes its previous value through a hash: must be
                   demoted to a shared cell *)
                let h = Builder.libcall b Ir.Lc_hash [ Ir.Reg r ] in
                let h' = Builder.band b (Ir.Reg h) (Ir.Imm 1023) in
                Builder.mov_to b r (Ir.Reg h')
            | F_affine_store ->
                let idx = Builder.band b (Ir.Reg i) (Ir.Imm 255) in
                let an_a =
                  Ir.annot ~path:"arr[]" ~affine:0 arr.Memory.Layout.site
                in
                Builder.store b ~offset:(Ir.Reg idx) ~an:an_a
                  (Ir.Imm arr.Memory.Layout.base) (Ir.Reg i)
            | F_poly2 -> (
                match List.nth steps k with
                | Some s ->
                    let s' = Builder.add b (Ir.Reg s) (Ir.Imm 2) in
                    Builder.mov_to b s (Ir.Reg s');
                    let r' = Builder.add b (Ir.Reg r) (Ir.Reg s) in
                    Builder.mov_to b r (Ir.Reg r')
                | None -> ()))
          carried)
  in
  (* fold every carried value plus the shared cells into the result *)
  List.iteri
    (fun k ((f, r) : feature * Ir.reg) ->
      let region = List.nth cell_regions k in
      match f with
      | F_shared_cell ->
          let v =
            Builder.load b
              ~an:(Ir.annot ~path:(Fmt.str "c%d" k) region.Memory.Layout.site)
              (Ir.Imm region.Memory.Layout.base)
          in
          outs := v :: !outs
      | F_reduction Ir.Mul ->
          let m = Builder.band b (Ir.Reg r) (Ir.Imm 0xfffff) in
          outs := m :: !outs
      | _ -> outs := r :: !outs)
    carried;
  let total =
    List.fold_left
      (fun acc r ->
        let t = Builder.add b (Ir.Reg acc) (Ir.Reg r) in
        t)
      (Builder.mov b (Ir.Imm 0))
      !outs
  in
  Builder.ret b (Some (Ir.Reg total));
  let p = Ir.create_program () in
  Ir.add_func p (Builder.func b);
  (p, layout)

let prop_random_pipeline =
  QCheck.Test.make ~name:"random loops: parallel == sequential" ~count:25
    (QCheck.make QCheck.Gen.(pair (int_range 0 60) gen_features))
    (fun params ->
      let build = build_random params in
      let gp, _ = build () in
      let g = Helix.golden_run gp (Memory.create ()) in
      let cp, layout = build () in
      let compiled =
        Hcc.compile (Hcc_config.v3 ()) cp layout ~train_mem:(Memory.create ())
      in
      let par =
        Executor.run ~compiled
          (Executor.default_config Mach_config.default)
          compiled.Hcc.cp_prog (Memory.create ())
      in
      (Helix.verify g par).Helix.ok
      && par.Executor.r_max_outstanding_signals <= 2)

let prop_random_pipeline_conventional =
  QCheck.Test.make ~name:"random loops: conventional machine oracle"
    ~count:15
    (QCheck.make QCheck.Gen.(pair (int_range 0 40) gen_features))
    (fun params ->
      let build = build_random params in
      let gp, _ = build () in
      let g = Helix.golden_run gp (Memory.create ()) in
      let cp, layout = build () in
      let compiled =
        Hcc.compile (Hcc_config.v2 ()) cp layout ~train_mem:(Memory.create ())
      in
      let par =
        Executor.run ~compiled
          (Executor.default_config ~ring:false ~comm:Executor.fully_coupled
             Mach_config.default)
          compiled.Hcc.cp_prog (Memory.create ())
      in
      (Helix.verify g par).Helix.ok)

let () =
  Alcotest.run ~and_exit:false "runtime-properties"
    [
      ("random-pipeline",
       List.map QCheck_alcotest.to_alcotest
         [ prop_random_pipeline; prop_random_pipeline_conventional ]);
    ]
