open Helix_ring

(* Tests for the ring cache: node arrays, signal buffers, owner hashing,
   and the ring network itself (value circulation, lockstep, flow
   control, flush semantics, miss paths, invalidation). *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ---- node array ---------------------------------------------------- *)

let node_array_tests =
  [
    tc "insert then lookup" (fun () ->
        let a = Node_array.create ~size_words:32 ~assoc:4 () in
        ignore (Node_array.insert a 100 7);
        check Alcotest.(option int) "hit" (Some 7) (Node_array.lookup a 100));
    tc "missing address" (fun () ->
        let a = Node_array.create ~size_words:32 ~assoc:4 () in
        check Alcotest.(option int) "miss" None (Node_array.lookup a 5));
    tc "update in place" (fun () ->
        let a = Node_array.create ~size_words:32 ~assoc:4 () in
        ignore (Node_array.insert a 100 7);
        ignore (Node_array.insert a 100 8);
        check Alcotest.(option int) "updated" (Some 8)
          (Node_array.lookup a 100));
    tc "capacity eviction" (fun () ->
        (* 8 words, 1-way, line 1: 8 sets; conflicting addresses share a set *)
        let a = Node_array.create ~size_words:8 ~assoc:1 () in
        ignore (Node_array.insert a 0 1);
        (match Node_array.insert a 8 2 with
        | Some (0, _) -> ()
        | _ -> Alcotest.fail "expected eviction of line 0");
        check Alcotest.(option int) "old gone" None (Node_array.lookup a 0));
    tc "invalidate" (fun () ->
        let a = Node_array.create ~size_words:32 ~assoc:4 () in
        ignore (Node_array.insert a 100 7);
        Node_array.invalidate a 100;
        check Alcotest.(option int) "gone" None (Node_array.lookup a 100));
    tc "unbounded variant never evicts" (fun () ->
        let a = Node_array.create ~size_words:max_int ~assoc:8 () in
        for i = 0 to 9999 do
          ignore (Node_array.insert a i i)
        done;
        check Alcotest.(option int) "first still in" (Some 0)
          (Node_array.lookup a 0));
    tc "multi-word line groups words" (fun () ->
        let a = Node_array.create ~line_words:4 ~size_words:32 ~assoc:2 () in
        ignore (Node_array.insert a 8 1);
        ignore (Node_array.insert a 9 2);
        check Alcotest.(option int) "word 8" (Some 1) (Node_array.lookup a 8);
        check Alcotest.(option int) "word 9" (Some 2) (Node_array.lookup a 9));
  ]

(* ---- signal buffer --------------------------------------------------- *)

let signal_tests =
  [
    tc "threshold satisfied only after enough signals" (fun () ->
        let b = Signal_buffer.create () in
        Alcotest.(check bool) "zero threshold" true
          (Signal_buffer.satisfied b ~seg:0 ~origin:1 ~threshold:0);
        Alcotest.(check bool) "not yet" false
          (Signal_buffer.satisfied b ~seg:0 ~origin:1 ~threshold:1);
        Signal_buffer.record b ~seg:0 ~origin:1;
        Alcotest.(check bool) "now" true
          (Signal_buffer.satisfied b ~seg:0 ~origin:1 ~threshold:1));
    tc "segments and origins independent" (fun () ->
        let b = Signal_buffer.create () in
        Signal_buffer.record b ~seg:0 ~origin:1;
        Alcotest.(check bool) "other segment" false
          (Signal_buffer.satisfied b ~seg:1 ~origin:1 ~threshold:1);
        Alcotest.(check bool) "other origin" false
          (Signal_buffer.satisfied b ~seg:0 ~origin:2 ~threshold:1));
    tc "max_outstanding tracks unconsumed signals" (fun () ->
        let b = Signal_buffer.create () in
        Signal_buffer.record b ~seg:0 ~origin:1;
        Signal_buffer.record b ~seg:0 ~origin:1;
        check Alcotest.int "two outstanding" 2 (Signal_buffer.max_outstanding b);
        ignore (Signal_buffer.satisfied b ~seg:0 ~origin:1 ~threshold:2);
        Signal_buffer.record b ~seg:0 ~origin:1;
        check Alcotest.int "still two max" 2 (Signal_buffer.max_outstanding b));
    tc "reset clears state" (fun () ->
        let b = Signal_buffer.create () in
        Signal_buffer.record b ~seg:0 ~origin:1;
        Signal_buffer.reset b;
        check Alcotest.int "received" 0 (Signal_buffer.received b ~seg:0 ~origin:1));
  ]

(* Randomized-interleaving properties: drive a buffer with a fixed-seed
   stream of record/satisfied/received operations over several
   (segment, origin) pairs and check it against a trivial reference
   model (per-pair received and consumed counters). *)

let sb_property_tests =
  (* deterministic splitmix-style generator; fixed seed *)
  let state = ref 0 in
  let rand bound =
    state := (!state + 0x9e3779b97f4a7c1) land max_int;
    let z = !state in
    let z = (z lxor (z lsr 30)) * 0xf51afd7ed558cc5 land max_int in
    let z = (z lxor (z lsr 27)) * 0x4ceb9fe1a85ec53 land max_int in
    (z lxor (z lsr 31)) mod bound
  in
  let find model k = try Hashtbl.find model k with Not_found -> (0, 0) in
  [
    tc "random interleaving agrees with a reference model" (fun () ->
        state := 42;
        let b = Signal_buffer.create () in
        let model = Hashtbl.create 16 in
        (* (seg, origin) -> (received, consumed) *)
        let max_out = ref 0 in
        for step = 1 to 10_000 do
          let seg = rand 3 and origin = rand 4 in
          let k = (seg, origin) in
          let r, c = find model k in
          match rand 3 with
          | 0 ->
              Signal_buffer.record b ~seg ~origin;
              Hashtbl.replace model k (r + 1, c);
              max_out := max !max_out (r + 1 - c)
          | 1 ->
              let threshold = rand 6 in
              let expect = r >= threshold in
              Alcotest.(check bool)
                (Fmt.str "step %d: satisfied seg%d/or%d thr%d" step seg origin
                   threshold)
                expect
                (Signal_buffer.satisfied b ~seg ~origin ~threshold);
              if expect && threshold > c then Hashtbl.replace model k (r, threshold)
          | _ ->
              check Alcotest.int
                (Fmt.str "step %d: received seg%d/or%d" step seg origin)
                r
                (Signal_buffer.received b ~seg ~origin)
        done;
        check Alcotest.int "max_outstanding matches the model" !max_out
          (Signal_buffer.max_outstanding b);
        (* entries is consistent: every active pair, consumed <= received *)
        List.iter
          (fun ((seg, origin), recv, cons) ->
            let r, c = find model (seg, origin) in
            check Alcotest.int (Fmt.str "entry recv seg%d/or%d" seg origin) r recv;
            check Alcotest.int (Fmt.str "entry cons seg%d/or%d" seg origin) c cons;
            Alcotest.(check bool) "cons <= recv" true (cons <= recv))
          (Signal_buffer.entries b));
    tc "received is monotone; satisfied is monotone in threshold" (fun () ->
        state := 7;
        let b = Signal_buffer.create () in
        let prev = ref 0 in
        for _ = 1 to 500 do
          if rand 2 = 0 then Signal_buffer.record b ~seg:1 ~origin:2;
          let r = Signal_buffer.received b ~seg:1 ~origin:2 in
          Alcotest.(check bool) "monotone" true (r >= !prev);
          prev := r;
          (* satisfied at t implies satisfied at every t' <= t *)
          let t = rand 8 in
          if Signal_buffer.satisfied b ~seg:1 ~origin:2 ~threshold:t then
            for t' = 0 to t - 1 do
              Alcotest.(check bool) "downward closed" true
                (Signal_buffer.satisfied b ~seg:1 ~origin:2 ~threshold:t')
            done
        done);
    tc "reset after random traffic restores a pristine buffer" (fun () ->
        state := 1337;
        let b = Signal_buffer.create () in
        for _ = 1 to 200 do
          Signal_buffer.record b ~seg:(rand 4) ~origin:(rand 4)
        done;
        Signal_buffer.reset b;
        check Alcotest.int "no outstanding" 0 (Signal_buffer.max_outstanding b);
        check
          Alcotest.(list (triple (pair int int) int int))
          "no entries" [] (Signal_buffer.entries b);
        (* behaves exactly like a fresh buffer afterwards *)
        Signal_buffer.record b ~seg:0 ~origin:0;
        check Alcotest.int "counting restarts at 1" 1
          (Signal_buffer.received b ~seg:0 ~origin:0);
        check Alcotest.int "outstanding restarts" 1
          (Signal_buffer.max_outstanding b));
  ]

(* ---- owner hashing ----------------------------------------------------- *)

let owner_tests =
  [
    tc "all words of a line share an owner" (fun () ->
        for line = 0 to 20 do
          let o0 = Owner.node_of ~n_nodes:16 (line * 8) in
          for w = 1 to 7 do
            check Alcotest.int "same owner" o0
              (Owner.node_of ~n_nodes:16 ((line * 8) + w))
          done
        done);
    tc "owner in range" (fun () ->
        for a = 0 to 1000 do
          let o = Owner.node_of ~n_nodes:16 a in
          Alcotest.(check bool) "range" true (o >= 0 && o < 16)
        done);
    tc "distances" (fun () ->
        check Alcotest.int "forward" 3 (Owner.forward_distance ~n_nodes:16 ~src:15 ~dst:2);
        check Alcotest.int "undirected wraps" 3
          (Owner.undirected_distance ~n_nodes:16 ~src:2 ~dst:15));
  ]

(* ---- ring network -------------------------------------------------------- *)

let backing = Hashtbl.create 64

let mk_ring ?(n = 4) ?(cfg_f = fun c -> c) () =
  Hashtbl.reset backing;
  let cfg = cfg_f (Ring.default_config ~n_nodes:n) in
  Ring.create cfg
    {
      Ring.backing_load =
        (fun a -> try Hashtbl.find backing a with Not_found -> 0);
      backing_store = (fun a v -> Hashtbl.replace backing a v);
      owner_l1_latency = (fun ~core:_ ~cycle:_ ~write:_ ~addr:_ -> 3);
    }

let tick_n r ~from n =
  for c = from to from + n - 1 do
    Ring.tick r ~cycle:c
  done

let ring_tests =
  [
    tc "store becomes visible at every node within a lap" (fun () ->
        let r = mk_ring () in
        Alcotest.(check bool) "accepted" true
          (Ring.try_store r ~node:0 ~addr:64 ~value:9 ~cycle:0);
        tick_n r ~from:0 20;
        for node = 0 to 3 do
          let v, _ = Ring.load r ~node ~addr:64 ~cycle:25 in
          check Alcotest.int (Fmt.str "node %d" node) 9 v
        done);
    tc "local store visible immediately" (fun () ->
        let r = mk_ring () in
        ignore (Ring.try_store r ~node:2 ~addr:8 ~value:5 ~cycle:0);
        let v, lat = Ring.load r ~node:2 ~addr:8 ~cycle:0 in
        check Alcotest.int "value" 5 v;
        Alcotest.(check bool) "hit latency small" true (lat <= 4));
    tc "remote node before arrival sees stale value (decoupling)" (fun () ->
        let r = mk_ring () in
        ignore (Ring.try_store r ~node:0 ~addr:8 ~value:1 ~cycle:0);
        tick_n r ~from:0 20;
        (* node 3 now caches value 1; a new store at node 0 takes time *)
        ignore (Ring.try_store r ~node:0 ~addr:8 ~value:2 ~cycle:20);
        let v, _ = Ring.load r ~node:3 ~addr:8 ~cycle:20 in
        check Alcotest.int "stale read before arrival" 1 v;
        tick_n r ~from:20 20;
        let v2, _ = Ring.load r ~node:3 ~addr:8 ~cycle:40 in
        check Alcotest.int "fresh after arrival" 2 v2);
    tc "signals propagate to all other nodes" (fun () ->
        let r = mk_ring () in
        ignore (Ring.try_signal r ~node:1 ~seg:3 ~cycle:0);
        tick_n r ~from:0 20;
        List.iter
          (fun node ->
            Alcotest.(check bool) (Fmt.str "node %d" node) true
              (Ring.signals_satisfied r ~node ~seg:3 ~origin:1 ~threshold:1))
          [ 0; 2; 3 ]);
    tc "lockstep: signal never outruns its guarded data" (fun () ->
        (* with one data wire, a burst of stores followed by a signal: at
           any node and any cycle, once the signal is visible the last
           store's value must already be readable there *)
        let r = mk_ring ~n:8 () in
        for k = 0 to 6 do
          ignore
            (Ring.try_store r ~node:0 ~addr:(64 + k) ~value:(k + 1) ~cycle:0)
        done;
        ignore (Ring.try_signal r ~node:0 ~seg:0 ~cycle:0);
        for cycle = 0 to 80 do
          Ring.tick r ~cycle;
          List.iter
            (fun node ->
              if
                Ring.signals_satisfied r ~node ~seg:0 ~origin:0 ~threshold:1
              then begin
                let v, lat = Ring.load r ~node ~addr:70 ~cycle in
                check Alcotest.int
                  (Fmt.str "node %d cycle %d guarded value" node cycle)
                  7 v;
                Alcotest.(check bool) "served locally" true (lat <= 4)
              end)
            [ 1; 3; 5; 7 ]
        done);
    tc "load miss fetches the authoritative value" (fun () ->
        (* tiny arrays force capacity misses *)
        let r =
          mk_ring ~cfg_f:(fun c -> { c with Ring.array_size_words = 4; array_assoc = 1 }) ()
        in
        ignore (Ring.try_store r ~node:0 ~addr:8 ~value:42 ~cycle:0);
        (* overflow node 0's array with conflicting addresses *)
        for k = 1 to 8 do
          ignore (Ring.try_store r ~node:0 ~addr:(8 + (k * 4)) ~value:k ~cycle:k)
        done;
        tick_n r ~from:0 100;
        let v, lat = Ring.load r ~node:0 ~addr:8 ~cycle:100 in
        check Alcotest.int "authoritative" 42 v;
        Alcotest.(check bool) "miss is slow" true (lat > 4));
    tc "miss on never-stored address reads backing memory" (fun () ->
        let r = mk_ring () in
        Hashtbl.replace backing 500 77;
        let v, _ = Ring.load r ~node:1 ~addr:500 ~cycle:0 in
        check Alcotest.int "backing value" 77 v);
    tc "flush writes dirty values back and keeps copies" (fun () ->
        let r = mk_ring () in
        ignore (Ring.try_store r ~node:0 ~addr:8 ~value:5 ~cycle:0);
        tick_n r ~from:0 20;
        let lat = Ring.flush r ~cycle:20 in
        Alcotest.(check bool) "flush latency positive" true (lat >= 1);
        check Alcotest.int "backing updated" 5
          (try Hashtbl.find backing 8 with Not_found -> 0);
        (* clean copy still hits *)
        let v, l = Ring.load r ~node:2 ~addr:8 ~cycle:25 in
        check Alcotest.int "still cached" 5 v;
        Alcotest.(check bool) "hit" true (l <= 4));
    tc "invalidate_addr drops every copy" (fun () ->
        let r = mk_ring () in
        ignore (Ring.try_store r ~node:0 ~addr:8 ~value:5 ~cycle:0);
        tick_n r ~from:0 20;
        ignore (Ring.flush r ~cycle:20);
        Ring.invalidate_addr r 8;
        Hashtbl.replace backing 8 6;
        let v, _ = Ring.load r ~node:3 ~addr:8 ~cycle:30 in
        check Alcotest.int "fresh from backing" 6 v);
    tc "data_drained after enough ticks" (fun () ->
        let r = mk_ring () in
        ignore (Ring.try_store r ~node:0 ~addr:8 ~value:1 ~cycle:0);
        Alcotest.(check bool) "not drained immediately" false
          (Ring.data_drained r);
        tick_n r ~from:0 30;
        Alcotest.(check bool) "drained" true (Ring.data_drained r));
    tc "injection queue backpressure returns false" (fun () ->
        let r =
          mk_ring ~cfg_f:(fun c -> { c with Ring.inject_capacity = 2 }) ()
        in
        Alcotest.(check bool) "1st" true
          (Ring.try_store r ~node:0 ~addr:1 ~value:1 ~cycle:0);
        Alcotest.(check bool) "2nd" true
          (Ring.try_store r ~node:0 ~addr:2 ~value:1 ~cycle:0);
        Alcotest.(check bool) "3rd rejected" false
          (Ring.try_store r ~node:0 ~addr:3 ~value:1 ~cycle:0));
    tc "consumer histograms populated" (fun () ->
        let r = mk_ring () in
        ignore (Ring.try_store r ~node:0 ~addr:8 ~value:1 ~cycle:0);
        tick_n r ~from:0 20;
        ignore (Ring.load r ~node:2 ~addr:8 ~cycle:25);
        ignore (Ring.load r ~node:3 ~addr:8 ~cycle:26);
        ignore (Ring.flush r ~cycle:30);
        let cons = Ring.consumers_histogram r in
        check Alcotest.int "a value with 2 consumers" 1 cons.(2));
  ]

(* ---- diagnostics and degenerate-ring regressions ----------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let regression_tests =
  [
    tc "describe covers every node, not just the first three" (fun () ->
        (* regression: the old dump stopped printing sigbufs at node 2,
           hiding the state of the nodes that usually cause the wedge *)
        let r = mk_ring ~n:6 () in
        ignore (Ring.try_signal r ~node:5 ~seg:1 ~cycle:0);
        tick_n r ~from:0 30;
        let d = Ring.describe r in
        for node = 0 to 5 do
          Alcotest.(check bool) (Fmt.str "node %d present" node) true
            (contains d (Fmt.str "node %d:" node))
        done;
        (* node 0 received the signal; its sigbuf must be visible *)
        Alcotest.(check bool) "a recorded signal is printed" true
          (contains d "(seg1,from5)=1"));
    tc "single-node ring records its own signals" (fun () ->
        (* regression: with n_nodes=1 injected signals were retired
           without ever reaching the node's signal buffer, so a 1-core
           parallel loop could wait forever on its own signal *)
        let r = mk_ring ~n:1 () in
        ignore (Ring.try_signal r ~node:0 ~seg:2 ~cycle:0);
        tick_n r ~from:0 5;
        check Alcotest.int "received by itself" 1
          (Ring.signals_received r ~node:0 ~seg:2 ~origin:0);
        Alcotest.(check bool) "satisfied" true
          (Ring.signals_satisfied r ~node:0 ~seg:2 ~origin:0 ~threshold:1));
    tc "single-node ring applies its own stores" (fun () ->
        let r = mk_ring ~n:1 () in
        Alcotest.(check bool) "accepted" true
          (Ring.try_store r ~node:0 ~addr:8 ~value:3 ~cycle:0);
        tick_n r ~from:0 5;
        check Alcotest.int "readable" 3 (fst (Ring.load r ~node:0 ~addr:8 ~cycle:6));
        Alcotest.(check bool) "drained" true (Ring.data_drained r));
    tc "signals_received does not consume" (fun () ->
        (* the diagnostic accessor must be pure: probing a node's buffer
           while building a stuck report must not change satisfaction *)
        let r = mk_ring () in
        ignore (Ring.try_signal r ~node:1 ~seg:0 ~cycle:0);
        tick_n r ~from:0 20;
        for _ = 1 to 3 do
          check Alcotest.int "stable" 1
            (Ring.signals_received r ~node:3 ~seg:0 ~origin:1)
        done;
        Alcotest.(check bool) "still satisfied" true
          (Ring.signals_satisfied r ~node:3 ~seg:0 ~origin:1 ~threshold:1));
    tc "lockstep still holds for traffic after a flush" (fun () ->
        (* regression guard for the post-flush barrier reset: flush
           refills applied_data with next_seq-1; stores injected by the
           next loop get higher sequence numbers, so their guarding
           signals must still be held until the data lands *)
        let r = mk_ring ~n:8 () in
        ignore (Ring.try_store r ~node:0 ~addr:64 ~value:1 ~cycle:0);
        ignore (Ring.try_signal r ~node:0 ~seg:0 ~cycle:0);
        tick_n r ~from:0 60;
        ignore (Ring.flush r ~cycle:60);
        (* second "loop": same shape, new values *)
        for k = 0 to 6 do
          ignore
            (Ring.try_store r ~node:0 ~addr:(64 + k) ~value:(100 + k)
               ~cycle:61)
        done;
        ignore (Ring.try_signal r ~node:0 ~seg:0 ~cycle:61);
        for cycle = 61 to 140 do
          Ring.tick r ~cycle;
          List.iter
            (fun node ->
              if Ring.signals_satisfied r ~node ~seg:0 ~origin:0 ~threshold:1
              then
                check Alcotest.int
                  (Fmt.str "node %d cycle %d post-flush guarded value" node
                     cycle)
                  106
                  (fst (Ring.load r ~node ~addr:70 ~cycle)))
            [ 1; 4; 7 ]
        done);
    tc "snapshot mirrors describe structurally" (fun () ->
        let r = mk_ring ~n:4 () in
        ignore (Ring.try_store r ~node:0 ~addr:8 ~value:1 ~cycle:0);
        ignore (Ring.try_signal r ~node:1 ~seg:0 ~cycle:0);
        tick_n r ~from:0 20;
        match Ring.snapshot r with
        | Helix_obs.Json.Obj fields ->
            (match List.assoc_opt "nodes" fields with
            | Some (Helix_obs.Json.List nodes) ->
                check Alcotest.int "one entry per node" 4 (List.length nodes)
            | _ -> Alcotest.fail "nodes list missing");
            Alcotest.(check bool) "links present" true
              (List.mem_assoc "links_data" fields
              && List.mem_assoc "links_sig" fields)
        | _ -> Alcotest.fail "snapshot is not an object");
    tc "export_metrics agrees with accessors" (fun () ->
        let r = mk_ring () in
        ignore (Ring.try_store r ~node:0 ~addr:8 ~value:1 ~cycle:0);
        tick_n r ~from:0 20;
        ignore (Ring.load r ~node:2 ~addr:8 ~cycle:21);
        let m = Helix_obs.Metrics.create () in
        Ring.export_metrics r m;
        check
          Alcotest.(option (float 1e-9))
          "hit rate" (Some (Ring.ring_hit_rate r))
          (Helix_obs.Metrics.find_float m "ring.hit_rate");
        match Helix_obs.Metrics.find m "ring.dist_hist" with
        | Some (Helix_obs.Metrics.Hist h) ->
            check Alcotest.(array int) "dist hist" (Ring.dist_histogram r) h
        | _ -> Alcotest.fail "ring.dist_hist missing");
  ]

(* ---- fault injection: deterministic timing perturbation ---------------- *)

let perturbed_ring ?(n = 4) seed =
  mk_ring ~n
    ~cfg_f:(fun c ->
      { c with Ring.perturb = Some (Ring.perturbed ~seed ()) })
    ()

(* first cycle at which [node] observes [value] at [addr], given a store
   injected at node 0 on cycle 0 *)
let visibility_cycle r ~node ~addr ~value =
  let seen = ref (-1) in
  for cycle = 0 to 300 do
    Ring.tick r ~cycle;
    if !seen < 0 && fst (Ring.load r ~node ~addr ~cycle) = value then
      seen := cycle
  done;
  if !seen < 0 then Alcotest.fail "store never became visible";
  !seen

let jitter_tests =
  [
    tc "perturbed ring still delivers stores and signals everywhere" (fun () ->
        List.iter
          (fun seed ->
            let r = perturbed_ring seed in
            Alcotest.(check bool) "store accepted" true
              (Ring.try_store r ~node:0 ~addr:64 ~value:9 ~cycle:0);
            ignore (Ring.try_signal r ~node:1 ~seg:3 ~cycle:0);
            tick_n r ~from:0 200;
            for node = 0 to 3 do
              check Alcotest.int
                (Fmt.str "seed %d node %d sees the store" seed node)
                9
                (fst (Ring.load r ~node ~addr:64 ~cycle:205))
            done;
            List.iter
              (fun node ->
                Alcotest.(check bool)
                  (Fmt.str "seed %d node %d sees the signal" seed node)
                  true
                  (Ring.signals_satisfied r ~node ~seg:3 ~origin:1
                     ~threshold:1))
              [ 0; 2; 3 ];
            Alcotest.(check bool) "drained" true (Ring.data_drained r))
          [ 1; 42; 1337 ]);
    tc "perturbation is deterministic per seed and delay-only" (fun () ->
        let probe seed =
          let r = perturbed_ring seed in
          ignore (Ring.try_store r ~node:0 ~addr:64 ~value:9 ~cycle:0);
          visibility_cycle r ~node:2 ~addr:64 ~value:9
        in
        let baseline =
          let r = mk_ring () in
          ignore (Ring.try_store r ~node:0 ~addr:64 ~value:9 ~cycle:0);
          visibility_cycle r ~node:2 ~addr:64 ~value:9
        in
        List.iter
          (fun seed ->
            let a = probe seed and b = probe seed in
            check Alcotest.int (Fmt.str "seed %d reproducible" seed) a b;
            Alcotest.(check bool)
              (Fmt.str "seed %d never earlier than unperturbed" seed)
              true (a >= baseline))
          [ 1; 42; 1337 ]);
    tc "lockstep holds under perturbation" (fun () ->
        (* jitter only delays hops; a signal must still never outrun the
           data it guards, at any node, under any seed *)
        List.iter
          (fun seed ->
            let r = perturbed_ring ~n:8 seed in
            for k = 0 to 6 do
              ignore
                (Ring.try_store r ~node:0 ~addr:(64 + k) ~value:(k + 1)
                   ~cycle:0)
            done;
            ignore (Ring.try_signal r ~node:0 ~seg:0 ~cycle:0);
            for cycle = 0 to 200 do
              Ring.tick r ~cycle;
              List.iter
                (fun node ->
                  if
                    Ring.signals_satisfied r ~node ~seg:0 ~origin:0
                      ~threshold:1
                  then
                    check Alcotest.int
                      (Fmt.str "seed %d node %d cycle %d guarded value" seed
                         node cycle)
                      7
                      (fst (Ring.load r ~node ~addr:70 ~cycle)))
                [ 1; 3; 5; 7 ]
            done)
          [ 1; 42; 1337 ]);
    tc "abort empties the ring wholesale" (fun () ->
        let r = mk_ring () in
        ignore (Ring.try_store r ~node:0 ~addr:8 ~value:5 ~cycle:0);
        ignore (Ring.try_signal r ~node:1 ~seg:0 ~cycle:0);
        tick_n r ~from:0 3;
        Ring.abort r;
        Alcotest.(check bool) "data drained" true (Ring.data_drained r);
        check Alcotest.int "signals gone" 0
          (Ring.signals_received r ~node:3 ~seg:0 ~origin:1);
        (* aborted stores must NOT reach backing memory *)
        check Alcotest.int "no write-back" 0
          (try Hashtbl.find backing 8 with Not_found -> 0);
        (* the ring is reusable afterwards *)
        Alcotest.(check bool) "accepts new traffic" true
          (Ring.try_store r ~node:0 ~addr:16 ~value:7 ~cycle:10);
        for c = 10 to 40 do Ring.tick r ~cycle:c done;
        check Alcotest.int "new store circulates" 7
          (fst (Ring.load r ~node:2 ~addr:16 ~cycle:41)));
  ]

(* property: random store traffic always drains and, for single-writer
   addresses (the compiler's segment ordering guarantees there are no
   unsynchronized multi-writer races), the last store is what every node
   reads afterwards *)
let prop_circulation =
  QCheck.Test.make ~name:"random traffic drains; last store wins everywhere"
    ~count:40
    QCheck.(list_of_size (Gen.int_range 1 30)
       (pair (int_range 0 3) (pair (int_range 0 7) (int_range 1 99))))
    (fun ops ->
      let r = mk_ring ~n:4 () in
      let last = Hashtbl.create 8 in
      List.iteri
        (fun i (node, (slot, v)) ->
          (* one writer per address *)
          let addr = 64 + (node * 16) + slot in
          (* retry until accepted, ticking in between *)
          let rec go c =
            if Ring.try_store r ~node ~addr ~value:v ~cycle:c then c
            else begin
              Ring.tick r ~cycle:c;
              go (c + 1)
            end
          in
          let c = go (i * 3) in
          Ring.tick r ~cycle:c;
          Hashtbl.replace last addr v)
        ops;
      let base = 3 * List.length ops in
      for c = base to base + 60 do
        Ring.tick r ~cycle:c
      done;
      Ring.data_drained r
      && Hashtbl.fold
           (fun addr v acc ->
             acc
             && List.for_all
                  (fun node ->
                    fst (Ring.load r ~node ~addr ~cycle:(base + 100)) = v)
                  [ 0; 1; 2; 3 ])
           last true)

let props = [ QCheck_alcotest.to_alcotest prop_circulation ]

(* ---- lossy-ring fault protocol ------------------------------------------ *)

(* A ring whose every link send is attacked by the given plan. *)
let mk_faulty ?(n = 4) plan () =
  mk_ring ~n ~cfg_f:(fun c -> { c with Ring.faults = Some plan }) ()

(* Drive [stores] through [r] (retrying on injection back-pressure),
   then tick until drained (bounded), and return the cycle reached. *)
let push_and_drain r stores =
  let c = ref 0 in
  List.iter
    (fun (node, addr, value) ->
      while not (Ring.try_store r ~node ~addr ~value ~cycle:!c) do
        Ring.tick r ~cycle:!c;
        incr c
      done;
      Ring.tick r ~cycle:!c;
      incr c)
    stores;
  let budget = ref 50_000 in
  while (not (Ring.drained r)) && !budget > 0 do
    Ring.tick r ~cycle:!c;
    incr c;
    decr budget
  done;
  (* a few extra ticks so stale retransmission timers expire quietly *)
  for _ = 1 to 16 do
    Ring.tick r ~cycle:!c;
    incr c
  done;
  Alcotest.(check bool) "drained under faults" true (Ring.drained r);
  !c

let all_nodes_see r ~n ~addr ~value ~cycle =
  for node = 0 to n - 1 do
    check Alcotest.int
      (Fmt.str "node %d sees %d" node addr)
      value
      (fst (Ring.load r ~node ~addr ~cycle))
  done

let fault_tests =
  [
    tc "fault plan round-trips through its string form" (fun () ->
        let p =
          Ring.faulty ~drop:5 ~dup:3 ~reorder:2 ~corrupt:1
            ~fail_stop:(3, 50_000) ~seed:42 ()
        in
        (match Ring.fault_plan_of_string (Ring.fault_plan_to_string p) with
        | Ok p' -> Alcotest.(check bool) "round-trip" true (p = p')
        | Error m -> Alcotest.fail m);
        (match Ring.fault_plan_of_string "drop=1001" with
        | Ok _ -> Alcotest.fail "rate out of range accepted"
        | Error _ -> ());
        (match Ring.fault_plan_of_string "kill=3" with
        | Ok _ -> Alcotest.fail "kill without @CYCLE accepted"
        | Error _ -> ());
        match Ring.fault_plan_of_string "frob=1" with
        | Ok _ -> Alcotest.fail "unknown key accepted"
        | Error _ -> ());
    tc "zero-rate plan is exact: no faults, no retransmits" (fun () ->
        let r = mk_faulty (Ring.faulty ~seed:9 ()) () in
        let c = push_and_drain r [ (0, 64, 7); (1, 72, 8); (2, 80, 9) ] in
        all_nodes_see r ~n:4 ~addr:64 ~value:7 ~cycle:c;
        check Alcotest.int "faults" 0 (Ring.faults_injected r);
        check Alcotest.int "retransmits" 0 (Ring.retransmits r));
    tc "heavy drops: retransmission still delivers everywhere" (fun () ->
        let r = mk_faulty (Ring.faulty ~drop:300 ~seed:1 ()) () in
        let c = push_and_drain r [ (0, 64, 1); (1, 72, 2); (3, 80, 3) ] in
        all_nodes_see r ~n:4 ~addr:64 ~value:1 ~cycle:c;
        all_nodes_see r ~n:4 ~addr:72 ~value:2 ~cycle:c;
        all_nodes_see r ~n:4 ~addr:80 ~value:3 ~cycle:c;
        Alcotest.(check bool) "dropped something" true
          (Ring.faults_injected r > 0);
        Alcotest.(check bool) "retransmitted" true (Ring.retransmits r > 0));
    tc "duplicates are discarded by the hop-sequence check" (fun () ->
        let r = mk_faulty (Ring.faulty ~dup:400 ~seed:2 ()) () in
        let c = push_and_drain r [ (0, 64, 5); (2, 72, 6) ] in
        all_nodes_see r ~n:4 ~addr:64 ~value:5 ~cycle:c;
        all_nodes_see r ~n:4 ~addr:72 ~value:6 ~cycle:c;
        Alcotest.(check bool) "dups detected" true (Ring.dups_detected r > 0));
    tc "corruption is caught by the checksum and retransmitted" (fun () ->
        let r = mk_faulty (Ring.faulty ~corrupt:300 ~seed:3 ()) () in
        let c = push_and_drain r [ (0, 64, 11); (1, 72, 12) ] in
        all_nodes_see r ~n:4 ~addr:64 ~value:11 ~cycle:c;
        all_nodes_see r ~n:4 ~addr:72 ~value:12 ~cycle:c;
        Alcotest.(check bool) "corrupts detected" true
          (Ring.corrupts_detected r > 0));
    tc "reordering cannot reorder acceptance (go-back-N in-order)" (fun () ->
        (* two stores to the same address from the same node: the second
           must win at every node no matter how the wires shuffle *)
        let r = mk_faulty (Ring.faulty ~reorder:400 ~seed:4 ()) () in
        let c = push_and_drain r [ (0, 64, 1); (0, 64, 2); (0, 64, 3) ] in
        all_nodes_see r ~n:4 ~addr:64 ~value:3 ~cycle:c);
    tc "all four classes at once converge to the truth" (fun () ->
        let r =
          mk_faulty
            (Ring.faulty ~drop:120 ~dup:120 ~reorder:120 ~corrupt:120 ~seed:5
               ())
            ()
        in
        (* each node repeatedly writes its own address: per-source
           in-order delivery makes the last value the winner everywhere
           (cross-node write ordering is the wait/signal protocol's job,
           not the ring's) *)
        let stores =
          List.init 12 (fun i -> (i mod 4, 64 + (8 * (i mod 4)), 100 + i))
        in
        let c = push_and_drain r stores in
        all_nodes_see r ~n:4 ~addr:64 ~value:108 ~cycle:c;
        all_nodes_see r ~n:4 ~addr:72 ~value:109 ~cycle:c;
        all_nodes_see r ~n:4 ~addr:80 ~value:110 ~cycle:c;
        all_nodes_see r ~n:4 ~addr:88 ~value:111 ~cycle:c;
        Alcotest.(check bool) "injected faults" true
          (Ring.faults_injected r > 0));
    tc "fault-free ring and zero-rate faulty ring agree message-for-message"
      (fun () ->
        let stores = List.init 8 (fun i -> (i mod 4, 64 + (8 * i), i)) in
        let a = mk_ring () in
        let ca = push_and_drain a stores in
        let b = mk_faulty (Ring.faulty ~seed:77 ()) () in
        let cb = push_and_drain b stores in
        check Alcotest.int "same drain cycle" ca cb;
        List.iter
          (fun (_, addr, v) ->
            all_nodes_see a ~n:4 ~addr ~value:v ~cycle:ca;
            all_nodes_see b ~n:4 ~addr ~value:v ~cycle:cb)
          stores);
    tc "kill_node: dead node forwards and retires but never applies"
      (fun () ->
        let r = mk_ring () in
        let lost_d, lost_s = Ring.kill_node r ~node:2 ~cycle:0 in
        check Alcotest.int "no data lost at rest" 0 lost_d;
        check Alcotest.int "no sig lost at rest" 0 lost_s;
        Alcotest.(check bool) "dead" true (Ring.node_dead r ~node:2);
        check Alcotest.int "dead count" 1 (Ring.dead_nodes r);
        check Alcotest.int "reknits" 1 (Ring.reknits r);
        (* idempotent *)
        ignore (Ring.kill_node r ~node:2 ~cycle:1);
        check Alcotest.int "still one reknit" 1 (Ring.reknits r);
        ignore (Ring.try_store r ~node:0 ~addr:64 ~value:9 ~cycle:1);
        tick_n r ~from:1 40;
        Alcotest.(check bool) "drained through the dead node" true
          (Ring.drained r);
        (* survivors see the store; the dead node's array was never
           updated, so its local copy (a miss served by the owner path)
           still resolves to the authoritative value *)
        all_nodes_see r ~n:4 ~addr:64 ~value:9 ~cycle:60);
    tc "kill_node reports in-flight injections as losses" (fun () ->
        let r = mk_ring () in
        ignore (Ring.try_store r ~node:2 ~addr:64 ~value:9 ~cycle:0);
        (* no tick: the message is still in node 2's injection queue *)
        let lost_d, _ = Ring.kill_node r ~node:2 ~cycle:0 in
        check Alcotest.int "lost the queued store" 1 lost_d;
        tick_n r ~from:0 40;
        Alcotest.(check bool) "accounting still drains" true (Ring.drained r));
    tc "describe and snapshot expose in-flight and fault counters" (fun () ->
        let r = mk_faulty (Ring.faulty ~drop:200 ~seed:6 ()) () in
        ignore (Ring.try_store r ~node:0 ~addr:64 ~value:1 ~cycle:0);
        Ring.tick r ~cycle:0;
        let d = Ring.describe r in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "describe has inflight" true
          (contains d "inflight: data=");
        let infl_d, infl_s = Ring.inflight_counts r in
        Alcotest.(check bool) "inflight data positive" true (infl_d >= 1);
        check Alcotest.int "inflight sig zero" 0 infl_s;
        match Ring.snapshot r with
        | Helix_obs.Json.Obj kvs ->
            List.iter
              (fun k ->
                Alcotest.(check bool) k true (List.mem_assoc k kvs))
              [ "inflight_data"; "inflight_sig"; "retransmits";
                "drops_detected"; "faults_injected"; "reknits" ]
        | _ -> Alcotest.fail "snapshot not an object");
  ]

let () =
  Alcotest.run "ring"
    [
      ("node-array", node_array_tests);
      ("signal-buffer", signal_tests);
      ("signal-buffer-properties", sb_property_tests);
      ("owner", owner_tests);
      ("ring", ring_tests);
      ("regressions", regression_tests);
      ("fault-injection", jitter_tests);
      ("fault-protocol", fault_tests);
      ("properties", props);
    ]
