open Helix_obs
open Helix_ir
open Helix_hcc
open Helix_machine
open Helix_core
open Helix_workloads
open Helix_experiments

(* Tests for the observability subsystem: the JSON codec, the
   ring-buffered event trace (including JSONL round-trips), the metrics
   registry, agreement between the metrics export and the legacy counter
   fields, and the completeness of the deadlock report a forced wedge
   produces. *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ---- JSON codec ------------------------------------------------------ *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("n", Json.Int (-42));
      ("x", Json.Float 1.5);
      ("s", Json.String "a \"quoted\"\nline\twith \\ stuff");
      ("l", Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
      ("nested", Json.Obj [ ("k", Json.List [ Json.Obj [] ]) ]);
    ]

let json_tests =
  [
    tc "encode/decode round-trip" (fun () ->
        let s = Json.to_string sample_json in
        Alcotest.(check bool) "equal after round-trip" true
          (Json.equal sample_json (Json.of_string_exn s)));
    tc "object comparison is order-insensitive" (fun () ->
        Alcotest.(check bool) "same fields, different order" true
          (Json.equal
             (Json.Obj [ ("a", Json.Int 1); ("b", Json.Int 2) ])
             (Json.Obj [ ("b", Json.Int 2); ("a", Json.Int 1) ])));
    tc "non-finite floats degrade to null" (fun () ->
        check Alcotest.string "nan" "null" (Json.to_string (Json.Float Float.nan));
        check Alcotest.string "inf" "null"
          (Json.to_string (Json.Float Float.infinity)));
    tc "malformed input is an error" (fun () ->
        (match Json.of_string "{\"a\": }" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted malformed object");
        match Json.of_string "[1, 2" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted unterminated array");
    tc "accessors" (fun () ->
        check
          Alcotest.(option int)
          "member/int" (Some (-42))
          (Option.bind (Json.member "n" sample_json) Json.to_int_opt);
        check
          Alcotest.(option (float 1e-9))
          "int widens to float" (Some (-42.0))
          (Option.bind (Json.member "n" sample_json) Json.to_float_opt));
  ]

(* round-trip property over printable strings and ints *)
let prop_json_roundtrip =
  QCheck.Test.make ~name:"json round-trips arbitrary string/int objects"
    ~count:100
    QCheck.(list (pair printable_string small_signed_int))
    (fun fields ->
      (* object keys must be unique for Obj comparison to be meaningful *)
      let fields =
        List.mapi (fun i (k, v) -> (Printf.sprintf "%d_%s" i k, Json.Int v))
          fields
      in
      let j = Json.Obj fields in
      Json.equal j (Json.of_string_exn (Json.to_string j)))

(* ---- trace ring buffer ---------------------------------------------- *)

let trace_tests =
  [
    tc "events come back oldest-first" (fun () ->
        let tr = Trace.create () in
        for c = 1 to 5 do
          Trace.emit (Some tr) ~cycle:c ~kind:"e" []
        done;
        check
          Alcotest.(list int)
          "cycles" [ 1; 2; 3; 4; 5 ]
          (List.map (fun e -> e.Trace.ev_cycle) (Trace.events tr)));
    tc "ring buffer keeps the newest events" (fun () ->
        let tr = Trace.create ~capacity:4 () in
        for c = 1 to 10 do
          Trace.emit (Some tr) ~cycle:c ~kind:"e" []
        done;
        check Alcotest.int "length capped" 4 (Trace.length tr);
        check Alcotest.int "dropped counted" 6 (Trace.dropped tr);
        check
          Alcotest.(list int)
          "tail survives" [ 7; 8; 9; 10 ]
          (List.map (fun e -> e.Trace.ev_cycle) (Trace.events tr)));
    tc "emitters are no-ops on None" (fun () ->
        (* must not raise and must cost nothing observable *)
        Trace.store_inject None ~cycle:0 ~node:0 ~addr:0 ~value:0 ~seq:0;
        Trace.stuck None ~cycle:0 ~phase:"serial");
    tc "jsonl round-trip" (fun () ->
        let tr = Trace.create () in
        Trace.store_inject (Some tr) ~cycle:10 ~node:2 ~addr:64 ~value:7 ~seq:3;
        Trace.signal_inject (Some tr) ~cycle:11 ~node:2 ~seg:1 ~seq:4 ~barrier:3;
        Trace.lockstep_hold (Some tr) ~cycle:12 ~node:5 ~origin:2 ~barrier:3
          ~applied:1;
        Trace.loop_enter (Some tr) ~cycle:13 ~loop:8 ~trip:None;
        let lines = String.split_on_char '\n' (String.trim (Trace.to_jsonl tr)) in
        check Alcotest.int "one line per event" (Trace.length tr)
          (List.length lines);
        let back =
          List.map
            (fun l ->
              match Trace.event_of_line l with
              | Ok e -> e
              | Error m -> Alcotest.fail ("unparseable line: " ^ m))
            lines
        in
        List.iter2
          (fun a b ->
            check Alcotest.int "cycle" a.Trace.ev_cycle b.Trace.ev_cycle;
            check Alcotest.string "kind" a.Trace.ev_kind b.Trace.ev_kind;
            Alcotest.(check bool) "fields" true
              (Json.equal
                 (Json.Obj a.Trace.ev_fields)
                 (Json.Obj b.Trace.ev_fields)))
          (Trace.events tr) back);
    tc "clear resets but keeps capacity" (fun () ->
        let tr = Trace.create ~capacity:4 () in
        for c = 1 to 10 do
          Trace.emit (Some tr) ~cycle:c ~kind:"e" []
        done;
        Trace.clear tr;
        check Alcotest.int "empty" 0 (Trace.length tr);
        Trace.emit (Some tr) ~cycle:99 ~kind:"e" [];
        check Alcotest.int "usable again" 1 (Trace.length tr));
  ]

(* ---- metrics registry ------------------------------------------------ *)

let metrics_tests =
  [
    tc "set/find typed values" (fun () ->
        let m = Metrics.create () in
        Metrics.set_int m "a.count" 3;
        Metrics.set_float m "a.rate" 0.5;
        Metrics.set_hist m "a.hist" [| 1; 2 |];
        check Alcotest.(option int) "int" (Some 3) (Metrics.find_int m "a.count");
        check
          Alcotest.(option (float 1e-9))
          "float" (Some 0.5) (Metrics.find_float m "a.rate");
        check
          Alcotest.(option (float 1e-9))
          "find_float widens int" (Some 3.0)
          (Metrics.find_float m "a.count"));
    tc "set_hist copies the array" (fun () ->
        let m = Metrics.create () in
        let h = [| 1; 2 |] in
        Metrics.set_hist m "h" h;
        h.(0) <- 99;
        match Metrics.find m "h" with
        | Some (Metrics.Hist a) -> check Alcotest.int "unaffected" 1 a.(0)
        | _ -> Alcotest.fail "hist missing");
    tc "add_int accumulates" (fun () ->
        let m = Metrics.create () in
        Metrics.add_int m "n" 2;
        Metrics.add_int m "n" 3;
        check Alcotest.(option int) "sum" (Some 5) (Metrics.find_int m "n"));
    tc "to_json is flat and sorted" (fun () ->
        let m = Metrics.create () in
        Metrics.set_int m "b" 2;
        Metrics.set_int m "a" 1;
        match Metrics.to_json m with
        | Json.Obj [ ("a", Json.Int 1); ("b", Json.Int 2) ] -> ()
        | j -> Alcotest.fail ("unexpected shape: " ^ Json.to_string j));
  ]

(* ---- metrics vs legacy counters -------------------------------------- *)

(* The executor's metrics export must agree with the legacy result
   fields and Stats accounting — same run, two views. *)
let legacy_agreement_tests =
  [
    tc "executor metrics match legacy result fields" (fun () ->
        let wl = Registry.find "164.gzip" in
        let par = Exp_common.run_helix wl Exp_common.V3 in
        let m = par.Executor.r_metrics in
        let geti k =
          match Metrics.find_int m k with
          | Some v -> v
          | None -> Alcotest.fail ("missing metric " ^ k)
        in
        let getf k =
          match Metrics.find_float m k with
          | Some v -> v
          | None -> Alcotest.fail ("missing metric " ^ k)
        in
        check Alcotest.int "exec.cycles" par.Executor.r_cycles
          (geti "exec.cycles");
        check Alcotest.int "exec.retired" par.Executor.r_retired
          (geti "exec.retired");
        check Alcotest.int "exec.serial_cycles" par.Executor.r_serial_cycles
          (geti "exec.serial_cycles");
        check Alcotest.int "exec.parallel_cycles"
          par.Executor.r_parallel_cycles
          (geti "exec.parallel_cycles");
        check Alcotest.int "exec.max_outstanding_signals"
          par.Executor.r_max_outstanding_signals
          (geti "exec.max_outstanding_signals");
        check (Alcotest.float 1e-9) "ring.hit_rate"
          par.Executor.r_ring_hit_rate (getf "ring.hit_rate");
        (match Metrics.find m "ring.dist_hist" with
        | Some (Metrics.Hist h) ->
            check
              Alcotest.(array int)
              "ring.dist_hist" par.Executor.r_ring_dist_hist h
        | _ -> Alcotest.fail "ring.dist_hist missing");
        (* Figure-12 bucket fractions: the merged per-core view must be
           exactly what Stats.fraction computes (what Stats.pp prints) *)
        let merged =
          Stats.merge (Array.to_list par.Executor.r_core_stats)
        in
        List.iter
          (fun b ->
            check (Alcotest.float 1e-9)
              ("cores.frac." ^ Stats.bucket_name b)
              (Stats.fraction merged b)
              (getf ("cores.frac." ^ Stats.bucket_name b)))
          Stats.all_buckets;
        check Alcotest.int "cores.cycles" merged.Stats.cycles
          (geti "cores.cycles");
        (* per-core namespaces exist for every core *)
        Array.iteri
          (fun i st ->
            check Alcotest.int
              (Printf.sprintf "core.%d.cycles" i)
              st.Stats.cycles
              (geti (Printf.sprintf "core.%d.cycles" i)))
          par.Executor.r_core_stats);
  ]

(* ---- forced deadlock: report completeness ---------------------------- *)

(* Compile a workload, then delete every Signal from the parallel body
   functions: workers' waits can never be satisfied, so the run must
   wedge and the watchdog must produce a complete report. *)
let strip_signals (compiled : Hcc.compiled) =
  List.iter
    (fun (pl : Parallel_loop.t) ->
      let bf = Ir.find_func compiled.Hcc.cp_prog pl.Parallel_loop.pl_body_fn in
      List.iter
        (fun l ->
          let blk = Ir.block_of_func bf l in
          blk.Ir.b_instrs <-
            List.filter
              (fun ins -> match ins with Ir.Signal _ -> false | _ -> true)
              blk.Ir.b_instrs)
        bf.Ir.f_order)
    (Hcc.selected_loops compiled)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let deadlock_tests =
  [
    tc "stripped signals wedge; report lists every node and wait target"
      (fun () ->
        let wl = Registry.find "164.gzip" in
        let s = wl.Workload.build () in
        let compiled =
          Hcc.compile (Hcc_config.v3 ()) s.Workload.prog s.Workload.layout
            ~train_mem:(s.Workload.init Workload.Train)
        in
        strip_signals compiled;
        let tr = Trace.create () in
        let cfg =
          {
            (Executor.default_config ~ring:true
               ~comm:Executor.fully_decoupled ~trace:tr Mach_config.default)
            with
            Executor.watchdog_cycles = 20_000;
          }
        in
        match
          Executor.run ~compiled cfg compiled.Hcc.cp_prog
            (s.Workload.init Workload.Ref)
        with
        | _ -> Alcotest.fail "run without signals should get stuck"
        | exception Executor.Stuck (reason, report) ->
            Alcotest.(check string)
              "a wedge is classified as a deadlock, not fuel" "deadlock"
              (Executor.stuck_reason_name reason);
            (* every ring node's state must appear, not just the first few *)
            for node = 0 to cfg.Executor.mach.Mach_config.n_cores - 1 do
              Alcotest.(check bool)
                (Printf.sprintf "report covers node %d" node)
                true
                (contains report (Printf.sprintf "node %d:" node))
            done;
            Alcotest.(check bool) "report has worker states" true
              (contains report "worker");
            Alcotest.(check bool) "report has wait targets" true
              (contains report "wait targets");
            Alcotest.(check bool) "report names an unmet threshold" true
              (contains report "MISSING");
            Alcotest.(check bool) "report includes the parallel phase" true
              (contains report "phase: parallel");
            (* the trace saw the wedge too *)
            Alcotest.(check bool) "stuck event traced" true
              (List.exists
                 (fun e -> e.Trace.ev_kind = "stuck")
                 (Trace.events tr)));
  ]

let props = [ QCheck_alcotest.to_alcotest prop_json_roundtrip ]

(* ---- bench trend gate (lib/experiments/trend.ml) --------------------- *)

module Trend = Helix_experiments.Trend

let trend_fails fs = List.length (Trend.failures fs)

let engine_json ?(heap = true) ~legacy_rate ~event_rate ~heap_rate () =
  let side r =
    Printf.sprintf
      "{\"cycles\": 1000, \"seconds\": 1.0, \"cycles_per_sec\": %f}" r
  in
  Printf.sprintf "{\"bench\": \"engine-ab\", \"legacy\": %s, \"event\": %s%s}"
    (side legacy_rate) (side event_rate)
    (if heap then Printf.sprintf ", \"heap\": %s" (side heap_rate) else "")

let trend_tests =
  [
    Alcotest.test_case "equal rates pass" `Quick (fun () ->
        let j = engine_json ~legacy_rate:1e6 ~event_rate:2e6 ~heap_rate:3e6 () in
        Alcotest.(check int) "no failures" 0
          (trend_fails (Trend.compare_engine ~old_json:j ~new_json:j ())));
    Alcotest.test_case "small drift passes, big regression fails" `Quick
      (fun () ->
        let old_j =
          engine_json ~legacy_rate:1e6 ~event_rate:2e6 ~heap_rate:3e6 ()
        in
        let drift =
          engine_json ~legacy_rate:0.95e6 ~event_rate:1.9e6 ~heap_rate:2.9e6 ()
        in
        let regressed =
          engine_json ~legacy_rate:1e6 ~event_rate:2e6 ~heap_rate:2.0e6 ()
        in
        Alcotest.(check int) "5% drift ok" 0
          (trend_fails
             (Trend.compare_engine ~old_json:old_j ~new_json:drift ()));
        Alcotest.(check int) "33% drop fails" 1
          (trend_fails
             (Trend.compare_engine ~old_json:old_j ~new_json:regressed ()));
        (* a tighter threshold turns the drift into a failure too *)
        Alcotest.(check bool) "2% threshold catches drift" true
          (trend_fails
             (Trend.compare_engine ~threshold:0.02 ~old_json:old_j
                ~new_json:drift ())
          > 0));
    Alcotest.test_case "new engine without baseline is not a failure" `Quick
      (fun () ->
        let old_j =
          engine_json ~heap:false ~legacy_rate:1e6 ~event_rate:2e6
            ~heap_rate:0.0 ()
        in
        let new_j =
          engine_json ~legacy_rate:1e6 ~event_rate:2e6 ~heap_rate:3e6 ()
        in
        Alcotest.(check int) "no failures" 0
          (trend_fails (Trend.compare_engine ~old_json:old_j ~new_json:new_j ())));
    Alcotest.test_case "an engine disappearing is a failure" `Quick (fun () ->
        let old_j =
          engine_json ~legacy_rate:1e6 ~event_rate:2e6 ~heap_rate:3e6 ()
        in
        let new_j =
          engine_json ~heap:false ~legacy_rate:1e6 ~event_rate:2e6
            ~heap_rate:0.0 ()
        in
        Alcotest.(check int) "one failure" 1
          (trend_fails (Trend.compare_engine ~old_json:old_j ~new_json:new_j ())));
    Alcotest.test_case "figure value changes pass, shape changes fail" `Quick
      (fun () ->
        let old_fig = "{\"rows\": [{\"wl\": \"gzip\", \"speedup\": 2.0}]}" in
        let moved = "{\"rows\": [{\"wl\": \"gzip\", \"speedup\": 3.1}]}" in
        let reshaped =
          "{\"rows\": [{\"wl\": \"gzip\", \"speedup\": 2.0}, {\"wl\": \
           \"mcf\", \"speedup\": 1.0}]}"
        in
        Alcotest.(check int) "values may move" 0
          (trend_fails
             (Trend.compare_figure ~name:"fig1" ~old_json:old_fig
                ~new_json:moved ()));
        Alcotest.(check int) "row added fails" 1
          (trend_fails
             (Trend.compare_figure ~name:"fig1" ~old_json:old_fig
                ~new_json:reshaped ())));
    Alcotest.test_case "compare_all: missing sides" `Quick (fun () ->
        let j = engine_json ~legacy_rate:1e6 ~event_rate:2e6 ~heap_rate:3e6 () in
        (* no baseline at all: notes only *)
        Alcotest.(check int) "first run passes" 0
          (trend_fails
             (Trend.compare_all ~engine_old:None ~engine_new:(Some j)
                ~figures:[ ("fig1.json", (None, Some "{}")) ]
                ()));
        (* current run lost its artifacts: failures *)
        Alcotest.(check bool) "lost artifacts fail" true
          (trend_fails
             (Trend.compare_all ~engine_old:(Some j) ~engine_new:None
                ~figures:[ ("fig1.json", (Some "{}", None)) ]
                ())
          >= 2));
  ]

let () =
  Alcotest.run "obs"
    [
      ("json", json_tests);
      ("trace", trace_tests);
      ("metrics", metrics_tests);
      ("legacy-agreement", legacy_agreement_tests);
      ("deadlock-report", deadlock_tests);
      ("bench-trend", trend_tests);
      ("properties", props);
    ]
